// schema_discovery: the full metadata-discovery pipeline on a directory of
// exported files — the "automating the data-integration process" scenario
// from the paper's introduction. Loads every input (CSV or XML collection),
// hands the whole schema to the service-layer SchemaProfiler (per-table key
// discovery as scheduler jobs, ranked top-k FDs, dictionary-first foreign
// keys fanned across the pool), and writes a JSON profile plus a Graphviz
// ER diagram.
//
// Usage:
//   ./build/examples/schema_discovery [files...] [--sample=N] [--threads=N]
//       [--json=profile.json] [--dot=schema.dot] [--min-coverage=1.0]
//       [--report-dir=DIR] [--legacy-fk]
//
// With no inputs a demo TPC-H-like database is generated and profiled.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/report.h"
#include "datagen/tpch_lite.h"
#include "service/schema_profiler.h"
#include "table/csv.h"
#include "table/xml_lite.h"

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gordian;
  Flags flags(argc, argv);

  // Load the inputs (or generate the demo database).
  std::vector<std::unique_ptr<Table>> owned;
  std::vector<std::pair<std::string, const Table*>> tables;
  if (flags.positional().empty()) {
    std::printf("no inputs given; generating a demo TPC-H-like database\n");
    for (NamedTable& nt : GenerateTpchLite(0.005, /*seed=*/11)) {
      owned.push_back(std::make_unique<Table>(std::move(nt.table)));
      tables.emplace_back(nt.name, owned.back().get());
    }
  } else {
    for (const std::string& path : flags.positional()) {
      auto table = std::make_unique<Table>();
      Status s = EndsWith(path, ".xml")
                     ? ReadXmlCollection(path, table.get())
                     : ReadCsv(path, CsvOptions{}, table.get());
      if (!s.ok()) {
        std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      owned.push_back(std::move(table));
      tables.emplace_back(BaseName(path), owned.back().get());
    }
  }

  // One SchemaProfiler pass: keys, FDs, and foreign keys across the pool.
  ServiceOptions service_options;
  service_options.num_threads = flags.ThreadCount();
  ProfilingService service(service_options);
  SchemaProfiler profiler(&service);

  SchemaProfileOptions options;
  options.job.gordian.sample_rows = flags.GetInt("sample", 0);
  options.fk.min_coverage = flags.GetDouble("min-coverage", 1.0);
  options.fk.min_distinct_values = flags.GetInt("min-distinct", 20);
  options.fk.min_referenced_coverage =
      flags.GetDouble("min-ref-coverage", 0.3);
  options.fk.dictionary_first = !flags.GetBool("legacy-fk", false);
  options.report_dir = flags.GetString("report-dir", "");

  SchemaReport report;
  Status status = profiler.Profile(tables, options, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: report not persisted: %s\n",
                 status.ToString().c_str());
  }

  // Console summary.
  for (const SchemaReport::TableEntry& e : report.tables) {
    std::printf("%-12s %8lld rows  %2d attrs  ", e.name.c_str(),
                static_cast<long long>(e.table->num_rows()),
                e.table->num_columns());
    if (e.result.no_keys) {
      std::printf("NO KEYS (duplicate rows)\n");
      continue;
    }
    std::printf("%zu key(s); smallest: %s\n", e.result.keys.size(),
                e.result.keys.empty()
                    ? "-"
                    : e.table->schema()
                          .Describe(e.result.keys.front().attrs)
                          .c_str());
    for (size_t f = 0; f < e.fds.size() && f < 3; ++f) {
      const FdCandidate& fd = e.fds[f];
      std::printf("    fd: %s -> %s  (redundancy %.3f)\n",
                  e.table->schema().Describe(fd.lhs).c_str(),
                  e.table->schema().name(fd.rhs).c_str(), fd.redundancy);
    }
  }
  std::printf("\n%zu foreign-key candidate(s)\n", report.foreign_keys.size());
  for (const ForeignKeyCandidate& fk : report.foreign_keys) {
    const auto& from = report.tables[fk.referencing_table];
    const auto& to = report.tables[fk.referenced_table];
    std::string cols;
    for (size_t i = 0; i < fk.foreign_key_columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += from.table->schema().name(fk.foreign_key_columns[i]);
    }
    std::printf("  %s(%s) -> %s%s  coverage=%.3f refs %.0f%% of keys\n",
                from.name.c_str(), cols.c_str(), to.name.c_str(),
                to.table->schema().Describe(fk.referenced_key).c_str(),
                fk.coverage, fk.referenced_coverage * 100);
  }
  std::printf("\nstage timings: keys %.3fs  fds %.3fs  fks %.3fs\n",
              report.key_seconds, report.fd_seconds, report.fk_seconds);
  if (!report.report_path.empty()) {
    std::printf("schema report: %s\n", report.report_path.c_str());
  }

  // Artifacts (the renderers consume the classic DatabaseProfile view).
  DatabaseProfile profile = report.AsDatabaseProfile();
  std::string json_path = flags.GetString("json", "profile.json");
  std::string dot_path = flags.GetString("dot", "schema.dot");
  {
    std::ofstream os(json_path);
    os << ProfileToJson(profile);
  }
  {
    std::ofstream os(dot_path);
    os << ProfileToDot(profile);
  }
  std::printf("\nwrote %s and %s (render with: dot -Tsvg %s -o schema.svg)\n",
              json_path.c_str(), dot_path.c_str(), dot_path.c_str());
  return 0;
}
