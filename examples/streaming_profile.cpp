// streaming_profile: profile an unbounded stream of entities in bounded
// memory. The profiler sees each row exactly once (Algorithm 2 is a single
// pass) and keeps only a reservoir sample, yet still reports every true key
// of the stream plus strength estimates for the approximate ones — the
// Section 3.9 story applied to data that never fits in memory.
//
// Usage:
//   ./build/examples/streaming_profile [--rows=2000000] [--reservoir=100000]

#include <cstdio>

#include "common/flags.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/streaming.h"
#include "datagen/words.h"

int main(int argc, char** argv) {
  using namespace gordian;
  Flags flags(argc, argv);
  const int64_t rows = flags.GetInt("rows", 2000000);
  const int64_t reservoir = flags.GetInt("reservoir", 100000);

  // An order-event stream: (order_no, line_no) is the composite key,
  // event_id a surrogate key, everything else descriptive.
  Schema schema(std::vector<std::string>{
      "event_id", "order_no", "line_no", "customer", "sku", "qty", "status"});
  GordianOptions options;
  options.sample_rows = reservoir;
  StreamingProfiler profiler(schema, options);

  std::printf("streaming %lld synthetic order events through a %lld-row "
              "reservoir...\n",
              static_cast<long long>(rows), static_cast<long long>(reservoir));
  Stopwatch watch;
  Random rng(7);
  int64_t order = 1, line = 1;
  int64_t lines_in_order = 1 + static_cast<int64_t>(rng.Uniform(7));
  for (int64_t i = 0; i < rows; ++i) {
    if (line > lines_in_order) {
      ++order;
      line = 1;
      lines_in_order = 1 + static_cast<int64_t>(rng.Uniform(7));
    }
    profiler.AddRow({Value(i + 1), Value(order), Value(line),
                     Value(SurnameFor(rng.Uniform(5000))),
                     Value(static_cast<int64_t>(rng.Uniform(20000))),
                     Value(static_cast<int64_t>(1 + rng.Uniform(50))),
                     Value(rng.Bernoulli(0.9) ? "shipped" : "returned")});
    ++line;
  }
  double ingest_s = watch.ElapsedSeconds();

  watch.Restart();
  KeyDiscoveryResult result = profiler.Finish();
  std::printf("ingest %.2f s, discovery over the reservoir %.2f s\n\n",
              ingest_s, watch.ElapsedSeconds());

  if (result.no_keys) {
    std::printf("the sampled rows contain duplicates: no keys\n");
    return 0;
  }
  std::printf("keys of the %s (sorted by estimated strength):\n",
              result.sampled ? "stream (from the sample)" : "stream");
  for (const DiscoveredKey& k : result.keys) {
    std::printf("  %-40s est. strength >= %.4f\n",
                [&] {
                  std::string s;
                  k.attrs.ForEach([&](int a) {
                    if (!s.empty()) s += ", ";
                    s += schema.name(a);
                  });
                  return "<" + s + ">";
                }()
                    .c_str(),
                k.estimated_strength);
  }
  std::printf(
      "\nnote: true keys of the full stream — here <event_id> and\n"
      "<order_no, line_no> — are always among the reported keys; extra\n"
      "entries are sample artifacts whose estimated strength exposes them.\n");
  return 0;
}
