// Quickstart: discover all minimal (composite) keys of a small in-memory
// entity collection — the paper's running example from Figure 1.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/gordian.h"
#include "table/table.h"

int main() {
  using gordian::BatchWriter;
  using gordian::Schema;
  using gordian::Table;
  using gordian::TableBuilder;

  // 1. Assemble the entity collection. BatchWriter packs appended rows
  //    into columnar batches (ints, doubles, strings, or Values — they
  //    are dictionary-encoded column-at-a-time internally).
  TableBuilder builder(Schema(std::vector<std::string>{
      "First Name", "Last Name", "Phone", "Emp No"}));
  {
    BatchWriter rows(&builder);
    rows.Append("Michael", "Thompson", 3478, 10);
    rows.Append("Michael", "Thompson", 6791, 50);
    rows.Append("Michael", "Spencer", 5237, 20);
    rows.Append("Sally", "Kwan", 3478, 90);
  }  // flushes the final partial batch
  Table employees = builder.Build();

  // 2. Run GORDIAN. Default options enable every pruning and the
  //    cardinality-descending attribute ordering heuristic.
  gordian::KeyDiscoveryResult result = gordian::FindKeys(employees);

  // 3. Inspect the result.
  if (result.no_keys) {
    std::printf("some entity occurs twice; no keys exist\n");
    return 0;
  }
  std::printf("minimal keys:\n");
  for (const gordian::DiscoveredKey& key : result.keys) {
    std::printf("  %s\n", employees.schema().Describe(key.attrs).c_str());
  }
  std::printf("maximal non-keys:\n");
  for (const gordian::AttributeSet& nk : result.non_keys) {
    std::printf("  %s\n", employees.schema().Describe(nk).c_str());
  }
  std::printf(
      "\nstats: %lld tree nodes, %lld merges, %lld futility prunes, "
      "%.3f ms total\n",
      static_cast<long long>(result.stats.base_tree_nodes),
      static_cast<long long>(result.stats.merges_performed),
      static_cast<long long>(result.stats.futility_prunes),
      result.stats.TotalSeconds() * 1e3);
  return 0;
}
