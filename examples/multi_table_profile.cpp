// multi_table_profile: profile every table of a multi-table database and
// print primary-key candidates — what "automated data integration" looks
// like when pointed at an unknown schema (here: the sports-league stand-in
// for the paper's BASEBALL dataset). The whole schema goes through one
// SchemaProfiler pass: key discovery per table as scheduler jobs, ranked
// functional dependencies, and dictionary-first foreign-key candidates.

#include <cstdio>

#include "datagen/baseball_like.h"
#include "service/schema_profiler.h"

int main() {
  using namespace gordian;

  std::printf("generating sports-league database...\n\n");
  std::vector<NamedTable> db = GenerateBaseballLike(/*scale=*/0.25,
                                                    /*seed=*/77);
  std::vector<std::pair<std::string, const Table*>> tables;
  for (const NamedTable& nt : db) tables.emplace_back(nt.name, &nt.table);

  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaProfileOptions options;
  options.fk.min_distinct_values = 50;
  options.fk.max_arity = 1;
  options.fd.top_k = 3;
  SchemaReport report;
  (void)profiler.Profile(tables, options, &report);

  for (const SchemaReport::TableEntry& e : report.tables) {
    const Table& t = *e.table;
    std::printf("%-16s %8lld rows  %2d attrs\n", e.name.c_str(),
                static_cast<long long>(t.num_rows()), t.num_columns());
    if (e.result.no_keys) {
      std::printf("    (duplicate rows: no keys)\n");
      continue;
    }
    // Primary-key candidates, smallest first; GORDIAN returns them sorted by
    // ascending cardinality already.
    size_t shown = 0;
    for (const DiscoveredKey& k : e.result.keys) {
      std::printf("    key: %s\n", t.schema().Describe(k.attrs).c_str());
      if (++shown == 5 && e.result.keys.size() > 6) {
        std::printf("    ... and %zu more minimal keys\n",
                    e.result.keys.size() - shown);
        break;
      }
    }
    // Top functional dependencies by redundancy — the normalization hints a
    // key alone cannot give.
    for (const FdCandidate& fd : e.fds) {
      std::printf("    fd:  %s -> %s  (redundancy %.3f)\n",
                  t.schema().Describe(fd.lhs).c_str(),
                  t.schema().name(fd.rhs).c_str(), fd.redundancy);
    }
  }

  // The paper's future-work extension: foreign keys proposed from inclusion
  // dependencies into the discovered keys.
  std::printf("\nforeign-key candidates (strict inclusions):\n");
  int shown_fk = 0;
  for (const ForeignKeyCandidate& fk : report.foreign_keys) {
    const SchemaReport::TableEntry& from = report.tables[fk.referencing_table];
    const SchemaReport::TableEntry& to = report.tables[fk.referenced_table];
    std::printf("  %s(%s) -> %s%s  [%lld distinct values]\n",
                from.name.c_str(),
                from.table->schema().name(fk.foreign_key_columns[0]).c_str(),
                to.name.c_str(),
                to.table->schema().Describe(fk.referenced_key).c_str(),
                static_cast<long long>(fk.distinct_fk_tuples));
    if (++shown_fk == 20) {
      std::printf("  ...\n");
      break;
    }
  }
  std::printf("\nstage timings: keys %.3fs  fds %.3fs  fks %.3fs\n",
              report.key_seconds, report.fd_seconds, report.fk_seconds);
  return 0;
}
