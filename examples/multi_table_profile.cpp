// multi_table_profile: profile every table of a multi-table database and
// print primary-key candidates — what "automated data integration" looks
// like when pointed at an unknown schema (here: the sports-league stand-in
// for the paper's BASEBALL dataset).

#include <cstdio>

#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/baseball_like.h"

int main() {
  using namespace gordian;

  std::printf("generating sports-league database...\n\n");
  std::vector<NamedTable> db = GenerateBaseballLike(/*scale=*/0.25,
                                                    /*seed=*/77);

  std::vector<ProfiledTable> profiled;
  for (const NamedTable& nt : db) {
    const Table& t = nt.table;
    KeyDiscoveryResult r = FindKeys(t);
    profiled.push_back({nt.name, &t, r.KeySets()});
    std::printf("%-16s %8lld rows  %2d attrs  %.3f s\n", nt.name.c_str(),
                static_cast<long long>(t.num_rows()), t.num_columns(),
                r.stats.TotalSeconds());
    if (r.no_keys) {
      std::printf("    (duplicate rows: no keys)\n");
      continue;
    }
    // Primary-key candidates, smallest first; GORDIAN returns them sorted by
    // ascending cardinality already.
    size_t shown = 0;
    for (const DiscoveredKey& k : r.keys) {
      std::printf("    key: %s\n", t.schema().Describe(k.attrs).c_str());
      if (++shown == 5 && r.keys.size() > 6) {
        std::printf("    ... and %zu more minimal keys\n",
                    r.keys.size() - shown);
        break;
      }
    }
  }

  // Step 2 (the paper's future-work extension): propose foreign keys from
  // inclusion dependencies into the discovered keys.
  std::printf("\nforeign-key candidates (strict inclusions):\n");
  ForeignKeyOptions fk_opts;
  fk_opts.min_distinct_values = 50;
  fk_opts.max_arity = 1;
  int shown_fk = 0;
  for (const ForeignKeyCandidate& fk : DiscoverForeignKeys(profiled, fk_opts)) {
    const ProfiledTable& from = profiled[fk.referencing_table];
    const ProfiledTable& to = profiled[fk.referenced_table];
    std::printf("  %s(%s) -> %s%s  [%lld distinct values]\n",
                from.name.c_str(),
                from.table->schema().name(fk.foreign_key_columns[0]).c_str(),
                to.name.c_str(),
                to.table->schema().Describe(fk.referenced_key).c_str(),
                static_cast<long long>(fk.distinct_fk_tuples));
    if (++shown_fk == 20) {
      std::printf("  ...\n");
      break;
    }
  }
  return 0;
}
