// profile_service_demo: the profiling service end to end. Generates a small
// fleet of tables, submits them with mixed priorities, polls progress while
// the pool works, then shows the fingerprint catalog paying off: a warm
// re-submission pass served from cache, persistence to a .grdc file, a
// reload, and a catalog-backed index recommendation that skips rediscovery.
//
// Usage:
//   ./build/examples/profile_service_demo [--tables=N] [--rows=N] [--threads=N]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "datagen/synthetic.h"
#include "engine/advisor.h"
#include "engine/row_store.h"
#include "service/key_catalog.h"
#include "service/metrics.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"

namespace {

std::vector<gordian::Table> MakeTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 24, 0.5, 400 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[3].cardinality = 64;
    spec.planted_keys.push_back({0, 3});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

const char* StateName(gordian::JobState s) {
  switch (s) {
    case gordian::JobState::kQueued: return "queued";
    case gordian::JobState::kRunning: return "running";
    case gordian::JobState::kSucceeded: return "succeeded";
    case gordian::JobState::kCancelled: return "cancelled";
    case gordian::JobState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  const int num_tables = static_cast<int>(flags.GetInt("tables", 8));
  const int64_t rows = flags.GetInt("rows", 5000);
  const int threads = flags.ThreadCount();

  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);
  gordian::KeyCatalog catalog;
  gordian::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.catalog = &catalog;
  gordian::ProfilingService service(service_options);
  std::printf("profiling %d tables (%lld rows each) on %d worker thread(s)\n\n",
              num_tables, static_cast<long long>(rows),
              service.num_threads());

  // Submit everything at once; later tables get higher priority to show the
  // scheduler picking them up first once a worker frees.
  std::vector<gordian::JobId> ids;
  for (int i = 0; i < num_tables; ++i) {
    gordian::ProfileJobOptions job;
    job.priority = i;  // table N-1 is the most urgent
    ids.push_back(service.SubmitTable("table" + std::to_string(i),
                                      &tables[i], job));
  }
  std::printf("queue after submission: depth=%lld running=%lld\n",
              static_cast<long long>(service.Metrics().queue_depth),
              static_cast<long long>(service.Metrics().running_jobs));

  // Cold pass: wait for each job and report.
  for (int i = 0; i < num_tables; ++i) {
    gordian::ProfileOutcome out = service.Wait(ids[i]);
    std::printf("  %-8s [%s, prio %d] %zu key(s) in %.3f s, fp=%016llx\n",
                out.table_name.c_str(), StateName(out.info.state),
                out.info.priority, out.result.keys.size(),
                out.info.latency_seconds,
                static_cast<unsigned long long>(out.fingerprint));
  }

  // Warm pass: identical tables, so every job is a catalog hit.
  std::printf("\nre-submitting all %d tables (unchanged)...\n", num_tables);
  std::vector<gordian::JobId> warm;
  for (int i = 0; i < num_tables; ++i) {
    warm.push_back(
        service.SubmitTable("table" + std::to_string(i), &tables[i]));
  }
  int hits = 0;
  for (gordian::JobId id : warm) {
    if (service.Wait(id).cache_hit) ++hits;
  }
  std::printf("cache hits: %d/%d\n\n", hits, num_tables);
  std::printf("%s\n", FormatServiceMetrics(service.Metrics()).c_str());

  // Persist the catalog, reload it, and drive the index advisor from it —
  // no rediscovery for a table whose fingerprint is already known.
  const std::string path = "profile_service_demo.grdc";
  gordian::Status s = gordian::WriteCatalogFile(catalog, path);
  if (!s.ok()) {
    std::fprintf(stderr, "catalog write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  gordian::KeyCatalog reloaded;
  s = gordian::ReadCatalogFile(path, &reloaded);
  if (!s.ok()) {
    std::fprintf(stderr, "catalog read failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("catalog persisted to %s and reloaded: %lld entries\n",
              path.c_str(), static_cast<long long>(reloaded.size()));

  gordian::RowStore store(tables[0]);
  gordian::Planner planner =
      gordian::BuildRecommendedIndexes(tables[0], store, &reloaded);
  std::printf("advisor (catalog-backed): %zu index(es) recommended for "
              "table0 without re-running discovery\n",
              planner.indexes().size());
  return 0;
}
