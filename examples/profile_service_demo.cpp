// profile_service_demo: the profiling service end to end. Generates a small
// fleet of tables, submits them with mixed priorities, polls progress while
// the pool works, then shows the fingerprint catalog paying off: a warm
// re-submission pass served from cache, persistence to a .grdc file, a
// reload, and a catalog-backed index recommendation that skips rediscovery.
//
// Usage:
//   ./build/examples/profile_service_demo [--tables=N] [--rows=N] [--threads=N]
//
// Distributed modes (the same binary is every role of the src/net fleet;
// the multi-process integration test spawns it as its workers and router):
//
//   --serve --shards=a-b [--port=N] [--catalog-root=DIR] [--port-file=PATH]
//       Run a shard-owner worker daemon until SIGTERM/SIGINT.
//   --route --workers=host:port/a-b,host:port/a-b [--port=N]
//           [--port-file=PATH]
//       Run the routing front-end over an already-started worker fleet.
//   --connect=host:port [--tables=N] [--rows=N]
//       Profile the demo tables through a remote worker or router.
//
// --port-file publishes the bound port by atomic rename, so a parent
// process can poll for it without racing a partially written file.

#include <csignal>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "common/flags.h"
#include "datagen/synthetic.h"
#include "engine/advisor.h"
#include "engine/row_store.h"
#include "net/client.h"
#include "net/router.h"
#include "net/worker.h"
#include "common/fault_fs.h"
#include "service/key_catalog.h"
#include "service/metrics.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"

namespace {

std::vector<gordian::Table> MakeTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 24, 0.5, 400 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[3].cardinality = 64;
    spec.planted_keys.push_back({0, 3});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

const char* StateName(gordian::JobState s) {
  switch (s) {
    case gordian::JobState::kQueued: return "queued";
    case gordian::JobState::kRunning: return "running";
    case gordian::JobState::kSucceeded: return "succeeded";
    case gordian::JobState::kCancelled: return "cancelled";
    case gordian::JobState::kFailed: return "failed";
  }
  return "?";
}

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

void InstallStopHandlers() {
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
}

void SleepBriefly() {
  struct timespec ts = {0, 50 * 1000 * 1000};  // 50 ms
  nanosleep(&ts, nullptr);
}

// Publishes the bound port for a parent process: temp write + atomic
// rename, so a reader never sees a half-written number.
bool PublishPort(const std::string& path, int port) {
  gordian::FileSystem* fs = gordian::DefaultFileSystem();
  const std::string tmp = path + ".tmp";
  gordian::Status s = fs->WriteFile(tmp, std::to_string(port) + "\n");
  if (s.ok()) s = fs->Rename(tmp, path);
  if (!s.ok()) {
    std::fprintf(stderr, "port file failed: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

bool ParseHostPort(const std::string& text, std::string* host, int* port) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  *host = text.substr(0, colon);
  *port = std::atoi(text.c_str() + colon + 1);
  return *port > 0;
}

int RunServe(const gordian::Flags& flags) {
  gordian::WorkerOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.catalog_root = flags.GetString("catalog-root");
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  gordian::Status s = gordian::ParseShardRange(
      flags.GetString("shards", "0-15"), &options.shard_first,
      &options.shard_last);
  if (!s.ok()) {
    std::fprintf(stderr, "bad --shards: %s\n", s.ToString().c_str());
    return 1;
  }
  gordian::WorkerDaemon worker(options);
  s = worker.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "worker start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s serving shards %d-%d on port %d\n",
              worker.name().c_str(), worker.shard_first(),
              worker.shard_last(), worker.port());
  std::fflush(stdout);
  const std::string port_file = flags.GetString("port-file");
  if (!port_file.empty() && !PublishPort(port_file, worker.port())) return 1;
  InstallStopHandlers();
  while (!g_stop) SleepBriefly();
  worker.Stop();
  std::printf("%s drained and stopped\n", worker.name().c_str());
  return 0;
}

int RunRoute(const gordian::Flags& flags) {
  gordian::RouterOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.quota_tokens_per_second = flags.GetDouble("quota-rps", 0);
  options.quota_burst = flags.GetDouble("quota-burst", 16);

  // --workers=host:port/a-b,host:port/a-b — one spec per shard owner.
  std::string spec_text = flags.GetString("workers");
  while (!spec_text.empty()) {
    const size_t comma = spec_text.find(',');
    std::string one = spec_text.substr(0, comma);
    spec_text = comma == std::string::npos ? ""
                                           : spec_text.substr(comma + 1);
    const size_t slash = one.find('/');
    gordian::WorkerSpec spec;
    if (slash == std::string::npos ||
        !ParseHostPort(one.substr(0, slash), &spec.host, &spec.port) ||
        !gordian::ParseShardRange(one.substr(slash + 1), &spec.shard_first,
                                  &spec.shard_last)
             .ok()) {
      std::fprintf(stderr, "bad worker spec: %s\n", one.c_str());
      return 1;
    }
    options.workers.push_back(spec);
  }

  gordian::Router router(options);
  gordian::Status s = router.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("router on port %d over %zu worker(s)\n", router.port(),
              options.workers.size());
  std::fflush(stdout);
  const std::string port_file = flags.GetString("port-file");
  if (!port_file.empty() && !PublishPort(port_file, router.port())) return 1;
  InstallStopHandlers();
  while (!g_stop) SleepBriefly();
  router.Stop();
  std::printf("router stopped\n");
  return 0;
}

int RunConnect(const gordian::Flags& flags) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(flags.GetString("connect"), &host, &port)) {
    std::fprintf(stderr, "bad --connect, expected host:port\n");
    return 1;
  }
  const int num_tables = static_cast<int>(flags.GetInt("tables", 8));
  const int64_t rows = flags.GetInt("rows", 5000);
  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);

  gordian::ServiceMetrics metrics;
  gordian::ProfileClient client(host, port, &metrics);
  gordian::HealthInfo health;
  gordian::Status s = client.Health(&health);
  if (!s.ok()) {
    std::fprintf(stderr, "health probe failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%d (%s)\n", host.c_str(), port,
              health.role == gordian::HealthInfo::Role::kRouter
                  ? "router"
                  : "worker");

  // Cold pass, then an identical warm pass to show remote catalog hits.
  for (int pass = 0; pass < 2; ++pass) {
    std::printf("%s pass:\n", pass == 0 ? "cold" : "warm");
    int sheds = 0, retries = 0;
    for (int i = 0; i < num_tables; ++i) {
      gordian::RemoteOutcome outcome;
      s = client.Profile("table" + std::to_string(i), tables[i],
                         gordian::RemoteProfileOptions{}, &outcome);
      if (!s.ok()) {
        std::fprintf(stderr, "profile failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("  table%-3d %zu key(s)  served by %s%s%s\n", i,
                  outcome.result.keys.size(), outcome.served_by.c_str(),
                  outcome.cache_hit ? "  [catalog hit]" : "",
                  outcome.follower_hit ? " [follower]" : "");
      sheds += outcome.sheds;
      retries += outcome.transport_retries;
    }
    if (sheds > 0 || retries > 0) {
      std::printf("  (absorbed %d shed(s), %d transport retr%s)\n", sheds,
                  retries, retries == 1 ? "y" : "ies");
    }
  }
  gordian::ServiceMetrics::Snapshot m = metrics.Read();
  std::printf("rpcs out: %lld in: %lld (%lld bytes sent, %lld received)\n",
              static_cast<long long>(m.rpcs_out),
              static_cast<long long>(m.rpcs_in),
              static_cast<long long>(m.rpc_bytes_out),
              static_cast<long long>(m.rpc_bytes_in));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  if (flags.Has("serve")) return RunServe(flags);
  if (flags.Has("route")) return RunRoute(flags);
  if (flags.Has("connect")) return RunConnect(flags);
  const int num_tables = static_cast<int>(flags.GetInt("tables", 8));
  const int64_t rows = flags.GetInt("rows", 5000);
  const int threads = flags.ThreadCount();

  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);
  gordian::KeyCatalog catalog;
  gordian::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.catalog = &catalog;
  gordian::ProfilingService service(service_options);
  std::printf("profiling %d tables (%lld rows each) on %d worker thread(s)\n\n",
              num_tables, static_cast<long long>(rows),
              service.num_threads());

  // Submit everything at once; later tables get higher priority to show the
  // scheduler picking them up first once a worker frees.
  std::vector<gordian::JobId> ids;
  for (int i = 0; i < num_tables; ++i) {
    gordian::ProfileJobOptions job;
    job.priority = i;  // table N-1 is the most urgent
    ids.push_back(service.SubmitTable("table" + std::to_string(i),
                                      &tables[i], job));
  }
  std::printf("queue after submission: depth=%lld running=%lld\n",
              static_cast<long long>(service.Metrics().queue_depth),
              static_cast<long long>(service.Metrics().running_jobs));

  // Cold pass: wait for each job and report.
  for (int i = 0; i < num_tables; ++i) {
    gordian::ProfileOutcome out = service.Wait(ids[i]);
    std::printf("  %-8s [%s, prio %d] %zu key(s) in %.3f s, fp=%016llx\n",
                out.table_name.c_str(), StateName(out.info.state),
                out.info.priority, out.result.keys.size(),
                out.info.latency_seconds,
                static_cast<unsigned long long>(out.fingerprint));
  }

  // Warm pass: identical tables, so every job is a catalog hit.
  std::printf("\nre-submitting all %d tables (unchanged)...\n", num_tables);
  std::vector<gordian::JobId> warm;
  for (int i = 0; i < num_tables; ++i) {
    warm.push_back(
        service.SubmitTable("table" + std::to_string(i), &tables[i]));
  }
  int hits = 0;
  for (gordian::JobId id : warm) {
    if (service.Wait(id).cache_hit) ++hits;
  }
  std::printf("cache hits: %d/%d\n\n", hits, num_tables);
  std::printf("%s\n", FormatServiceMetrics(service.Metrics()).c_str());

  // Persist the catalog, reload it, and drive the index advisor from it —
  // no rediscovery for a table whose fingerprint is already known.
  const std::string path = "profile_service_demo.grdc";
  gordian::Status s = gordian::WriteCatalogFile(catalog, path);
  if (!s.ok()) {
    std::fprintf(stderr, "catalog write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  gordian::KeyCatalog reloaded;
  s = gordian::ReadCatalogFile(path, &reloaded);
  if (!s.ok()) {
    std::fprintf(stderr, "catalog read failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("catalog persisted to %s and reloaded: %lld entries\n",
              path.c_str(), static_cast<long long>(reloaded.size()));

  gordian::RowStore store(tables[0]);
  gordian::Planner planner =
      gordian::BuildRecommendedIndexes(tables[0], store, &reloaded);
  std::printf("advisor (catalog-backed): %zu index(es) recommended for "
              "table0 without re-running discovery\n",
              planner.indexes().size());
  return 0;
}
