// index_advisor_demo: the Section 4.4 workflow end to end. GORDIAN profiles
// a warehouse fact table (on a sample), its discovered keys become composite
// indexes, and a few representative queries run with and without them.

#include <algorithm>
#include <cstdio>

#include "common/stopwatch.h"
#include "core/gordian.h"
#include "datagen/tpch_lite.h"
#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/workload.h"

int main() {
  using namespace gordian;

  const int64_t kRows = 300000;
  std::printf("generating fact table (%lld rows x 17 columns)...\n",
              static_cast<long long>(kRows));
  Table fact = GenerateTpchFact(kRows, /*seed=*/2024);
  RowStore store(fact);

  // Discover candidate keys from a 10% sample, then keep the validated ones.
  Stopwatch watch;
  GordianOptions opts;
  opts.sample_rows = kRows / 10;
  KeyDiscoveryResult discovered = FindKeys(fact, opts);
  ValidateKeys(fact, &discovered);
  KeyDiscoveryResult strict;
  for (const DiscoveredKey& k : discovered.keys) {
    if (k.exact_strength >= 1.0) strict.keys.push_back(k);
  }
  std::printf("GORDIAN found %zu strict keys in %.2f s:\n",
              strict.keys.size(), watch.ElapsedSeconds());
  for (const DiscoveredKey& k : strict.keys) {
    std::printf("  %s\n", fact.schema().Describe(k.attrs).c_str());
  }

  std::printf("\nbuilding one composite index per key...\n");
  Planner planner = BuildRecommendedIndexes(fact, store, strict);

  std::printf("\nrunning 20 warehouse queries, scan vs recommended plan:\n");
  double total_scan = 0, total_plan = 0;
  for (const Query& q : MakeWarehouseWorkload(fact, /*seed=*/5)) {
    Stopwatch w1;
    QueryResult scan = ExecuteScan(fact, store, q);
    double scan_s = w1.ElapsedSeconds();

    PlanChoice plan = planner.Choose(fact, q);
    Stopwatch w2;
    QueryResult fast = Execute(fact, store, plan, q);
    double plan_s = w2.ElapsedSeconds();

    if (!(scan == fast)) {
      std::printf("  PLAN MISMATCH on %s!\n", q.label.c_str());
      return 1;
    }
    total_scan += scan_s;
    total_plan += plan_s;
    std::printf("  %-28s %-10s %8.2f ms -> %8.3f ms  (%5.1fx, %lld rows)\n",
                q.label.c_str(),
                plan.index == nullptr ? "scan"
                                      : (plan.covering ? "index-only" : "index"),
                scan_s * 1e3, plan_s * 1e3, scan_s / std::max(plan_s, 1e-9),
                static_cast<long long>(scan.rows_matched));
  }
  std::printf("\nworkload total: %.2f s without indexes, %.2f s with "
              "(%.1fx overall)\n",
              total_scan, total_plan, total_scan / std::max(total_plan, 1e-9));
  return 0;
}
