// profile_csv: a command-line data profiler. Loads a CSV file, runs GORDIAN
// (optionally on a sample), and reports the discovered keys with strength
// estimates — the workflow a DBA would run against an undocumented table.
//
// Usage:
//   ./build/examples/profile_csv [file.csv] [sample_rows]
//
// With no arguments a demo catalog CSV is generated into the working
// directory and profiled, so the example is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/gordian.h"
#include "core/strength.h"
#include "datagen/opic_like.h"
#include "table/csv.h"
#include "table/table.h"

namespace {

std::string EnsureDemoCsv() {
  const std::string path = "profile_demo.csv";
  gordian::Table demo = gordian::GenerateOpicLike(20000, 12, /*seed=*/99);
  gordian::Status s = gordian::WriteCsv(demo, gordian::CsvOptions{}, path);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write demo csv: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::printf("no input given; generated demo catalog %s (20000 rows)\n\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : EnsureDemoCsv();
  int64_t sample_rows = argc > 2 ? std::atoll(argv[2]) : 0;

  gordian::Table table;
  gordian::Status s = gordian::ReadCsv(path, gordian::CsvOptions{}, &table);
  if (!s.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("%s: %lld rows, %d columns\n", path.c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("  %-24s %lld distinct\n", table.schema().name(c).c_str(),
                static_cast<long long>(table.ColumnCardinality(c)));
  }

  gordian::GordianOptions options;
  options.sample_rows = sample_rows;
  gordian::KeyDiscoveryResult result = gordian::FindKeys(table, options);

  if (result.no_keys) {
    std::printf("\nThe file contains duplicate rows: NO attribute set is a "
                "key.\n");
    return 0;
  }
  if (result.sampled) {
    // Sample keys may be approximate; validate against the full file.
    gordian::ValidateKeys(table, &result);
    std::printf("\nprofiled a %lld-row sample; keys below are validated "
                "against the full file\n",
                static_cast<long long>(sample_rows));
  }

  std::printf("\ndiscovered keys (%zu):\n", result.keys.size());
  for (const gordian::DiscoveredKey& k : result.keys) {
    if (result.sampled) {
      const char* tag = k.exact_strength >= 1.0 ? "STRICT" : "approx";
      std::printf("  [%s] %-40s strength=%.4f (estimated >= %.4f)\n", tag,
                  table.schema().Describe(k.attrs).c_str(), k.exact_strength,
                  k.estimated_strength);
    } else {
      std::printf("  [STRICT] %s\n", table.schema().Describe(k.attrs).c_str());
    }
  }
  std::printf("\ndiscovery took %.3f s (build %.3f, find %.3f, convert %.3f)\n",
              result.stats.TotalSeconds(), result.stats.build_seconds,
              result.stats.find_seconds, result.stats.convert_seconds);
  return 0;
}
