// profile_csv: a command-line data profiler. Loads CSV files, runs GORDIAN
// (optionally on a sample), and reports the discovered keys with strength
// estimates — the workflow a DBA would run against an undocumented table.
//
// Usage:
//   ./build/examples/profile_csv [flags] [file.csv ...]
//     --sample=N         profile an N-row sample (0 = full table)
//     --timeout=S        wall-clock budget per file, in seconds
//     --threads=N        workers for multi-file runs (0 = one per hardware
//                        thread)
//     --memory_budget=M  spill encoded columns to disk once they exceed M
//                        megabytes of heap (0 = never spill)
//     --spill_dir=path   scratch directory for spilled columns (created if
//                        missing; defaults to gordian_spill/ in the working
//                        directory when --memory_budget is set)
//     --schema           treat the files as one schema: after per-table key
//                        discovery, emit cross-table foreign-key candidates
//                        and top FDs (SchemaProfiler; multi-file mode only)
//
// One file is profiled inline with a detailed report. Several files are
// profiled concurrently through the ProfilingService, one job per file —
// or, with --schema, loaded and handed to SchemaProfiler as a schema.
// With no arguments a demo catalog CSV is generated into the working
// directory and profiled, so the example is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_fs.h"
#include "common/flags.h"
#include "core/gordian.h"
#include "core/strength.h"
#include "datagen/opic_like.h"
#include "service/metrics.h"
#include "service/profiling_service.h"
#include "service/schema_profiler.h"
#include "table/csv.h"
#include "table/table.h"

namespace {

std::string EnsureDemoCsv() {
  const std::string path = "profile_demo.csv";
  gordian::Table demo = gordian::GenerateOpicLike(20000, 12, /*seed=*/99);
  gordian::Status s = gordian::WriteCsv(demo, gordian::CsvOptions{}, path);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write demo csv: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::printf("no input given; generated demo catalog %s (20000 rows)\n\n",
              path.c_str());
  return path;
}

int ProfileOneFile(const std::string& path,
                   const gordian::GordianOptions& options,
                   const gordian::SpillPolicy& spill) {
  gordian::Table table;
  gordian::Status s =
      gordian::ReadCsv(path, gordian::CsvOptions{}, spill, &table);
  if (!s.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("%s: %lld rows, %d columns", path.c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns());
  if (table.spilled_column_count() > 0) {
    std::printf(" (%d column(s) spilled to %s)", table.spilled_column_count(),
                spill.spill_dir.c_str());
  }
  std::printf("\n");
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("  %-24s %lld distinct\n", table.schema().name(c).c_str(),
                static_cast<long long>(table.ColumnCardinality(c)));
  }

  gordian::KeyDiscoveryResult result = gordian::FindKeys(table, options);

  if (result.no_keys) {
    std::printf("\nThe file contains duplicate rows: NO attribute set is a "
                "key.\n");
    return 0;
  }
  if (result.incomplete) {
    std::printf("\nsearch aborted (budget/timeout); no keys certified\n");
    return 0;
  }
  if (result.sampled) {
    // Sample keys may be approximate; validate against the full file.
    gordian::ValidateKeys(table, &result);
    std::printf("\nprofiled a %lld-row sample; keys below are validated "
                "against the full file\n",
                static_cast<long long>(options.sample_rows));
  }

  std::printf("\ndiscovered keys (%zu):\n", result.keys.size());
  for (const gordian::DiscoveredKey& k : result.keys) {
    if (result.sampled) {
      const char* tag = k.exact_strength >= 1.0 ? "STRICT" : "approx";
      std::printf("  [%s] %-40s strength=%.4f (estimated >= %.4f)\n", tag,
                  table.schema().Describe(k.attrs).c_str(), k.exact_strength,
                  k.estimated_strength);
    } else {
      std::printf("  [STRICT] %s\n", table.schema().Describe(k.attrs).c_str());
    }
  }
  std::printf("\ndiscovery took %.3f s (build %.3f, find %.3f, convert %.3f)\n",
              result.stats.TotalSeconds(), result.stats.build_seconds,
              result.stats.find_seconds, result.stats.convert_seconds);
  return 0;
}

int ProfileManyFiles(const std::vector<std::string>& paths,
                     const gordian::GordianOptions& options, int threads,
                     double timeout_seconds,
                     const gordian::SpillPolicy& spill) {
  gordian::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.spill_dir = spill.spill_dir;
  service_options.spill_memory_budget = spill.memory_budget_bytes;
  gordian::ProfilingService service(service_options);
  std::printf("profiling %zu files on %d worker thread(s)\n\n", paths.size(),
              service.num_threads());

  gordian::ProfileJobOptions job;
  job.gordian = options;
  job.timeout_seconds = timeout_seconds;
  std::vector<gordian::JobId> ids;
  for (const std::string& path : paths) {
    ids.push_back(service.SubmitCsv(path, path, gordian::CsvOptions{}, job));
  }

  int failures = 0;
  for (gordian::JobId id : ids) {
    gordian::ProfileOutcome out = service.Wait(id);
    if (out.info.state == gordian::JobState::kFailed) {
      std::printf("%-32s FAILED: %s\n", out.table_name.c_str(),
                  out.info.error.c_str());
      ++failures;
      continue;
    }
    if (out.result.incomplete) {
      std::printf("%-32s incomplete (budget/timeout) in %.3f s\n",
                  out.table_name.c_str(), out.info.latency_seconds);
      continue;
    }
    std::printf("%-32s %zu key(s) in %.3f s%s\n", out.table_name.c_str(),
                out.result.keys.size(), out.info.latency_seconds,
                out.result.no_keys ? " [duplicate rows: no keys]" : "");
  }

  std::printf("\n%s", FormatServiceMetrics(service.Metrics()).c_str());
  return failures == 0 ? 0 : 1;
}

std::string TableNameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

// --schema: the files are one schema. Tables are loaded up front (spill
// policy applies per file), then a single SchemaProfiler pass discovers
// keys, top FDs, and cross-table foreign-key candidates.
int ProfileSchemaFiles(const std::vector<std::string>& paths,
                       const gordian::GordianOptions& options, int threads,
                       const gordian::SpillPolicy& spill) {
  using namespace gordian;
  std::vector<std::unique_ptr<Table>> owned;
  std::vector<std::pair<std::string, const Table*>> tables;
  for (const std::string& path : paths) {
    auto table = std::make_unique<Table>();
    Status s = ReadCsv(path, CsvOptions{}, spill, table.get());
    if (!s.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    owned.push_back(std::move(table));
    tables.emplace_back(TableNameOf(path), owned.back().get());
  }

  ServiceOptions service_options;
  service_options.num_threads = threads;
  ProfilingService service(service_options);
  SchemaProfiler profiler(&service);
  SchemaProfileOptions schema_options;
  schema_options.job.gordian = options;
  SchemaReport report;
  (void)profiler.Profile(tables, schema_options, &report);

  for (const SchemaReport::TableEntry& e : report.tables) {
    std::printf("%-32s %8lld rows  %2d cols  %zu key(s)%s\n", e.name.c_str(),
                static_cast<long long>(e.table->num_rows()),
                e.table->num_columns(), e.result.keys.size(),
                e.result.no_keys ? " [duplicate rows: no keys]" : "");
    for (size_t f = 0; f < e.fds.size() && f < 3; ++f) {
      std::printf("    fd: %s -> %s  (redundancy %.3f)\n",
                  e.table->schema().Describe(e.fds[f].lhs).c_str(),
                  e.table->schema().name(e.fds[f].rhs).c_str(),
                  e.fds[f].redundancy);
    }
  }
  std::printf("\n%zu foreign-key candidate(s):\n", report.foreign_keys.size());
  for (const ForeignKeyCandidate& fk : report.foreign_keys) {
    const auto& from = report.tables[fk.referencing_table];
    const auto& to = report.tables[fk.referenced_table];
    std::string cols;
    for (size_t i = 0; i < fk.foreign_key_columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += from.table->schema().name(fk.foreign_key_columns[i]);
    }
    std::printf("  %s(%s) -> %s%s  coverage=%.3f\n", from.name.c_str(),
                cols.c_str(), to.name.c_str(),
                to.table->schema().Describe(fk.referenced_key).c_str(),
                fk.coverage);
  }
  std::printf("\nstage timings: keys %.3fs  fds %.3fs  fks %.3fs\n",
              report.key_seconds, report.fd_seconds, report.fk_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  std::vector<std::string> paths = flags.positional();
  // "--schema file.csv" (no "="): the parser cannot tell a boolean switch
  // from a value flag and consumes the file as the switch's value; reclaim
  // it as the leading path.
  const bool schema_mode = flags.GetBool("schema", false);
  const std::string schema_value = flags.GetString("schema");
  if (schema_mode && schema_value != "true" && schema_value != "1") {
    paths.insert(paths.begin(), schema_value);
  }
  if (paths.empty()) paths.push_back(EnsureDemoCsv());

  gordian::GordianOptions options;
  options.sample_rows = flags.GetInt("sample", 0);
  const double timeout_seconds = flags.GetDouble("timeout", 0);
  options.time_budget_seconds = timeout_seconds;

  gordian::SpillPolicy spill;
  spill.memory_budget_bytes = flags.GetInt("memory_budget", 0) * (1LL << 20);
  if (spill.memory_budget_bytes > 0) {
    spill.spill_dir = flags.GetString("spill_dir", "gordian_spill");
    gordian::Status s = gordian::DefaultFileSystem()->CreateDir(spill.spill_dir);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot create spill dir %s: %s\n",
                   spill.spill_dir.c_str(), s.ToString().c_str());
      return 1;
    }
  }

  if (flags.GetBool("schema", false)) {
    return ProfileSchemaFiles(paths, options, flags.ThreadCount(), spill);
  }
  if (paths.size() == 1) {
    return ProfileOneFile(paths[0], options, spill);
  }
  return ProfileManyFiles(paths, options, flags.ThreadCount(),
                          timeout_seconds, spill);
}
