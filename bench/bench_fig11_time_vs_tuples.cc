// Regenerates Figure 11: processing time vs. number of tuples for GORDIAN
// (all attributes) against the three brute-force variants. The paper's
// x-axis spans 10k to 1M tuples; brute-force-over-all-attributes is given a
// time budget so exponential configurations terminate (capped points are
// marked ">").

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/opic_like.h"

namespace gordian {
namespace {

constexpr double kBudgetSeconds = 45.0;

std::string Capped(const BruteForceResult& r) {
  std::string s = bench::FormatSeconds(r.seconds);
  return r.truncated ? ">" + s : s;
}

void Run() {
  bench::Banner("Time vs #Tuples", "Figure 11");
  std::printf("Dataset: OPIC-like catalog table, 12 attributes.\n\n");

  const int kAttrs = 12;
  bench::SeriesPrinter table({"#Tuples", "GORDIAN all-attrs (s)",
                              "BruteForce all (s)", "BruteForce <=4 (s)",
                              "BruteForce single (s)"});

  for (int64_t tuples : {10000, 30000, 100000, 300000, 1000000}) {
    Table t = GenerateOpicLike(tuples, kAttrs, /*seed=*/46 + tuples);

    KeyDiscoveryResult g = FindKeys(t);

    BruteForceOptions all;
    all.time_budget_seconds = kBudgetSeconds;
    BruteForceResult bf_all = BruteForceFindKeys(t, all);

    BruteForceOptions up4 = all;
    up4.max_arity = 4;
    BruteForceResult bf_up4 = BruteForceFindKeys(t, up4);

    BruteForceOptions single = all;
    single.max_arity = 1;
    BruteForceResult bf_single = BruteForceFindKeys(t, single);

    table.AddRow({std::to_string(tuples),
                  bench::FormatSeconds(g.stats.TotalSeconds()),
                  Capped(bf_all), Capped(bf_up4), Capped(bf_single)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): GORDIAN tracks the single-attribute "
      "brute force\nwhile finding ALL composite keys; exhaustive brute force "
      "is orders of\nmagnitude slower and grows fastest.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
