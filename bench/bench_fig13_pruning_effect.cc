// Regenerates Figure 13: the effect of GORDIAN's pruning methods. The same
// attribute sweep as Figure 12 is run with all prunings enabled and with
// all prunings disabled, plus per-pruning ablations that the paper's
// design discussion motivates.

#include <cstdio>

#include "bench/harness.h"
#include "core/gordian.h"
#include "datagen/opic_like.h"

namespace gordian {
namespace {

double RunConfig(const Table& t, bool singleton, bool futility,
                 bool single_entity) {
  GordianOptions o;
  o.singleton_pruning = singleton;
  o.futility_pruning = futility;
  o.single_entity_pruning = single_entity;
  return FindKeys(t, o).stats.TotalSeconds();
}

void Run() {
  bench::Banner("Pruning effect", "Figure 13");
  const int64_t kRows = 20000;
  std::printf("Dataset: OPIC-like catalog table, %lld rows.\n\n",
              static_cast<long long>(kRows));

  Table wide = GenerateOpicLike(kRows, 35, /*seed=*/13001);

  bench::SeriesPrinter table({"#Attributes", "w/ pruning (s)",
                              "no pruning (s)", "only singleton (s)",
                              "only futility (s)"});
  for (int attrs = 5; attrs <= 35; attrs += 5) {
    Table t = wide.ProjectColumns(attrs);
    double with = RunConfig(t, true, true, true);
    double none = RunConfig(t, false, false, false);
    double only_singleton = RunConfig(t, true, false, true);
    double only_futility = RunConfig(t, false, true, false);
    table.AddRow({std::to_string(attrs), bench::FormatSeconds(with),
                  bench::FormatSeconds(none),
                  bench::FormatSeconds(only_singleton),
                  bench::FormatSeconds(only_futility)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): singleton + futility pruning together\n"
      "speed up processing by orders of magnitude, with the gap widening\n"
      "as attributes are added.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
