// Regenerates Figure 15: the ratio of false keys (strength < 80%) to true
// (strict) keys discovered from samples of varying size, for all three
// datasets (Section 4.3's quality comparison).

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "core/gordian.h"
#include "datagen/datasets.h"

namespace gordian {
namespace {

constexpr double kFalseKeyThreshold = 0.8;

// Aggregated over the dataset's non-trivial tables: #keys with exact
// strength < 0.8 divided by #true keys (strength == 1).
double FalseKeyRatio(const Dataset& d, double fraction) {
  int64_t false_keys = 0, true_keys = 0;
  for (const NamedTable& nt : d.tables) {
    const Table& t = nt.table;
    if (t.num_rows() < 20000) continue;
    GordianOptions o;
    o.sample_rows = std::max<int64_t>(
        1, static_cast<int64_t>(t.num_rows() * fraction));
    o.sample_seed = 15000 + static_cast<uint64_t>(fraction * 1e4);
    KeyDiscoveryResult r = FindKeys(t, o);
    if (r.no_keys) continue;
    ValidateKeys(t, &r);
    for (const DiscoveredKey& k : r.keys) {
      if (k.exact_strength >= 1.0) {
        ++true_keys;
      } else if (k.exact_strength < kFalseKeyThreshold) {
        ++false_keys;
      }
    }
  }
  if (true_keys == 0) return 0.0;
  return static_cast<double>(false_keys) / static_cast<double>(true_keys);
}

void Run() {
  bench::Banner("False-key ratio vs sample size", "Figure 15");
  std::printf("False key: discovered from the sample with exact strength "
              "< %.0f%% on the full data.\n\n",
              kFalseKeyThreshold * 100);

  auto datasets = MakeAllDatasets(/*scale=*/2.0, /*seed=*/150);

  bench::SeriesPrinter table({"Sample Size (%)", "TPC-H", "OPICM",
                              "BASEBALL"});
  for (double pct : {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}) {
    std::vector<std::string> row = {bench::FormatRatio(pct)};
    for (const Dataset& d : datasets) {
      row.push_back(bench::FormatRatio(FalseKeyRatio(d, pct / 100.0)));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the false-key ratio falls quickly with\n"
      "sample size and is acceptable (< ~2) even at fairly small samples.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
