#ifndef GORDIAN_BENCH_HARNESS_H_
#define GORDIAN_BENCH_HARNESS_H_

#include <cstdio>
#include <string>
#include <vector>

namespace gordian {
namespace bench {

// Fixed-width table printer for the experiment harnesses: every bench binary
// prints the rows/series of the paper table or figure it regenerates.
class SeriesPrinter {
 public:
  explicit SeriesPrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i], '-');
      if (i + 1 < widths.size()) sep += "-+-";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatSeconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

inline std::string FormatMB(int64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / 1e6);
  return buf;
}

inline std::string FormatRatio(double r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", r);
  return buf;
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s)\n\n", title.c_str(),
              paper_ref.c_str());
}

}  // namespace bench
}  // namespace gordian

#endif  // GORDIAN_BENCH_HARNESS_H_
