// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own figures:
//  1. the attribute-ordering heuristic of Section 3.2.1 (the paper claims
//     performance is "relatively insensitive" to the representation, with
//     cardinality-descending as the suggested heuristic);
//  2. sorted vs. Algorithm-2-verbatim (insertion) tree construction;
//  3. per-pruning contribution on a fixed workload (complementing the
//     Figure 13 sweep).

#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "core/prefix_tree.h"
#include "datagen/baseball_like.h"
#include "datagen/opic_like.h"
#include "datagen/tpch_lite.h"

namespace gordian {
namespace {

double TimeFindKeys(const Table& t, const GordianOptions& o) {
  Stopwatch w;
  KeyDiscoveryResult r = FindKeys(t, o);
  (void)r;
  return w.ElapsedSeconds();
}

void OrderingAblation() {
  bench::Banner("Attribute-ordering heuristic", "Section 3.2.1 ablation");
  struct Workload {
    const char* name;
    Table table;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"OPIC-like 50k x 30", GenerateOpicLike(50000, 30, 181)});
  workloads.push_back({"fact 100k x 17", GenerateTpchFact(100000, 182)});
  {
    auto db = GenerateBaseballLike(1.0, 183);
    for (NamedTable& nt : db) {
      if (nt.name == "batting") {
        workloads.push_back({"batting 24k x 16", std::move(nt.table)});
      }
    }
  }

  bench::SeriesPrinter table({"Workload", "schema order (s)",
                              "cardinality desc (s)", "cardinality asc (s)",
                              "random (s)"});
  for (const Workload& w : workloads) {
    std::vector<std::string> row = {w.name};
    for (auto order : {GordianOptions::AttributeOrder::kSchema,
                       GordianOptions::AttributeOrder::kCardinalityDesc,
                       GordianOptions::AttributeOrder::kCardinalityAsc,
                       GordianOptions::AttributeOrder::kRandom}) {
      GordianOptions o;
      o.attribute_order = order;
      o.order_seed = 17;
      row.push_back(bench::FormatSeconds(TimeFindKeys(w.table, o)));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

void BuildModeAblation() {
  bench::Banner("Prefix-tree construction", "sorted vs Algorithm 2 verbatim");
  bench::SeriesPrinter table(
      {"Rows", "sorted build (s)", "insertion build (s)"});
  for (int64_t rows : {10000, 50000, 200000}) {
    Table t = GenerateOpicLike(rows, 20, 184 + rows);
    std::vector<int> order(t.num_columns());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    Stopwatch w1;
    PrefixTree sorted =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
    double s1 = w1.ElapsedSeconds();
    Stopwatch w2;
    PrefixTree inserted =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kInsertion);
    double s2 = w2.ElapsedSeconds();
    table.AddRow({std::to_string(rows), bench::FormatSeconds(s1),
                  bench::FormatSeconds(s2)});
  }
  table.Print();
  std::printf("\n");
}

void PruningContribution() {
  bench::Banner("Per-pruning contribution", "Section 3.4 ablation");
  Table t = GenerateOpicLike(30000, 30, 185);
  struct Config {
    const char* name;
    bool singleton, futility, single_entity;
  };
  const Config configs[] = {
      {"all prunings", true, true, true},
      {"- singleton", false, true, true},
      {"- futility", true, false, true},
      {"- single-entity", true, true, false},
      {"none", false, false, false},
  };
  bench::SeriesPrinter table({"Configuration", "time (s)", "nodes visited",
                              "merges"});
  for (const Config& c : configs) {
    GordianOptions o;
    o.singleton_pruning = c.singleton;
    o.futility_pruning = c.futility;
    o.single_entity_pruning = c.single_entity;
    Stopwatch w;
    KeyDiscoveryResult r = FindKeys(t, o);
    table.AddRow({c.name, bench::FormatSeconds(w.ElapsedSeconds()),
                  std::to_string(r.stats.nodes_visited),
                  std::to_string(r.stats.merges_performed)});
  }
  table.Print();
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::OrderingAblation();
  gordian::BuildModeAblation();
  gordian::PruningContribution();
  return 0;
}
