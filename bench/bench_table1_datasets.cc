// Regenerates the paper's Table 1 (dataset characteristics) for the three
// synthetic stand-in datasets, and additionally reports the keys GORDIAN
// finds per dataset as a sanity overview.

#include <cstdio>

#include "bench/harness.h"
#include "core/gordian.h"
#include "datagen/datasets.h"

namespace gordian {
namespace {

void Run() {
  bench::Banner("Dataset characteristics", "Table 1");

  auto datasets = MakeAllDatasets(/*scale=*/1.0, /*seed=*/2006);

  bench::SeriesPrinter table({"Dataset", "Number of Tables",
                              "Average #Attributes", "Maximum #Attributes",
                              "# Tuples (Entities)"});
  for (const Dataset& d : datasets) {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f", d.AverageAttributes());
    table.AddRow({d.name, std::to_string(d.num_tables()), avg,
                  std::to_string(d.MaxAttributes()),
                  std::to_string(d.TotalTuples())});
  }
  table.Print();

  std::printf(
      "\nPer-table key discovery summary (GORDIAN, full data, defaults):\n\n");
  bench::SeriesPrinter keys({"Dataset", "Table", "Rows", "Attrs", "Keys",
                             "Non-keys", "Time (s)"});
  for (const Dataset& d : datasets) {
    for (const NamedTable& t : d.tables) {
      KeyDiscoveryResult r = FindKeys(t.table);
      keys.AddRow({d.name, t.name, std::to_string(t.table.num_rows()),
                   std::to_string(t.table.num_columns()),
                   r.no_keys ? "none" : std::to_string(r.keys.size()),
                   std::to_string(r.non_keys.size()),
                   bench::FormatSeconds(r.stats.TotalSeconds())});
    }
  }
  keys.Print();
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
