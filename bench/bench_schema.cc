// bench_schema: schema-wide discovery over the two multi-table generators
// with known referential structure — tpch_lite and baseball_like. Measures
// (1) FK verification wall time, dictionary-first vs the legacy
// value-materializing path, (2) whether the two paths produce byte-identical
// candidate lists, and (3) precision/recall of the discovered foreign keys
// against the generators' built-in ground truth. Results land in
// BENCH_schema.json (overridable via GORDIAN_BENCH_SCHEMA_JSON).
//
// Usage: bench_schema [--tpch_scale=0.01] [--baseball_scale=0.25]
//                     [--threads=N] [--repeats=3]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/baseball_like.h"
#include "datagen/tpch_lite.h"
#include "service/schema_profiler.h"

namespace {

using gordian::bench::FormatRatio;
using gordian::bench::FormatSeconds;
using gordian::bench::SeriesPrinter;

struct GroundTruthEval {
  int truth_total = 0;
  int truth_found = 0;   // ground-truth FKs present in the candidates
  int candidates = 0;
  int candidates_true = 0;  // candidates that match a ground-truth FK
  double precision() const {
    return candidates == 0 ? 0.0
                           : static_cast<double>(candidates_true) / candidates;
  }
  double recall() const {
    return truth_total == 0 ? 0.0
                            : static_cast<double>(truth_found) / truth_total;
  }
};

// Name-based match: candidate (referencing table, columns) -> (referenced
// table, key columns) equals a ground-truth entry. Both sides are compared
// position-wise after resolving candidate column ids to names.
bool Matches(const gordian::SchemaGroundTruthFk& truth,
             const gordian::ForeignKeyCandidate& fk,
             const std::vector<gordian::ProfiledTable>& tables) {
  const gordian::ProfiledTable& from = tables[fk.referencing_table];
  const gordian::ProfiledTable& to = tables[fk.referenced_table];
  if (from.name != truth.referencing_table) return false;
  if (to.name != truth.referenced_table) return false;
  if (fk.foreign_key_columns.size() != truth.foreign_key_columns.size()) {
    return false;
  }
  std::vector<int> kcols;
  fk.referenced_key.ForEach([&](int a) { kcols.push_back(a); });
  if (kcols.size() != truth.referenced_key_columns.size()) return false;
  for (size_t i = 0; i < kcols.size(); ++i) {
    if (from.table->schema().name(fk.foreign_key_columns[i]) !=
        truth.foreign_key_columns[i]) {
      return false;
    }
    if (to.table->schema().name(kcols[i]) != truth.referenced_key_columns[i]) {
      return false;
    }
  }
  return true;
}

GroundTruthEval Evaluate(const std::vector<gordian::SchemaGroundTruthFk>& truth,
                         const std::vector<gordian::ForeignKeyCandidate>& found,
                         const std::vector<gordian::ProfiledTable>& tables) {
  GroundTruthEval eval;
  eval.truth_total = static_cast<int>(truth.size());
  eval.candidates = static_cast<int>(found.size());
  for (const gordian::SchemaGroundTruthFk& t : truth) {
    for (const gordian::ForeignKeyCandidate& fk : found) {
      if (Matches(t, fk, tables)) {
        ++eval.truth_found;
        break;
      }
    }
  }
  for (const gordian::ForeignKeyCandidate& fk : found) {
    for (const gordian::SchemaGroundTruthFk& t : truth) {
      if (Matches(t, fk, tables)) {
        ++eval.candidates_true;
        break;
      }
    }
  }
  return eval;
}

// Serialization for the byte-equality check between the two paths.
std::string CandidatesToString(
    const std::vector<gordian::ForeignKeyCandidate>& candidates) {
  std::string out;
  char buf[160];
  for (const gordian::ForeignKeyCandidate& fk : candidates) {
    std::string cols;
    for (int c : fk.foreign_key_columns) cols += std::to_string(c) + ",";
    std::snprintf(buf, sizeof(buf), "%d[%s]->%d%s cov=%.12f ref=%.12f n=%lld\n",
                  fk.referencing_table, cols.c_str(), fk.referenced_table,
                  fk.referenced_key.ToString().c_str(), fk.coverage,
                  fk.referenced_coverage,
                  static_cast<long long>(fk.distinct_fk_tuples));
    out += buf;
  }
  return out;
}

struct DatasetResult {
  std::string name;
  int tables = 0;
  int64_t total_rows = 0;
  double key_seconds = 0;
  double dict_seconds = 0;
  double legacy_seconds = 0;
  bool identical = false;
  GroundTruthEval eval;
};

DatasetResult RunDataset(const std::string& name,
                         std::vector<gordian::NamedTable> db,
                         const std::vector<gordian::SchemaGroundTruthFk>& truth,
                         int repeats, int64_t min_distinct,
                         double min_ref_coverage) {
  using namespace gordian;
  DatasetResult out;
  out.name = name;
  out.tables = static_cast<int>(db.size());

  // Keys per table (serial FindKeys: this section times the FK paths, not
  // the key stage, and both paths must start from identical key sets).
  Stopwatch watch;
  std::vector<ProfiledTable> profiled;
  for (const NamedTable& nt : db) {
    out.total_rows += nt.table.num_rows();
    KeyDiscoveryResult r = FindKeys(nt.table);
    profiled.push_back({nt.name, &nt.table, r.KeySets()});
  }
  out.key_seconds = watch.ElapsedSeconds();

  ForeignKeyOptions options;
  options.min_distinct_values = min_distinct;
  options.max_arity = 1;  // the ground-truth FKs are all single-column
  options.min_referenced_coverage = min_ref_coverage;

  // Dictionary-first, best of `repeats`.
  std::vector<ForeignKeyCandidate> dict_candidates;
  out.dict_seconds = 1e30;
  for (int r = 0; r < repeats; ++r) {
    watch.Restart();
    options.dictionary_first = true;
    dict_candidates = DiscoverForeignKeys(profiled, options);
    out.dict_seconds = std::min(out.dict_seconds, watch.ElapsedSeconds());
  }

  // Legacy value-materializing oracle, best of `repeats`.
  std::vector<ForeignKeyCandidate> legacy_candidates;
  out.legacy_seconds = 1e30;
  for (int r = 0; r < repeats; ++r) {
    watch.Restart();
    options.dictionary_first = false;
    legacy_candidates = DiscoverForeignKeys(profiled, options);
    out.legacy_seconds = std::min(out.legacy_seconds, watch.ElapsedSeconds());
  }

  out.identical = CandidatesToString(dict_candidates) ==
                  CandidatesToString(legacy_candidates);
  out.eval = Evaluate(truth, dict_candidates, profiled);
  return out;
}

void PrintDataset(const DatasetResult& r) {
  SeriesPrinter p({"path", "fk seconds", "speedup", "identical"});
  p.AddRow({"legacy (value-materializing)", FormatSeconds(r.legacy_seconds),
            "1.00", "-"});
  p.AddRow({"dictionary-first", FormatSeconds(r.dict_seconds),
            FormatRatio(r.legacy_seconds / r.dict_seconds),
            r.identical ? "yes" : "NO"});
  p.Print();
  std::printf("  ground truth: %d/%d recovered (recall %.3f), "
              "%d/%d candidates genuine (precision %.3f)\n",
              r.eval.truth_found, r.eval.truth_total, r.eval.recall(),
              r.eval.candidates_true, r.eval.candidates, r.eval.precision());
}

std::string DatasetJson(const DatasetResult& r) {
  std::string out = "    {\n";
  out += "      \"dataset\": \"" + r.name + "\",\n";
  out += "      \"tables\": " + std::to_string(r.tables) + ",\n";
  out += "      \"total_rows\": " + std::to_string(r.total_rows) + ",\n";
  out += "      \"key_discovery_seconds\": " + std::to_string(r.key_seconds) +
         ",\n";
  out += "      \"fk_dictionary_first_seconds\": " +
         std::to_string(r.dict_seconds) + ",\n";
  out += "      \"fk_legacy_seconds\": " + std::to_string(r.legacy_seconds) +
         ",\n";
  out += "      \"dict_speedup\": " +
         std::to_string(r.legacy_seconds / r.dict_seconds) + ",\n";
  out += std::string("      \"paths_identical\": ") +
         (r.identical ? "true" : "false") + ",\n";
  out += "      \"ground_truth_fks\": " + std::to_string(r.eval.truth_total) +
         ",\n";
  out += "      \"recovered\": " + std::to_string(r.eval.truth_found) + ",\n";
  out += "      \"candidates\": " + std::to_string(r.eval.candidates) + ",\n";
  out +=
      "      \"precision\": " + std::to_string(r.eval.precision()) + ",\n";
  out += "      \"recall\": " + std::to_string(r.eval.recall()) + "\n";
  out += "    }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gordian;
  Flags flags(argc, argv);
  const double tpch_scale = flags.GetDouble("tpch_scale", 0.01);
  const double baseball_scale = flags.GetDouble("baseball_scale", 0.25);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  // Small reference tables (region: 5 rows) make a large min-distinct floor
  // a recall killer; 5 keeps the flag/status junk out while letting the
  // known small-domain FKs through. Likewise the referenced-coverage floor:
  // genuine FKs into a large key domain (hall_of_fame -> players touches
  // ~10% of players) die above ~0.1, so the default trades precision for
  // full recall and reports both honestly.
  const int64_t min_distinct = flags.GetInt("min_distinct", 5);
  const double min_ref_coverage = flags.GetDouble("min_ref_coverage", 0.05);

  bench::Banner("schema discovery",
                "FK verification: dictionary-first vs legacy, and "
                "precision/recall vs generator ground truth");

  std::printf("\ntpch_lite (scale %.3f):\n", tpch_scale);
  DatasetResult tpch =
      RunDataset("tpch_lite", GenerateTpchLite(tpch_scale, /*seed=*/31),
                 TpchLiteForeignKeys(), repeats, min_distinct, min_ref_coverage);
  PrintDataset(tpch);

  std::printf("\nbaseball_like (scale %.2f):\n", baseball_scale);
  DatasetResult baseball =
      RunDataset("baseball_like",
                 GenerateBaseballLike(baseball_scale, /*seed=*/77),
                 BaseballLikeForeignKeys(), repeats, min_distinct, min_ref_coverage);
  PrintDataset(baseball);

  const char* env_path = std::getenv("GORDIAN_BENCH_SCHEMA_JSON");
  const std::string path = (env_path != nullptr && *env_path != '\0')
                               ? env_path
                               : "BENCH_schema.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  os << "{\n  \"benchmark\": \"schema_discovery\",\n  \"datasets\": [\n"
     << DatasetJson(tpch) << ",\n"
     << DatasetJson(baseball) << "\n  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
