// Regenerates Figure 14: minimum strength of sample-discovered keys vs.
// sample size, for all three datasets. Strength is computed exactly against
// the full dataset (projection with duplicate elimination divided by tuple
// count), as in Section 4.3.

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "core/gordian.h"
#include "datagen/datasets.h"

namespace gordian {
namespace {

// Minimum exact strength over all keys discovered from a sample of the
// given fraction, minimized across the dataset's largest tables; also
// accumulates discovery time to check Section 4.3's claim that execution
// time is almost linear in the sample size.
double MinStrength(const Dataset& d, double fraction, double* seconds) {
  double min_strength = 1.0;
  for (const NamedTable& nt : d.tables) {
    const Table& t = nt.table;
    if (t.num_rows() < 20000) continue;  // keep % samples meaningfully sized
    GordianOptions o;
    o.sample_rows = std::max<int64_t>(
        1, static_cast<int64_t>(t.num_rows() * fraction));
    o.sample_seed = 14000 + static_cast<uint64_t>(fraction * 1e4);
    KeyDiscoveryResult r = FindKeys(t, o);
    *seconds += r.stats.TotalSeconds();
    if (r.no_keys) continue;
    ValidateKeys(t, &r);
    for (const DiscoveredKey& k : r.keys) {
      min_strength = std::min(min_strength, k.exact_strength);
    }
  }
  return min_strength;
}

void Run() {
  bench::Banner("Minimum strength vs sample size", "Figure 14");

  auto datasets = MakeAllDatasets(/*scale=*/2.0, /*seed=*/140);

  bench::SeriesPrinter table(
      {"Sample Size (%)", "TPC-H min strength (%)", "OPICM min strength (%)",
       "BASEBALL min strength (%)", "discovery time, all datasets (s)"});
  for (double pct : {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}) {
    std::vector<std::string> row = {bench::FormatRatio(pct)};
    double seconds = 0;
    for (const Dataset& d : datasets) {
      row.push_back(
          bench::FormatRatio(100.0 * MinStrength(d, pct / 100.0, &seconds)));
    }
    row.push_back(bench::FormatSeconds(seconds));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): even fairly small samples yield keys of\n"
      "high minimum strength, rising toward 100%% as the sample grows.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
