// bench_service_throughput: jobs/sec of the profiling service against plain
// sequential FindKeys, at 1 worker and at one worker per hardware thread,
// plus the warm-cache speedup when every table is already in the catalog,
// plus a repeated-table workload (catalog off, every job runs discovery)
// that isolates the TreeArtifactCache's tree-build amortization. Per-stage
// wall clock and tree-cache hit rate land in BENCH_pipeline.json
// (overridable via GORDIAN_BENCH_PIPELINE_JSON) for CI trend tracking.
//
// A networked section then pushes the same discovery work through the
// distributed front-end — router plus shard-owner workers, all in this
// process over loopback — at one and two workers, against the in-process
// service as the no-wire baseline. Throughput and the backpressure shed
// rate land in BENCH_service.json (overridable via
// GORDIAN_BENCH_SERVICE_JSON).
//
// Usage: bench_service_throughput [--tables=N] [--rows=N] [--repeats=N]
//                                 [--threads=N] [--net_clients=N]
//                                 [--net_tables=N] [--net_rows=N]
//                                 [--net_queue=N] [--net_connections=N]
//                                 [--net_worker_rpcs=N]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/router.h"
#include "net/worker.h"
#include "service/catalog_store.h"
#include "service/metrics.h"
#include "service/profiling_service.h"

namespace {

using gordian::bench::FormatRatio;
using gordian::bench::FormatSeconds;
using gordian::bench::SeriesPrinter;

std::vector<gordian::Table> MakeTables(int count, int64_t rows,
                                       uint64_t seed_base = 9000) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 24, 0.5, seed_base + i);
    spec.columns[0].cardinality = 512;
    spec.columns[3].cardinality = 64;
    spec.planted_keys.push_back({0, 3});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

double RunService(const std::vector<gordian::Table>& tables, int threads,
                  gordian::KeyCatalog* catalog) {
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.catalog = catalog;
  gordian::ProfilingService service(options);
  gordian::Stopwatch watch;
  std::vector<gordian::JobId> ids;
  for (size_t i = 0; i < tables.size(); ++i) {
    ids.push_back(
        service.SubmitTable("t" + std::to_string(i), &tables[i]));
  }
  for (gordian::JobId id : ids) (void)service.Wait(id);
  return watch.ElapsedSeconds();
}

// Tables for the amortization workload: heavy Zipf skew is the paper's
// Theorem 1 compression regime — tree build still walks every row's path,
// but the shared prefixes keep the tree (and hence the traversal) small, so
// build dominates per-job cost and reusing the built tree pays most.
std::vector<gordian::Table> MakeBuildBoundTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 32, 1.5, 7000 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[1].cardinality = 512;
    spec.planted_keys.push_back({0, 1});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

// The repeated-table workload: every table is profiled `repeats` times with
// the catalog bypassed, so each job runs real discovery and only the prefix
// tree is shareable. Submissions go in waves (one job per table per wave,
// WaitAll between) so the service's identical-job coalescing cannot serve a
// repeat without running it.
struct RepeatedRun {
  double seconds = 0;
  gordian::ServiceMetrics::Snapshot metrics;
};

RepeatedRun RunRepeatedTables(const std::vector<gordian::Table>& tables,
                              int threads, int repeats,
                              int64_t tree_cache_bytes) {
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.tree_cache_bytes = tree_cache_bytes;
  gordian::ProfilingService service(options);
  gordian::ProfileJobOptions job;
  job.use_catalog = false;
  gordian::Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < tables.size(); ++i) {
      (void)service.SubmitTable("t" + std::to_string(i), &tables[i], job);
    }
    service.WaitAll();
  }
  RepeatedRun run;
  run.seconds = watch.ElapsedSeconds();
  run.metrics = service.Metrics();
  return run;
}

void WritePipelineJson(int num_tables, int64_t rows, int repeats, int threads,
                       const RepeatedRun& cold, const RepeatedRun& warm) {
  const char* env_path = std::getenv("GORDIAN_BENCH_PIPELINE_JSON");
  const std::string path = (env_path != nullptr && *env_path != '\0')
                               ? env_path
                               : "BENCH_pipeline.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const int jobs = num_tables * repeats;
  auto stages = [&](const gordian::ServiceMetrics::Snapshot& m) {
    std::string out = "[\n";
    using Snap = gordian::ServiceMetrics::Snapshot;
    for (int i = 0; i < Snap::kNumStages; ++i) {
      if (m.stage_runs[i] == 0) continue;
      if (out.size() > 2) out += ",\n";
      out += "        {\"stage\": \"" + std::string(Snap::kStageNames[i]) +
             "\", \"wall_seconds\": " + std::to_string(m.stage_seconds[i]) +
             ", \"runs\": " + std::to_string(m.stage_runs[i]) + "}";
    }
    out += "\n      ]";
    return out;
  };
  os << "{\n"
     << "  \"benchmark\": \"pipeline_tree_cache\",\n"
     << "  \"tables\": " << num_tables << ",\n"
     << "  \"rows\": " << rows << ",\n"
     << "  \"repeats\": " << repeats << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"configurations\": [\n"
     << "    {\"name\": \"cold_no_tree_cache\",\n"
     << "     \"wall_seconds\": " << cold.seconds << ",\n"
     << "     \"jobs_per_second\": "
     << (cold.seconds > 0 ? jobs / cold.seconds : 0) << ",\n"
     << "     \"tree_cache_hit_rate\": " << cold.metrics.tree_cache_hit_rate()
     << ",\n"
     << "     \"stages\": " << stages(cold.metrics) << "},\n"
     << "    {\"name\": \"warm_tree_cache\",\n"
     << "     \"wall_seconds\": " << warm.seconds << ",\n"
     << "     \"jobs_per_second\": "
     << (warm.seconds > 0 ? jobs / warm.seconds : 0) << ",\n"
     << "     \"tree_cache_hit_rate\": " << warm.metrics.tree_cache_hit_rate()
     << ",\n"
     << "     \"stages\": " << stages(warm.metrics) << "}\n"
     << "  ],\n"
     << "  \"warm_speedup\": "
     << (warm.seconds > 0 ? cold.seconds / warm.seconds : 0) << "\n"
     << "}\n";
  std::cout << "wrote " << path << "\n";
}

// --- networked front-end: the same discovery work through the wire -------
//
// Each client thread owns a disjoint slice of tables (distinct seeds), so
// no two jobs are identical and neither job coalescing nor a catalog hit
// can serve one job from another: every job pays serialization, framing,
// routing, and a real discovery run. Admission caps default to the offered
// burst (see NetAdmission), so the shed rate reads as a health signal:
// near zero unless the workers genuinely cannot keep up, with sheds and
// the retries they drove both surfaced in BENCH_service.json.
struct NetRun {
  double seconds = 0;
  int64_t jobs = 0;
  int64_t sheds = 0;
  int64_t shed_retries = 0;
  int64_t transport_retries = 0;
  double shed_rate() const {
    return jobs + sheds > 0
               ? static_cast<double>(sheds) /
                     static_cast<double>(jobs + sheds)
               : 0;
  }
};

std::vector<std::vector<gordian::Table>> MakeClientSlices(int clients,
                                                          int per_client,
                                                          int64_t rows) {
  std::vector<std::vector<gordian::Table>> slices;
  for (int s = 0; s < clients; ++s) {
    slices.push_back(MakeTables(per_client, rows, 11000 + 100 * s));
  }
  return slices;
}

// The no-wire baseline: every slice submitted straight into an in-process
// service, same total job count and thread budget as the networked runs.
NetRun RunLocalBaseline(const std::vector<std::vector<gordian::Table>>& slices,
                        int threads) {
  gordian::KeyCatalog catalog;
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.catalog = &catalog;
  gordian::ProfilingService service(options);
  NetRun run;
  gordian::Stopwatch watch;
  std::vector<gordian::JobId> ids;
  for (size_t s = 0; s < slices.size(); ++s) {
    for (size_t i = 0; i < slices[s].size(); ++i) {
      ids.push_back(service.SubmitTable(
          "c" + std::to_string(s) + "-t" + std::to_string(i), &slices[s][i]));
      ++run.jobs;
    }
  }
  for (gordian::JobId id : ids) (void)service.Wait(id);
  run.seconds = watch.ElapsedSeconds();
  return run;
}

// Admission caps for the networked runs, settable from the command line so
// the same binary can measure both regimes: sized-to-the-burst (the
// default — every client's one in-flight job fits the router queue, sheds
// only on real overload) and deliberately tight (--net_queue=1 reproduces
// the old backpressure-dominated configuration).
struct NetAdmission {
  int per_worker_queue = 0;        // router queue depth per worker
  int per_worker_connections = 2;  // dispatcher connections per worker
  int worker_max_active_rpcs = 64; // worker-side concurrent-RPC cap
};

NetRun RunNetworked(const std::vector<std::vector<gordian::Table>>& slices,
                    int num_workers, int threads,
                    const NetAdmission& admission) {
  // Shard-owner workers over loopback, memory-only catalogs (persistence
  // is benched separately), the service's thread budget split across them.
  std::vector<std::unique_ptr<gordian::WorkerDaemon>> workers;
  gordian::RouterOptions router_options;
  const int span = gordian::KeyCatalog::kNumShards / num_workers;
  for (int w = 0; w < num_workers; ++w) {
    gordian::WorkerOptions wo;
    wo.shard_first = w * span;
    wo.shard_last = (w + 1 == num_workers)
                        ? gordian::KeyCatalog::kNumShards - 1
                        : (w + 1) * span - 1;
    wo.num_threads = std::max(1, threads / num_workers);
    wo.max_active_rpcs = admission.worker_max_active_rpcs;
    auto daemon = std::make_unique<gordian::WorkerDaemon>(wo);
    gordian::Status s = daemon->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "worker start failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    gordian::WorkerSpec spec;
    spec.port = daemon->port();
    spec.shard_first = wo.shard_first;
    spec.shard_last = wo.shard_last;
    router_options.workers.push_back(spec);
    workers.push_back(std::move(daemon));
  }
  // Short retry-after keeps the retry tax honest but small when the caps
  // do bind.
  router_options.per_worker_queue = admission.per_worker_queue;
  router_options.per_worker_connections = admission.per_worker_connections;
  router_options.retry_after_millis = 5;
  gordian::Router router(router_options);
  gordian::Status s = router.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  std::atomic<int64_t> jobs{0};
  std::atomic<int64_t> sheds{0};
  std::atomic<int64_t> shed_retries{0};
  std::atomic<int64_t> retries{0};
  gordian::Stopwatch watch;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < slices.size(); ++c) {
    clients.emplace_back([&, c] {
      gordian::ProfileClient client("127.0.0.1", router.port());
      gordian::RemoteProfileOptions options;
      options.client_id = "bench-" + std::to_string(c);
      options.max_attempts = 64;
      options.retry_base_millis = 2;
      for (size_t i = 0; i < slices[c].size(); ++i) {
        gordian::RemoteOutcome outcome;
        gordian::Status st = client.Profile(
            "c" + std::to_string(c) + "-t" + std::to_string(i), slices[c][i],
            options, &outcome);
        if (!st.ok()) {
          std::fprintf(stderr, "remote profile failed: %s\n",
                       st.ToString().c_str());
          std::exit(1);
        }
        jobs.fetch_add(1);
        sheds.fetch_add(outcome.sheds);
        shed_retries.fetch_add(outcome.shed_retries);
        retries.fetch_add(outcome.transport_retries);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  NetRun run;
  run.seconds = watch.ElapsedSeconds();
  run.jobs = jobs.load();
  run.sheds = sheds.load();
  run.shed_retries = shed_retries.load();
  run.transport_retries = retries.load();
  router.Stop();
  for (auto& w : workers) w->Stop();
  return run;
}

void WriteServiceJson(int clients, int per_client, int64_t rows, int threads,
                      const NetAdmission& admission, const NetRun& local,
                      const NetRun& one, const NetRun& two) {
  const char* env_path = std::getenv("GORDIAN_BENCH_SERVICE_JSON");
  const std::string path = (env_path != nullptr && *env_path != '\0')
                               ? env_path
                               : "BENCH_service.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  auto config = [&os](const char* name, const NetRun& r, bool last) {
    os << "    {\"name\": \"" << name << "\",\n"
       << "     \"wall_seconds\": " << r.seconds << ",\n"
       << "     \"jobs_per_second\": "
       << (r.seconds > 0 ? r.jobs / r.seconds : 0) << ",\n"
       << "     \"sheds\": " << r.sheds << ",\n"
       << "     \"shed_retries\": " << r.shed_retries << ",\n"
       << "     \"transport_retries\": " << r.transport_retries << ",\n"
       << "     \"shed_rate\": " << r.shed_rate() << "}"
       << (last ? "\n" : ",\n");
  };
  os << "{\n"
     << "  \"benchmark\": \"networked_service_throughput\",\n"
     << "  \"client_threads\": " << clients << ",\n"
     << "  \"tables_per_client\": " << per_client << ",\n"
     << "  \"rows\": " << rows << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"per_worker_queue\": " << admission.per_worker_queue << ",\n"
     << "  \"per_worker_connections\": " << admission.per_worker_connections
     << ",\n"
     << "  \"worker_max_active_rpcs\": " << admission.worker_max_active_rpcs
     << ",\n"
     << "  \"jobs\": " << local.jobs << ",\n"
     << "  \"configurations\": [\n";
  config("local_in_process", local, false);
  config("router_1_worker", one, false);
  config("router_2_workers", two, true);
  os << "  ],\n"
     << "  \"wire_overhead_1_worker\": "
     << (local.seconds > 0 ? one.seconds / local.seconds : 0) << ",\n"
     << "  \"two_worker_speedup_over_one\": "
     << (two.seconds > 0 ? one.seconds / two.seconds : 0) << "\n"
     << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  const int num_tables = static_cast<int>(flags.GetInt("tables", 24));
  const int64_t rows = flags.GetInt("rows", 4000);
  const int max_threads = flags.ThreadCount();

  gordian::bench::Banner(
      "profiling service throughput",
      "the service layer; jobs/sec vs sequential FindKeys");

  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);

  // Sequential baseline: plain FindKeys on the caller's thread.
  gordian::Stopwatch watch;
  for (const gordian::Table& t : tables) (void)gordian::FindKeys(t);
  const double seq_seconds = watch.ElapsedSeconds();

  // Cold service runs (fresh catalog each) at 1 and max_threads workers.
  gordian::KeyCatalog cold1;
  const double svc1_seconds = RunService(tables, 1, &cold1);
  gordian::KeyCatalog coldN;
  const double svcN_seconds = RunService(tables, max_threads, &coldN);

  // Warm run: catalog already holds every table, so each job is a hit.
  const double warm_seconds = RunService(tables, max_threads, &coldN);

  const double n = static_cast<double>(num_tables);
  SeriesPrinter printer(
      {"configuration", "seconds", "jobs/sec", "vs sequential"});
  printer.AddRow({"sequential FindKeys", FormatSeconds(seq_seconds),
                  FormatRatio(n / seq_seconds), "1.00"});
  printer.AddRow({"service, 1 thread", FormatSeconds(svc1_seconds),
                  FormatRatio(n / svc1_seconds),
                  FormatRatio(seq_seconds / svc1_seconds)});
  printer.AddRow({"service, " + std::to_string(max_threads) + " thread(s)",
                  FormatSeconds(svcN_seconds), FormatRatio(n / svcN_seconds),
                  FormatRatio(seq_seconds / svcN_seconds)});
  printer.AddRow({"service, warm cache", FormatSeconds(warm_seconds),
                  FormatRatio(n / warm_seconds),
                  FormatRatio(seq_seconds / warm_seconds)});
  printer.Print();

  std::printf("\n%d tables x %lld rows; warm-cache speedup over cold run: "
              "%.1fx\n",
              num_tables, static_cast<long long>(rows),
              svcN_seconds / warm_seconds);

  // Repeated-table workload: same tables profiled `repeats` times with the
  // catalog off, so every job pays traversal + conversion and only the
  // prefix-tree build can be amortized by the TreeArtifactCache.
  const int repeats = static_cast<int>(flags.GetInt("repeats", 8));
  const int64_t amort_rows = flags.GetInt("amort_rows", 80000);
  gordian::bench::Banner(
      "tree-build amortization",
      "repeated re-profiling (catalog off): TreeArtifactCache on vs off");
  std::vector<gordian::Table> amort_tables =
      MakeBuildBoundTables(num_tables, amort_rows);
  const RepeatedRun cold = RunRepeatedTables(amort_tables, max_threads,
                                             repeats, /*tree_cache_bytes=*/0);
  // Budget sized to the working set: all tables' trees must stay resident,
  // or the round-robin waves thrash the LRU (each wave evicts exactly the
  // tree the next wave needs, and the hit rate collapses to zero). An
  // entry's charge covers the mutable tree pool AND its frozen layout
  // (~52 MB at 80k rows since freeze-on-insert landed), so the default
  // budget is sized at ~4 GiB for the default 24 tables rather than the
  // old 1 GiB, which silently started thrashing once frozen bytes were
  // added to the accounting.
  const int64_t tree_cache_mb = flags.GetInt("tree_cache_mb", 4096);
  const RepeatedRun warm = RunRepeatedTables(amort_tables, max_threads,
                                             repeats,
                                             tree_cache_mb * (1LL << 20));

  const double jobs = static_cast<double>(num_tables) * repeats;
  SeriesPrinter rp({"configuration", "seconds", "jobs/sec", "tree hit rate",
                    "speedup"});
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%",
                cold.metrics.tree_cache_hit_rate() * 100);
  rp.AddRow({"tree cache off", FormatSeconds(cold.seconds),
             FormatRatio(jobs / cold.seconds), rate, "1.00"});
  std::snprintf(rate, sizeof(rate), "%.1f%%",
                warm.metrics.tree_cache_hit_rate() * 100);
  rp.AddRow({"tree cache on", FormatSeconds(warm.seconds),
             FormatRatio(jobs / warm.seconds), rate,
             FormatRatio(cold.seconds / warm.seconds)});
  rp.Print();

  std::printf("\nper-stage wall clock with the tree cache on:\n");
  using Snap = gordian::ServiceMetrics::Snapshot;
  for (int i = 0; i < Snap::kNumStages; ++i) {
    if (warm.metrics.stage_runs[i] == 0) continue;
    std::printf("  %-12s %8.3f s over %lld run(s)\n", Snap::kStageNames[i],
                warm.metrics.stage_seconds[i],
                static_cast<long long>(warm.metrics.stage_runs[i]));
  }

  WritePipelineJson(num_tables, amort_rows, repeats, max_threads, cold, warm);

  // Durable catalog flushes: cost of the first full snapshot (every shard
  // dirty), of an incremental flush after one shard changed, and of a warm
  // flush where the dirty bits skip all 16 shards and write zero bytes.
  gordian::bench::Banner(
      "catalog persistence",
      "per-shard flush cost: cold snapshot vs incremental vs no-op");
  {
    namespace stdfs = std::filesystem;
    const std::string dir =
        (stdfs::temp_directory_path() / "gordian_bench_catalog").string();
    std::error_code ec;
    stdfs::remove_all(dir, ec);

    gordian::CatalogStore store(dir, &coldN);  // coldN: one entry per table
    if (!store.Open().ok()) {
      std::fprintf(stderr, "cannot open catalog dir %s\n", dir.c_str());
      return 1;
    }
    auto timed_flush = [&store](gordian::FlushStats* stats) {
      gordian::Stopwatch w;
      (void)store.Flush(stats);
      return w.ElapsedSeconds();
    };
    gordian::FlushStats cold_stats, incr_stats, warm_stats;
    const double cold_flush = timed_flush(&cold_stats);
    // Dirty exactly one shard by re-storing one existing entry.
    for (int s = 0; s < gordian::KeyCatalog::kNumShards; ++s) {
      std::vector<gordian::CatalogEntry> entries = coldN.ShardSnapshot(s);
      if (entries.empty()) continue;
      (void)coldN.Put(entries[0].fingerprint, entries[0].table_name,
                      entries[0].num_columns, entries[0].result);
      break;
    }
    const double incr_flush = timed_flush(&incr_stats);
    const double warm_flush = timed_flush(&warm_stats);

    SeriesPrinter fp({"flush", "seconds", "shards written", "bytes"});
    auto flush_row = [&fp](const char* name, double seconds,
                           const gordian::FlushStats& s) {
      fp.AddRow({name, FormatSeconds(seconds),
                 std::to_string(s.shards_flushed),
                 std::to_string(s.bytes_written)});
    };
    flush_row("cold (all shards)", cold_flush, cold_stats);
    flush_row("incremental (1 dirty)", incr_flush, incr_stats);
    flush_row("warm (no-op)", warm_flush, warm_stats);
    fp.Print();
    std::printf("\ncatalog dir: %s (%d entries across %d shards)\n",
                dir.c_str(), static_cast<int>(coldN.size()),
                gordian::KeyCatalog::kNumShards);
    stdfs::remove_all(dir, ec);
  }

  // Networked front-end: identical discovery workload pushed through the
  // router + shard-owner workers over loopback, at one and two workers,
  // with the in-process service as the no-wire baseline.
  const int net_clients = static_cast<int>(flags.GetInt("net_clients", 6));
  const int net_tables = static_cast<int>(flags.GetInt("net_tables", 6));
  const int64_t net_rows = flags.GetInt("net_rows", 2000);
  // Each client keeps one job in flight, so a queue of net_clients admits
  // the whole burst even when one worker owns every shard; sheds then only
  // appear under real overload. --net_queue=1 reproduces the old
  // deliberately-tight regime where the shed rate itself was the subject.
  NetAdmission admission;
  admission.per_worker_queue =
      static_cast<int>(flags.GetInt("net_queue", net_clients));
  admission.per_worker_connections =
      static_cast<int>(flags.GetInt("net_connections", 2));
  admission.worker_max_active_rpcs =
      static_cast<int>(flags.GetInt("net_worker_rpcs", 64));
  gordian::bench::Banner(
      "networked front-end",
      "router + shard-owner workers over loopback vs in-process service");
  {
    std::vector<std::vector<gordian::Table>> slices =
        MakeClientSlices(net_clients, net_tables, net_rows);
    const NetRun local = RunLocalBaseline(slices, max_threads);
    const NetRun one =
        RunNetworked(slices, /*num_workers=*/1, max_threads, admission);
    const NetRun two =
        RunNetworked(slices, /*num_workers=*/2, max_threads, admission);

    SeriesPrinter np({"configuration", "seconds", "jobs/sec", "sheds",
                      "shed rate", "vs local"});
    char shed[32];
    auto net_row = [&](const char* name, const NetRun& r) {
      std::snprintf(shed, sizeof(shed), "%.1f%%", r.shed_rate() * 100);
      np.AddRow({name, FormatSeconds(r.seconds),
                 FormatRatio(r.jobs / r.seconds), std::to_string(r.sheds),
                 shed, FormatRatio(local.seconds / r.seconds)});
    };
    net_row("local in-process", local);
    net_row("router + 1 worker", one);
    net_row("router + 2 workers", two);
    np.Print();

    std::printf("\n%d client thread(s) x %d table(s) x %lld rows; "
                "wire overhead at 1 worker: %.2fx; "
                "2 workers vs 1: %.2fx\n",
                net_clients, net_tables, static_cast<long long>(net_rows),
                one.seconds / local.seconds, one.seconds / two.seconds);
    WriteServiceJson(net_clients, net_tables, net_rows, max_threads,
                     admission, local, one, two);
  }
  return 0;
}
