// bench_service_throughput: jobs/sec of the profiling service against plain
// sequential FindKeys, at 1 worker and at one worker per hardware thread,
// plus the warm-cache speedup when every table is already in the catalog,
// plus a repeated-table workload (catalog off, every job runs discovery)
// that isolates the TreeArtifactCache's tree-build amortization. Per-stage
// wall clock and tree-cache hit rate land in BENCH_pipeline.json
// (overridable via GORDIAN_BENCH_PIPELINE_JSON) for CI trend tracking.
//
// Usage: bench_service_throughput [--tables=N] [--rows=N] [--repeats=N]
//                                 [--threads=N]

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "service/catalog_store.h"
#include "service/metrics.h"
#include "service/profiling_service.h"

namespace {

using gordian::bench::FormatRatio;
using gordian::bench::FormatSeconds;
using gordian::bench::SeriesPrinter;

std::vector<gordian::Table> MakeTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 24, 0.5, 9000 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[3].cardinality = 64;
    spec.planted_keys.push_back({0, 3});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

double RunService(const std::vector<gordian::Table>& tables, int threads,
                  gordian::KeyCatalog* catalog) {
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.catalog = catalog;
  gordian::ProfilingService service(options);
  gordian::Stopwatch watch;
  std::vector<gordian::JobId> ids;
  for (size_t i = 0; i < tables.size(); ++i) {
    ids.push_back(
        service.SubmitTable("t" + std::to_string(i), &tables[i]));
  }
  for (gordian::JobId id : ids) (void)service.Wait(id);
  return watch.ElapsedSeconds();
}

// Tables for the amortization workload: heavy Zipf skew is the paper's
// Theorem 1 compression regime — tree build still walks every row's path,
// but the shared prefixes keep the tree (and hence the traversal) small, so
// build dominates per-job cost and reusing the built tree pays most.
std::vector<gordian::Table> MakeBuildBoundTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 32, 1.5, 7000 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[1].cardinality = 512;
    spec.planted_keys.push_back({0, 1});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

// The repeated-table workload: every table is profiled `repeats` times with
// the catalog bypassed, so each job runs real discovery and only the prefix
// tree is shareable. Submissions go in waves (one job per table per wave,
// WaitAll between) so the service's identical-job coalescing cannot serve a
// repeat without running it.
struct RepeatedRun {
  double seconds = 0;
  gordian::ServiceMetrics::Snapshot metrics;
};

RepeatedRun RunRepeatedTables(const std::vector<gordian::Table>& tables,
                              int threads, int repeats,
                              int64_t tree_cache_bytes) {
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.tree_cache_bytes = tree_cache_bytes;
  gordian::ProfilingService service(options);
  gordian::ProfileJobOptions job;
  job.use_catalog = false;
  gordian::Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < tables.size(); ++i) {
      (void)service.SubmitTable("t" + std::to_string(i), &tables[i], job);
    }
    service.WaitAll();
  }
  RepeatedRun run;
  run.seconds = watch.ElapsedSeconds();
  run.metrics = service.Metrics();
  return run;
}

void WritePipelineJson(int num_tables, int64_t rows, int repeats, int threads,
                       const RepeatedRun& cold, const RepeatedRun& warm) {
  const char* env_path = std::getenv("GORDIAN_BENCH_PIPELINE_JSON");
  const std::string path = (env_path != nullptr && *env_path != '\0')
                               ? env_path
                               : "BENCH_pipeline.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const int jobs = num_tables * repeats;
  auto stages = [&](const gordian::ServiceMetrics::Snapshot& m) {
    std::string out = "[\n";
    using Snap = gordian::ServiceMetrics::Snapshot;
    for (int i = 0; i < Snap::kNumStages; ++i) {
      if (m.stage_runs[i] == 0) continue;
      if (out.size() > 2) out += ",\n";
      out += "        {\"stage\": \"" + std::string(Snap::kStageNames[i]) +
             "\", \"wall_seconds\": " + std::to_string(m.stage_seconds[i]) +
             ", \"runs\": " + std::to_string(m.stage_runs[i]) + "}";
    }
    out += "\n      ]";
    return out;
  };
  os << "{\n"
     << "  \"benchmark\": \"pipeline_tree_cache\",\n"
     << "  \"tables\": " << num_tables << ",\n"
     << "  \"rows\": " << rows << ",\n"
     << "  \"repeats\": " << repeats << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"configurations\": [\n"
     << "    {\"name\": \"cold_no_tree_cache\",\n"
     << "     \"wall_seconds\": " << cold.seconds << ",\n"
     << "     \"jobs_per_second\": "
     << (cold.seconds > 0 ? jobs / cold.seconds : 0) << ",\n"
     << "     \"tree_cache_hit_rate\": " << cold.metrics.tree_cache_hit_rate()
     << ",\n"
     << "     \"stages\": " << stages(cold.metrics) << "},\n"
     << "    {\"name\": \"warm_tree_cache\",\n"
     << "     \"wall_seconds\": " << warm.seconds << ",\n"
     << "     \"jobs_per_second\": "
     << (warm.seconds > 0 ? jobs / warm.seconds : 0) << ",\n"
     << "     \"tree_cache_hit_rate\": " << warm.metrics.tree_cache_hit_rate()
     << ",\n"
     << "     \"stages\": " << stages(warm.metrics) << "}\n"
     << "  ],\n"
     << "  \"warm_speedup\": "
     << (warm.seconds > 0 ? cold.seconds / warm.seconds : 0) << "\n"
     << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  const int num_tables = static_cast<int>(flags.GetInt("tables", 24));
  const int64_t rows = flags.GetInt("rows", 4000);
  const int max_threads = flags.ThreadCount();

  gordian::bench::Banner(
      "profiling service throughput",
      "the service layer; jobs/sec vs sequential FindKeys");

  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);

  // Sequential baseline: plain FindKeys on the caller's thread.
  gordian::Stopwatch watch;
  for (const gordian::Table& t : tables) (void)gordian::FindKeys(t);
  const double seq_seconds = watch.ElapsedSeconds();

  // Cold service runs (fresh catalog each) at 1 and max_threads workers.
  gordian::KeyCatalog cold1;
  const double svc1_seconds = RunService(tables, 1, &cold1);
  gordian::KeyCatalog coldN;
  const double svcN_seconds = RunService(tables, max_threads, &coldN);

  // Warm run: catalog already holds every table, so each job is a hit.
  const double warm_seconds = RunService(tables, max_threads, &coldN);

  const double n = static_cast<double>(num_tables);
  SeriesPrinter printer(
      {"configuration", "seconds", "jobs/sec", "vs sequential"});
  printer.AddRow({"sequential FindKeys", FormatSeconds(seq_seconds),
                  FormatRatio(n / seq_seconds), "1.00"});
  printer.AddRow({"service, 1 thread", FormatSeconds(svc1_seconds),
                  FormatRatio(n / svc1_seconds),
                  FormatRatio(seq_seconds / svc1_seconds)});
  printer.AddRow({"service, " + std::to_string(max_threads) + " thread(s)",
                  FormatSeconds(svcN_seconds), FormatRatio(n / svcN_seconds),
                  FormatRatio(seq_seconds / svcN_seconds)});
  printer.AddRow({"service, warm cache", FormatSeconds(warm_seconds),
                  FormatRatio(n / warm_seconds),
                  FormatRatio(seq_seconds / warm_seconds)});
  printer.Print();

  std::printf("\n%d tables x %lld rows; warm-cache speedup over cold run: "
              "%.1fx\n",
              num_tables, static_cast<long long>(rows),
              svcN_seconds / warm_seconds);

  // Repeated-table workload: same tables profiled `repeats` times with the
  // catalog off, so every job pays traversal + conversion and only the
  // prefix-tree build can be amortized by the TreeArtifactCache.
  const int repeats = static_cast<int>(flags.GetInt("repeats", 8));
  const int64_t amort_rows = flags.GetInt("amort_rows", 80000);
  gordian::bench::Banner(
      "tree-build amortization",
      "repeated re-profiling (catalog off): TreeArtifactCache on vs off");
  std::vector<gordian::Table> amort_tables =
      MakeBuildBoundTables(num_tables, amort_rows);
  const RepeatedRun cold = RunRepeatedTables(amort_tables, max_threads,
                                             repeats, /*tree_cache_bytes=*/0);
  // Budget sized to the working set: all tables' trees must stay resident,
  // or the round-robin waves thrash the LRU (each wave evicts exactly the
  // tree the next wave needs, and the hit rate collapses to zero).
  const RepeatedRun warm = RunRepeatedTables(amort_tables, max_threads,
                                             repeats,
                                             /*tree_cache_bytes=*/1LL << 30);

  const double jobs = static_cast<double>(num_tables) * repeats;
  SeriesPrinter rp({"configuration", "seconds", "jobs/sec", "tree hit rate",
                    "speedup"});
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%",
                cold.metrics.tree_cache_hit_rate() * 100);
  rp.AddRow({"tree cache off", FormatSeconds(cold.seconds),
             FormatRatio(jobs / cold.seconds), rate, "1.00"});
  std::snprintf(rate, sizeof(rate), "%.1f%%",
                warm.metrics.tree_cache_hit_rate() * 100);
  rp.AddRow({"tree cache on", FormatSeconds(warm.seconds),
             FormatRatio(jobs / warm.seconds), rate,
             FormatRatio(cold.seconds / warm.seconds)});
  rp.Print();

  std::printf("\nper-stage wall clock with the tree cache on:\n");
  using Snap = gordian::ServiceMetrics::Snapshot;
  for (int i = 0; i < Snap::kNumStages; ++i) {
    if (warm.metrics.stage_runs[i] == 0) continue;
    std::printf("  %-12s %8.3f s over %lld run(s)\n", Snap::kStageNames[i],
                warm.metrics.stage_seconds[i],
                static_cast<long long>(warm.metrics.stage_runs[i]));
  }

  WritePipelineJson(num_tables, amort_rows, repeats, max_threads, cold, warm);

  // Durable catalog flushes: cost of the first full snapshot (every shard
  // dirty), of an incremental flush after one shard changed, and of a warm
  // flush where the dirty bits skip all 16 shards and write zero bytes.
  gordian::bench::Banner(
      "catalog persistence",
      "per-shard flush cost: cold snapshot vs incremental vs no-op");
  {
    namespace stdfs = std::filesystem;
    const std::string dir =
        (stdfs::temp_directory_path() / "gordian_bench_catalog").string();
    std::error_code ec;
    stdfs::remove_all(dir, ec);

    gordian::CatalogStore store(dir, &coldN);  // coldN: one entry per table
    if (!store.Open().ok()) {
      std::fprintf(stderr, "cannot open catalog dir %s\n", dir.c_str());
      return 1;
    }
    auto timed_flush = [&store](gordian::FlushStats* stats) {
      gordian::Stopwatch w;
      (void)store.Flush(stats);
      return w.ElapsedSeconds();
    };
    gordian::FlushStats cold_stats, incr_stats, warm_stats;
    const double cold_flush = timed_flush(&cold_stats);
    // Dirty exactly one shard by re-storing one existing entry.
    for (int s = 0; s < gordian::KeyCatalog::kNumShards; ++s) {
      std::vector<gordian::CatalogEntry> entries = coldN.ShardSnapshot(s);
      if (entries.empty()) continue;
      (void)coldN.Put(entries[0].fingerprint, entries[0].table_name,
                      entries[0].num_columns, entries[0].result);
      break;
    }
    const double incr_flush = timed_flush(&incr_stats);
    const double warm_flush = timed_flush(&warm_stats);

    SeriesPrinter fp({"flush", "seconds", "shards written", "bytes"});
    auto flush_row = [&fp](const char* name, double seconds,
                           const gordian::FlushStats& s) {
      fp.AddRow({name, FormatSeconds(seconds),
                 std::to_string(s.shards_flushed),
                 std::to_string(s.bytes_written)});
    };
    flush_row("cold (all shards)", cold_flush, cold_stats);
    flush_row("incremental (1 dirty)", incr_flush, incr_stats);
    flush_row("warm (no-op)", warm_flush, warm_stats);
    fp.Print();
    std::printf("\ncatalog dir: %s (%d entries across %d shards)\n",
                dir.c_str(), static_cast<int>(coldN.size()),
                gordian::KeyCatalog::kNumShards);
    stdfs::remove_all(dir, ec);
  }
  return 0;
}
