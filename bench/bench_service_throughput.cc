// bench_service_throughput: jobs/sec of the profiling service against plain
// sequential FindKeys, at 1 worker and at one worker per hardware thread,
// plus the warm-cache speedup when every table is already in the catalog.
//
// Usage: bench_service_throughput [--tables=N] [--rows=N] [--threads=N]

#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "service/profiling_service.h"

namespace {

using gordian::bench::FormatRatio;
using gordian::bench::FormatSeconds;
using gordian::bench::SeriesPrinter;

std::vector<gordian::Table> MakeTables(int count, int64_t rows) {
  std::vector<gordian::Table> tables;
  for (int i = 0; i < count; ++i) {
    gordian::SyntheticSpec spec =
        gordian::UniformSpec(8, rows, 24, 0.5, 9000 + i);
    spec.columns[0].cardinality = 512;
    spec.columns[3].cardinality = 64;
    spec.planted_keys.push_back({0, 3});
    gordian::Table t;
    gordian::Status s = gordian::GenerateSynthetic(spec, &t);
    if (!s.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

double RunService(const std::vector<gordian::Table>& tables, int threads,
                  gordian::KeyCatalog* catalog) {
  gordian::ServiceOptions options;
  options.num_threads = threads;
  options.catalog = catalog;
  gordian::ProfilingService service(options);
  gordian::Stopwatch watch;
  std::vector<gordian::JobId> ids;
  for (size_t i = 0; i < tables.size(); ++i) {
    ids.push_back(
        service.SubmitTable("t" + std::to_string(i), &tables[i]));
  }
  for (gordian::JobId id : ids) (void)service.Wait(id);
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  const int num_tables = static_cast<int>(flags.GetInt("tables", 24));
  const int64_t rows = flags.GetInt("rows", 4000);
  const int max_threads = flags.ThreadCount();

  gordian::bench::Banner(
      "profiling service throughput",
      "the service layer; jobs/sec vs sequential FindKeys");

  std::vector<gordian::Table> tables = MakeTables(num_tables, rows);

  // Sequential baseline: plain FindKeys on the caller's thread.
  gordian::Stopwatch watch;
  for (const gordian::Table& t : tables) (void)gordian::FindKeys(t);
  const double seq_seconds = watch.ElapsedSeconds();

  // Cold service runs (fresh catalog each) at 1 and max_threads workers.
  gordian::KeyCatalog cold1;
  const double svc1_seconds = RunService(tables, 1, &cold1);
  gordian::KeyCatalog coldN;
  const double svcN_seconds = RunService(tables, max_threads, &coldN);

  // Warm run: catalog already holds every table, so each job is a hit.
  const double warm_seconds = RunService(tables, max_threads, &coldN);

  const double n = static_cast<double>(num_tables);
  SeriesPrinter printer(
      {"configuration", "seconds", "jobs/sec", "vs sequential"});
  printer.AddRow({"sequential FindKeys", FormatSeconds(seq_seconds),
                  FormatRatio(n / seq_seconds), "1.00"});
  printer.AddRow({"service, 1 thread", FormatSeconds(svc1_seconds),
                  FormatRatio(n / svc1_seconds),
                  FormatRatio(seq_seconds / svc1_seconds)});
  printer.AddRow({"service, " + std::to_string(max_threads) + " thread(s)",
                  FormatSeconds(svcN_seconds), FormatRatio(n / svcN_seconds),
                  FormatRatio(seq_seconds / svcN_seconds)});
  printer.AddRow({"service, warm cache", FormatSeconds(warm_seconds),
                  FormatRatio(n / warm_seconds),
                  FormatRatio(seq_seconds / warm_seconds)});
  printer.Print();

  std::printf("\n%d tables x %lld rows; warm-cache speedup over cold run: "
              "%.1fx\n",
              num_tables, static_cast<long long>(rows),
              svcN_seconds / warm_seconds);
  return 0;
}
