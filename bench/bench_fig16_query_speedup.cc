// Regenerates Figure 16: query-execution speedup from indexes recommended
// by GORDIAN (Section 4.4). A denormalized TPC-H-like fact table (17
// columns; row count scaled for a laptop run) is profiled, the discovered
// keys become composite indexes, and a 20-query warehouse workload is timed
// with and without those indexes.

#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "datagen/tpch_lite.h"
#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/workload.h"

namespace gordian {
namespace {

constexpr int64_t kRows = 1800000;
constexpr int kRepetitions = 3;

double TimeQuery(const Table& table, const RowStore& store,
                 const PlanChoice& plan, const Query& q, QueryResult* out) {
  double best = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch w;
    *out = Execute(table, store, plan, q);
    best = std::min(best, w.ElapsedSeconds());
  }
  return best;
}

void Run() {
  bench::Banner("Effect of GORDIAN on query execution time", "Figure 16");
  std::printf("Fact table: %lld rows x 17 columns (paper: 1,800,000 x 17).\n",
              static_cast<long long>(kRows));

  Table fact = GenerateTpchFact(kRows, /*seed=*/16001);
  RowStore store(fact);

  // GORDIAN proposes the candidate index set. Like the paper we run it on a
  // sample for speed, then validate: it "required only 2 minutes to discover
  // the candidate indexes" on 2006 hardware.
  Stopwatch discovery;
  GordianOptions opts;
  opts.sample_rows = 200000;
  KeyDiscoveryResult keys = FindKeys(fact, opts);
  ValidateKeys(fact, &keys);
  // Keep only validated strict keys as index candidates.
  KeyDiscoveryResult strict;
  for (const DiscoveredKey& k : keys.keys) {
    if (k.exact_strength >= 1.0) strict.keys.push_back(k);
  }
  std::printf("GORDIAN discovered %zu candidate indexes in %.1f s:\n",
              strict.keys.size(), discovery.ElapsedSeconds());
  for (const DiscoveredKey& k : strict.keys) {
    std::printf("  index on %s\n", fact.schema().Describe(k.attrs).c_str());
  }
  std::printf("\n");

  Planner planner = BuildRecommendedIndexes(fact, store, strict);

  bench::SeriesPrinter table({"Query No", "Label", "Plan", "No index (s)",
                              "With index (s)", "Speedup"});
  int qno = 0;
  for (const Query& q : MakeWarehouseWorkload(fact, /*seed=*/16002)) {
    ++qno;
    QueryResult scan_result, plan_result;
    double scan_s = TimeQuery(fact, store, PlanChoice{}, q, &scan_result);
    PlanChoice plan = planner.Choose(fact, q);
    double plan_s = TimeQuery(fact, store, plan, q, &plan_result);
    if (!(scan_result == plan_result)) {
      std::printf("ERROR: plan mismatch on %s\n", q.label.c_str());
    }
    const char* kind = plan.index == nullptr
                           ? "scan"
                           : (plan.covering ? "index-only" : "index");
    table.AddRow({std::to_string(qno), q.label, kind,
                  bench::FormatSeconds(scan_s), bench::FormatSeconds(plan_s),
                  bench::FormatRatio(scan_s / plan_s)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): queries the key indexes can serve speed\n"
      "up; the broad aggregations they cannot serve stay at ~1x. The\n"
      "covered range query (paper's query 4) shows the paper's ~6x\n"
      "index-only effect: reading 2 packed key columns instead of\n"
      "17-column rows. In-memory point lookups exceed the paper's\n"
      "disk-bound magnitudes, where every query paid a base I/O cost.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
