// Empirical check of Theorem 1 (Section 3.8): for uncorrelated generalized
// Zipfian data, GORDIAN's time should scale as roughly T^(1 + (1+theta)/(d
// log C)) in the number of entities T — i.e., almost linearly for realistic
// d and C. The bench sweeps T for several theta values and reports the
// fitted log-log slope.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

// Least-squares slope of log(time) against log(T).
double FittedExponent(const std::vector<double>& ts,
                      const std::vector<double>& secs) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int n = static_cast<int>(ts.size());
  for (int i = 0; i < n; ++i) {
    double x = std::log(ts[i]);
    double y = std::log(secs[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

void Run() {
  bench::Banner("Scaling in the number of entities", "Theorem 1");
  const int kAttrs = 15;
  const uint64_t kCardinality = 5000;
  std::printf("Uncorrelated Zipf data: d=%d attributes, C=%llu distinct "
              "values per attribute.\n\n",
              kAttrs, static_cast<unsigned long long>(kCardinality));

  bench::SeriesPrinter table({"theta", "T=20k (s)", "T=40k (s)", "T=80k (s)",
                              "T=160k (s)", "fitted exponent",
                              "theory bound"});
  for (double theta : {0.0, 0.5, 1.0}) {
    std::vector<double> ts, secs;
    std::vector<std::string> row = {bench::FormatRatio(theta)};
    for (int64_t rows : {20000, 40000, 80000, 160000}) {
      SyntheticSpec spec =
          UniformSpec(kAttrs, rows, kCardinality, theta, 1700 + rows + theta);
      spec.ensure_unique_rows = true;
      Table t;
      Status s = GenerateSynthetic(spec, &t);
      if (!s.ok()) {
        std::printf("generation failed: %s\n", s.ToString().c_str());
        return;
      }
      KeyDiscoveryResult r = FindKeys(t);
      ts.push_back(static_cast<double>(rows));
      secs.push_back(std::max(1e-4, r.stats.TotalSeconds()));
      row.push_back(bench::FormatSeconds(r.stats.TotalSeconds()));
    }
    double theory = 1.0 + (1.0 + theta) / (std::log(static_cast<double>(
                                               kCardinality)) /
                                           std::log(static_cast<double>(kAttrs)));
    row.push_back(bench::FormatRatio(FittedExponent(ts, secs)));
    row.push_back(bench::FormatRatio(theory));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the measured exponent stays near 1 (almost\n"
      "linear in T) and below the conservative theoretical bound\n"
      "1 + (1+theta)/log_d(C).\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
