// google-benchmark micro suite for the substrates around the core: table
// construction and distinct counting, CSV and binary I/O throughput,
// sampling, the query engine's scan/lookup paths, and foreign-key
// discovery. Complements bench_micro_gordian (which covers the core).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/tpch_lite.h"
#include "engine/executor.h"
#include "engine/index.h"
#include "engine/row_store.h"
#include "table/csv.h"
#include "table/serialize.h"

namespace gordian {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/gordian_bench_") + name;
}

Table& Fact() {
  static Table t = GenerateTpchFact(100000, 1001);
  return t;
}

void BM_TableBuilderAppend(benchmark::State& state) {
  const Table& src = Fact();
  std::vector<std::vector<Value>> rows;
  for (int64_t r = 0; r < 5000; ++r) {
    std::vector<Value> row;
    for (int c = 0; c < src.num_columns(); ++c) row.push_back(src.value(r, c));
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    TableBuilder b(src.schema());
    for (const auto& row : rows) b.AddRow(row);
    Table t = b.Build();
    benchmark::DoNotOptimize(t.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TableBuilderAppend);

void BM_DistinctCountSortVsHash(benchmark::State& state) {
  Table& t = Fact();
  AttributeSet attrs{1, 2, 4};
  const bool hash = state.range(0) == 1;
  for (auto _ : state) {
    int64_t d = hash ? t.DistinctCountFast(attrs) : t.DistinctCount(attrs);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_DistinctCountSortVsHash)->Arg(0)->Arg(1);

void BM_CsvWriteRead(benchmark::State& state) {
  Table t = GenerateTpchFact(20000, 1002);
  std::string path = TempPath("io.csv");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteCsv(t, CsvOptions{}, path).ok());
    Table back;
    benchmark::DoNotOptimize(ReadCsv(path, CsvOptions{}, &back).ok());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_CsvWriteRead);

void BM_BinaryWriteRead(benchmark::State& state) {
  Table t = GenerateTpchFact(20000, 1003);
  std::string path = TempPath("io.grdt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteTableFile(t, path).ok());
    Table back;
    benchmark::DoNotOptimize(ReadTableFile(path, &back).ok());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_BinaryWriteRead);

void BM_SampleRows(benchmark::State& state) {
  Table& t = Fact();
  uint64_t seed = 0;
  for (auto _ : state) {
    Table s = t.SampleRows(t.num_rows() / 10, ++seed);
    benchmark::DoNotOptimize(s.num_rows());
  }
}
BENCHMARK(BM_SampleRows);

void BM_IndexBuild(benchmark::State& state) {
  Table& t = Fact();
  RowStore store(t);
  std::vector<int> cols = {t.schema().Find("f_orderkey"),
                           t.schema().Find("f_linenumber")};
  for (auto _ : state) {
    CompositeIndex idx(t, store, cols);
    benchmark::DoNotOptimize(idx.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_IndexBuild);

void BM_ScanVsIndexLookup(benchmark::State& state) {
  Table& t = Fact();
  static RowStore store(t);
  static CompositeIndex idx(t, store,
                            {t.schema().Find("f_orderkey"),
                             t.schema().Find("f_linenumber")});
  Query q;
  q.predicates = {{t.schema().Find("f_orderkey"),
                   t.code(123, t.schema().Find("f_orderkey"))}};
  q.projection = {t.schema().Find("f_quantity")};
  const bool use_index = state.range(0) == 1;
  for (auto _ : state) {
    QueryResult r = use_index ? ExecuteWithIndex(t, store, idx, q)
                              : ExecuteScan(t, store, q);
    benchmark::DoNotOptimize(r.rows_matched);
  }
}
BENCHMARK(BM_ScanVsIndexLookup)->Arg(0)->Arg(1);

void BM_ForeignKeyDiscovery(benchmark::State& state) {
  static auto db = GenerateTpchLite(0.002, 1004);
  static std::vector<ProfiledTable> tables = [] {
    std::vector<ProfiledTable> out;
    static std::vector<KeyDiscoveryResult> results;
    results.reserve(db.size());
    for (auto& nt : db) {
      results.push_back(FindKeys(nt.table));
      out.push_back({nt.name, &nt.table, results.back().KeySets()});
    }
    return out;
  }();
  ForeignKeyOptions opts;
  opts.min_distinct_values = 20;
  for (auto _ : state) {
    auto fks = DiscoverForeignKeys(tables, opts);
    benchmark::DoNotOptimize(fks.size());
  }
}
BENCHMARK(BM_ForeignKeyDiscovery);

}  // namespace
}  // namespace gordian

BENCHMARK_MAIN();
