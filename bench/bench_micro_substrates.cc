// google-benchmark micro suite for the substrates around the core: table
// construction and distinct counting, CSV and binary I/O throughput,
// sampling, the query engine's scan/lookup paths, and foreign-key
// discovery. Complements bench_micro_gordian (which covers the core).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/tpch_lite.h"
#include "engine/executor.h"
#include "engine/index.h"
#include "engine/row_store.h"
#include "table/csv.h"
#include "table/serialize.h"

namespace gordian {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/gordian_bench_") + name;
}

Table& Fact() {
  static Table t = GenerateTpchFact(100000, 1001);
  return t;
}

void BM_TableBuilderAppend(benchmark::State& state) {
  const Table& src = Fact();
  std::vector<std::vector<Value>> rows;
  for (int64_t r = 0; r < 5000; ++r) {
    std::vector<Value> row;
    for (int c = 0; c < src.num_columns(); ++c) row.push_back(src.value(r, c));
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    TableBuilder b(src.schema());
    for (const auto& row : rows) b.AddRow(row);
    Table t = b.Build();
    benchmark::DoNotOptimize(t.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TableBuilderAppend);

void BM_DistinctCountSortVsHash(benchmark::State& state) {
  Table& t = Fact();
  AttributeSet attrs{1, 2, 4};
  const bool hash = state.range(0) == 1;
  for (auto _ : state) {
    int64_t d = hash ? t.DistinctCountFast(attrs) : t.DistinctCount(attrs);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_DistinctCountSortVsHash)->Arg(0)->Arg(1);

void BM_CsvWriteRead(benchmark::State& state) {
  Table t = GenerateTpchFact(20000, 1002);
  std::string path = TempPath("io.csv");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteCsv(t, CsvOptions{}, path).ok());
    Table back;
    benchmark::DoNotOptimize(ReadCsv(path, CsvOptions{}, &back).ok());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_CsvWriteRead);

void BM_BinaryWriteRead(benchmark::State& state) {
  Table t = GenerateTpchFact(20000, 1003);
  std::string path = TempPath("io.grdt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteTableFile(t, path).ok());
    Table back;
    benchmark::DoNotOptimize(ReadTableFile(path, &back).ok());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_BinaryWriteRead);

void BM_SampleRows(benchmark::State& state) {
  Table& t = Fact();
  uint64_t seed = 0;
  for (auto _ : state) {
    Table s = t.SampleRows(t.num_rows() / 10, ++seed);
    benchmark::DoNotOptimize(s.num_rows());
  }
}
BENCHMARK(BM_SampleRows);

void BM_IndexBuild(benchmark::State& state) {
  Table& t = Fact();
  RowStore store(t);
  std::vector<int> cols = {t.schema().Find("f_orderkey"),
                           t.schema().Find("f_linenumber")};
  for (auto _ : state) {
    CompositeIndex idx(t, store, cols);
    benchmark::DoNotOptimize(idx.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_IndexBuild);

void BM_ScanVsIndexLookup(benchmark::State& state) {
  Table& t = Fact();
  static RowStore store(t);
  static CompositeIndex idx(t, store,
                            {t.schema().Find("f_orderkey"),
                             t.schema().Find("f_linenumber")});
  Query q;
  q.predicates = {{t.schema().Find("f_orderkey"),
                   t.code(123, t.schema().Find("f_orderkey"))}};
  q.projection = {t.schema().Find("f_quantity")};
  const bool use_index = state.range(0) == 1;
  for (auto _ : state) {
    QueryResult r = use_index ? ExecuteWithIndex(t, store, idx, q)
                              : ExecuteScan(t, store, q);
    benchmark::DoNotOptimize(r.rows_matched);
  }
}
BENCHMARK(BM_ScanVsIndexLookup)->Arg(0)->Arg(1);

void BM_ForeignKeyDiscovery(benchmark::State& state) {
  static auto db = GenerateTpchLite(0.002, 1004);
  static std::vector<ProfiledTable> tables = [] {
    std::vector<ProfiledTable> out;
    static std::vector<KeyDiscoveryResult> results;
    results.reserve(db.size());
    for (auto& nt : db) {
      results.push_back(FindKeys(nt.table));
      out.push_back({nt.name, &nt.table, results.back().KeySets()});
    }
    return out;
  }();
  ForeignKeyOptions opts;
  opts.min_distinct_values = 20;
  for (auto _ : state) {
    auto fks = DiscoverForeignKeys(tables, opts);
    benchmark::DoNotOptimize(fks.size());
  }
}
BENCHMARK(BM_ForeignKeyDiscovery);

// --- Encode throughput: row-at-a-time vs columnar batches ----------------
//
// A string-heavy workload (the dictionary-encode worst case: every probe
// hashes bytes) generated once and replayed either as std::vector<Value>
// rows through AddRow or as RowBatches through AddBatch. "Cold" builds a
// fresh TableBuilder per iteration (every first occurrence inserts);
// "warm" reuses one builder so every probe is a hit.

constexpr int64_t kEncodeRows = 50000;
constexpr int kEncodeCols = 8;

Schema EncodeSchema() {
  std::vector<std::string> names;
  for (int c = 0; c < kEncodeCols; ++c) names.push_back("s" + std::to_string(c));
  return Schema(names);
}

std::string EncodeCell(int c, uint64_t rank) {
  // Long enough to defeat small-string optimization: string-heavy means
  // every row-at-a-time field costs real allocations.
  return "column" + std::to_string(c) + "-payload-entity-" +
         std::to_string(rank) + "-suffix";
}

uint64_t EncodeRank(Random& rng, int c) {
  // Mixed cardinalities so some columns rehash a lot and some barely.
  const uint64_t card = uint64_t{64} << (2 * (c % 4));
  return rng.Uniform(card);
}

const std::vector<std::vector<Value>>& EncodeRowData() {
  static const std::vector<std::vector<Value>> rows = [] {
    Random rng(2024);
    std::vector<std::vector<Value>> out;
    out.reserve(kEncodeRows);
    for (int64_t r = 0; r < kEncodeRows; ++r) {
      std::vector<Value> row;
      for (int c = 0; c < kEncodeCols; ++c) {
        row.emplace_back(EncodeCell(c, EncodeRank(rng, c)));
      }
      out.push_back(std::move(row));
    }
    return out;
  }();
  return rows;
}

const std::vector<RowBatch>& EncodeBatchData() {
  static const std::vector<RowBatch> batches = [] {
    // Same draw sequence as EncodeRowData, packed into full RowBatches.
    Random rng(2024);
    std::vector<RowBatch> out;
    RowBatch batch(kEncodeCols);
    for (int64_t r = 0; r < kEncodeRows; ++r) {
      for (int c = 0; c < kEncodeCols; ++c) {
        batch.column(c).AppendString(EncodeCell(c, EncodeRank(rng, c)));
      }
      if (batch.full()) {
        out.push_back(std::move(batch));
        batch = RowBatch(kEncodeCols);
      }
    }
    if (batch.num_rows() > 0) out.push_back(std::move(batch));
    return out;
  }();
  return batches;
}

void BM_EncodeRowAtATime(benchmark::State& state) {
  const auto& rows = EncodeRowData();
  for (auto _ : state) {
    TableBuilder b(EncodeSchema());
    for (const auto& row : rows) b.AddRow(row);
    benchmark::DoNotOptimize(b.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * kEncodeRows);
}
BENCHMARK(BM_EncodeRowAtATime);

void BM_EncodeBatchCold(benchmark::State& state) {
  const auto& batches = EncodeBatchData();
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    TableBuilder b(EncodeSchema());
    for (const RowBatch& batch : batches) b.AddBatch(batch, pool.get());
    benchmark::DoNotOptimize(b.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * kEncodeRows);
}
BENCHMARK(BM_EncodeBatchCold)->Arg(1)->Arg(4)->Arg(8);

void BM_EncodeBatchWarm(benchmark::State& state) {
  // Warm dictionaries, fresh code vectors: every probe is a hit, no
  // inserts, no code-vector growth — the steady-state encode cost.
  const auto& batches = EncodeBatchData();
  std::vector<Dictionary> dicts(kEncodeCols);
  std::vector<uint32_t> codes;
  for (const RowBatch& batch : batches) {
    for (int c = 0; c < kEncodeCols; ++c) {
      codes.clear();
      dicts[c].EncodeBatch(batch.column(c), &codes);
    }
  }
  for (auto _ : state) {
    for (const RowBatch& batch : batches) {
      for (int c = 0; c < kEncodeCols; ++c) {
        codes.clear();
        dicts[c].EncodeBatch(batch.column(c), &codes);
      }
    }
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * kEncodeRows);
}
BENCHMARK(BM_EncodeBatchWarm);

// --- BENCH_encode.json ----------------------------------------------------
//
// CSV-to-table ingest throughput for CI trend tracking: the retired
// row-at-a-time path (getline + SplitCsvRecord + ParseCsvField + AddRow,
// reconstructed here as the baseline) against the batch reader at 1/4/8
// encode threads, plus the in-memory cold/warm AddBatch figures.

struct EncodeSample {
  double best_seconds = 0;
  int64_t rows = 0;
};

double BestSeconds(double best, double secs) {
  return best == 0 || secs < best ? secs : best;
}

// The pre-batch ReadCsv, byte-for-byte: one getline per record, split,
// infer each field, append a row of Values.
EncodeSample ReadCsvRowAtATime(const std::string& path, int reps) {
  EncodeSample sample;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    std::vector<std::string> names;
    (void)SplitCsvRecord(line, ',', &names);
    TableBuilder b{Schema(names)};
    std::vector<std::string> fields;
    std::vector<Value> row;
    while (std::getline(in, line)) {
      if (line.empty() || line == "\r") continue;
      (void)SplitCsvRecord(line, ',', &fields);
      row.clear();
      for (const std::string& f : fields) row.push_back(ParseCsvField(f, true));
      b.AddRow(row);
    }
    Table t = b.Build();
    sample.best_seconds = BestSeconds(sample.best_seconds, watch.ElapsedSeconds());
    sample.rows = t.num_rows();
  }
  return sample;
}

EncodeSample ReadCsvBatched(const std::string& path, int threads, int reps) {
  EncodeSample sample;
  CsvOptions options;
  options.encode_threads = threads;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    Table t;
    Status s = ReadCsv(path, options, &t);
    if (!s.ok()) std::cerr << s.ToString() << "\n";
    sample.best_seconds = BestSeconds(sample.best_seconds, watch.ElapsedSeconds());
    sample.rows = t.num_rows();
  }
  return sample;
}

// Cold: a fresh TableBuilder per rep (first-seen inserts included). Warm:
// pre-populated dictionaries, fresh code vectors (pure probe-hit cost).
EncodeSample AddBatchSample(bool warm, int threads, int reps) {
  const auto& batches = EncodeBatchData();
  EncodeSample sample;
  sample.rows = kEncodeRows;
  if (warm) {
    std::vector<Dictionary> dicts(kEncodeCols);
    std::vector<uint32_t> codes;
    for (const RowBatch& batch : batches) {
      for (int c = 0; c < kEncodeCols; ++c) {
        codes.clear();
        dicts[c].EncodeBatch(batch.column(c), &codes);
      }
    }
    for (int i = 0; i < reps; ++i) {
      Stopwatch watch;
      for (const RowBatch& batch : batches) {
        for (int c = 0; c < kEncodeCols; ++c) {
          codes.clear();
          dicts[c].EncodeBatch(batch.column(c), &codes);
        }
      }
      sample.best_seconds =
          BestSeconds(sample.best_seconds, watch.ElapsedSeconds());
    }
    return sample;
  }
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  for (int i = 0; i < reps; ++i) {
    TableBuilder b(EncodeSchema());
    Stopwatch watch;
    for (const RowBatch& batch : batches) b.AddBatch(batch, pool.get());
    sample.best_seconds =
        BestSeconds(sample.best_seconds, watch.ElapsedSeconds());
  }
  return sample;
}

void WriteSample(std::ostream& os, const char* indent, const EncodeSample& s,
                 double baseline_seconds) {
  os << "{\"wall_seconds\": " << s.best_seconds << ", \"rows_per_sec\": "
     << (s.best_seconds > 0 ? static_cast<double>(s.rows) / s.best_seconds : 0);
  if (baseline_seconds > 0 && s.best_seconds > 0) {
    os << ", \"speedup_vs_row\": " << baseline_seconds / s.best_seconds;
  }
  os << "}";
  (void)indent;
}

void WriteEncodeJson() {
  const char* env_path = std::getenv("GORDIAN_BENCH_JSON");
  const std::string path =
      (env_path != nullptr && *env_path != '\0') ? env_path
                                                 : "BENCH_encode.json";
  constexpr int kReps = 3;

  // String-heavy CSV: every column a synthetic token, no inferable numerics.
  const std::string csv_path = TempPath("encode.csv");
  {
    Random rng(77);
    std::ofstream os(csv_path);
    for (int c = 0; c < kEncodeCols; ++c) os << (c ? ",s" : "s") << c;
    os << "\n";
    for (int64_t r = 0; r < kEncodeRows; ++r) {
      for (int c = 0; c < kEncodeCols; ++c) {
        if (c) os << ',';
        os << EncodeCell(c, EncodeRank(rng, c));
      }
      os << "\n";
    }
  }

  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const EncodeSample row = ReadCsvRowAtATime(csv_path, kReps);
  os << "{\n"
     << "  \"benchmark\": \"encode_throughput\",\n"
     << "  \"rows\": " << row.rows << ",\n"
     << "  \"columns\": " << kEncodeCols << ",\n"
     << "  \"reps\": " << kReps << ",\n"
     << "  \"csv_string_heavy\": {\n"
     << "    \"row_at_a_time\": ";
  WriteSample(os, "    ", row, 0);
  os << ",\n    \"batch\": [\n";
  const int thread_counts[] = {1, 4, 8};
  for (size_t i = 0; i < 3; ++i) {
    const EncodeSample b = ReadCsvBatched(csv_path, thread_counts[i], kReps);
    os << "      {\"encode_threads\": " << thread_counts[i] << ", \"sample\": ";
    WriteSample(os, "", b, row.best_seconds);
    os << "}" << (i + 1 < 3 ? "," : "") << "\n";
  }
  os << "    ]\n  },\n"
     << "  \"in_memory_add_batch\": {\n"
     << "    \"cold\": [\n";
  for (size_t i = 0; i < 3; ++i) {
    const EncodeSample c = AddBatchSample(false, thread_counts[i], kReps);
    os << "      {\"encode_threads\": " << thread_counts[i] << ", \"sample\": ";
    WriteSample(os, "", c, 0);
    os << "}" << (i + 1 < 3 ? "," : "") << "\n";
  }
  const EncodeSample warm = AddBatchSample(true, 1, kReps);
  os << "    ],\n    \"warm\": ";
  WriteSample(os, "    ", warm, 0);
  os << "\n  }\n}\n";
  std::cout << "wrote " << path << "\n";
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace gordian

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gordian::WriteEncodeJson();
  return 0;
}
