// Regenerates Figure 12: processing time vs. number of attributes. As in
// the paper, a 50-attribute catalog relation is projected onto its first
// 5, 10, ..., 50 attributes; GORDIAN (all composite keys) is compared to the
// single-attribute and <=4-attribute brute-force checkers. (The exhaustive
// brute force is omitted from the figure, as in the paper, because it is
// orders of magnitude slower.)

#include <cstdio>

#include "bench/harness.h"
#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/opic_like.h"

namespace gordian {
namespace {

void Run() {
  bench::Banner("Time vs #Attributes", "Figure 12");
  const int64_t kRows = 100000;
  std::printf("Dataset: OPIC-like catalog table, %lld rows, prefixes of a "
              "50-attribute relation.\n\n",
              static_cast<long long>(kRows));

  Table wide = GenerateOpicLike(kRows, 50, /*seed=*/12001);

  bench::SeriesPrinter table({"#Attributes", "GORDIAN all-attrs (s)",
                              "BruteForce single (s)", "BruteForce <=4 (s)"});
  for (int attrs = 5; attrs <= 50; attrs += 5) {
    Table t = wide.ProjectColumns(attrs);

    KeyDiscoveryResult g = FindKeys(t);

    BruteForceOptions single;
    single.max_arity = 1;
    BruteForceResult bf_single = BruteForceFindKeys(t, single);

    BruteForceOptions up4;
    up4.max_arity = 4;
    up4.time_budget_seconds = 25;
    BruteForceResult bf_up4 = BruteForceFindKeys(t, up4);

    table.AddRow({std::to_string(attrs),
                  bench::FormatSeconds(g.stats.TotalSeconds()),
                  bench::FormatSeconds(bf_single.seconds),
                  (bf_up4.truncated ? ">" : "") +
                      bench::FormatSeconds(bf_up4.seconds)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): GORDIAN scales almost linearly with the\n"
      "number of attributes and stays close to the single-attribute\n"
      "checker; the <=4-attribute brute force blows up polynomially\n"
      "(O(d^4) candidates).\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
