// google-benchmark micro suite: the hot operations of the GORDIAN core
// (prefix-tree construction in both modes, node merging, NonKeySet
// maintenance, attribute-set algebra, distinct counting) plus
// attribute-ordering ablations of the full pipeline.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/attribute_set.h"
#include "common/random.h"
#include "core/gordian.h"
#include "core/non_key_set.h"
#include "core/prefix_tree.h"
#include "datagen/opic_like.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

Table& SharedTable(int64_t rows, int attrs) {
  static Table t10k = GenerateOpicLike(10000, 16, 901);
  static Table t50k = GenerateOpicLike(50000, 16, 902);
  static Table t10k_wide = GenerateOpicLike(10000, 40, 903);
  if (attrs >= 40) return t10k_wide;
  return rows >= 50000 ? t50k : t10k;
}

std::vector<int> SchemaOrder(const Table& t) {
  std::vector<int> order(t.num_columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

void BM_PrefixTreeBuildSorted(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), 16);
  auto order = SchemaOrder(t);
  for (auto _ : state) {
    PrefixTree tree =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_PrefixTreeBuildSorted)->Arg(10000)->Arg(50000);

void BM_PrefixTreeBuildInsertion(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), 16);
  auto order = SchemaOrder(t);
  for (auto _ : state) {
    PrefixTree tree =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kInsertion);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_PrefixTreeBuildInsertion)->Arg(10000)->Arg(50000);

void BM_MergeRootChildren(benchmark::State& state) {
  Table& t = SharedTable(10000, 16);
  auto order = SchemaOrder(t);
  PrefixTree tree =
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  for (const PrefixTree::Cell& c : tree.root()->cells) {
    children.push_back(c.child);
  }
  for (auto _ : state) {
    PrefixTree::Node* merged = MergeNodes(tree.pool(), children, nullptr);
    benchmark::DoNotOptimize(merged);
    tree.pool().Unref(merged);
  }
}
BENCHMARK(BM_MergeRootChildren);

void BM_NonKeySetInsert(benchmark::State& state) {
  // A worst-case-ish stream: random incomparable sets.
  std::vector<AttributeSet> stream;
  Random rng(77);
  for (int i = 0; i < 256; ++i) {
    AttributeSet s;
    for (int a = 0; a < 32; ++a) {
      if (rng.Bernoulli(0.3)) s.Set(a);
    }
    stream.push_back(s);
  }
  for (auto _ : state) {
    NonKeySet set;
    for (const AttributeSet& s : stream) set.Insert(s);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_NonKeySetInsert);

void BM_AttributeSetCovers(benchmark::State& state) {
  std::vector<AttributeSet> sets;
  Random rng(78);
  for (int i = 0; i < 1024; ++i) {
    AttributeSet s;
    for (int a = 0; a < 66; ++a) {
      if (rng.Bernoulli(0.4)) s.Set(a);
    }
    sets.push_back(s);
  }
  size_t i = 0;
  for (auto _ : state) {
    bool c = sets[i % 1024].Covers(sets[(i * 7 + 3) % 1024]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_AttributeSetCovers);

void BM_DistinctCount(benchmark::State& state) {
  Table& t = SharedTable(50000, 16);
  AttributeSet attrs{0, 3, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.DistinctCount(attrs));
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_DistinctCount);

void BM_FindKeysEndToEnd(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    KeyDiscoveryResult r = FindKeys(t);
    benchmark::DoNotOptimize(r.keys.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FindKeysEndToEnd)
    ->Args({10000, 16})
    ->Args({50000, 16})
    ->Args({10000, 40});

// Ablation: the attribute-ordering heuristic of Section 3.2.1.
void BM_FindKeysOrdering(benchmark::State& state) {
  Table& t = SharedTable(10000, 40);
  GordianOptions o;
  switch (state.range(0)) {
    case 0: o.attribute_order = GordianOptions::AttributeOrder::kSchema; break;
    case 1:
      o.attribute_order = GordianOptions::AttributeOrder::kCardinalityDesc;
      break;
    case 2:
      o.attribute_order = GordianOptions::AttributeOrder::kCardinalityAsc;
      break;
    default:
      o.attribute_order = GordianOptions::AttributeOrder::kRandom;
      o.order_seed = 5;
      break;
  }
  for (auto _ : state) {
    KeyDiscoveryResult r = FindKeys(t, o);
    benchmark::DoNotOptimize(r.keys.size());
  }
}
BENCHMARK(BM_FindKeysOrdering)
    ->Arg(0)  // schema
    ->Arg(1)  // cardinality desc (paper heuristic)
    ->Arg(2)  // cardinality asc
    ->Arg(3);  // random

}  // namespace
}  // namespace gordian

BENCHMARK_MAIN();
