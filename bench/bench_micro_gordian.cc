// google-benchmark micro suite: the hot operations of the GORDIAN core
// (prefix-tree construction in both modes, node merging, NonKeySet
// maintenance, attribute-set algebra, distinct counting) plus
// attribute-ordering ablations of the full pipeline and the parallel slice
// traversal. Besides the usual benchmark output, main() writes a
// machine-readable serial-vs-parallel summary to BENCH_kernel.json (path
// overridable via GORDIAN_BENCH_JSON) for CI trend tracking.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/attribute_set.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/frozen_tree.h"
#include "core/gordian.h"
#include "core/incremental.h"
#include "core/non_key_finder.h"
#include "core/non_key_set.h"
#include "core/pipeline.h"
#include "core/prefix_tree.h"
#include "datagen/opic_like.h"
#include "datagen/synthetic.h"
#include "table/column_chunk.h"

namespace gordian {
namespace {

Table& SharedTable(int64_t rows, int attrs) {
  static Table t10k = GenerateOpicLike(10000, 16, 901);
  static Table t50k = GenerateOpicLike(50000, 16, 902);
  static Table t10k_wide = GenerateOpicLike(10000, 40, 903);
  if (attrs >= 40) return t10k_wide;
  return rows >= 50000 ? t50k : t10k;
}

std::vector<int> SchemaOrder(const Table& t) {
  std::vector<int> order(t.num_columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

void BM_PrefixTreeBuildSorted(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), 16);
  auto order = SchemaOrder(t);
  for (auto _ : state) {
    PrefixTree tree =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_PrefixTreeBuildSorted)->Arg(10000)->Arg(50000);

void BM_PrefixTreeBuildInsertion(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), 16);
  auto order = SchemaOrder(t);
  for (auto _ : state) {
    PrefixTree tree =
        PrefixTree::Build(t, order, GordianOptions::TreeBuild::kInsertion);
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_PrefixTreeBuildInsertion)->Arg(10000)->Arg(50000);

void BM_MergeRootChildren(benchmark::State& state) {
  Table& t = SharedTable(10000, 16);
  auto order = SchemaOrder(t);
  PrefixTree tree =
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  for (const PrefixTree::Cell& c : tree.root()->cells) {
    children.push_back(c.child);
  }
  for (auto _ : state) {
    PrefixTree::Node* merged = MergeNodes(tree.pool(), children, nullptr);
    benchmark::DoNotOptimize(merged);
    tree.pool().Unref(merged);
  }
}
BENCHMARK(BM_MergeRootChildren);

void BM_NonKeySetInsert(benchmark::State& state) {
  // A worst-case-ish stream: random incomparable sets.
  std::vector<AttributeSet> stream;
  Random rng(77);
  for (int i = 0; i < 256; ++i) {
    AttributeSet s;
    for (int a = 0; a < 32; ++a) {
      if (rng.Bernoulli(0.3)) s.Set(a);
    }
    stream.push_back(s);
  }
  for (auto _ : state) {
    NonKeySet set;
    for (const AttributeSet& s : stream) set.Insert(s);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_NonKeySetInsert);

void BM_AttributeSetCovers(benchmark::State& state) {
  std::vector<AttributeSet> sets;
  Random rng(78);
  for (int i = 0; i < 1024; ++i) {
    AttributeSet s;
    for (int a = 0; a < 66; ++a) {
      if (rng.Bernoulli(0.4)) s.Set(a);
    }
    sets.push_back(s);
  }
  size_t i = 0;
  for (auto _ : state) {
    bool c = sets[i % 1024].Covers(sets[(i * 7 + 3) % 1024]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_AttributeSetCovers);

void BM_DistinctCount(benchmark::State& state) {
  Table& t = SharedTable(50000, 16);
  AttributeSet attrs{0, 3, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.DistinctCount(attrs));
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_DistinctCount);

void BM_FindKeysEndToEnd(benchmark::State& state) {
  Table& t = SharedTable(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    KeyDiscoveryResult r = FindKeys(t);
    benchmark::DoNotOptimize(r.keys.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FindKeysEndToEnd)
    ->Args({10000, 16})
    ->Args({50000, 16})
    ->Args({10000, 40});

// Ablation: the attribute-ordering heuristic of Section 3.2.1.
void BM_FindKeysOrdering(benchmark::State& state) {
  Table& t = SharedTable(10000, 40);
  GordianOptions o;
  switch (state.range(0)) {
    case 0: o.attribute_order = GordianOptions::AttributeOrder::kSchema; break;
    case 1:
      o.attribute_order = GordianOptions::AttributeOrder::kCardinalityDesc;
      break;
    case 2:
      o.attribute_order = GordianOptions::AttributeOrder::kCardinalityAsc;
      break;
    default:
      o.attribute_order = GordianOptions::AttributeOrder::kRandom;
      o.order_seed = 5;
      break;
  }
  for (auto _ : state) {
    KeyDiscoveryResult r = FindKeys(t, o);
    benchmark::DoNotOptimize(r.keys.size());
  }
}
BENCHMARK(BM_FindKeysOrdering)
    ->Arg(0)  // schema
    ->Arg(1)  // cardinality desc (paper heuristic)
    ->Arg(2)  // cardinality asc
    ->Arg(3);  // random

// The parallel slice traversal at various worker counts; Arg(0) is the
// serial baseline on the same table.
void BM_FindKeysParallel(benchmark::State& state) {
  Table& t = SharedTable(50000, 16);
  GordianOptions o;
  o.traversal_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    KeyDiscoveryResult r = FindKeys(t, o);
    benchmark::DoNotOptimize(r.keys.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FindKeysParallel)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

Table MakeSliceHeavyTable();  // defined with the JSON helpers below

// Warm traversal (the tree-cache-hit shape): the tree — and for the frozen
// mode its flat layout — already exists; each iteration pays only the
// non-key search, with merge intermediates in a private pool, exactly like
// a service job hitting the TreeArtifactCache. Arg(0): 0 = pointer
// NonKeyFinder, 1 = FrozenNonKeyFinder.
void BM_TraverseWarm(benchmark::State& state) {
  static Table t = MakeSliceHeavyTable();
  static PrefixTree tree =
      PrefixTree::Build(t, SchemaOrder(t), GordianOptions::TreeBuild::kSorted);
  static std::unique_ptr<FrozenTree> frozen = FrozenTree::Freeze(tree);
  GordianOptions o;
  for (auto _ : state) {
    GordianStats stats;
    NonKeySet set(&stats);
    PrefixTree::NodePool merge_pool;
    if (state.range(0) == 0) {
      NonKeyFinder finder(tree, o, &set, &stats);
      finder.SetMergePool(&merge_pool);
      benchmark::DoNotOptimize(finder.Run());
    } else {
      FrozenNonKeyFinder finder(*frozen, o, &set, &stats);
      finder.SetMergePool(&merge_pool);
      benchmark::DoNotOptimize(finder.Run());
    }
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
  state.SetLabel(state.range(0) == 0 ? "pointer" : "frozen");
}
BENCHMARK(BM_TraverseWarm)->Arg(0)->Arg(1);

// Rows [begin, end) of `t` re-materialised as a RowBatch — the append-side
// input format.
RowBatch TableSliceToBatch(const Table& t, int64_t begin, int64_t end) {
  RowBatch batch(t.num_columns());
  std::vector<Value> row(static_cast<size_t>(t.num_columns()));
  for (int64_t r = begin; r < end; ++r) {
    for (int c = 0; c < t.num_columns(); ++c)
      row[static_cast<size_t>(c)] = t.value(r, c);
    batch.AppendRow(row);
  }
  return batch;
}

// Slice-heavy uniform data at an arbitrary size (seed varies with the size
// so every table is a fresh draw, not a prefix of another).
Table MakeUniformTable(int64_t rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(8, rows, 32, 0.3, seed);
  spec.ensure_unique_rows = true;
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  if (!s.ok()) std::cerr << s.ToString() << "\n";
  return t;
}

// Per-batch cost of the continuous-profiling loop: absorb a 512-row delta
// into the standing tree and re-traverse warm-started from the previous
// non-keys. Each iteration appends a distinct slice of a pregenerated pool,
// so the table grows exactly as it would in production; iterations are
// capped so the pool is never recycled (re-appending identical rows would
// fabricate duplicate entities and short-circuit discovery).
void BM_IncrementalAppend(benchmark::State& state) {
  const int64_t base_rows = state.range(0);
  Table base = MakeUniformTable(base_rows, 906 + static_cast<uint64_t>(
                                                     base_rows));
  Table pool = MakeUniformTable(4096, 917);
  IncrementalProfiler prof;
  Status s = IncrementalProfiler::Begin(base, GordianOptions(), &prof);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  int64_t off = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RowBatch delta = TableSliceToBatch(pool, off, off + 512);
    off += 512;
    state.ResumeTiming();
    s = prof.Append(delta);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.counters["rows"] = static_cast<double>(prof.num_rows());
}
BENCHMARK(BM_IncrementalAppend)
    ->Arg(5000)
    ->Arg(20000)
    ->Iterations(8);

// One timed FindKeys configuration for the JSON summary: best wall time of
// `reps` runs plus the reported peak bytes of the last run.
struct KernelSample {
  double best_seconds = 0;
  int64_t peak_bytes = 0;
  int64_t threads_used = 0;
  size_t num_keys = 0;
};

KernelSample MeasureFindKeys(const Table& t, int threads, int reps) {
  KernelSample sample;
  for (int i = 0; i < reps; ++i) {
    GordianOptions o;
    o.traversal_threads = threads;
    Stopwatch watch;
    KeyDiscoveryResult r = FindKeys(t, o);
    const double secs = watch.ElapsedSeconds();
    if (i == 0 || secs < sample.best_seconds) sample.best_seconds = secs;
    sample.peak_bytes = r.stats.peak_memory_bytes;
    sample.threads_used = r.stats.traversal_threads_used;
    sample.num_keys = r.keys.size();
  }
  return sample;
}

// A table whose traversal work lives inside the top-level slices (moderate
// cardinality everywhere), so the parallel fan-out has something to chew
// on. OPIC-like data puts a near-unique column at the root under the
// default ordering, which single-entity-prunes every slice and leaves only
// the serial root merge — worth measuring too, as the parallel mode's
// worst case.
Table MakeSliceHeavyTable() { return MakeUniformTable(20000, 906); }

void WriteDatasetJson(std::ostream& os, const std::string& name,
                      const Table& t, int reps) {
  const KernelSample serial = MeasureFindKeys(t, 0, reps);
  os << "    {\"name\": \"" << name << "\", \"rows\": " << t.num_rows()
     << ", \"attributes\": " << t.num_columns() << ",\n"
     << "     \"serial\": {\"wall_seconds\": " << serial.best_seconds
     << ", \"peak_bytes\": " << serial.peak_bytes
     << ", \"keys\": " << serial.num_keys << "},\n"
     << "     \"parallel\": [\n";
  const int thread_counts[] = {1, 2, 4, 8};
  for (size_t i = 0; i < 4; ++i) {
    const KernelSample p = MeasureFindKeys(t, thread_counts[i], reps);
    os << "       {\"threads\": " << thread_counts[i]
       << ", \"threads_used\": " << p.threads_used
       << ", \"wall_seconds\": " << p.best_seconds
       << ", \"peak_bytes\": " << p.peak_bytes
       << ", \"keys\": " << p.num_keys
       << ", \"speedup_vs_serial\": "
       << (p.best_seconds > 0 ? serial.best_seconds / p.best_seconds : 0)
       << "}" << (i + 1 < 4 ? "," : "") << "\n";
  }
  os << "     ]}";
}

// Best-of-`reps` wall time of one warm traversal (tree prebuilt; frozen
// mode also has the flat layout prebuilt — the tree-cache-hit shape).
template <typename TreeT, typename FinderT>
double MeasureWarmTraversal(TreeT& tree, int reps) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    GordianOptions o;
    GordianStats stats;
    NonKeySet set(&stats);
    PrefixTree::NodePool merge_pool;
    FinderT finder(tree, o, &set, &stats);
    finder.SetMergePool(&merge_pool);
    Stopwatch watch;
    finder.Run();
    const double secs = watch.ElapsedSeconds();
    if (i == 0 || secs < best) best = secs;
  }
  return best;
}

// Frozen-vs-pointer traversal summary over one dataset: warm wall times of
// both representations on the same tree, the freeze pass's one-time cost,
// and the flat layout's footprint.
void WriteFrozenDatasetJson(std::ostream& os, const std::string& name,
                            const Table& t, int reps) {
  PrefixTree tree =
      PrefixTree::Build(t, SchemaOrder(t), GordianOptions::TreeBuild::kSorted);
  Stopwatch freeze_watch;
  std::unique_ptr<FrozenTree> frozen = FrozenTree::Freeze(tree);
  const double freeze_seconds = freeze_watch.ElapsedSeconds();

  const double pointer_secs =
      MeasureWarmTraversal<PrefixTree, NonKeyFinder>(tree, reps);
  const double frozen_secs =
      MeasureWarmTraversal<FrozenTree, FrozenNonKeyFinder>(*frozen, reps);

  os << "    {\"name\": \"" << name << "\", \"rows\": " << t.num_rows()
     << ", \"attributes\": " << t.num_columns() << ",\n"
     << "     \"pointer_wall_seconds\": " << pointer_secs
     << ", \"frozen_wall_seconds\": " << frozen_secs
     << ", \"speedup\": "
     << (frozen_secs > 0 ? pointer_secs / frozen_secs : 0) << ",\n"
     << "     \"freeze_wall_seconds\": " << freeze_seconds
     << ", \"frozen_bytes\": " << frozen->ApproxBytes()
     << ", \"bytes_per_node\": " << frozen->BytesPerNode()
     << ", \"nodes\": " << frozen->node_count() << "}";
}

// Append-vs-full grid: per-batch latency of the incremental path (absorb
// the delta into the standing tree, then a warm-started re-traversal)
// against a from-scratch FindKeys over the concatenated table. Read along
// base_rows at fixed delta_rows for the sublinear-in-table-size trend, and
// along delta_rows at fixed base_rows for the ~linear-in-delta trend.
void WriteAppendVsFullJson(std::ostream& os, int reps) {
  const int64_t base_sizes[] = {5000, 20000, 50000};
  const int64_t delta_sizes[] = {128, 512, 2048};
  Table pool = MakeUniformTable(3 * 2048, 917);
  os << "   \"config\": \"append: IncrementalProfiler::Append (tree absorb "
        "+ warm re-traversal, serial); full: from-scratch FindKeys on the "
        "concatenated table, serial; best of reps\",\n"
     << "   \"dataset\": \"uniform_8attr_card32_unique_rows\",\n"
     << "   \"points\": [\n";
  bool first = true;
  for (int64_t base_rows : base_sizes) {
    Table base =
        MakeUniformTable(base_rows, 906 + static_cast<uint64_t>(base_rows));
    for (int64_t delta_rows : delta_sizes) {
      // One standing profiler per grid point; each rep appends a distinct
      // pool slice (the table drifts by at most reps * delta rows, noise
      // against the base size) and the best wall time is kept.
      GordianOptions opts;
      opts.traversal_threads = -1;  // pin serial on both sides of the grid
      IncrementalProfiler prof;
      Status s = IncrementalProfiler::Begin(base, opts, &prof);
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        return;
      }
      double append_best = 0;
      int64_t off = 0;
      for (int i = 0; i < reps; ++i) {
        RowBatch delta = TableSliceToBatch(pool, off, off + delta_rows);
        off += delta_rows;
        Stopwatch watch;
        s = prof.Append(delta);
        const double secs = watch.ElapsedSeconds();
        if (!s.ok()) std::cerr << s.ToString() << "\n";
        if (i == 0 || secs < append_best) append_best = secs;
      }
      // The full-rerun strawman profiles base + one delta from scratch.
      TableBuilder builder(base.schema());
      builder.AddBatch(TableSliceToBatch(base, 0, base.num_rows()));
      builder.AddBatch(TableSliceToBatch(pool, 0, delta_rows));
      Table concat;
      s = builder.Build(&concat);
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        return;
      }
      const KernelSample full = MeasureFindKeys(concat, -1, reps);
      if (!first) os << ",\n";
      first = false;
      os << "    {\"base_rows\": " << base_rows
         << ", \"delta_rows\": " << delta_rows
         << ", \"append_wall_seconds\": " << append_best
         << ", \"full_wall_seconds\": " << full.best_seconds
         << ", \"speedup_vs_full\": "
         << (append_best > 0 ? full.best_seconds / append_best : 0) << "}";
    }
  }
  os << "\n   ]\n";
}

// Serial-vs-parallel kernel summary, one JSON object per dataset and
// configuration. Written after the google-benchmark run so CI can diff wall
// time and peak bytes across commits without parsing human-oriented output.
void WriteKernelJson() {
  const char* env_path = std::getenv("GORDIAN_BENCH_JSON");
  const std::string path =
      (env_path != nullptr && *env_path != '\0') ? env_path
                                                 : "BENCH_kernel.json";
  constexpr int kReps = 3;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  Table slice_heavy = MakeSliceHeavyTable();
  os << "{\n"
     << "  \"benchmark\": \"gordian_kernel\",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"reps\": " << kReps << ",\n"
     << "  \"datasets\": [\n";
  WriteDatasetJson(os, "uniform_20k_8attr_card32", slice_heavy, kReps);
  os << ",\n";
  WriteDatasetJson(os, "opic_50k_16attr", SharedTable(50000, 16), kReps);
  os << "\n  ],\n"
     << "  \"frozen_vs_pointer\": {\n"
     << "   \"config\": \"warm traversal (tree-cache hit): tree and flat "
        "layout prebuilt, private merge pool, serial\",\n"
     << "   \"simd_kernel\": \"" << frozen_simd::ActiveKernel() << "\",\n"
     << "   \"datasets\": [\n";
  WriteFrozenDatasetJson(os, "uniform_20k_8attr_card32", slice_heavy, kReps);
  os << ",\n";
  WriteFrozenDatasetJson(os, "opic_50k_16attr", SharedTable(50000, 16),
                         kReps);
  os << "\n   ]\n  },\n"
     << "  \"append_vs_full\": {\n";
  WriteAppendVsFullJson(os, kReps);
  os << "  }\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace gordian

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gordian::WriteKernelJson();
  return 0;
}
