// Regenerates Table 2: maximum memory usage of GORDIAN vs. the brute-force
// variants on the three datasets. Memory is the instrumented footprint of
// each algorithm's own working structures (prefix tree + merge intermediates
// + NonKeySet for GORDIAN; the uniqueness hash table for brute force),
// maximized over the dataset's tables.
//
// A second section measures the spillable-ingest path: the TPC-H-shaped
// fact table is generated straight into a spilling TableBuilder, written to
// CSV, and re-ingested under a memory budget that is a fraction of the
// resident footprint. The spilled table's key report must be byte-identical
// to the resident one, and the ingest-time peak RSS must stay under an
// arena-leak bound (one resident copy + budget + mapped file + one batch of
// CSV text) that a reader failing to release its row batches would exceed
// by roughly the CSV size — that is the benchmark's pass/fail line, and the
// numbers land in BENCH_memory.json (overridable via
// GORDIAN_BENCH_MEMORY_JSON) for CI trend tracking.
//
// Usage: bench_table2_memory [--rows=N] [--budget_pct=N] [--spill_dir=path]
//   --rows        fact-table rows for the spill section (default 1,000,000;
//                 the 100M+ configurations from the scaling experiments run
//                 with --rows=100000000 and a few GB of scratch disk)
//   --budget_pct  ingest budget as a percent of the resident code bytes
//                 (default 25)

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/harness.h"
#include "bruteforce/brute_force.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/gordian.h"
#include "core/report.h"
#include "datagen/datasets.h"
#include "datagen/tpch_lite.h"
#include "table/csv.h"

namespace gordian {
namespace {

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // Linux: KiB
}

// Key report with run-dependent stats zeroed: byte equality then covers
// exactly what discovery observed, not how long it took.
std::string CanonicalReport(const Table& t, KeyDiscoveryResult r) {
  DatabaseProfile p;
  r.stats = GordianStats{};
  p.tables.push_back({"fact", &t, std::move(r)});
  return ProfileToJson(p);
}

void RunTable2() {
  bench::Banner("Maximum memory usage", "Table 2");

  bench::SeriesPrinter table({"Dataset", "GORDIAN (MB)",
                              "Brute force <=4 attribs (MB)",
                              "Brute force single attrib (MB)"});

  for (const Dataset& d : MakeAllDatasets(/*scale=*/0.5, /*seed=*/77)) {
    int64_t gordian_peak = 0, up4_peak = 0, single_peak = 0;
    for (const NamedTable& t : d.tables) {
      KeyDiscoveryResult g = FindKeys(t.table);
      gordian_peak = std::max(gordian_peak, g.stats.peak_memory_bytes);

      BruteForceOptions up4;
      up4.max_arity = 4;
      up4.time_budget_seconds = 30;
      up4_peak = std::max(up4_peak,
                          BruteForceFindKeys(t.table, up4).peak_memory_bytes);

      BruteForceOptions single;
      single.max_arity = 1;
      single_peak = std::max(
          single_peak, BruteForceFindKeys(t.table, single).peak_memory_bytes);
    }
    table.AddRow({d.name, bench::FormatMB(gordian_peak),
                  bench::FormatMB(up4_peak), bench::FormatMB(single_peak)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the <=4-attribute brute force needs several\n"
      "times GORDIAN's memory; GORDIAN stays in the neighborhood of the\n"
      "single-attribute checker while finding all composite keys.\n");
}

struct SpillRun {
  int64_t rows = 0;
  int num_columns = 0;
  int64_t budget_bytes = 0;
  int64_t resident_bytes = 0;      // resident table's ApproxBytes
  int64_t spilled_heap_bytes = 0;  // spilled table's ApproxBytes
  int64_t spilled_mapped_bytes = 0;
  int spilled_columns = 0;
  int64_t ingest_peak_rss = 0;  // process peak RSS right after spilled ingest
  int64_t rss_bound = 0;        // arena-leak bound the peak is judged against
  double spilled_ingest_seconds = 0;
  double resident_ingest_seconds = 0;
  double spilled_profile_seconds = 0;
  double resident_profile_seconds = 0;
  bool report_identical = false;
  bool rss_under_resident = false;
  size_t keys = 0;
};

int RunSpillSection(int64_t rows, int budget_pct, const std::string& spill_dir,
                    SpillRun* out) {
  bench::Banner("spillable ingest",
                "budgeted CodeColumn storage vs fully resident tables");
  const int64_t base_rss = PeakRssBytes();

  SpillPolicy policy;
  // Budget as a fraction of the code bytes the resident table would hold;
  // dictionaries always stay resident, so they are outside the budget on
  // both sides of the comparison.
  const int num_columns = TpchFactSchema().num_columns();
  policy.memory_budget_bytes =
      std::max<int64_t>(1, rows * num_columns * 4 * budget_pct / 100);
  policy.spill_dir = spill_dir;

  // Generate straight into a spilling builder and export to CSV, so the
  // resident fact table never exists before the spilled-ingest phase whose
  // peak RSS the pass/fail line below judges.
  const std::string csv = spill_dir + "/fact.csv";
  Stopwatch gen_watch;
  {
    TableBuilder b(TpchFactSchema(), policy);
    FillTpchFact(rows, /*seed=*/4242, &b);
    Table staged;
    Status s = b.Build(&staged);
    if (!s.ok()) {
      std::fprintf(stderr, "spilled generation failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    s = WriteCsv(staged, CsvOptions{}, csv);
    if (!s.ok()) {
      std::fprintf(stderr, "csv export failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const double gen_seconds = gen_watch.ElapsedSeconds();

  SpillRun run;
  run.rows = rows;
  run.num_columns = num_columns;
  run.budget_bytes = policy.memory_budget_bytes;

  // Spilled ingest + profile.
  std::string spilled_report;
  {
    Stopwatch watch;
    Table spilled;
    Status s = ReadCsv(csv, CsvOptions{}, policy, &spilled);
    if (!s.ok()) {
      std::fprintf(stderr, "spilled ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    run.spilled_ingest_seconds = watch.ElapsedSeconds();
    run.ingest_peak_rss = PeakRssBytes();
    run.spilled_heap_bytes = spilled.ApproxBytes();
    run.spilled_mapped_bytes = spilled.MappedBytes();
    run.spilled_columns = spilled.spilled_column_count();
    Stopwatch profile_watch;
    KeyDiscoveryResult r = FindKeys(spilled);
    run.spilled_profile_seconds = profile_watch.ElapsedSeconds();
    run.keys = r.keys.size();
    spilled_report = CanonicalReport(spilled, std::move(r));
  }

  // Resident ingest + profile of the same CSV, the equivalence oracle.
  {
    Stopwatch watch;
    Table resident;
    Status s = ReadCsv(csv, CsvOptions{}, &resident);
    if (!s.ok()) {
      std::fprintf(stderr, "resident ingest failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    run.resident_ingest_seconds = watch.ElapsedSeconds();
    run.resident_bytes = resident.ApproxBytes();
    Stopwatch profile_watch;
    KeyDiscoveryResult r = FindKeys(resident);
    run.resident_profile_seconds = profile_watch.ElapsedSeconds();
    run.report_identical =
        spilled_report == CanonicalReport(resident, std::move(r));
  }
  // The pass/fail line. The unavoidable floor of a budgeted ingest is the
  // dictionaries (always resident, the bulk of ApproxBytes on this schema),
  // the code budget itself, and the spilled files' pages (OpenSpilled
  // validates every chunk, touching the whole mapping). On top of that the
  // CSV reader holds one batch of row text at a time. An ingest that failed
  // to release its RowBatch arenas after encoding would instead accumulate
  // roughly the whole CSV text and blow through this bound.
  int64_t csv_bytes = 0;
  {
    std::error_code size_ec;
    auto sz = std::filesystem::file_size(csv, size_ec);
    if (!size_ec) csv_bytes = static_cast<int64_t>(sz);
  }
  const int64_t rss_bound = run.resident_bytes + run.budget_bytes +
                            run.spilled_mapped_bytes + csv_bytes / 4 +
                            (int64_t{8} << 20);
  run.rss_bound = rss_bound;
  run.rss_under_resident = run.ingest_peak_rss - base_rss < rss_bound;

  bench::SeriesPrinter table(
      {"configuration", "ingest s", "profile s", "heap MB", "mapped MB"});
  table.AddRow({"resident", bench::FormatSeconds(run.resident_ingest_seconds),
                bench::FormatSeconds(run.resident_profile_seconds),
                bench::FormatMB(run.resident_bytes), bench::FormatMB(0)});
  table.AddRow(
      {"spilled (" + std::to_string(budget_pct) + "% budget)",
       bench::FormatSeconds(run.spilled_ingest_seconds),
       bench::FormatSeconds(run.spilled_profile_seconds),
       bench::FormatMB(run.spilled_heap_bytes),
       bench::FormatMB(run.spilled_mapped_bytes)});
  table.Print();

  std::printf(
      "\n%lld rows x %d columns; %d/%d columns spilled under a %.2f MB "
      "budget;\nreports byte-identical: %s; ingest peak RSS %.2f MB over "
      "baseline (%s the %.2f MB arena-leak bound)\n",
      static_cast<long long>(run.rows), run.num_columns, run.spilled_columns,
      run.num_columns, static_cast<double>(run.budget_bytes) / 1e6,
      run.report_identical ? "yes" : "NO",
      static_cast<double>(run.ingest_peak_rss - base_rss) / 1e6,
      run.rss_under_resident ? "under" : "NOT UNDER",
      static_cast<double>(rss_bound) / 1e6);
  std::printf("generation+export: %.3f s\n", gen_seconds);

  std::error_code ec;
  std::filesystem::remove(csv, ec);
  *out = run;
  return run.report_identical && run.rss_under_resident ? 0 : 1;
}

void WriteMemoryJson(int budget_pct, const SpillRun& r) {
  const char* env_path = std::getenv("GORDIAN_BENCH_MEMORY_JSON");
  const std::string path = (env_path != nullptr && *env_path != '\0')
                               ? env_path
                               : "BENCH_memory.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  os << "{\n"
     << "  \"benchmark\": \"spillable_ingest_memory\",\n"
     << "  \"rows\": " << r.rows << ",\n"
     << "  \"columns\": " << r.num_columns << ",\n"
     << "  \"budget_pct_of_resident_codes\": " << budget_pct << ",\n"
     << "  \"budget_bytes\": " << r.budget_bytes << ",\n"
     << "  \"resident_approx_bytes\": " << r.resident_bytes << ",\n"
     << "  \"spilled_heap_bytes\": " << r.spilled_heap_bytes << ",\n"
     << "  \"spilled_mapped_bytes\": " << r.spilled_mapped_bytes << ",\n"
     << "  \"spilled_columns\": " << r.spilled_columns << ",\n"
     << "  \"ingest_peak_rss_bytes\": " << r.ingest_peak_rss << ",\n"
     << "  \"ingest_rss_bound_bytes\": " << r.rss_bound << ",\n"
     << "  \"spilled_ingest_seconds\": " << r.spilled_ingest_seconds << ",\n"
     << "  \"resident_ingest_seconds\": " << r.resident_ingest_seconds << ",\n"
     << "  \"spilled_profile_seconds\": " << r.spilled_profile_seconds
     << ",\n"
     << "  \"resident_profile_seconds\": " << r.resident_profile_seconds
     << ",\n"
     << "  \"keys_found\": " << r.keys << ",\n"
     << "  \"report_identical\": " << (r.report_identical ? "true" : "false")
     << ",\n"
     << "  \"ingest_rss_under_bound\": "
     << (r.rss_under_resident ? "true" : "false") << "\n"
     << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace gordian

int main(int argc, char** argv) {
  gordian::Flags flags(argc, argv);
  const int64_t rows = flags.GetInt("rows", 1000000);
  const int budget_pct = static_cast<int>(flags.GetInt("budget_pct", 25));
  std::string spill_dir = flags.GetString(
      "spill_dir",
      (std::filesystem::temp_directory_path() / "gordian_bench_spill")
          .string());
  std::error_code ec;
  std::filesystem::create_directories(spill_dir, ec);

  // The spill section must run first: its pass/fail line compares the
  // process peak RSS during budgeted ingest against the resident footprint,
  // and the Table 2 datasets would raise the (monotonic) peak before it.
  gordian::SpillRun run;
  int rc = gordian::RunSpillSection(rows, budget_pct, spill_dir, &run);
  gordian::WriteMemoryJson(budget_pct, run);

  gordian::RunTable2();
  return rc;
}
