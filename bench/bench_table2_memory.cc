// Regenerates Table 2: maximum memory usage of GORDIAN vs. the brute-force
// variants on the three datasets. Memory is the instrumented footprint of
// each algorithm's own working structures (prefix tree + merge intermediates
// + NonKeySet for GORDIAN; the uniqueness hash table for brute force),
// maximized over the dataset's tables.

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/datasets.h"

namespace gordian {
namespace {

void Run() {
  bench::Banner("Maximum memory usage", "Table 2");

  bench::SeriesPrinter table({"Dataset", "GORDIAN (MB)",
                              "Brute force <=4 attribs (MB)",
                              "Brute force single attrib (MB)"});

  for (const Dataset& d : MakeAllDatasets(/*scale=*/0.5, /*seed=*/77)) {
    int64_t gordian_peak = 0, up4_peak = 0, single_peak = 0;
    for (const NamedTable& t : d.tables) {
      KeyDiscoveryResult g = FindKeys(t.table);
      gordian_peak = std::max(gordian_peak, g.stats.peak_memory_bytes);

      BruteForceOptions up4;
      up4.max_arity = 4;
      up4.time_budget_seconds = 30;
      up4_peak = std::max(up4_peak,
                          BruteForceFindKeys(t.table, up4).peak_memory_bytes);

      BruteForceOptions single;
      single.max_arity = 1;
      single_peak = std::max(
          single_peak, BruteForceFindKeys(t.table, single).peak_memory_bytes);
    }
    table.AddRow({d.name, bench::FormatMB(gordian_peak),
                  bench::FormatMB(up4_peak), bench::FormatMB(single_peak)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the <=4-attribute brute force needs several\n"
      "times GORDIAN's memory; GORDIAN stays in the neighborhood of the\n"
      "single-attribute checker while finding all composite keys.\n");
}

}  // namespace
}  // namespace gordian

int main() {
  gordian::Run();
  return 0;
}
