#include "core/gordian.h"

#include <algorithm>

#include "core/pipeline.h"

namespace gordian {

KeyDiscoveryResult FindKeys(const Table& table, const GordianOptions& options) {
  // The facade is a thin composition over the staged pipeline: encode, tree
  // build, traversal (serial or parallel), key conversion, validation. See
  // core/pipeline.h and docs/architecture.md.
  ProfileSession session(options);
  KeyDiscoveryResult result;
  (void)session.Run(table, &result);  // default-plan stages never fail
  return result;
}

void ValidateKeys(const Table& full_table, KeyDiscoveryResult* result) {
  for (DiscoveredKey& k : result->keys) {
    // Fingerprint-based distinct counting: validating hundreds of candidate
    // keys against a large table must not pay a sort per key.
    k.exact_strength =
        static_cast<double>(full_table.DistinctCountFast(k.attrs)) /
        static_cast<double>(std::max<int64_t>(1, full_table.num_rows()));
  }
}

VerificationReport VerifyResult(const Table& table,
                                const KeyDiscoveryResult& result) {
  VerificationReport report;
  auto problem = [&](const std::string& msg) {
    report.ok = false;
    if (report.problems.size() < 20) report.problems.push_back(msg);
  };

  if (result.no_keys) {
    if (table.IsUnique(AttributeSet::FirstN(table.num_columns()))) {
      problem("result claims no keys exist, but rows are distinct");
    }
    return report;
  }

  for (const DiscoveredKey& key : result.keys) {
    if (!result.sampled && !table.IsUnique(key.attrs)) {
      problem("reported key is not unique: " + key.attrs.ToString());
    }
    key.attrs.ForEach([&](int a) {
      AttributeSet smaller = key.attrs;
      smaller.Reset(a);
      if (!smaller.Empty() && !result.sampled && table.IsUnique(smaller)) {
        problem("reported key is not minimal: " + key.attrs.ToString());
      }
    });
  }
  for (const AttributeSet& nk : result.non_keys) {
    if (table.IsUnique(nk)) {
      problem("reported non-key is actually unique: " + nk.ToString());
    }
  }
  for (size_t i = 0; i < result.keys.size(); ++i) {
    for (size_t j = 0; j < result.keys.size(); ++j) {
      if (i != j && result.keys[i].attrs.Covers(result.keys[j].attrs)) {
        problem("key list is not an antichain: " +
                result.keys[i].attrs.ToString() + " covers " +
                result.keys[j].attrs.ToString());
      }
    }
  }
  for (size_t i = 0; i < result.non_keys.size(); ++i) {
    for (size_t j = 0; j < result.non_keys.size(); ++j) {
      if (i != j && result.non_keys[i].Covers(result.non_keys[j])) {
        problem("non-key list is not an antichain");
      }
    }
  }
  return report;
}

std::string FormatResult(const Table& table, const KeyDiscoveryResult& result) {
  std::string out;
  if (result.no_keys) {
    return "no keys exist (some entity occurs more than once)\n";
  }
  out += "keys (" + std::to_string(result.keys.size()) + "):\n";
  for (const DiscoveredKey& k : result.keys) {
    out += "  " + table.schema().Describe(k.attrs);
    if (result.sampled) {
      out += "  est-strength>=" + std::to_string(k.estimated_strength);
    }
    if (k.exact_strength >= 0) {
      out += "  strength=" + std::to_string(k.exact_strength);
    }
    out += "\n";
  }
  out += "non-keys (" + std::to_string(result.non_keys.size()) + "):\n";
  for (const AttributeSet& nk : result.non_keys) {
    out += "  " + table.schema().Describe(nk) + "\n";
  }
  return out;
}

}  // namespace gordian
