#include "core/gordian.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/key_conversion.h"
#include "core/non_key_finder.h"
#include "core/non_key_set.h"
#include "core/parallel_finder.h"
#include "core/prefix_tree.h"
#include "core/strength.h"

namespace gordian {

namespace {

// GORDIAN_THREADS engages the parallel traversal for callers that leave
// GordianOptions::traversal_threads at 0 (CI runs the whole suite this way).
// Read once: discovery may run on many threads and getenv is not reliably
// safe against concurrent environment mutation.
int EnvTraversalThreads() {
  static const int cached = [] {
    const char* s = std::getenv("GORDIAN_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const int v = std::atoi(s);
    return v > 0 ? v : 0;
  }();
  return cached;
}

// Both traversal modes report non-keys in this canonical order (cardinality,
// then bitset order — the same ordering MinimizeSets uses for keys), making
// reports byte-identical across serial and parallel runs: the discovered
// antichain's *content* is mode-invariant, but its insertion order is not.
void CanonicalizeNonKeys(std::vector<AttributeSet>* non_keys) {
  std::sort(non_keys->begin(), non_keys->end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              const int ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              return a < b;
            });
}

std::vector<int> ComputeAttributeOrder(const Table& table,
                                       const GordianOptions& options) {
  const int d = table.num_columns();
  std::vector<int> order(d);
  std::iota(order.begin(), order.end(), 0);
  switch (options.attribute_order) {
    case GordianOptions::AttributeOrder::kSchema:
      break;
    case GordianOptions::AttributeOrder::kCardinalityDesc:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return table.ColumnCardinality(a) > table.ColumnCardinality(b);
      });
      break;
    case GordianOptions::AttributeOrder::kCardinalityAsc:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return table.ColumnCardinality(a) < table.ColumnCardinality(b);
      });
      break;
    case GordianOptions::AttributeOrder::kRandom: {
      Random rng(options.order_seed);
      for (int i = d - 1; i > 0; --i) {
        std::swap(order[i],
                  order[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
      }
      break;
    }
  }
  return order;
}

}  // namespace

namespace {

// Column positions containing at least one NULL.
std::vector<int> NullableColumns(const Table& table) {
  std::vector<int> nullable;
  for (int c = 0; c < table.num_columns(); ++c) {
    uint32_t null_code = table.dictionary(c).Lookup(Value::Null());
    if (null_code == UINT32_MAX) continue;
    for (uint32_t code : table.column_codes(c)) {
      if (code == null_code) {
        nullable.push_back(c);
        break;
      }
    }
  }
  return nullable;
}

}  // namespace

KeyDiscoveryResult FindKeys(const Table& table, const GordianOptions& options) {
  KeyDiscoveryResult result;
  const int d = table.num_columns();
  result.stats.num_attributes = d;
  if (d == 0) return result;

  // SQL-style null handling: bar nullable columns from the search entirely,
  // then lift the results of the projection back to original positions.
  if (options.null_semantics ==
      GordianOptions::NullSemantics::kExcludeNullableColumns) {
    std::vector<int> nullable = NullableColumns(table);
    if (!nullable.empty()) {
      std::vector<int> kept;
      size_t ni = 0;
      for (int c = 0; c < d; ++c) {
        if (ni < nullable.size() && nullable[ni] == c) {
          ++ni;
        } else {
          kept.push_back(c);
        }
      }
      if (kept.empty()) return result;  // nothing can be a key
      GordianOptions inner = options;
      inner.null_semantics = GordianOptions::NullSemantics::kNullEqualsNull;
      KeyDiscoveryResult projected = FindKeys(table.SelectColumns(kept), inner);
      auto remap = [&](const AttributeSet& attrs) {
        AttributeSet out;
        attrs.ForEach([&](int a) { out.Set(kept[a]); });
        return out;
      };
      for (DiscoveredKey& k : projected.keys) k.attrs = remap(k.attrs);
      for (AttributeSet& nk : projected.non_keys) nk = remap(nk);
      projected.stats.num_attributes = d;
      return projected;
    }
  }

  // Optional sampling phase (Section 3.9).
  const Table* data = &table;
  Table sample;
  if (options.sample_rows > 0 && options.sample_rows < table.num_rows()) {
    sample = table.SampleRows(options.sample_rows, options.sample_seed);
    data = &sample;
    result.sampled = true;
  }
  result.stats.rows_processed = data->num_rows();

  auto cancelled = [&options] {
    return options.cancel_flag != nullptr &&
           options.cancel_flag->load(std::memory_order_relaxed);
  };
  if (cancelled()) {
    result.incomplete = true;
    result.incomplete_reason = AbortReason::kCancelled;
    return result;
  }

  // Phase 1: compress the dataset into a prefix tree (Algorithm 2).
  Stopwatch watch;
  std::vector<int> order = ComputeAttributeOrder(*data, options);
  PrefixTree tree = PrefixTree::Build(*data, order, options.tree_build);
  result.stats.build_seconds = watch.ElapsedSeconds();
  result.stats.base_tree_nodes = tree.node_count();
  result.stats.base_tree_cells = tree.cell_count();

  if (tree.has_duplicate_entities()) {
    // Algorithm 2, lines 17-18: a repeated entity means no key exists.
    result.no_keys = true;
    result.non_keys.push_back(AttributeSet::FirstN(d));
    result.stats.peak_memory_bytes = tree.pool().peak_bytes();
    return result;
  }

  if (cancelled()) {
    result.incomplete = true;
    result.incomplete_reason = AbortReason::kCancelled;
    result.stats.peak_memory_bytes = tree.pool().peak_bytes();
    return result;
  }

  // Phase 2: discover all non-redundant non-keys (Algorithm 4), serially or
  // across worker threads (docs/parallel.md). The parallel path needs >= 2
  // top-level slices to fan out; everything smaller (leaf root, single
  // slice) is trivial and runs serially regardless.
  watch.Restart();
  int threads = options.traversal_threads;
  if (threads == 0) threads = EnvTraversalThreads();
  if (threads < 0) threads = 0;  // explicit "force serial"
  const bool parallel = threads >= 1 && tree.root() != nullptr &&
                        !tree.root()->is_leaf &&
                        tree.root()->cells.size() >= 2;
  int64_t worker_pool_bytes = 0;
  if (parallel) {
    NonKeySet merged_set(nullptr);
    ++result.stats.nodes_visited;  // the root, visited once in serial mode
    ParallelTraversalResult pr = ParallelFindNonKeys(
        tree, options, threads, &merged_set, &result.stats);
    result.incomplete = pr.aborted;
    result.incomplete_reason = pr.reason;
    result.stats.traversal_threads_used = pr.threads_used;
    result.stats.final_non_keys = merged_set.size();
    result.non_keys = merged_set.non_keys();
    worker_pool_bytes = pr.worker_pool_peak_bytes + merged_set.ApproxBytes();
  } else {
    NonKeySet non_key_set(&result.stats);
    NonKeyFinder finder(tree, options, &non_key_set, &result.stats);
    result.incomplete = !finder.Run();
    result.incomplete_reason = finder.abort_reason();
    result.stats.final_non_keys = non_key_set.size();
    result.non_keys = non_key_set.non_keys();
    worker_pool_bytes = non_key_set.ApproxBytes();
  }
  CanonicalizeNonKeys(&result.non_keys);
  result.stats.find_seconds = watch.ElapsedSeconds();
  result.stats.peak_memory_bytes = tree.pool().peak_bytes() + worker_pool_bytes;

  if (result.incomplete) {
    // A partial non-key set cannot certify keys (a set looks like a key
    // merely because its covering non-key was never discovered).
    return result;
  }

  // Phase 3: convert non-keys to minimal keys (Algorithm 6).
  watch.Restart();
  std::vector<AttributeSet> keys = NonKeysToKeys(result.non_keys, d);
  result.stats.convert_seconds = watch.ElapsedSeconds();

  result.keys.reserve(keys.size());
  for (const AttributeSet& k : keys) {
    DiscoveredKey dk;
    dk.attrs = k;
    dk.estimated_strength =
        result.sampled ? EstimatedStrengthLowerBound(*data, k) : 1.0;
    if (!result.sampled) dk.exact_strength = 1.0;
    result.keys.push_back(dk);
  }
  return result;
}

void ValidateKeys(const Table& full_table, KeyDiscoveryResult* result) {
  for (DiscoveredKey& k : result->keys) {
    // Fingerprint-based distinct counting: validating hundreds of candidate
    // keys against a large table must not pay a sort per key.
    k.exact_strength =
        static_cast<double>(full_table.DistinctCountFast(k.attrs)) /
        static_cast<double>(std::max<int64_t>(1, full_table.num_rows()));
  }
}

VerificationReport VerifyResult(const Table& table,
                                const KeyDiscoveryResult& result) {
  VerificationReport report;
  auto problem = [&](const std::string& msg) {
    report.ok = false;
    if (report.problems.size() < 20) report.problems.push_back(msg);
  };

  if (result.no_keys) {
    if (table.IsUnique(AttributeSet::FirstN(table.num_columns()))) {
      problem("result claims no keys exist, but rows are distinct");
    }
    return report;
  }

  for (const DiscoveredKey& key : result.keys) {
    if (!result.sampled && !table.IsUnique(key.attrs)) {
      problem("reported key is not unique: " + key.attrs.ToString());
    }
    key.attrs.ForEach([&](int a) {
      AttributeSet smaller = key.attrs;
      smaller.Reset(a);
      if (!smaller.Empty() && !result.sampled && table.IsUnique(smaller)) {
        problem("reported key is not minimal: " + key.attrs.ToString());
      }
    });
  }
  for (const AttributeSet& nk : result.non_keys) {
    if (table.IsUnique(nk)) {
      problem("reported non-key is actually unique: " + nk.ToString());
    }
  }
  for (size_t i = 0; i < result.keys.size(); ++i) {
    for (size_t j = 0; j < result.keys.size(); ++j) {
      if (i != j && result.keys[i].attrs.Covers(result.keys[j].attrs)) {
        problem("key list is not an antichain: " +
                result.keys[i].attrs.ToString() + " covers " +
                result.keys[j].attrs.ToString());
      }
    }
  }
  for (size_t i = 0; i < result.non_keys.size(); ++i) {
    for (size_t j = 0; j < result.non_keys.size(); ++j) {
      if (i != j && result.non_keys[i].Covers(result.non_keys[j])) {
        problem("non-key list is not an antichain");
      }
    }
  }
  return report;
}

std::string FormatResult(const Table& table, const KeyDiscoveryResult& result) {
  std::string out;
  if (result.no_keys) {
    return "no keys exist (some entity occurs more than once)\n";
  }
  out += "keys (" + std::to_string(result.keys.size()) + "):\n";
  for (const DiscoveredKey& k : result.keys) {
    out += "  " + table.schema().Describe(k.attrs);
    if (result.sampled) {
      out += "  est-strength>=" + std::to_string(k.estimated_strength);
    }
    if (k.exact_strength >= 0) {
      out += "  strength=" + std::to_string(k.exact_strength);
    }
    out += "\n";
  }
  out += "non-keys (" + std::to_string(result.non_keys.size()) + "):\n";
  for (const AttributeSet& nk : result.non_keys) {
    out += "  " + table.schema().Describe(nk) + "\n";
  }
  return out;
}

}  // namespace gordian
