#ifndef GORDIAN_CORE_FD_H_
#define GORDIAN_CORE_FD_H_

#include <vector>

#include "common/attribute_set.h"
#include "core/gordian.h"
#include "table/table.h"

namespace gordian {

// Ranked top-k functional-dependency discovery, derived from the artifacts a
// GORDIAN run already produced. The maximal non-keys bound the candidate
// space for free: a non-trivial FD X -> A with non-unique X can only hold if
// X ∪ {A} fits inside some maximal non-key (were X unique, X would be a
// superkey and the FD trivial; were X ∪ {A} not inside a non-key it would
// contain a key, again making X a superkey). So candidates are enumerated as
// subsets of the discovered non-keys instead of the full 2^d lattice, then
// verified exactly by one distinct-count comparison each:
// X -> A  iff  |distinct(X ∪ {A})| = |distinct(X)|.
//
// Candidates are ranked by redundancy = 1 - |distinct(X)| / rows — the
// fraction of rows that repeat an X-value and are therefore determined "for
// free" by the dependency (cf. redundancy-driven top-k FD discovery). High
// redundancy means the FD compresses/normalizes many rows; redundancy 0
// would mean X is a key and the FD trivial.

struct FdCandidate {
  AttributeSet lhs;       // determinant X (never empty, never a key)
  int rhs = 0;            // determined attribute A, not in X
  int64_t lhs_distinct = 0;
  double redundancy = 0;  // 1 - lhs_distinct / rows
};

struct FdOptions {
  // Determinants with more attributes than this are not considered; the
  // verified FD space grows combinatorially with LHS width and wide
  // determinants are rarely meaningful.
  int max_lhs_size = 2;

  // Keep only the top-k ranked FDs per table. <= 0 keeps all verified FDs.
  int top_k = 10;

  // Hard cap on exact verifications (distinct-count pairs) per table, a
  // guard against adversarially wide non-keys. Candidates are enumerated in
  // the documented deterministic order, so the cap cuts a stable prefix.
  // <= 0 removes the cap.
  int64_t max_verifications = 10000;
};

// The documented total order used for the ranking: redundancy descending,
// then LHS size ascending, LHS ascending (AttributeSet order), RHS
// ascending. No two distinct candidates compare equal, so reports are
// byte-stable across thread counts and discovery paths.
bool FdCandidateLess(const FdCandidate& a, const FdCandidate& b);

// Derives ranked FD candidates for `table` from `result` (a completed
// discovery on the same data). Returns at most options.top_k FDs, sorted by
// FdCandidateLess. Empty when the result is incomplete (a partial non-key
// set would silently truncate the candidate space).
std::vector<FdCandidate> DiscoverFds(const Table& table,
                                     const KeyDiscoveryResult& result,
                                     const FdOptions& options = {});

}  // namespace gordian

#endif  // GORDIAN_CORE_FD_H_
