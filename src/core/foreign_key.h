#ifndef GORDIAN_CORE_FOREIGN_KEY_H_
#define GORDIAN_CORE_FOREIGN_KEY_H_

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "core/gordian.h"
#include "table/table.h"

namespace gordian {

// Foreign-key (inclusion dependency) discovery — the extension the paper
// names as future work ("we plan to extend our approach to permit
// identification of foreign-key relationships, thereby automating the
// discovery of full entity-relationship diagrams", Section 6).
//
// A candidate foreign key is a column set F of a referencing table whose
// projected value set is (almost) contained in the value set of a discovered
// key K of a referenced table. Candidates are scored by coverage =
// |distinct F-tuples that appear among K-tuples| / |distinct F-tuples|; a
// strict inclusion dependency has coverage 1.
//
// NULL semantics follow SQL foreign keys: a referencing tuple containing a
// NULL in any foreign-key column asserts nothing, so it is excluded from
// the coverage denominator entirely (it is neither covered nor uncovered,
// and does not count toward distinct_fk_tuples).
//
// Discovery is dictionary-first: candidate column pairs are pruned by
// comparing per-column dictionaries (value type, then value-set containment
// probed dictionary-to-dictionary) before any row is touched, and the
// survivors are verified in code space — referencing codes are translated
// through a dictionary-to-dictionary mapping and probed against the
// referenced key's code tuples, streaming CodeColumn chunks so spilled
// tables verify without residency. The original value-materializing path is
// kept behind ForeignKeyOptions::dictionary_first = false as the
// equivalence oracle: both paths produce identical candidate lists.

struct ForeignKeyCandidate {
  int referencing_table = 0;  // index into the input table list
  // Columns of the referencing table, ordered to correspond position-wise
  // with the referenced key's columns (ascending). A plain AttributeSet
  // would lose that pairing for multi-column foreign keys.
  std::vector<int> foreign_key_columns;
  int referenced_table = 0;    // index into the input table list
  AttributeSet referenced_key; // a discovered key of that table
  double coverage = 0;         // fraction of distinct FK tuples found in K
  // Reverse direction: fraction of the referenced key's values that are
  // actually referenced. Genuine foreign keys tend to reference a sizable
  // share of the key's domain; a small integer column that merely falls
  // inside a dense surrogate-key range does not.
  double referenced_coverage = 0;
  int64_t distinct_fk_tuples = 0;  // NULL-free distinct tuples (denominator)
};

struct ForeignKeyOptions {
  // Candidates below this coverage are dropped. 1.0 = strict inclusion only.
  double min_coverage = 1.0;

  // Only single-column and two-column foreign keys are searched by default;
  // wider FKs are rare and the candidate space grows as d^arity.
  int max_arity = 2;

  // Skip referencing column sets whose distinct count is below this (tiny
  // domains like flags produce meaningless inclusions).
  int64_t min_distinct_values = 20;

  // Names must be paired with equal value types; a numeric FK never
  // references a string key.
  bool require_type_compatibility = true;

  // Candidates referencing less than this fraction of the key's values are
  // dropped (see ForeignKeyCandidate::referenced_coverage). 0 keeps all.
  double min_referenced_coverage = 0.0;

  // Verification path. True (default): dictionary-first — prune by
  // dictionary comparison, verify survivors over translated codes. False:
  // the legacy path that decodes every row back into Values and hashes
  // them; kept as the equivalence oracle (identical candidates either way).
  bool dictionary_first = true;
};

// One profiled table: its data plus the keys GORDIAN discovered for it.
struct ProfiledTable {
  std::string name;
  const Table* table = nullptr;
  std::vector<AttributeSet> keys;
};

// Searches all ordered table pairs for inclusion dependencies from column
// sets of the referencing table into discovered keys of the referenced
// table. Self-references are allowed (hierarchies) but the identical column
// set is excluded. The result is in the documented total order (see
// ForeignKeyCandidateLess), so it is byte-stable across runs and paths.
std::vector<ForeignKeyCandidate> DiscoverForeignKeys(
    const std::vector<ProfiledTable>& tables,
    const ForeignKeyOptions& options = {});

// One verification work unit: all candidate column tuples of
// tables[referencing_table] checked against the single discovered key
// `key` of tables[referenced_table]. DiscoverForeignKeys is exactly the
// loop over every (referenced table, key, referencing table) unit followed
// by SortForeignKeyCandidates; schedulers (service/schema_profiler.h) fan
// these units across a thread pool and sort the concatenation to get the
// identical list. Thread-safe for concurrent calls over the same tables
// (only const Table accessors whose caches are pre-warmed or guarded).
std::vector<ForeignKeyCandidate> VerifyForeignKeysAgainstKey(
    const std::vector<ProfiledTable>& tables, int referencing_table,
    int referenced_table, const AttributeSet& key,
    const ForeignKeyOptions& options = {});

// The documented total order over candidates: coverage descending, then
// referencing table, referenced table, foreign-key columns, referenced key,
// all ascending. No two distinct candidates compare equal, so a sorted
// report is byte-stable regardless of discovery path or thread count.
bool ForeignKeyCandidateLess(const ForeignKeyCandidate& a,
                             const ForeignKeyCandidate& b);
void SortForeignKeyCandidates(std::vector<ForeignKeyCandidate>* candidates);

// Coverage of the inclusion fk_cols(fk_table) <= key_cols(key_table):
// fraction of the referencing table's distinct NULL-free fk tuples that
// occur among the referenced table's key tuples. Exposed for tests.
double InclusionCoverage(const Table& fk_table, const AttributeSet& fk_cols,
                         const Table& key_table, const AttributeSet& key_cols);

}  // namespace gordian

#endif  // GORDIAN_CORE_FOREIGN_KEY_H_
