#include "core/prefix_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace gordian {

PrefixTree::NodePool::~NodePool() {
  for (Node* block : blocks_) delete[] block;
}

PrefixTree::Node* PrefixTree::NodePool::NewNode(bool is_leaf) {
  Node* n;
  if (!free_list_.empty()) {
    // Recycled node: its cells vector kept its capacity, so the upcoming
    // fill pays no reallocation.
    n = free_list_.back();
    free_list_.pop_back();
  } else {
    if (next_in_block_ == kNodesPerBlock) {
      blocks_.push_back(new Node[kNodesPerBlock]);
      next_in_block_ = 0;
    }
    n = &blocks_.back()[next_in_block_++];
  }
  n->is_leaf = is_leaf;
  n->ref_count = 1;
  n->entity_total = 0;
  assert(n->cells.empty());
  assert(n->accounted_bytes == 0);
  ++live_nodes_;
  ++total_nodes_;
  tracker_.Add(static_cast<int64_t>(sizeof(Node)));
  return n;
}

void PrefixTree::NodePool::Unref(Node* n) {
  assert(n->ref_count > 0);
  if (--n->ref_count > 0) return;
  if (!n->is_leaf) {
    for (const Cell& c : n->cells) Unref(c.child);
  }
  Reclaim(n);
}

void PrefixTree::NodePool::Reclaim(Node* n) {
  assert(n->ref_count == 0);
  tracker_.Release(static_cast<int64_t>(sizeof(Node)) + n->accounted_bytes);
  n->accounted_bytes = 0;
  n->cells.clear();  // keeps capacity for the next user of this node
  --live_nodes_;
  free_list_.push_back(n);
}

void PrefixTree::NodePool::SyncCellBytes(Node* n) {
  int64_t bytes =
      static_cast<int64_t>(n->cells.capacity()) * static_cast<int64_t>(sizeof(Cell));
  tracker_.Add(bytes - n->accounted_bytes);
  n->accounted_bytes = bytes;
}

PrefixTree::~PrefixTree() {
  if (root_ != nullptr) pool_->Unref(root_);
}

PrefixTree& PrefixTree::operator=(PrefixTree&& other) noexcept {
  if (this == &other) return *this;
  if (root_ != nullptr) pool_->Unref(root_);
  pool_ = std::move(other.pool_);
  root_ = other.root_;
  other.root_ = nullptr;
  attr_order_ = std::move(other.attr_order_);
  num_entities_ = other.num_entities_;
  has_duplicate_entities_ = other.has_duplicate_entities_;
  cell_count_cache_.store(other.cell_count_cache_.load(
                              std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return *this;
}

PrefixTree PrefixTree::Build(const Table& table,
                             const std::vector<int>& attr_order,
                             GordianOptions::TreeBuild mode) {
  assert(!attr_order.empty());
  PrefixTree tree = mode == GordianOptions::TreeBuild::kInsertion
                        ? BuildInsertion(table, attr_order)
                        : BuildSorted(table, attr_order);
  // Fill the cell-count memo while the tree is still private to this
  // thread: TreeArtifactCache serves built trees to concurrent readers, and
  // a first-call lazy write would race against them.
  tree.cell_count();
  return tree;
}

int64_t PrefixTree::AbsorbBatch(
    const std::vector<const uint32_t*>& level_codes, int64_t num_rows,
    const std::atomic<bool>* cancel) {
  assert(root_ != nullptr);
  const int depth = num_levels();
  assert(static_cast<int>(level_codes.size()) == depth);
  NodePool& pool = *pool_;
  int64_t new_cells = 0;
  int64_t r = 0;
  for (; r < num_rows; ++r) {
    // Poll between rows only: a row is either fully inserted or not started,
    // so an early stop always leaves a valid prefix tree of base + absorbed
    // rows that a later call can extend.
    if (cancel != nullptr && (r & 127) == 0 &&
        cancel->load(std::memory_order_relaxed)) {
      break;
    }
    Node* node = root_;
    for (int l = 0; l < depth; ++l) {
      assert(node->ref_count == 1 &&
             "AbsorbBatch requires privately owned nodes");
      uint32_t code = level_codes[l][r];
      auto it = std::lower_bound(
          node->cells.begin(), node->cells.end(), code,
          [](const Cell& c, uint32_t v) { return c.code < v; });
      if (it == node->cells.end() || it->code != code) {
        Cell cell;
        cell.code = code;
        cell.count = 0;
        cell.child =
            (l + 1 < depth) ? pool.NewNode(l + 1 == depth - 1) : nullptr;
        it = node->cells.insert(it, cell);
        pool.SyncCellBytes(node);
        ++new_cells;
      }
      ++it->count;
      ++node->entity_total;
      if (l == depth - 1) {
        if (it->count > 1) has_duplicate_entities_ = true;
      } else {
        node = it->child;
      }
    }
    ++num_entities_;
  }
  // Keep the memoized cell count exact. A tree that bypassed Build has no
  // memo (-1); leave it unset so the lazy walk stays the source of truth.
  if (new_cells > 0 &&
      cell_count_cache_.load(std::memory_order_relaxed) >= 0) {
    cell_count_cache_.fetch_add(new_cells, std::memory_order_relaxed);
  }
  return r;
}

int64_t PrefixTree::AbsorbRows(const Table& table, int64_t row_begin,
                               const std::atomic<bool>* cancel) {
  assert(row_begin >= 0 && row_begin <= table.num_rows());
  std::vector<const uint32_t*> level_codes;
  level_codes.reserve(attr_order_.size());
  for (int c : attr_order_) {
    level_codes.push_back(table.column_codes(c).data() + row_begin);
  }
  return AbsorbBatch(level_codes, table.num_rows() - row_begin, cancel);
}

PrefixTree PrefixTree::BuildSorted(const Table& table,
                                   const std::vector<int>& attr_order) {
  PrefixTree tree;
  tree.attr_order_ = attr_order;
  tree.num_entities_ = table.num_rows();
  const int depth = static_cast<int>(attr_order.size());

  // Per-level code pointers, hoisted once: resident and spilled columns
  // alike are contiguous arrays, so the sort comparator and the path
  // builder below stay a plain indexed load.
  std::vector<const uint32_t*> level_codes;
  level_codes.reserve(attr_order.size());
  for (int c : attr_order) {
    level_codes.push_back(table.column_codes(c).data());
  }

  // Sort row ids lexicographically by the reordered attribute codes; the
  // tree is then built append-only, one root-to-leaf path at a time.
  std::vector<int64_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), int64_t{0});
  std::sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (const uint32_t* codes : level_codes) {
      if (codes[a] != codes[b]) return codes[a] < codes[b];
    }
    return false;
  });

  NodePool& pool = *tree.pool_;
  tree.root_ = pool.NewNode(depth == 1);
  // stack[l] = node currently open at level l.
  std::vector<Node*> stack(depth, nullptr);
  stack[0] = tree.root_;

  int64_t prev_row = -1;
  for (int64_t r : rows) {
    // Longest common prefix with the previous row decides where to branch.
    int branch = 0;
    if (prev_row >= 0) {
      while (branch < depth &&
             level_codes[branch][r] == level_codes[branch][prev_row]) {
        ++branch;
      }
    }
    if (branch == depth) {
      // Entire entity equals the previous one: bump the leaf multiplicity.
      // Per Algorithm 2 this means the dataset has no keys at all.
      tree.has_duplicate_entities_ = true;
      Node* leaf = stack[depth - 1];
      ++leaf->cells.back().count;
      ++leaf->entity_total;
      // Propagate subtree counts up the open path.
      for (int l = 0; l + 1 < depth; ++l) {
        ++stack[l]->cells.back().count;
        ++stack[l]->entity_total;
      }
      prev_row = r;
      continue;
    }
    // Account the cells of the nodes we are abandoning below the branch
    // point (their vectors will not grow again).
    if (prev_row >= 0) {
      for (int l = depth - 1; l > branch; --l) pool.SyncCellBytes(stack[l]);
    }
    // Add one cell per level from the branch point down, creating the child
    // node chain.
    for (int l = branch; l < depth; ++l) {
      Node* node = stack[l];
      Cell cell;
      cell.code = level_codes[l][r];
      cell.count = 1;
      cell.child = nullptr;
      if (l + 1 < depth) {
        cell.child = pool.NewNode(l + 1 == depth - 1);
        stack[l + 1] = cell.child;
      }
      node->cells.push_back(cell);
      ++node->entity_total;
    }
    // Bump the subtree counts of the reused prefix path.
    for (int l = 0; l < branch; ++l) {
      ++stack[l]->cells.back().count;
      ++stack[l]->entity_total;
    }
    prev_row = r;
  }
  for (int l = 0; l < depth; ++l) {
    if (stack[l] != nullptr) pool.SyncCellBytes(stack[l]);
  }
  return tree;
}

PrefixTree PrefixTree::BuildInsertion(const Table& table,
                                      const std::vector<int>& attr_order) {
  // Algorithm 2 verbatim: a single pass over the entities, descending from
  // the root and creating cells as needed. Cells are kept sorted by code so
  // the resulting tree is structurally identical to the sorted build.
  PrefixTree tree;
  tree.attr_order_ = attr_order;
  tree.num_entities_ = table.num_rows();
  const int depth = static_cast<int>(attr_order.size());
  NodePool& pool = *tree.pool_;
  tree.root_ = pool.NewNode(depth == 1);

  std::vector<const uint32_t*> level_codes;
  level_codes.reserve(attr_order.size());
  for (int c : attr_order) {
    level_codes.push_back(table.column_codes(c).data());
  }

  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Node* node = tree.root_;
    for (int l = 0; l < depth; ++l) {
      uint32_t code = level_codes[l][r];
      auto it = std::lower_bound(
          node->cells.begin(), node->cells.end(), code,
          [](const Cell& c, uint32_t v) { return c.code < v; });
      if (it == node->cells.end() || it->code != code) {
        Cell cell;
        cell.code = code;
        cell.count = 0;
        cell.child =
            (l + 1 < depth) ? pool.NewNode(l + 1 == depth - 1) : nullptr;
        it = node->cells.insert(it, cell);
        pool.SyncCellBytes(node);
      }
      ++it->count;
      ++node->entity_total;
      if (l == depth - 1) {
        if (it->count > 1) tree.has_duplicate_entities_ = true;
      } else {
        node = it->child;
      }
    }
  }
  return tree;
}

int64_t PrefixTree::node_count() const { return pool_->live_nodes(); }

int64_t PrefixTree::cell_count() const {
  const int64_t cached = cell_count_cache_.load(std::memory_order_relaxed);
  if (cached >= 0) return cached;
  // Walk the tree; with ref counts all 1 in a freshly built tree this visits
  // each node once. Build fills the memo eagerly, so this fallback only runs
  // single-threaded; concurrent callers would compute and publish the same
  // value through the atomic anyway.
  int64_t cells = 0;
  std::vector<const Node*> pending = {root_};
  while (!pending.empty()) {
    const Node* n = pending.back();
    pending.pop_back();
    if (n == nullptr) continue;
    cells += static_cast<int64_t>(n->cells.size());
    if (!n->is_leaf) {
      for (const Cell& c : n->cells) pending.push_back(c.child);
    }
  }
  cell_count_cache_.store(cells, std::memory_order_relaxed);
  return cells;
}

PrefixTree::Node* MergeNodes(PrefixTree::NodePool& pool,
                             const std::vector<PrefixTree::Node*>& to_merge,
                             GordianStats* stats) {
  MergeScratch scratch;
  return MergeNodes(pool, to_merge, stats, &scratch, 0);
}

PrefixTree::Node* MergeNodes(PrefixTree::NodePool& pool,
                             const std::vector<PrefixTree::Node*>& to_merge,
                             GordianStats* stats, MergeScratch* scratch,
                             size_t depth) {
  assert(!to_merge.empty());
  if (stats != nullptr) ++stats->merges_performed;
  if (to_merge.size() == 1) {
    // Algorithm 3, lines 1-2: nothing to merge; share the node.
    pool.AddRef(to_merge[0]);
    return to_merge[0];
  }
  const bool leaf = to_merge[0]->is_leaf;
  PrefixTree::Node* merged = pool.NewNode(leaf);
  if (stats != nullptr) ++stats->merge_nodes_created;

  // Gather every input cell and sort by code: O(N log N) in the total cell
  // count, independent of the fan-in (a naive k-way scan would cost O(k)
  // per output cell, which is quadratic when a node with thousands of cells
  // is merged). The gather and partial buffers live in the per-depth
  // scratch, so a traversal performing millions of merges reuses them
  // instead of reallocating per call.
  MergeScratch::Level& lv = scratch->AtDepth(depth);
  lv.gathered.clear();
  size_t total = 0;
  for (const PrefixTree::Node* n : to_merge) total += n->cells.size();
  lv.gathered.reserve(total);
  for (const PrefixTree::Node* n : to_merge) {
    for (const PrefixTree::Cell& c : n->cells) lv.gathered.push_back(&c);
  }
  std::sort(lv.gathered.begin(), lv.gathered.end(),
            [](const PrefixTree::Cell* a, const PrefixTree::Cell* b) {
              return a->code < b->code;
            });

  // Exact output size, so the merged cell vector is allocated once instead
  // of growing geometrically.
  size_t distinct = 0;
  for (size_t i = 0; i < lv.gathered.size(); ++i) {
    if (i == 0 || lv.gathered[i]->code != lv.gathered[i - 1]->code) ++distinct;
  }
  merged->cells.reserve(distinct);

  size_t i = 0;
  while (i < lv.gathered.size()) {
    const uint32_t code = lv.gathered[i]->code;
    PrefixTree::Cell cell;
    cell.code = code;
    cell.count = 0;
    cell.child = nullptr;
    lv.partial.clear();
    for (; i < lv.gathered.size() && lv.gathered[i]->code == code; ++i) {
      cell.count += lv.gathered[i]->count;
      if (!leaf) lv.partial.push_back(lv.gathered[i]->child);
    }
    if (!leaf) {
      cell.child = MergeNodes(pool, lv.partial, stats, scratch, depth + 1);
    }
    merged->cells.push_back(cell);
    merged->entity_total += cell.count;
  }
  pool.SyncCellBytes(merged);
  return merged;
}

}  // namespace gordian
