#ifndef GORDIAN_CORE_REPORT_H_
#define GORDIAN_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/foreign_key.h"
#include "core/gordian.h"
#include "table/table.h"

namespace gordian {

// Machine- and human-consumable outputs of a profiling run. A downstream
// tool (index wizard, catalog browser, data-integration pipeline) wants the
// discovered metadata in a structured form; a DBA wants a picture. Both are
// derived from the same inputs: per-table discovery results and, optionally,
// cross-table foreign-key candidates.

// A profiled database: names, data, and per-table discovery results.
struct DatabaseProfile {
  struct Entry {
    std::string name;
    const Table* table = nullptr;
    KeyDiscoveryResult result;
  };
  std::vector<Entry> tables;
  std::vector<ForeignKeyCandidate> foreign_keys;

  // Convenience view matching DiscoverForeignKeys' input.
  std::vector<ProfiledTable> AsProfiledTables() const;
};

// Runs FindKeys on every table (and, when `discover_foreign_keys` is set,
// DiscoverForeignKeys across them) and assembles the profile. The tables
// referenced must outlive the profile.
DatabaseProfile ProfileDatabase(
    const std::vector<std::pair<std::string, const Table*>>& tables,
    const GordianOptions& options = {}, bool discover_foreign_keys = false,
    const ForeignKeyOptions& fk_options = {});

// JSON rendering of a profile: one object per table with rows/attributes,
// keys (attribute names, estimated/exact strengths), maximal non-keys,
// statistics, and the foreign-key candidate list. Stable field order,
// two-space indentation; strings are JSON-escaped.
std::string ProfileToJson(const DatabaseProfile& profile);

// Graphviz (DOT) entity-relationship diagram: one record-shaped node per
// table listing its attributes with the primary key candidate marked, and
// one edge per foreign-key candidate (labeled with coverage when < 1).
std::string ProfileToDot(const DatabaseProfile& profile);

// Helper exposed for tests: JSON string escaping per RFC 8259.
std::string JsonEscape(const std::string& s);

}  // namespace gordian

#endif  // GORDIAN_CORE_REPORT_H_
