#ifndef GORDIAN_CORE_NON_KEY_SET_H_
#define GORDIAN_CORE_NON_KEY_SET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "core/options.h"

namespace gordian {

// The NonKeySet container of Section 3.6: a non-redundant (antichain) set of
// non-keys, stored as attribute bitmaps. Insertion follows Algorithm 5: a
// candidate covered by an existing member is rejected; otherwise members
// covered by the candidate are evicted and the candidate is added.
//
// Members are bucketed by cardinality (popcount). A member can cover a set
// only if it has at least as many attributes, and can be covered only by a
// set with at least as many — so the futility test CoversSet(attrs), whose
// probe is nearly the full attribute set, scans only the few top buckets
// instead of every member, and Insert's reject/evict passes each scan one
// side of the candidate's cardinality. This is the hottest predicate of the
// traversal (Section 3.4.2), hence the specialized layout.
class NonKeySet {
 public:
  explicit NonKeySet(GordianStats* stats = nullptr) : stats_(stats) {}

  // Algorithm 5. Returns true if `non_key` was added.
  bool Insert(const AttributeSet& non_key);

  // True iff some member covers (is a superset of) `attrs`. This is the
  // futility test: every non-key that is a subset of `attrs` would be
  // redundant.
  bool CoversSet(const AttributeSet& attrs) const;

  // Members in insertion order (the order Algorithm 5 accepted them, with
  // evicted members absent), matching the historical flat-vector behavior.
  std::vector<AttributeSet> non_keys() const;

  int64_t size() const { return count_; }

  // Monotonic counter bumped on every accepted Insert. Evictions always
  // accompany an accepted insert, so the revision changes iff the member
  // set changed — the parallel traversal uses it to skip republishing an
  // unchanged futility snapshot.
  uint64_t revision() const { return next_seq_; }

  // Drops everything, keeping allocated bucket capacity.
  void Clear();

  int64_t ApproxBytes() const;

 private:
  struct Member {
    AttributeSet attrs;
    uint64_t seq;  // global insertion counter, for insertion-order recall
  };

  // buckets_[c] holds the members with exactly c attributes. Index range
  // covers popcounts 0..kMaxAttributes inclusive.
  std::array<std::vector<Member>, AttributeSet::kMaxAttributes + 1> buckets_;
  int min_count_ = AttributeSet::kMaxAttributes + 1;  // lowest non-empty
  int max_count_ = -1;                                // highest non-empty
  int64_t count_ = 0;
  uint64_t next_seq_ = 0;
  GordianStats* stats_;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_NON_KEY_SET_H_
