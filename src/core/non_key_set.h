#ifndef GORDIAN_CORE_NON_KEY_SET_H_
#define GORDIAN_CORE_NON_KEY_SET_H_

#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "core/options.h"

namespace gordian {

// The NonKeySet container of Section 3.6: a non-redundant (antichain) set of
// non-keys, stored as attribute bitmaps. Insertion follows Algorithm 5: a
// candidate covered by an existing member is rejected; otherwise members
// covered by the candidate are evicted and the candidate is added.
class NonKeySet {
 public:
  explicit NonKeySet(GordianStats* stats = nullptr) : stats_(stats) {}

  // Algorithm 5. Returns true if `non_key` was added.
  bool Insert(const AttributeSet& non_key);

  // True iff some member covers (is a superset of) `attrs`. This is the
  // futility test: every non-key that is a subset of `attrs` would be
  // redundant.
  bool CoversSet(const AttributeSet& attrs) const;

  const std::vector<AttributeSet>& non_keys() const { return non_keys_; }
  int64_t size() const { return static_cast<int64_t>(non_keys_.size()); }

  int64_t ApproxBytes() const {
    return static_cast<int64_t>(non_keys_.capacity() * sizeof(AttributeSet));
  }

 private:
  std::vector<AttributeSet> non_keys_;
  GordianStats* stats_;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_NON_KEY_SET_H_
