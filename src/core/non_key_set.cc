#include "core/non_key_set.h"

#include <algorithm>

namespace gordian {

bool NonKeySet::Insert(const AttributeSet& non_key) {
  if (stats_ != nullptr) ++stats_->non_key_insert_attempts;
  const int c = non_key.Count();
  // First pass: reject if covered by an existing non-key. Only members with
  // cardinality >= c can cover the candidate.
  for (int b = std::max(c, min_count_); b <= max_count_; ++b) {
    for (const Member& m : buckets_[b]) {
      if (m.attrs.Covers(non_key)) {
        if (stats_ != nullptr) ++stats_->non_keys_rejected_covered;
        return false;
      }
    }
  }
  // Second pass: evict members covered by the candidate — they all have
  // cardinality <= c (and the equal-cardinality bucket can only hold an
  // exact duplicate, which the reject pass already caught).
  int64_t evicted = 0;
  for (int b = min_count_; b < c && b <= max_count_; ++b) {
    std::vector<Member>& bucket = buckets_[b];
    if (bucket.empty()) continue;
    auto keep = std::remove_if(bucket.begin(), bucket.end(),
                               [&](const Member& m) {
                                 return non_key.Covers(m.attrs);
                               });
    evicted += static_cast<int64_t>(bucket.end() - keep);
    bucket.erase(keep, bucket.end());
  }
  if (stats_ != nullptr) stats_->non_keys_evicted += evicted;
  count_ -= evicted;

  buckets_[c].push_back(Member{non_key, next_seq_++});
  ++count_;
  min_count_ = std::min(min_count_, c);
  max_count_ = std::max(max_count_, c);
  // Eviction may have emptied the extreme buckets; the bounds are advisory
  // (scans skip empty buckets cheaply), so no re-tightening pass is needed.
  return true;
}

bool NonKeySet::CoversSet(const AttributeSet& attrs) const {
  // Only members at least as large as the probe can cover it; with the
  // probe being cur_non_key | suffix (nearly the full schema) this visits
  // the top sliver of the antichain.
  for (int b = std::max(attrs.Count(), min_count_); b <= max_count_; ++b) {
    for (const Member& m : buckets_[b]) {
      if (m.attrs.Covers(attrs)) return true;
    }
  }
  return false;
}

std::vector<AttributeSet> NonKeySet::non_keys() const {
  std::vector<Member> all;
  all.reserve(static_cast<size_t>(count_));
  for (int b = std::max(0, min_count_); b <= max_count_; ++b) {
    all.insert(all.end(), buckets_[b].begin(), buckets_[b].end());
  }
  std::sort(all.begin(), all.end(),
            [](const Member& a, const Member& b) { return a.seq < b.seq; });
  std::vector<AttributeSet> out;
  out.reserve(all.size());
  for (const Member& m : all) out.push_back(m.attrs);
  return out;
}

void NonKeySet::Clear() {
  for (int b = std::max(0, min_count_); b <= max_count_; ++b) {
    buckets_[b].clear();
  }
  min_count_ = AttributeSet::kMaxAttributes + 1;
  max_count_ = -1;
  count_ = 0;
  next_seq_ = 0;
}

int64_t NonKeySet::ApproxBytes() const {
  int64_t bytes = 0;
  for (const std::vector<Member>& bucket : buckets_) {
    bytes += static_cast<int64_t>(bucket.capacity() * sizeof(Member));
  }
  return bytes;
}

}  // namespace gordian
