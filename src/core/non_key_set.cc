#include "core/non_key_set.h"

#include <algorithm>

namespace gordian {

bool NonKeySet::Insert(const AttributeSet& non_key) {
  if (stats_ != nullptr) ++stats_->non_key_insert_attempts;
  // First pass: reject if covered by an existing non-key.
  for (const AttributeSet& nk : non_keys_) {
    if (nk.Covers(non_key)) {
      if (stats_ != nullptr) ++stats_->non_keys_rejected_covered;
      return false;
    }
  }
  // Second pass: evict members covered by the candidate, then add it.
  size_t before = non_keys_.size();
  non_keys_.erase(std::remove_if(non_keys_.begin(), non_keys_.end(),
                                 [&](const AttributeSet& nk) {
                                   return non_key.Covers(nk);
                                 }),
                  non_keys_.end());
  if (stats_ != nullptr) {
    stats_->non_keys_evicted += static_cast<int64_t>(before - non_keys_.size());
  }
  non_keys_.push_back(non_key);
  return true;
}

bool NonKeySet::CoversSet(const AttributeSet& attrs) const {
  for (const AttributeSet& nk : non_keys_) {
    if (nk.Covers(attrs)) return true;
  }
  return false;
}

}  // namespace gordian
