#include "core/incremental.h"

#include <utility>

#include "core/pipeline.h"
#include "table/column_chunk.h"

namespace gordian {

Status AppendState::Begin(const Table& base, AppendState* out) {
  AppendState s;
  s.schema_ = base.schema();
  const int d = base.num_columns();
  s.dicts_.reserve(static_cast<size_t>(d));
  s.codes_.reserve(static_cast<size_t>(d));
  for (int c = 0; c < d; ++c) {
    s.dicts_.push_back(std::make_shared<Dictionary>(base.dictionary(c)));
    // CodeColumn::data() is one contiguous array whether the column is
    // heap-resident or a spilled GRDL mapping, so a spilled base table
    // copies back through the page cache with no special casing.
    const CodeColumn& cc = base.column_codes(c);
    s.codes_.emplace_back(cc.data(), cc.data() + cc.size());
  }
  s.acc_ = FingerprintAccumulator::FromTable(base);
  s.num_rows_ = base.num_rows();
  *out = std::move(s);
  return Status::OK();
}

Status AppendState::Absorb(const RowBatch& batch) {
  const int d = num_columns();
  if (batch.num_columns() != d) {
    return Status::InvalidArgument(
        "append batch has " + std::to_string(batch.num_columns()) +
        " columns, table has " + std::to_string(d));
  }
  const int64_t n = batch.num_rows();
  if (n == 0) return Status::OK();
  // Column-at-a-time, each column in row order: the same first-seen code
  // assignment TableBuilder::AddBatch performs, so the accumulated state is
  // indistinguishable from building the concatenated table in one shot.
  for (int c = 0; c < d; ++c) {
    Dictionary& dict = *dicts_[static_cast<size_t>(c)];
    const ColumnChunk& chunk = batch.column(c);
    std::vector<uint32_t>& codes = codes_[static_cast<size_t>(c)];
    codes.reserve(codes.size() + static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const uint32_t before = dict.size();
      uint32_t code;
      switch (chunk.type(i)) {
        case ValueType::kNull:
          code = dict.EncodeNull();
          break;
        case ValueType::kInt64:
          code = dict.Encode(chunk.int64_at(i));
          break;
        case ValueType::kDouble:
          code = dict.Encode(chunk.double_at(i));
          break;
        default:
          code = dict.Encode(chunk.string_at(i));
          break;
      }
      if (dict.size() != before) {
        acc_.AbsorbDictValue(c, dict.Decode(code).Hash());
      }
      acc_.AbsorbCode(c, code);
      codes.push_back(code);
    }
  }
  acc_.AddRows(n);
  num_rows_ += n;
  return Status::OK();
}

Status AppendState::AbsorbRow(const std::vector<Value>& row) {
  const int d = num_columns();
  if (static_cast<int>(row.size()) != d) {
    return Status::InvalidArgument(
        "append row has " + std::to_string(row.size()) +
        " columns, table has " + std::to_string(d));
  }
  for (int c = 0; c < d; ++c) {
    Dictionary& dict = *dicts_[static_cast<size_t>(c)];
    const uint32_t before = dict.size();
    const uint32_t code = dict.Encode(row[static_cast<size_t>(c)]);
    if (dict.size() != before) {
      acc_.AbsorbDictValue(c, dict.Decode(code).Hash());
    }
    acc_.AbsorbCode(c, code);
    codes_[static_cast<size_t>(c)].push_back(code);
  }
  acc_.AddRows(1);
  ++num_rows_;
  return Status::OK();
}

Table AppendState::Snapshot() const {
  std::vector<std::shared_ptr<Dictionary>> dicts;
  dicts.reserve(dicts_.size());
  for (const std::shared_ptr<Dictionary>& dp : dicts_) {
    dicts.push_back(std::make_shared<Dictionary>(*dp));
  }
  return Table::FromColumns(schema_, std::move(dicts), codes_);
}

Status ReprofileTree(PrefixTree* tree, const GordianOptions& options,
                     int num_attributes, int64_t num_rows,
                     KeyDiscoveryResult* result,
                     std::unique_ptr<FrozenTree>* refrozen) {
  if (options.sample_rows > 0) {
    return Status::InvalidArgument(
        "ReprofileTree: sampling requires the raw table");
  }
  if (options.null_semantics !=
      GordianOptions::NullSemantics::kNullEqualsNull) {
    return Status::InvalidArgument(
        "ReprofileTree: null projection requires the raw table");
  }
  // Hand-seeded context: everything EncodeStage would have produced is
  // already pinned by the tree (the data lives in it), so the run starts at
  // the tree-build stage — which, seeing an external tree, only re-checks
  // duplicates/cancellation and (re-)freezes.
  ProfileContext ctx;
  ctx.options = options;
  ctx.attr_order = tree->attr_order();
  ctx.tree = tree;
  ctx.tree_external = true;
  ctx.result.stats.num_attributes = num_attributes;
  ctx.result.stats.rows_processed = num_rows;

  std::vector<std::unique_ptr<ProfileStage>> stages;
  stages.push_back(std::make_unique<TreeBuildStage>());
  const int threads = ResolveTraversalThreads(options);
  if (threads >= 1) {
    stages.push_back(std::make_unique<ParallelTraversalStage>(threads));
  } else {
    stages.push_back(std::make_unique<SerialTraversalStage>());
  }
  stages.push_back(std::make_unique<KeyConversionStage>());
  stages.push_back(std::make_unique<ValidationStage>());
  for (const std::unique_ptr<ProfileStage>& stage : stages) {
    Status s = stage->Run(&ctx);
    if (!s.ok()) return s;
    if (ctx.finished) break;
  }
  if (refrozen != nullptr) *refrozen = std::move(ctx.owned_frozen);
  *result = std::move(ctx.result);
  return Status::OK();
}

Status IncrementalProfiler::Begin(const Table& base,
                                  const GordianOptions& options,
                                  IncrementalProfiler* out) {
  if (options.sample_rows > 0) {
    return Status::InvalidArgument(
        "incremental profiling does not support sampling: re-sampling after "
        "an append is not append-monotone");
  }
  if (options.null_semantics !=
      GordianOptions::NullSemantics::kNullEqualsNull) {
    return Status::InvalidArgument(
        "incremental profiling requires kNullEqualsNull semantics: the "
        "nullable-column projection can change with every batch");
  }
  IncrementalProfiler p;
  p.options_ = options;
  Status s = AppendState::Begin(base, &p.state_);
  if (!s.ok()) return s;
  ProfileSession session(options);
  s = session.Run(base, &p.report_);
  if (!s.ok()) return s;
  p.tree_ = session.TakeTree();
  p.frozen_ = session.TakeFrozenTree();
  if (p.tree_ != nullptr) p.tree_rows_ = base.num_rows();
  p.current_ = !p.report_.incomplete && p.tree_ != nullptr;
  if (p.current_) p.warm_seeds_ = p.report_.non_keys;
  *out = std::move(p);
  return Status::OK();
}

Status IncrementalProfiler::Append(const RowBatch& batch) {
  Status s = Absorb(batch);
  if (!s.ok()) return s;
  return Refresh();
}

Status IncrementalProfiler::Absorb(const RowBatch& batch) {
  Status s = state_.Absorb(batch);
  if (s.ok() && state_.num_rows() > tree_rows_) current_ = false;
  return s;
}

Status IncrementalProfiler::AbsorbRow(const std::vector<Value>& row) {
  Status s = state_.AbsorbRow(row);
  if (s.ok()) current_ = false;
  return s;
}

Status IncrementalProfiler::Refresh() {
  if (current_ && tree_rows_ == state_.num_rows()) return Status::OK();
  if (tree_ == nullptr) return RebuildFromScratch();

  if (tree_rows_ < state_.num_rows()) {
    std::vector<const uint32_t*> level_codes;
    level_codes.reserve(static_cast<size_t>(tree_->num_levels()));
    for (int l = 0; l < tree_->num_levels(); ++l) {
      level_codes.push_back(
          state_.codes(tree_->attribute_at_level(l)).data() + tree_rows_);
    }
    const int64_t pending = state_.num_rows() - tree_rows_;
    const int64_t absorbed =
        tree_->AbsorbBatch(level_codes, pending, options_.cancel_flag);
    tree_rows_ += absorbed;
    if (absorbed > 0) frozen_.reset();  // the flat layout is now stale
    if (absorbed < pending) {
      // Cancelled mid-absorb. The tree is a valid prefix tree of the rows
      // absorbed so far; report that honestly and let the next Refresh
      // resume from tree_rows_.
      report_ = KeyDiscoveryResult{};
      report_.stats.num_attributes = state_.num_columns();
      report_.stats.rows_processed = tree_rows_;
      report_.incomplete = true;
      report_.incomplete_reason = AbortReason::kCancelled;
      current_ = false;
      return Status::OK();
    }
  }

  frozen_.reset();
  GordianOptions opts = options_;
  if (warm_enabled_ && !warm_seeds_.empty()) {
    opts.warm_start_non_keys = &warm_seeds_;
  }
  KeyDiscoveryResult result;
  Status s = ReprofileTree(tree_.get(), opts, state_.num_columns(),
                           state_.num_rows(), &result, &frozen_);
  if (!s.ok()) return s;
  report_ = std::move(result);
  current_ = !report_.incomplete;
  // Seeds only advance on complete runs: an aborted traversal's non-keys
  // are genuine but may cover less than the seeds already do.
  if (current_) warm_seeds_ = report_.non_keys;
  return Status::OK();
}

Status IncrementalProfiler::RebuildFromScratch() {
  Table snapshot = state_.Snapshot();
  GordianOptions opts = options_;
  if (warm_enabled_ && !warm_seeds_.empty()) {
    opts.warm_start_non_keys = &warm_seeds_;
  }
  ProfileSession session(opts);
  Status s = session.Run(snapshot, &report_);
  if (!s.ok()) return s;
  tree_ = session.TakeTree();
  frozen_ = session.TakeFrozenTree();
  tree_rows_ = tree_ != nullptr ? state_.num_rows() : 0;
  current_ = !report_.incomplete && tree_ != nullptr;
  if (current_) warm_seeds_ = report_.non_keys;
  return Status::OK();
}

Status IncrementalProfiler::SeedWarmStart(
    const std::vector<AttributeSet>& seeds) {
  const Table snapshot = state_.Snapshot();
  for (const AttributeSet& nk : seeds) {
    // A unique seed means the caller's "prior" state was NOT a prefix of
    // the current rows — non-keys cannot shrink under appends, so this is a
    // shrinking (or unrelated) delta. Pruning with it would silently drop
    // real keys; refuse instead.
    if (snapshot.IsUnique(nk)) {
      return Status::InvalidArgument(
          "warm-start seed " + nk.ToString() +
          " is unique in the current data; seeds must be genuine non-keys "
          "(appends never retract a non-key — was the table shrunk?)");
    }
  }
  warm_seeds_ = seeds;
  return Status::OK();
}

}  // namespace gordian
