#ifndef GORDIAN_CORE_STRENGTH_H_
#define GORDIAN_CORE_STRENGTH_H_

#include "common/attribute_set.h"
#include "table/table.h"

namespace gordian {

// Strength of an attribute set (Section 3.9): the number of distinct
// projected values divided by the number of entities. A true key has
// strength 1; a set discovered from a sample but not a key of the full data
// is an approximate key when its strength is close to 1.
double ExactStrength(const Table& table, const AttributeSet& attrs);

// The sample-based lower bound T(K) of Section 3.9:
//   T(K) = 1 - prod_{v in K} (N - D_v + 1) / (N + 2)
// where N is the sample size and D_v the number of distinct values of
// attribute v in the sample. With fairly high probability this is a
// reasonably tight lower bound on the strength of a key discovered from the
// sample (derived via an approximate Bayesian argument akin to Laplace's
// rule of succession).
double EstimatedStrengthLowerBound(const Table& sample,
                                   const AttributeSet& attrs);

}  // namespace gordian

#endif  // GORDIAN_CORE_STRENGTH_H_
