#ifndef GORDIAN_CORE_OPTIONS_H_
#define GORDIAN_CORE_OPTIONS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/attribute_set.h"

namespace gordian {

// Why a discovery run stopped before exhausting the search space. kNone for
// complete runs; the other values correspond to the safety valves in
// GordianOptions and to cooperative cancellation (profiling-service jobs).
enum class AbortReason {
  kNone = 0,
  kNonKeyBudget,  // max_non_keys tripped
  kTimeBudget,    // time_budget_seconds tripped
  kCancelled,     // *cancel_flag became true
};

// Tuning knobs for GORDIAN. The defaults reproduce the full algorithm of the
// paper; the pruning toggles exist for the Figure 13 ablation and for
// property tests (every combination must produce identical keys).
struct GordianOptions {
  // Section 3.4.1, Figure 10(a): skip traversal of shared
  // (already-traversed) subtrees. (The companion Figure 10(b) skip — never
  // merge a single-cell node — is written unconditionally into Algorithm 4
  // and is therefore always on.)
  bool singleton_pruning = true;

  // Section 3.4.1, final optimization: do not search a slice that holds a
  // single entity (Algorithm 4, line 14).
  bool single_entity_pruning = true;

  // Section 3.4.2: consult the NonKeySet before merging; skip merges that
  // can only produce covered (redundant) non-keys (Algorithm 4, line 24).
  bool futility_pruning = true;

  // Order in which attributes become prefix-tree levels (Section 3.2.1).
  // GORDIAN finds the same keys under any order; kCardinalityDesc is the
  // paper's heuristic (maximize pruning at lower levels).
  enum class AttributeOrder {
    kSchema,            // schema order, no reordering
    kCardinalityDesc,   // most distinct values at the root
    kCardinalityAsc,    // fewest distinct values at the root
    kRandom,            // seeded shuffle (order_seed)
  };
  AttributeOrder attribute_order = AttributeOrder::kCardinalityDesc;
  uint64_t order_seed = 0;

  // How the prefix tree is constructed. Both produce equivalent trees
  // (identical up to sibling-cell order, which the algorithm ignores).
  enum class TreeBuild {
    kSorted,     // sort row ids, then append paths; fast, cache-friendly
    kInsertion,  // Algorithm 2 verbatim: one pass, insert row by row
  };
  TreeBuild tree_build = TreeBuild::kSorted;

  // When > 0 and smaller than the table, run on a uniform row sample of this
  // size (Section 3.9). Discovered keys are then sample keys: they include
  // every true key plus possibly approximate keys.
  int64_t sample_rows = 0;
  uint64_t sample_seed = 42;

  // How NULL participates in keys. The paper's model has no NULLs; this
  // library's default treats NULL as an ordinary value that equals itself
  // (two all-NULL rows are duplicates). kExcludeNullableColumns instead
  // matches SQL's UNIQUE-constraint practice: a column containing any NULL
  // is barred from keys entirely (it is removed from the search and can
  // appear in no reported key or non-key).
  enum class NullSemantics {
    kNullEqualsNull,
    kExcludeNullableColumns,
  };
  NullSemantics null_semantics = NullSemantics::kNullEqualsNull;

  // Safety valves for the #P-hard regime (Section 3.8: adversarial data can
  // make the number of non-redundant non-keys — and hence minimal keys —
  // itself combinatorial). When either limit trips, discovery stops and the
  // result is marked incomplete: the non-keys found so far are all genuine,
  // but no keys are derived (a partial non-key set would certify false
  // keys). 0 = unlimited.
  int64_t max_non_keys = 0;
  double time_budget_seconds = 0;

  // Cooperative cancellation. When non-null, the flag is polled at phase
  // boundaries and inside NonKeyFinder's outer recursion; once it reads
  // true, discovery unwinds and the result comes back incomplete with
  // reason kCancelled. The pointed-to flag must outlive the run. Used by
  // the profiling service to cancel in-flight jobs without killing threads.
  const std::atomic<bool>* cancel_flag = nullptr;

  // Warm-start seed for incremental re-profiles (appends). Every set listed
  // here must be a genuine non-key of the table being profiled — GORDIAN's
  // monotonicity property guarantees this for any non-key set discovered
  // before rows were appended, since appending rows can only create new
  // non-keys, never retract one. The seeds are inserted into the working
  // NonKeySet before traversal starts, so futility pruning skips the
  // already-settled regions and the search only explores the frontier the
  // delta can change. Complete runs produce the identical canonical non-key
  // antichain (and hence identical keys) with or without seeding; only the
  // work counters differ. The pointed-to vector must outlive the run.
  const std::vector<AttributeSet>* warm_start_non_keys = nullptr;

  // Traversal representation. When true (the default), the built prefix
  // tree is flattened into the read-only FrozenTree layout right after the
  // build phase and the non-key search runs FrozenNonKeyFinder's
  // contiguous-span kernels instead of chasing Node/Cell pointers; results
  // are byte-identical either way. False forces the pointer-tree traversal
  // (the equivalence tests pin their baseline this way). The GORDIAN_FROZEN
  // environment variable (set to 0) disables freezing process-wide on top
  // of this flag.
  bool frozen_traversal = true;

  // Intra-query parallelism: number of worker threads over which FindKeys
  // fans out the root's top-level slices of the traversal (each worker runs
  // a private NonKeyFinder; discovered non-keys are exchanged through a
  // lock-light snapshot so futility pruning still fires across slices, and
  // the per-slice results are merged deterministically before the final
  // root-merge pass). 0 = serial (the default; also consults the
  // GORDIAN_THREADS environment variable, letting CI exercise the whole
  // suite in parallel mode without code changes). >= 1 engages the parallel
  // machinery with that many workers. < 0 forces serial even when
  // GORDIAN_THREADS is set (the equivalence tests pin their baseline this
  // way). Results are identical to serial mode; see docs/parallel.md.
  int traversal_threads = 0;
};

// Counters and timings reported by a discovery run; feeds Table 2 and the
// scaling figures.
struct GordianStats {
  int64_t rows_processed = 0;
  int64_t num_attributes = 0;

  // Prefix tree.
  int64_t base_tree_nodes = 0;
  int64_t base_tree_cells = 0;

  // NonKeyFinder work.
  int64_t nodes_visited = 0;
  int64_t merges_performed = 0;
  int64_t merge_nodes_created = 0;
  int64_t singleton_traversal_prunes = 0;
  int64_t singleton_merge_prunes = 0;
  int64_t single_entity_prunes = 0;
  int64_t futility_prunes = 0;
  // Of the futility_prunes, how many fired off another worker's published
  // snapshot rather than locally discovered non-keys (parallel mode only).
  int64_t futility_snapshot_prunes = 0;
  // Warm start (incremental re-profiles): non-keys seeded from a prior run
  // before traversal began, and how many futility prunes fired off the
  // seeded cover rather than non-keys discovered in this run.
  int64_t warm_start_seeds = 0;
  int64_t warm_start_prunes = 0;

  // NonKeySet container.
  int64_t non_key_insert_attempts = 0;
  int64_t non_keys_rejected_covered = 0;
  int64_t non_keys_evicted = 0;
  int64_t final_non_keys = 0;

  // Memory (bytes); peak covers tree + merge intermediates + NonKeySet.
  // In parallel mode, worker-pool peaks are summed in.
  int64_t peak_memory_bytes = 0;

  // Worker threads the find phase actually used (0 = serial traversal).
  int64_t traversal_threads_used = 0;

  // Frozen-representation accounting: whether the find phase ran over a
  // FrozenTree, the flat layout's byte footprint, and the wall clock of the
  // freeze pass (0 when a prebuilt frozen artifact was injected — a
  // TreeArtifactCache hit pays the freeze once at insert).
  bool frozen_traversal_used = false;
  int64_t frozen_tree_bytes = 0;
  double freeze_seconds = 0;

  // Wall-clock per phase.
  double build_seconds = 0;
  double find_seconds = 0;
  double convert_seconds = 0;

  double TotalSeconds() const {
    return build_seconds + find_seconds + convert_seconds;
  }
};

}  // namespace gordian

#endif  // GORDIAN_CORE_OPTIONS_H_
