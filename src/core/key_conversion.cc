#include "core/key_conversion.h"

#include <algorithm>

namespace gordian {

std::vector<AttributeSet> MinimizeSets(std::vector<AttributeSet> sets) {
  // Sort by ascending cardinality so a kept set can only be covered by an
  // earlier (smaller or equal) kept set; then filter.
  std::sort(sets.begin(), sets.end(), [](const AttributeSet& a,
                                         const AttributeSet& b) {
    int ca = a.Count(), cb = b.Count();
    if (ca != cb) return ca < cb;
    return a < b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<AttributeSet> kept;
  for (const AttributeSet& s : sets) {
    bool redundant = false;
    for (const AttributeSet& k : kept) {
      if (s.Covers(k)) {  // s is a superset of a kept (smaller) set
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(s);
  }
  return kept;
}

std::vector<AttributeSet> NonKeysToKeys(
    const std::vector<AttributeSet>& non_keys, int num_attributes) {
  const AttributeSet all = AttributeSet::FirstN(num_attributes);

  std::vector<AttributeSet> key_set;
  bool first = true;
  for (const AttributeSet& non_key : non_keys) {
    // Complement set: the single-attribute candidate keys not covered by
    // this non-key (Section 2).
    const AttributeSet complement = all - non_key;
    std::vector<AttributeSet> complement_singletons;
    complement.ForEach([&](int a) {
      complement_singletons.push_back(AttributeSet::Single(a));
    });

    if (first) {
      key_set = std::move(complement_singletons);
      first = false;
      continue;
    }
    std::vector<AttributeSet> new_set;
    new_set.reserve(key_set.size() * std::max<size_t>(1, complement_singletons.size()));
    for (const AttributeSet& p_key : complement_singletons) {
      for (const AttributeSet& key : key_set) {
        new_set.push_back(key | p_key);
      }
    }
    key_set = MinimizeSets(std::move(new_set));
    if (key_set.empty()) return {};  // some non-key covers everything
  }

  if (first) {
    // No non-keys at all: every attribute alone is a key.
    std::vector<AttributeSet> keys;
    for (int a = 0; a < num_attributes; ++a) {
      keys.push_back(AttributeSet::Single(a));
    }
    return keys;
  }
  return MinimizeSets(std::move(key_set));
}

}  // namespace gordian
