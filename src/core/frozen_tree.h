#ifndef GORDIAN_CORE_FROZEN_TREE_H_
#define GORDIAN_CORE_FROZEN_TREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/attribute_set.h"
#include "common/stopwatch.h"
#include "core/non_key_finder.h"
#include "core/non_key_set.h"
#include "core/options.h"
#include "core/prefix_tree.h"

namespace gordian {

// Branch-light scan kernels over the frozen tree's contiguous arrays.
// Each kernel has a scalar implementation (always compiled, the portable
// reference) and an AVX2 implementation selected once per process by
// runtime CPU detection. Builds with GORDIAN_DISABLE_SIMD never compile the
// vector bodies; GORDIAN_SIMD_CONSISTENCY_CHECKS (Debug builds) re-runs the
// scalar kernel after every dispatched call and asserts agreement.
namespace frozen_simd {

// True iff any of counts[0..n) differs from 1 — the leaf duplicate test of
// Algorithm 4 over a frozen leaf span.
bool AnyCountNotOne(const int64_t* counts, size_t n);
bool AnyCountNotOneScalar(const int64_t* counts, size_t n);

// First index i in the sorted span codes[0..n) with codes[i] >= target
// (n when none). The dispatched version gallops from the front — runs
// consumed by the merge union are usually short — then scans the bracketed
// window with vector compares.
size_t LowerBound(const uint32_t* codes, size_t n, uint32_t target);
size_t LowerBoundScalar(const uint32_t* codes, size_t n, uint32_t target);

// "avx2" or "scalar" — which implementation dispatch resolved to.
const char* ActiveKernel();

}  // namespace frozen_simd

// Process-wide escape hatch for the frozen traversal: false when the
// GORDIAN_FROZEN environment variable is set to 0 (read once, like
// GORDIAN_THREADS). GordianOptions::frozen_traversal gates per run on top.
bool FrozenTreesEnabled();

// A read-only flattening of a built PrefixTree for the traversal hot path:
// per level, one contiguous sorted code span per node instead of per-node
// heap vectors — struct-of-arrays, no pointers, one allocation per array.
//
// Nodes are frozen in BFS order, so the tree needs no child table at all:
// level l+1 holds exactly one node per cell of level l, in cell order, and
// the child of the cell with global index g at level l IS node g at level
// l+1. (This relies on the base tree being share-free — every ref_count is
// 1 after Build; sharing only ever arises from traversal merges, which are
// pool nodes, never frozen ones.)
//
// The only mutable state is the per-node `ref` array: the traversal's merge
// sharing temporarily raises reference counts exactly as it does on pointer
// nodes, and restores them on unwind (aborted runs included), so a frozen
// tree served by the TreeArtifactCache comes back bit-identical. Like the
// pointer tree, a frozen tree can therefore serve only one run at a time;
// parallel workers may share one because slices touch disjoint subtrees.
class FrozenTree {
 public:
  struct Level {
    // Cell span of node i is [cell_begin[i], cell_begin[i + 1]).
    std::vector<uint32_t> cell_begin;   // num_nodes + 1 entries
    std::vector<uint32_t> code;         // per cell, ascending within a span
    std::vector<int64_t> count;         // per cell (leaf: multiplicity)
    std::vector<int64_t> entity_total;  // per node: sum of its cell counts
    // Per node, starts at 1 (the base tree's own reference); mutated by the
    // traversal's merge sharing and restored by its unwind.
    std::vector<int32_t> ref;
    // Largest dictionary code at this level (0 when empty). Merge outputs
    // only ever union frozen codes, so this bounds the code domain of every
    // merge at this level — what lets MergeDirect bucket by code instead of
    // sorting.
    uint32_t max_code = 0;

    size_t num_nodes() const { return entity_total.size(); }
    size_t num_cells() const { return code.size(); }
  };

  // Flattens `tree`, which must be freshly built or fully unwound (every
  // ref_count 1). The pointer tree is not consumed: it remains the
  // construction and merge-intermediate representation.
  static std::unique_ptr<FrozenTree> Freeze(const PrefixTree& tree);

  int num_levels() const { return static_cast<int>(attr_order_.size()); }
  int attribute_at_level(int level) const { return attr_order_[level]; }
  const std::vector<int>& attr_order() const { return attr_order_; }
  int64_t num_entities() const { return num_entities_; }
  int64_t node_count() const { return node_count_; }
  int64_t cell_count() const { return cell_count_; }

  const Level& level(int l) const { return levels_[static_cast<size_t>(l)]; }
  Level& level_mutable(int l) { return levels_[static_cast<size_t>(l)]; }

  // Heap footprint of the frozen arrays (exact: every array is allocated
  // once at its final size).
  int64_t ApproxBytes() const { return approx_bytes_; }
  double BytesPerNode() const {
    return node_count_ == 0 ? 0
                            : static_cast<double>(approx_bytes_) /
                                  static_cast<double>(node_count_);
  }

  // True iff every node's reference count is back at 1 (test hook: aborted
  // traversals must fully unwind their shares).
  bool AllRefsAreOne() const;

 private:
  FrozenTree() = default;

  std::vector<Level> levels_;
  std::vector<int> attr_order_;
  int64_t num_entities_ = 0;
  int64_t node_count_ = 0;
  int64_t cell_count_ = 0;
  int64_t approx_bytes_ = 0;
};

// Algorithm 4 specialized for the frozen representation: the same
// doubly-recursive traversal as NonKeyFinder — identical visit order,
// pruning decisions, counters, observer callbacks, and budget semantics —
// but Visit runs over contiguous code spans, the leaf duplicate test is a
// SIMD scan, and the 2-way merge (the dominant shape inside merge
// recursions) is a branch-light galloping span union. Merge outputs are
// ordinary NodePool nodes whose Cell::child fields hold either a pool node
// or a tagged reference to a frozen node (bit 0 set — real node pointers
// are always even), so merge intermediates share untouched frozen subtrees
// exactly as pointer-mode merges share subtrees of the base tree.
//
// The produced NonKeySet — and therefore every report — is byte-identical
// to a NonKeyFinder run over the same tree, serial and parallel; the
// equivalence fuzz in tests/frozen_tree_test.cc pins this.
class FrozenNonKeyFinder {
 public:
  // Merge intermediates are allocated from the pool passed via
  // SetMergePool; without one the finder falls back to a private pool it
  // owns (convenient for tests — pipeline callers always inject the pool
  // whose peak they account).
  FrozenNonKeyFinder(FrozenTree& tree, const GordianOptions& options,
                     NonKeySet* non_keys, GordianStats* stats,
                     TraversalObserver* observer = nullptr);

  // The entry points and parallel hooks mirror NonKeyFinder verbatim; see
  // core/non_key_finder.h for their contracts.
  bool Run();
  AbortReason abort_reason() const { return abort_reason_; }

  bool RunSlice(int cell_index);
  bool RunRootMerge();
  void StartBudgetClock(double offset_seconds);
  void SetMergePool(PrefixTree::NodePool* pool) { merge_pool_ = pool; }
  void SetExternalStop(const std::atomic<bool>* stop) { external_stop_ = stop; }
  void SetRemoteCover(std::function<bool(const AttributeSet&)> cover) {
    remote_cover_ = std::move(cover);
  }
  void SetMaintenanceHook(std::function<void()> hook) {
    maintenance_ = std::move(hook);
  }
  void SetWarmCover(const NonKeySet* warm) { warm_cover_ = warm; }

 private:
  // Tagged node handle: either a PrefixTree::Node* (bit 0 clear) or a
  // frozen node reference (bit 0 set) packing the node's level and index.
  using NodeRef = uintptr_t;
  static constexpr int kIndexBits = 40;

  static bool IsFrozen(NodeRef r) { return (r & 1) != 0; }
  static NodeRef MakeFrozen(int level, uint64_t index) {
    assert(index < (uint64_t{1} << kIndexBits));
    return (static_cast<NodeRef>(level) << (kIndexBits + 1)) | (index << 1) |
           1;
  }
  static int FrozenLevelOf(NodeRef r) {
    return static_cast<int>(r >> (kIndexBits + 1));
  }
  static uint64_t FrozenIndexOf(NodeRef r) {
    return (r >> 1) & ((uint64_t{1} << kIndexBits) - 1);
  }
  static PrefixTree::Node* AsNode(NodeRef r) {
    assert(!IsFrozen(r));
    return reinterpret_cast<PrefixTree::Node*>(r);
  }
  static NodeRef FromNode(PrefixTree::Node* n) {
    return reinterpret_cast<NodeRef>(n);
  }
  // Cell::child of merge outputs stores a NodeRef bit pattern.
  static NodeRef FromChild(PrefixTree::Node* child) {
    return reinterpret_cast<NodeRef>(child);
  }
  static PrefixTree::Node* ToChild(NodeRef r) {
    return reinterpret_cast<PrefixTree::Node*>(r);
  }

  // Per-recursion-depth merge scratch (the frozen counterpart of
  // MergeScratch). MergeDirect buckets through the code-indexed tables
  // (code_mult/code_acc/code_pos, kept all-zero between merges); the
  // sort-based fallback uses the packed (code << 32 | gather-index) keys.
  // A deque so deeper merges growing the table never invalidate the level a
  // shallower merge still references.
  struct MergeLevelScratch {
    std::vector<uint64_t> keys;
    std::vector<int64_t> counts;
    std::vector<NodeRef> children;
    std::vector<NodeRef> run;
    std::vector<uint32_t> distinct;
    std::vector<int32_t> code_mult;
    std::vector<int64_t> code_acc;
    std::vector<uint32_t> code_pos;
    std::vector<NodeRef> run_children;
  };

  void Visit(NodeRef node, int level);
  void ProcessLeaf(NodeRef node, int level);
  // Merges the children of `node` (a non-leaf at `level`) into one node at
  // level + 1, mirroring the MergeNodes call sites of NonKeyFinder.
  NodeRef MergeChildren(NodeRef node, int level);
  // Algorithm 3 over NodeRefs: inputs are same-level nodes at `level`.
  NodeRef MergeRefs(const NodeRef* inputs, size_t n, int level, size_t depth);
  NodeRef MergePairFrozen(int level, uint64_t a, uint64_t b);
  NodeRef MergeGeneral(const NodeRef* inputs, size_t n, int level,
                       size_t depth);
  NodeRef MergeDirect(const NodeRef* inputs, size_t n, int level,
                      size_t depth);
  NodeRef MergeSorted(const NodeRef* inputs, size_t n, int level,
                      size_t depth);
  // MergeRefs specialized for a contiguous run of frozen sibling nodes
  // [node_lo, node_hi) at `level` — what MergeChildren of a frozen node
  // merges, without materializing the NodeRef list.
  NodeRef MergeFrozenRange(int level, uint32_t node_lo, uint32_t node_hi,
                           size_t depth);
  // Core of the comparison-free union (defined in the .cc, used only
  // there). The callbacks re-enumerate the gathered input cells on every
  // invocation: for_each_cell(fn) feeds fn(code, count) to histogram, and
  // for_each_child(fn) feeds fn(code, child NodeRef) to scatter children
  // into per-code runs (never invoked at the leaf level).
  template <typename ForEachCell, typename ForEachChild>
  NodeRef MergeBucketed(size_t total_cells, int level, size_t depth,
                        const ForEachCell& for_each_cell,
                        const ForEachChild& for_each_child);
  void AddRefRef(NodeRef r);
  void UnrefRef(NodeRef r);
  int32_t& FrozenRefCount(NodeRef r) {
    return tree_.level_mutable(FrozenLevelOf(r))
        .ref[static_cast<size_t>(FrozenIndexOf(r))];
  }
  MergeLevelScratch& ScratchAt(size_t depth) {
    if (depth >= scratch_.size()) scratch_.resize(depth + 1);
    return scratch_[depth];
  }
  bool OverBudget();
  bool FutilityCovered(const AttributeSet& probe);

  FrozenTree& tree_;
  const GordianOptions& options_;
  NonKeySet* non_keys_;
  GordianStats* stats_;
  TraversalObserver* observer_;
  int depth_ = 0;

  AttributeSet cur_non_key_;
  std::vector<AttributeSet> suffix_attrs_;

  // Gather buffer for MergeChildren, one per tree level (Visit recursion
  // holds level l's buffer across the merge call, which gathers at deeper
  // levels through the per-depth scratch, never this buffer).
  std::vector<std::vector<NodeRef>> child_buf_;
  std::deque<MergeLevelScratch> scratch_;

  std::unique_ptr<PrefixTree::NodePool> fallback_pool_;
  PrefixTree::NodePool* merge_pool_ = nullptr;

  const std::atomic<bool>* external_stop_ = nullptr;
  std::function<bool(const AttributeSet&)> remote_cover_;
  std::function<void()> maintenance_;
  const NonKeySet* warm_cover_ = nullptr;

  Stopwatch budget_watch_;
  double budget_offset_seconds_ = 0;
  uint64_t visit_tick_ = 0;
  bool aborted_ = false;
  AbortReason abort_reason_ = AbortReason::kNone;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_FROZEN_TREE_H_
