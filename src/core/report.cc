#include "core/report.h"

#include <cstdio>

namespace gordian {

namespace {

std::string Quote(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

std::string Num(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  return buf;
}

// Names of the attributes in `attrs` as a JSON array.
std::string AttrsJson(const Schema& schema, const AttributeSet& attrs) {
  std::string out = "[";
  bool first = true;
  attrs.ForEach([&](int a) {
    if (!first) out += ", ";
    first = false;
    out += Quote(schema.name(a));
  });
  return out + "]";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::vector<ProfiledTable> DatabaseProfile::AsProfiledTables() const {
  std::vector<ProfiledTable> out;
  out.reserve(tables.size());
  for (const Entry& e : tables) {
    out.push_back({e.name, e.table, e.result.KeySets()});
  }
  return out;
}

DatabaseProfile ProfileDatabase(
    const std::vector<std::pair<std::string, const Table*>>& tables,
    const GordianOptions& options, bool discover_foreign_keys,
    const ForeignKeyOptions& fk_options) {
  DatabaseProfile profile;
  for (const auto& [name, table] : tables) {
    DatabaseProfile::Entry e;
    e.name = name;
    e.table = table;
    e.result = FindKeys(*table, options);
    if (e.result.sampled) ValidateKeys(*table, &e.result);
    profile.tables.push_back(std::move(e));
  }
  if (discover_foreign_keys) {
    profile.foreign_keys =
        DiscoverForeignKeys(profile.AsProfiledTables(), fk_options);
  }
  return profile;
}

std::string ProfileToJson(const DatabaseProfile& profile) {
  std::string out = "{\n  \"tables\": [\n";
  for (size_t i = 0; i < profile.tables.size(); ++i) {
    const DatabaseProfile::Entry& e = profile.tables[i];
    const Schema& schema = e.table->schema();
    out += "    {\n";
    out += "      \"name\": " + Quote(e.name) + ",\n";
    out += "      \"rows\": " + std::to_string(e.table->num_rows()) + ",\n";
    out += "      \"attributes\": [";
    for (int c = 0; c < e.table->num_columns(); ++c) {
      if (c > 0) out += ", ";
      out += Quote(schema.name(c));
    }
    out += "],\n";
    out += "      \"no_keys\": ";
    out += e.result.no_keys ? "true" : "false";
    out += ",\n      \"incomplete\": ";
    out += e.result.incomplete ? "true" : "false";
    out += ",\n      \"sampled\": ";
    out += e.result.sampled ? "true" : "false";
    out += ",\n      \"keys\": [\n";
    for (size_t k = 0; k < e.result.keys.size(); ++k) {
      const DiscoveredKey& key = e.result.keys[k];
      out += "        {\"attributes\": " + AttrsJson(schema, key.attrs);
      out += ", \"estimated_strength\": " + Num(key.estimated_strength);
      if (key.exact_strength >= 0) {
        out += ", \"strength\": " + Num(key.exact_strength);
      }
      out += "}";
      if (k + 1 < e.result.keys.size()) out += ",";
      out += "\n";
    }
    out += "      ],\n";
    out += "      \"non_keys\": [\n";
    for (size_t k = 0; k < e.result.non_keys.size(); ++k) {
      out += "        " + AttrsJson(schema, e.result.non_keys[k]);
      if (k + 1 < e.result.non_keys.size()) out += ",";
      out += "\n";
    }
    out += "      ],\n";
    const GordianStats& st = e.result.stats;
    out += "      \"stats\": {\"seconds\": " + Num(st.TotalSeconds()) +
           ", \"tree_nodes\": " + std::to_string(st.base_tree_nodes) +
           ", \"merges\": " + std::to_string(st.merges_performed) +
           ", \"peak_memory_bytes\": " +
           std::to_string(st.peak_memory_bytes) + "}\n";
    out += "    }";
    if (i + 1 < profile.tables.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"foreign_keys\": [\n";
  for (size_t i = 0; i < profile.foreign_keys.size(); ++i) {
    const ForeignKeyCandidate& fk = profile.foreign_keys[i];
    const DatabaseProfile::Entry& from = profile.tables[fk.referencing_table];
    const DatabaseProfile::Entry& to = profile.tables[fk.referenced_table];
    out += "    {\"from_table\": " + Quote(from.name) + ", \"columns\": [";
    for (size_t c = 0; c < fk.foreign_key_columns.size(); ++c) {
      if (c > 0) out += ", ";
      out += Quote(from.table->schema().name(fk.foreign_key_columns[c]));
    }
    out += "], \"to_table\": " + Quote(to.name) + ", \"key\": " +
           AttrsJson(to.table->schema(), fk.referenced_key) +
           ", \"coverage\": " + Num(fk.coverage) + "}";
    if (i + 1 < profile.foreign_keys.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string ProfileToDot(const DatabaseProfile& profile) {
  std::string out = "digraph schema {\n  rankdir=LR;\n  node [shape=record, fontsize=10];\n";
  for (size_t i = 0; i < profile.tables.size(); ++i) {
    const DatabaseProfile::Entry& e = profile.tables[i];
    // Mark attributes of the smallest discovered key as the PK candidate.
    AttributeSet pk;
    if (!e.result.keys.empty()) pk = e.result.keys.front().attrs;
    std::string label = e.name;
    for (int c = 0; c < e.table->num_columns(); ++c) {
      label += "|";
      label += "<f" + std::to_string(c) + "> ";
      if (pk.Test(c)) label += "* ";
      // Escape DOT record separators in names.
      for (char ch : e.table->schema().name(c)) {
        if (ch == '|' || ch == '{' || ch == '}' || ch == '<' || ch == '>') {
          label += '\\';
        }
        label += ch;
      }
    }
    out += "  t" + std::to_string(i) + " [label=\"" + label + "\"];\n";
  }
  for (const ForeignKeyCandidate& fk : profile.foreign_keys) {
    out += "  t" + std::to_string(fk.referencing_table) + ":f" +
           std::to_string(fk.foreign_key_columns.front()) + " -> t" +
           std::to_string(fk.referenced_table) + ":f" +
           std::to_string(fk.referenced_key.First());
    if (fk.coverage < 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " [label=\"%.0f%%\", style=dashed]",
                    fk.coverage * 100);
      out += buf;
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace gordian
