#include "core/non_key_finder.h"

#include <cassert>

namespace gordian {

NonKeyFinder::NonKeyFinder(PrefixTree& tree,
                           const GordianOptions& options, NonKeySet* non_keys,
                           GordianStats* stats, TraversalObserver* observer)
    : tree_(tree),
      options_(options),
      non_keys_(non_keys),
      stats_(stats),
      observer_(observer) {
  const int depth = tree_.num_levels();
  suffix_attrs_.assign(depth + 1, AttributeSet());
  for (int l = depth - 1; l >= 0; --l) {
    suffix_attrs_[l] = suffix_attrs_[l + 1];
    suffix_attrs_[l].Set(tree_.attribute_at_level(l));
  }
  merge_pool_ = &tree_.pool();
}

bool NonKeyFinder::Run() {
  if (tree_.root() == nullptr || tree_.num_entities() == 0) return true;
  StartBudgetClock(0);
  Visit(tree_.root(), 0);
  return !aborted_;
}

void NonKeyFinder::StartBudgetClock(double offset_seconds) {
  budget_offset_seconds_ = offset_seconds;
  budget_watch_.Restart();
}

bool NonKeyFinder::RunSlice(int cell_index) {
  PrefixTree::Node* root = tree_.root();
  assert(root != nullptr && !root->is_leaf);
  assert(cell_index >= 0 &&
         cell_index < static_cast<int>(root->cells.size()));
  if (aborted_) return false;
  const int attr = tree_.attribute_at_level(0);
  cur_non_key_.Set(attr);
  const PrefixTree::Cell& cell = root->cells[cell_index];
  if (options_.singleton_pruning && cell.child->ref_count > 1) {
    // Cannot happen in a freshly built base tree (top-level subtrees have a
    // single parent) but kept for exact parity with the serial loop body.
    if (stats_ != nullptr) ++stats_->singleton_traversal_prunes;
    if (observer_ != nullptr) observer_->OnPrune("singleton", 0);
  } else {
    Visit(cell.child, 1);
  }
  cur_non_key_.Reset(attr);
  return !aborted_;
}

bool NonKeyFinder::RunRootMerge() {
  PrefixTree::Node* root = tree_.root();
  assert(root != nullptr && !root->is_leaf);
  if (aborted_) return false;
  // cur_non_key_ is empty here: the root attribute was projected back out at
  // the end of every slice, matching line 22 of Algorithm 4.
  assert(cur_non_key_.Empty());
  if (root->cells.size() <= 1) {
    if (root->cells.size() == 1) {
      if (stats_ != nullptr) ++stats_->singleton_merge_prunes;
      if (observer_ != nullptr) observer_->OnPrune("singleton-merge", 0);
    }
    return !aborted_;
  }
  if (options_.futility_pruning && FutilityCovered(suffix_attrs_[1])) {
    if (stats_ != nullptr) ++stats_->futility_prunes;
    if (observer_ != nullptr) observer_->OnPrune("futility", 0);
    return !aborted_;
  }
  std::vector<PrefixTree::Node*> children;
  children.reserve(root->cells.size());
  for (const PrefixTree::Cell& cell : root->cells) {
    children.push_back(cell.child);
  }
  PrefixTree::Node* merged =
      MergeNodes(*merge_pool_, children, stats_, &merge_scratch_);
  if (observer_ != nullptr) observer_->OnMerge(0);
  Visit(merged, 1);
  merge_pool_->Unref(merged);
  return !aborted_;
}

bool NonKeyFinder::OverBudget() {
  if (aborted_) return true;
  // A relaxed load per Visit is noise next to the traversal work, so the
  // cancellation and stop flags — unlike the clock — are polled unamortized:
  // a cancelled service job should unwind promptly.
  if (options_.cancel_flag != nullptr &&
      options_.cancel_flag->load(std::memory_order_relaxed)) {
    aborted_ = true;
    abort_reason_ = AbortReason::kCancelled;
    return true;
  }
  if (external_stop_ != nullptr &&
      external_stop_->load(std::memory_order_relaxed)) {
    aborted_ = true;  // reason stays kNone: it belongs to another worker
    return true;
  }
  if (options_.max_non_keys > 0 && non_keys_->size() > options_.max_non_keys) {
    aborted_ = true;
    abort_reason_ = AbortReason::kNonKeyBudget;
    return true;
  }
  // The wall-clock check (and the snapshot maintenance hook) is amortized
  // over a finder-local tick so it works — and costs the same — whether or
  // not a stats sink was supplied.
  if ((++visit_tick_ & 0xFFF) == 0) {
    if (maintenance_) maintenance_();
    if (options_.time_budget_seconds > 0 &&
        budget_offset_seconds_ + budget_watch_.ElapsedSeconds() >
            options_.time_budget_seconds) {
      aborted_ = true;
      abort_reason_ = AbortReason::kTimeBudget;
    }
  }
  return aborted_;
}

bool NonKeyFinder::FutilityCovered(const AttributeSet& probe) {
  if (warm_cover_ != nullptr && warm_cover_->CoversSet(probe)) {
    if (stats_ != nullptr) ++stats_->warm_start_prunes;
    return true;
  }
  if (non_keys_->CoversSet(probe)) return true;
  if (remote_cover_ && remote_cover_(probe)) {
    if (stats_ != nullptr) ++stats_->futility_snapshot_prunes;
    return true;
  }
  return false;
}

void NonKeyFinder::ProcessLeaf(PrefixTree::Node* node, int level) {
  const int attr = tree_.attribute_at_level(level);
  // Lines 3-8: a duplicate within the current projection (count > 1) makes
  // curNonKey, including this level's attribute, a non-key.
  if (observer_ != nullptr) observer_->OnSegment(cur_non_key_);
  for (const PrefixTree::Cell& cell : node->cells) {
    if (cell.count != 1) {
      if (observer_ != nullptr) observer_->OnNonKey(cur_non_key_);
      non_keys_->Insert(cur_non_key_);
      break;
    }
  }
  // Lines 9-12: project out the leaf attribute; if the slice then holds
  // more than one entity (several cells, or one cell with count > 1), the
  // remaining prefix is a non-key.
  cur_non_key_.Reset(attr);
  if (observer_ != nullptr) observer_->OnSegment(cur_non_key_);
  if (node->cells.size() > 1 ||
      (node->cells.size() == 1 && node->cells[0].count > 1)) {
    if (observer_ != nullptr) observer_->OnNonKey(cur_non_key_);
    non_keys_->Insert(cur_non_key_);
  }
}

void NonKeyFinder::Visit(PrefixTree::Node* node, int level) {
  if (stats_ != nullptr) ++stats_->nodes_visited;
  if (OverBudget()) return;
  const int attr = tree_.attribute_at_level(level);
  assert(!cur_non_key_.Test(attr));
  cur_non_key_.Set(attr);  // line 1: append attrNo to curNonKey

  if (node->is_leaf) {
    ProcessLeaf(node, level);  // also removes attr from cur_non_key_
    return;
  }

  // Line 14: a slice holding a single entity cannot yield a non-key.
  if (options_.single_entity_pruning && node->EntityCount() == 1) {
    if (stats_ != nullptr) ++stats_->single_entity_prunes;
    if (observer_ != nullptr) observer_->OnPrune("single-entity", level);
    cur_non_key_.Reset(attr);
    return;
  }

  // Lines 17-21: visit children depth-first, skipping shared (previously
  // traversed) subtrees — singleton pruning, Figure 10(a).
  for (const PrefixTree::Cell& cell : node->cells) {
    if (aborted_) break;
    if (options_.singleton_pruning && cell.child->ref_count > 1) {
      if (stats_ != nullptr) ++stats_->singleton_traversal_prunes;
      if (observer_ != nullptr) observer_->OnPrune("singleton", level);
      continue;
    }
    Visit(cell.child, level + 1);
  }

  cur_non_key_.Reset(attr);  // line 22
  if (aborted_) return;

  // Lines 23-30: merge the children (projecting out this level's attribute)
  // and explore the merged tree. A single-cell node's merge would return a
  // shared tree and so cannot yield non-redundant non-keys — singleton
  // pruning, Figure 10(b). This skip is written unconditionally into
  // Algorithm 4 ("if there is more than one cell in root"), so it is not
  // gated on the pruning toggle: without it, chains of single-cell nodes
  // would double the traversal at every level (2^d on single-entity paths).
  if (node->cells.size() <= 1) {
    if (node->cells.size() == 1) {
      if (stats_ != nullptr) ++stats_->singleton_merge_prunes;
      if (observer_ != nullptr) observer_->OnPrune("singleton-merge", level);
    }
    return;
  }

  // Line 24: futility test — the largest non-key the merged subtree could
  // produce is cur_non_key_ | suffix_attrs_[level + 1]; if an already
  // discovered non-key covers it, everything below is redundant.
  if (options_.futility_pruning &&
      FutilityCovered(cur_non_key_ | suffix_attrs_[level + 1])) {
    if (stats_ != nullptr) ++stats_->futility_prunes;
    if (observer_ != nullptr) observer_->OnPrune("futility", level);
    return;
  }

  std::vector<PrefixTree::Node*> children;
  children.reserve(node->cells.size());
  for (const PrefixTree::Cell& cell : node->cells) {
    children.push_back(cell.child);
  }
  PrefixTree::Node* merged =
      MergeNodes(*merge_pool_, children, stats_, &merge_scratch_);
  if (observer_ != nullptr) observer_->OnMerge(level);
  Visit(merged, level + 1);
  merge_pool_->Unref(merged);  // line 29: discard the merged tree
}

}  // namespace gordian
