#include "core/strength.h"

namespace gordian {

double ExactStrength(const Table& table, const AttributeSet& attrs) {
  return table.Strength(attrs);
}

double EstimatedStrengthLowerBound(const Table& sample,
                                   const AttributeSet& attrs) {
  const double n = static_cast<double>(sample.num_rows());
  if (n == 0) return 0.0;
  double prod = 1.0;
  attrs.ForEach([&](int a) {
    const double dv = static_cast<double>(sample.ColumnCardinality(a));
    prod *= (n - dv + 1.0) / (n + 2.0);
  });
  return 1.0 - prod;
}

}  // namespace gordian
