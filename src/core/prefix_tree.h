#ifndef GORDIAN_CORE_PREFIX_TREE_H_
#define GORDIAN_CORE_PREFIX_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "core/options.h"
#include "table/table.h"

namespace gordian {

// The compressed dataset representation of Section 3.2: one tree level per
// attribute, one cell per distinct value within a node, shared prefixes
// stored once. Leaf cells carry the multiplicity of the full entity; every
// cell carries the total entity count of its subtree (used by the
// single-entity prune).
//
// Nodes are reference counted (Section 3.3: "a reference-counting scheme was
// used") because merge results share untouched subtrees with the trees they
// were merged from. A node with ref_count > 1 is a "shared prefix tree" in
// the sense of the singleton-pruning rule.
class PrefixTree {
 public:
  struct Node;

  struct Cell {
    uint32_t code;   // dictionary code of the value at this level
    int64_t count;   // entities below this cell (leaf: multiplicity)
    Node* child;     // nullptr at the leaf level
  };

  struct Node {
    std::vector<Cell> cells;  // sorted by code, strictly increasing
    int64_t accounted_bytes = 0;  // maintained by NodePool::SyncCellBytes
    int32_t ref_count = 1;
    bool is_leaf = false;

    int64_t EntityCount() const {
      int64_t total = 0;
      for (const Cell& c : cells) total += c.count;
      return total;
    }
  };

  // Allocates, frees, and byte-accounts nodes. All merge intermediates flow
  // through the same pool as the base tree, so peak_bytes is the honest
  // maximum footprint of the whole tree phase.
  class NodePool {
   public:
    Node* NewNode(bool is_leaf);

    void AddRef(Node* n) { ++n->ref_count; }

    // Drops one reference; frees the node (and recursively unrefs its
    // children) when the count reaches zero.
    void Unref(Node* n);

    // Call after appending cells to `n` so capacity growth is accounted.
    void SyncCellBytes(Node* n);

    int64_t live_nodes() const { return live_nodes_; }
    int64_t total_nodes_created() const { return total_nodes_; }
    int64_t current_bytes() const { return tracker_.current_bytes(); }
    int64_t peak_bytes() const { return tracker_.peak_bytes(); }

   private:
    MemoryTracker tracker_;
    int64_t live_nodes_ = 0;
    int64_t total_nodes_ = 0;
  };

  PrefixTree() = default;
  ~PrefixTree();

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;
  PrefixTree(PrefixTree&& other) noexcept { *this = std::move(other); }
  PrefixTree& operator=(PrefixTree&& other) noexcept;

  // Builds the prefix tree for `table` with tree level i holding the column
  // `attr_order[i]`. `attr_order` must be a permutation of the column
  // positions. Detects duplicate entities (Algorithm 2, lines 17-18): when
  // present, has_duplicate_entities() is true and the dataset has no keys.
  static PrefixTree Build(const Table& table, const std::vector<int>& attr_order,
                          GordianOptions::TreeBuild mode);

  Node* root() const { return root_; }
  NodePool& pool() { return *pool_; }
  int num_levels() const { return static_cast<int>(attr_order_.size()); }
  // Original column position of tree level `level`.
  int attribute_at_level(int level) const { return attr_order_[level]; }
  const std::vector<int>& attr_order() const { return attr_order_; }

  bool has_duplicate_entities() const { return has_duplicate_entities_; }

  int64_t num_entities() const { return num_entities_; }
  int64_t node_count() const;
  int64_t cell_count() const;

 private:
  static PrefixTree BuildSorted(const Table& table,
                                const std::vector<int>& attr_order);
  static PrefixTree BuildInsertion(const Table& table,
                                   const std::vector<int>& attr_order);

  std::unique_ptr<NodePool> pool_ = std::make_unique<NodePool>();
  Node* root_ = nullptr;
  std::vector<int> attr_order_;
  int64_t num_entities_ = 0;
  bool has_duplicate_entities_ = false;
};

// Algorithm 3: merges a set of same-level nodes into one node whose cells
// hold the union of the input values; equal-value children are merged
// recursively; equal-value leaf counts are summed. A single-node input is
// returned directly with an extra reference (node sharing). The caller owns
// one reference to the result and must Unref it when done.
//
// `merges_performed` / `merge_nodes_created` counters are incremented when a
// stats pointer is supplied.
PrefixTree::Node* MergeNodes(PrefixTree::NodePool& pool,
                             const std::vector<PrefixTree::Node*>& to_merge,
                             GordianStats* stats);

}  // namespace gordian

#endif  // GORDIAN_CORE_PREFIX_TREE_H_
