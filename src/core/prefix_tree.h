#ifndef GORDIAN_CORE_PREFIX_TREE_H_
#define GORDIAN_CORE_PREFIX_TREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "core/options.h"
#include "table/table.h"

namespace gordian {

// The compressed dataset representation of Section 3.2: one tree level per
// attribute, one cell per distinct value within a node, shared prefixes
// stored once. Leaf cells carry the multiplicity of the full entity; every
// cell carries the total entity count of its subtree (used by the
// single-entity prune).
//
// Nodes are reference counted (Section 3.3: "a reference-counting scheme was
// used") because merge results share untouched subtrees with the trees they
// were merged from. A node with ref_count > 1 is a "shared prefix tree" in
// the sense of the singleton-pruning rule.
class PrefixTree {
 public:
  struct Node;

  struct Cell {
    uint32_t code;   // dictionary code of the value at this level
    int64_t count;   // entities below this cell (leaf: multiplicity)
    Node* child;     // nullptr at the leaf level
  };

  struct Node {
    std::vector<Cell> cells;  // sorted by code, strictly increasing
    int64_t accounted_bytes = 0;  // maintained by NodePool::SyncCellBytes
    // Sum of cells[*].count, maintained incrementally by the builders and
    // by MergeNodes so the single-entity prune — which fires on every
    // non-leaf Visit — never re-sums the cell vector.
    int64_t entity_total = 0;
    int32_t ref_count = 1;
    bool is_leaf = false;

    int64_t EntityCount() const {
#ifdef GORDIAN_TREE_CONSISTENCY_CHECKS
      int64_t recomputed = 0;
      for (const Cell& c : cells) recomputed += c.count;
      assert(recomputed == entity_total &&
             "cached entity_total out of sync with cell counts");
#endif
      return entity_total;
    }
  };

  // Allocates, frees, and byte-accounts nodes. All merge intermediates flow
  // through the same pool as the base tree, so peak_bytes is the honest
  // maximum footprint of the whole tree phase.
  //
  // Storage is a block arena plus a free list: nodes are carved out of
  // fixed-size blocks and recycled (retaining their cell-vector capacity)
  // when their reference count drops to zero. The traversal's merge phase
  // creates and discards millions of short-lived intermediate nodes; with
  // recycling, the steady state performs no heap allocation at all. Byte
  // accounting covers in-use nodes only — a recycled node's retained
  // capacity is allocator slack, exactly like memory returned to malloc was
  // before the arena, so current/peak semantics are unchanged.
  //
  // Not thread-safe; the parallel traversal gives each worker a private
  // pool.
  class NodePool {
   public:
    NodePool() = default;
    ~NodePool();

    NodePool(const NodePool&) = delete;
    NodePool& operator=(const NodePool&) = delete;

    Node* NewNode(bool is_leaf);

    void AddRef(Node* n) { ++n->ref_count; }

    // Drops one reference; recycles the node (and recursively unrefs its
    // children) when the count reaches zero.
    void Unref(Node* n);

    // Releases a node whose reference count has already reached zero
    // WITHOUT touching its children. This is the non-recursive tail of
    // Unref, exposed for callers that own the child recursion themselves —
    // the frozen traversal's merge outputs store tagged frozen references
    // in Cell::child, which Unref would chase as raw pointers.
    void Reclaim(Node* n);

    // Call after appending cells to `n` so capacity growth is accounted.
    void SyncCellBytes(Node* n);

    int64_t live_nodes() const { return live_nodes_; }
    int64_t total_nodes_created() const { return total_nodes_; }
    int64_t current_bytes() const { return tracker_.current_bytes(); }
    int64_t peak_bytes() const { return tracker_.peak_bytes(); }

   private:
    static constexpr int kNodesPerBlock = 256;

    MemoryTracker tracker_;
    std::vector<Node*> blocks_;     // owned arrays of kNodesPerBlock nodes
    std::vector<Node*> free_list_;  // recycled nodes, cells capacity kept
    int next_in_block_ = kNodesPerBlock;  // forces a block on first NewNode
    int64_t live_nodes_ = 0;
    int64_t total_nodes_ = 0;
  };

  PrefixTree() = default;
  ~PrefixTree();

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;
  PrefixTree(PrefixTree&& other) noexcept { *this = std::move(other); }
  PrefixTree& operator=(PrefixTree&& other) noexcept;

  // Builds the prefix tree for `table` with tree level i holding the column
  // `attr_order[i]`. `attr_order` must be a permutation of the column
  // positions. Detects duplicate entities (Algorithm 2, lines 17-18): when
  // present, has_duplicate_entities() is true and the dataset has no keys.
  static PrefixTree Build(const Table& table, const std::vector<int>& attr_order,
                          GordianOptions::TreeBuild mode);

  // Inserts `num_rows` delta entities into the existing tree (Algorithm 2's
  // insertion loop replayed against the already-built root). `level_codes`
  // holds one code pointer per tree level — already permuted by attr_order,
  // each addressing `num_rows` codes for the delta only. Leaf counts,
  // per-node entity totals, the duplicate-entity flag, num_entities() and
  // the memoized cell count are all updated exactly; no other state is
  // invalidated, so a traversal may run immediately afterwards.
  //
  // Every node reached must be privately owned (ref_count == 1) — true for
  // any freshly built or cache-resident tree, whose traversals restore the
  // reference counts they temporarily bump.
  //
  // `cancel` is polled between rows; on early stop the tree is a valid
  // prefix tree of the base rows plus the absorbed prefix of the batch.
  // Returns the number of rows absorbed so the caller can resume the
  // remainder with a later call.
  int64_t AbsorbBatch(const std::vector<const uint32_t*>& level_codes,
                      int64_t num_rows,
                      const std::atomic<bool>* cancel = nullptr);

  // Convenience overload: absorbs rows [row_begin, table.num_rows()) of
  // `table`, whose columns must be code-compatible with the dictionaries
  // the tree was built over (i.e. the table is the base table plus appended
  // rows encoded through the same first-seen dictionaries).
  int64_t AbsorbRows(const Table& table, int64_t row_begin,
                     const std::atomic<bool>* cancel = nullptr);

  Node* root() const { return root_; }
  NodePool& pool() { return *pool_; }
  int num_levels() const { return static_cast<int>(attr_order_.size()); }
  // Original column position of tree level `level`.
  int attribute_at_level(int level) const { return attr_order_[level]; }
  const std::vector<int>& attr_order() const { return attr_order_; }

  bool has_duplicate_entities() const { return has_duplicate_entities_; }

  int64_t num_entities() const { return num_entities_; }
  int64_t node_count() const;
  // Computed eagerly at Build time (the tree's structure is fixed from then
  // on — traversal only touches reference counts and restores them), so
  // concurrent readers of a cached tree never race on the memo. The memo is
  // atomic besides, making even the lazy fallback walk (trees that bypassed
  // Build) a benign same-value publication rather than a data race.
  int64_t cell_count() const;

 private:
  static PrefixTree BuildSorted(const Table& table,
                                const std::vector<int>& attr_order);
  static PrefixTree BuildInsertion(const Table& table,
                                   const std::vector<int>& attr_order);

  std::unique_ptr<NodePool> pool_ = std::make_unique<NodePool>();
  Node* root_ = nullptr;
  std::vector<int> attr_order_;
  int64_t num_entities_ = 0;
  bool has_duplicate_entities_ = false;
  mutable std::atomic<int64_t> cell_count_cache_{-1};
};

// Reusable per-traversal buffers for MergeNodes: one gather/partial pair per
// recursion depth, so a traversal performing millions of merges allocates
// the scratch once and then only grows it to the high-water mark. A scratch
// must not be shared across threads.
class MergeScratch {
 public:
  struct Level {
    std::vector<const PrefixTree::Cell*> gathered;
    std::vector<PrefixTree::Node*> partial;
  };

  Level& AtDepth(size_t depth) {
    if (depth >= levels_.size()) levels_.resize(depth + 1);
    return levels_[depth];
  }

 private:
  // deque, not vector: a merge at depth d holds a reference to its Level
  // (and passes its `partial` buffer to the recursive call) while deeper
  // merges may grow the table — deque growth never invalidates references
  // to existing elements.
  std::deque<Level> levels_;
};

// Algorithm 3: merges a set of same-level nodes into one node whose cells
// hold the union of the input values; equal-value children are merged
// recursively; equal-value leaf counts are summed. A single-node input is
// returned directly with an extra reference (node sharing). The caller owns
// one reference to the result and must Unref it when done.
//
// `merges_performed` / `merge_nodes_created` counters are incremented when a
// stats pointer is supplied. The scratch overload reuses the caller's
// buffers across calls; the two-argument form allocates a transient scratch
// and exists for callers outside the traversal hot path (tests, benches).
PrefixTree::Node* MergeNodes(PrefixTree::NodePool& pool,
                             const std::vector<PrefixTree::Node*>& to_merge,
                             GordianStats* stats);
PrefixTree::Node* MergeNodes(PrefixTree::NodePool& pool,
                             const std::vector<PrefixTree::Node*>& to_merge,
                             GordianStats* stats, MergeScratch* scratch,
                             size_t depth = 0);

}  // namespace gordian

#endif  // GORDIAN_CORE_PREFIX_TREE_H_
