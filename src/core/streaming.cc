#include "core/streaming.h"

#include "core/pipeline.h"
#include "core/strength.h"

#include <fstream>
#include <memory>

#include <utility>

namespace gordian {

StreamingProfiler::StreamingProfiler(Schema schema, GordianOptions options)
    : options_(std::move(options)),
      schema_(schema),
      builder_(schema),
      reservoir_capacity_(options_.sample_rows),
      rng_(options_.sample_seed) {
  if (reservoir_capacity_ > 0) {
    reservoir_.reserve(static_cast<size_t>(reservoir_capacity_));
  }
}

void StreamingProfiler::AddRow(const std::vector<Value>& row) {
  ++rows_seen_;
  if (reservoir_capacity_ <= 0) {
    builder_.AddRow(row);
    return;
  }
  // Vitter's Algorithm R: keep the first k rows, then replace a random
  // reservoir slot with probability k / rows_seen.
  if (static_cast<int64_t>(reservoir_.size()) < reservoir_capacity_) {
    reservoir_.push_back(row);
    return;
  }
  int64_t j = static_cast<int64_t>(
      rng_.Uniform(static_cast<uint64_t>(rows_seen_)));
  if (j < reservoir_capacity_) {
    reservoir_[static_cast<size_t>(j)] = row;
  }
}

KeyDiscoveryResult StreamingProfiler::Finish() {
  if (reservoir_capacity_ > 0) {
    for (const auto& row : reservoir_) builder_.AddRow(row);
  }
  Table data = builder_.Build();

  // Discovery itself must not sample again: the reservoir already did. The
  // run is the same staged pipeline FindKeys composes (core/pipeline.h).
  GordianOptions discovery = options_;
  discovery.sample_rows = 0;
  ProfileSession session(discovery);
  KeyDiscoveryResult result;
  (void)session.Run(data, &result);
  // Mark sampled runs so callers know keys carry estimates, and compute the
  // estimates the facade would have attached.
  if (reservoir_capacity_ > 0 && rows_seen_ > reservoir_capacity_) {
    result.sampled = true;
    for (DiscoveredKey& k : result.keys) {
      k.estimated_strength = EstimatedStrengthLowerBound(data, k.attrs);
      k.exact_strength = -1.0;  // unknown: the full stream is gone
    }
  }

  // Reset for reuse. The PRNG is re-seeded too, so a reused profiler draws
  // the same reservoir as a freshly constructed one over the same stream.
  builder_ = TableBuilder(schema_);
  reservoir_.clear();
  rows_seen_ = 0;
  rng_ = Random(options_.sample_seed);
  return result;
}

Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, KeyDiscoveryResult* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  std::vector<std::string> fields;
  std::unique_ptr<StreamingProfiler> profiler;
  int num_cols = -1;
  std::vector<Value> row;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    Status s = SplitCsvRecord(line, csv_options.delimiter, &fields);
    if (!s.ok()) return s;
    if (num_cols < 0) {
      num_cols = static_cast<int>(fields.size());
      std::vector<std::string> names;
      if (csv_options.has_header) {
        names = fields;
      } else {
        for (int i = 0; i < num_cols; ++i) {
          names.push_back("c" + std::to_string(i));
        }
      }
      profiler = std::make_unique<StreamingProfiler>(Schema(names), options);
      if (csv_options.has_header) continue;
    }
    if (static_cast<int>(fields.size()) != num_cols) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": ragged record");
    }
    row.clear();
    for (const std::string& f : fields) {
      row.push_back(ParseCsvField(f, csv_options.infer_types));
    }
    profiler->AddRow(row);
    // Ingest can dominate the wall clock on large files, so cancellation
    // must be observable here, not just inside discovery. Amortized: the
    // atomic load happens once every 4096 rows.
    if ((line_no & 0xFFF) == 0 && options.cancel_flag != nullptr &&
        options.cancel_flag->load(std::memory_order_relaxed)) {
      *out = KeyDiscoveryResult{};
      out->incomplete = true;
      out->incomplete_reason = AbortReason::kCancelled;
      return Status::OK();
    }
  }
  if (profiler == nullptr) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  *out = profiler->Finish();
  return Status::OK();
}

}  // namespace gordian
