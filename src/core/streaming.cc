#include "core/streaming.h"

#include <cassert>
#include <fstream>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "core/strength.h"

namespace gordian {

StreamingProfiler::StreamingProfiler(Schema schema, GordianOptions options,
                                     SpillPolicy spill)
    : options_(std::move(options)),
      schema_(schema),
      spill_(std::move(spill)),
      builder_(schema, spill_),
      reservoir_capacity_(options_.sample_rows),
      rng_(options_.sample_seed) {
  if (reservoir_capacity_ > 0) {
    reservoir_codes_.reserve(static_cast<size_t>(
        reservoir_capacity_ * schema_.num_columns()));
  }
  ResetReservoir();
}

void StreamingProfiler::ResetReservoir() {
  if (reservoir_capacity_ <= 0) return;
  const int d = schema_.num_columns();
  reservoir_rows_ = 0;
  reservoir_codes_.clear();
  reservoir_dicts_.clear();
  reservoir_dicts_.reserve(static_cast<size_t>(d));
  for (int c = 0; c < d; ++c) {
    reservoir_dicts_.push_back(std::make_shared<Dictionary>());
  }
  code_refs_.assign(static_cast<size_t>(d), {});
  live_codes_.assign(static_cast<size_t>(d), 0);
}

uint32_t StreamingProfiler::AcquireCode(int c, const Value& v) {
  uint32_t code = reservoir_dicts_[static_cast<size_t>(c)]->Encode(v);
  auto& refs = code_refs_[static_cast<size_t>(c)];
  if (code >= refs.size()) refs.resize(code + 1, 0);
  if (refs[code]++ == 0) ++live_codes_[static_cast<size_t>(c)];
  return code;
}

uint32_t StreamingProfiler::AcquireCode(int c, const ColumnChunk& chunk,
                                        int64_t i) {
  Dictionary& dict = *reservoir_dicts_[static_cast<size_t>(c)];
  uint32_t code;
  switch (chunk.type(i)) {
    case ValueType::kNull:
      code = dict.EncodeNull();
      break;
    case ValueType::kInt64:
      code = dict.Encode(chunk.int64_at(i));
      break;
    case ValueType::kDouble:
      code = dict.Encode(chunk.double_at(i));
      break;
    default:
      code = dict.Encode(chunk.string_at(i));
      break;
  }
  auto& refs = code_refs_[static_cast<size_t>(c)];
  if (code >= refs.size()) refs.resize(code + 1, 0);
  if (refs[code]++ == 0) ++live_codes_[static_cast<size_t>(c)];
  return code;
}

void StreamingProfiler::ReleaseRow(int64_t slot) {
  const int d = schema_.num_columns();
  for (int c = 0; c < d; ++c) {
    uint32_t code = reservoir_codes_[static_cast<size_t>(slot * d + c)];
    if (--code_refs_[static_cast<size_t>(c)][code] == 0) {
      --live_codes_[static_cast<size_t>(c)];
    }
  }
}

void StreamingProfiler::MaybeCompactColumn(int c) {
  Dictionary& dict = *reservoir_dicts_[static_cast<size_t>(c)];
  const int64_t size = dict.size();
  // Compact only once the dictionary is big enough to matter and at least
  // half of it is dead — amortizes the O(live) rebuild against the evictions
  // that made it necessary.
  if (size < 1024) return;
  const int64_t dead = size - live_codes_[static_cast<size_t>(c)];
  if (dead * 2 < size) return;

  auto fresh = std::make_shared<Dictionary>();
  const auto& refs = code_refs_[static_cast<size_t>(c)];
  std::vector<uint32_t> remap(static_cast<size_t>(size), UINT32_MAX);
  std::vector<uint32_t> new_refs;
  new_refs.reserve(static_cast<size_t>(live_codes_[static_cast<size_t>(c)]));
  // Re-encode live values in old-code order: the fresh dictionary assigns
  // 0,1,2,... so new_refs lines up with the new code space.
  for (int64_t code = 0; code < size; ++code) {
    if (refs[static_cast<size_t>(code)] == 0) continue;
    remap[static_cast<size_t>(code)] =
        fresh->Encode(dict.Decode(static_cast<uint32_t>(code)));
    new_refs.push_back(refs[static_cast<size_t>(code)]);
  }
  const int d = schema_.num_columns();
  for (int64_t r = 0; r < reservoir_rows_; ++r) {
    uint32_t& cell = reservoir_codes_[static_cast<size_t>(r * d + c)];
    cell = remap[cell];
  }
  reservoir_dicts_[static_cast<size_t>(c)] = std::move(fresh);
  code_refs_[static_cast<size_t>(c)] = std::move(new_refs);
}

int64_t StreamingProfiler::ReservoirSlotForNextRow() {
  // Vitter's Algorithm R: keep the first k rows, then replace a random
  // reservoir slot with probability k / rows_seen. The draw sequence is
  // identical for the row and batch ingest paths.
  if (reservoir_rows_ < reservoir_capacity_) return reservoir_rows_;
  int64_t j =
      static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(rows_seen_)));
  return j < reservoir_capacity_ ? j : -1;
}

void StreamingProfiler::AddRow(const std::vector<Value>& row) {
  ++rows_seen_;
  ++ingest_.rows;
  if (reservoir_capacity_ <= 0) {
    if (inc_ != nullptr) {
      Status s = inc_->AbsorbRow(row);
      assert(s.ok());
      (void)s;
    } else {
      builder_.AddRow(row);
    }
    return;
  }
  int64_t slot = ReservoirSlotForNextRow();
  if (slot < 0) return;
  const int d = schema_.num_columns();
  if (slot == reservoir_rows_) {
    ++reservoir_rows_;
    for (int c = 0; c < d; ++c) {
      reservoir_codes_.push_back(AcquireCode(c, row[c]));
    }
  } else {
    ReleaseRow(slot);
    for (int c = 0; c < d; ++c) {
      reservoir_codes_[static_cast<size_t>(slot * d + c)] =
          AcquireCode(c, row[c]);
    }
    for (int c = 0; c < d; ++c) MaybeCompactColumn(c);
  }
}

void StreamingProfiler::AddBatch(const RowBatch& batch) {
  const int d = schema_.num_columns();
  assert(batch.num_columns() == d);
  const int64_t n = batch.num_rows();
  // Counted here — at the public boundary — and nowhere else: the same
  // rows also flow through reservoir replacement or keys-current delta
  // absorption below, and those internal hops must not double-count.
  ++ingest_.batches;
  ingest_.rows += n;
  ingest_.bytes += batch.ByteSize();
  if (reservoir_capacity_ <= 0) {
    if (inc_ != nullptr) {
      Status s = inc_->Absorb(batch);
      assert(s.ok());
      (void)s;
    } else {
      builder_.AddBatch(batch);
    }
    rows_seen_ += n;
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    ++rows_seen_;
    int64_t slot = ReservoirSlotForNextRow();
    if (slot < 0) continue;
    if (slot == reservoir_rows_) {
      ++reservoir_rows_;
      for (int c = 0; c < d; ++c) {
        reservoir_codes_.push_back(AcquireCode(c, batch.column(c), i));
      }
    } else {
      ReleaseRow(slot);
      for (int c = 0; c < d; ++c) {
        reservoir_codes_[static_cast<size_t>(slot * d + c)] =
            AcquireCode(c, batch.column(c), i);
      }
      for (int c = 0; c < d; ++c) MaybeCompactColumn(c);
    }
  }
}

Status StreamingProfiler::EnableKeysCurrent() {
  if (keys_current_) return Status::OK();
  if (reservoir_capacity_ > 0) {
    // Reservoir mode keeps its normal ingest path; RefreshKeys()
    // cold-profiles a snapshot of the sample.
    keys_current_ = true;
    return Status::OK();
  }
  // Full mode: promote the rows retained so far into the incremental
  // engine (profiling them once to establish the base tree), and route
  // subsequent ingest there instead of the builder. Options the engine
  // cannot honour are rejected up front, before the builder is consumed.
  if (options_.null_semantics !=
      GordianOptions::NullSemantics::kNullEqualsNull) {
    return Status::InvalidArgument(
        "keys-current mode requires kNullEqualsNull semantics");
  }
  Table base;
  Status s = builder_.Build(&base);
  if (!s.ok()) return s;  // spilled ingest lost; the builder reset itself
  builder_ = TableBuilder(schema_, spill_);
  GordianOptions discovery = options_;
  discovery.sample_rows = 0;
  auto inc = std::make_unique<IncrementalProfiler>();
  s = IncrementalProfiler::Begin(base, discovery, inc.get());
  if (!s.ok()) return s;
  inc_ = std::move(inc);
  current_report_ = inc_->report();
  keys_current_ = true;
  return Status::OK();
}

Status StreamingProfiler::RefreshKeys() {
  if (!keys_current_) {
    return Status::InvalidArgument(
        "RefreshKeys: keys-current mode is not enabled");
  }
  if (inc_ != nullptr) {
    Status s = inc_->Refresh();
    if (!s.ok()) return s;
    current_report_ = inc_->report();
    return Status::OK();
  }
  // Reservoir mode: cold profile of the current sample. The dictionaries
  // are shared with the live reservoir only for the duration of this
  // (synchronous) run, which never mutates them.
  const int d = schema_.num_columns();
  std::vector<std::vector<uint32_t>> cols(static_cast<size_t>(d));
  for (int c = 0; c < d; ++c) {
    cols[static_cast<size_t>(c)].reserve(static_cast<size_t>(reservoir_rows_));
    for (int64_t r = 0; r < reservoir_rows_; ++r) {
      cols[static_cast<size_t>(c)].push_back(
          reservoir_codes_[static_cast<size_t>(r * d + c)]);
    }
  }
  std::vector<std::shared_ptr<Dictionary>> dicts = reservoir_dicts_;
  Table snap = Table::FromColumns(schema_, std::move(dicts), std::move(cols));
  GordianOptions discovery = options_;
  discovery.sample_rows = 0;
  ProfileSession session(discovery);
  KeyDiscoveryResult result;
  (void)session.Run(snap, &result);
  if (rows_seen_ > reservoir_capacity_) {
    result.sampled = true;
    for (DiscoveredKey& k : result.keys) {
      k.estimated_strength = EstimatedStrengthLowerBound(snap, k.attrs);
      k.exact_strength = -1.0;
    }
  }
  current_report_ = std::move(result);
  return Status::OK();
}

int64_t StreamingProfiler::ApproxBytes() const {
  int64_t b = builder_.ApproxBytes();
  if (inc_ != nullptr) {
    for (int c = 0; c < schema_.num_columns(); ++c) {
      b += static_cast<int64_t>(inc_->state().codes(c).capacity() *
                                sizeof(uint32_t));
    }
  }
  b += static_cast<int64_t>(reservoir_codes_.capacity() * sizeof(uint32_t));
  for (const auto& dict : reservoir_dicts_) b += dict->ApproxBytes();
  for (const auto& refs : code_refs_) {
    b += static_cast<int64_t>(refs.capacity() * sizeof(uint32_t));
  }
  return b;
}

KeyDiscoveryResult StreamingProfiler::Finish() {
  KeyDiscoveryResult result;
  Status s = Finish(&result);
  assert(s.ok());
  (void)s;
  return result;
}

Status StreamingProfiler::Finish(KeyDiscoveryResult* out) {
  if (inc_ != nullptr) {
    // Keys-current full mode: the incremental engine already holds the tree
    // and the last non-keys; a final (warm) refresh is the whole run.
    Status s = inc_->Refresh();
    if (!s.ok()) return s;
    *out = inc_->report();
    inc_.reset();
    keys_current_ = false;
    current_report_ = KeyDiscoveryResult{};
    builder_ = TableBuilder(schema_, spill_);
    ResetReservoir();
    rows_seen_ = 0;
    ingest_ = IngestStats{};
    rng_ = Random(options_.sample_seed);
    return Status::OK();
  }
  Table data;
  if (reservoir_capacity_ > 0) {
    // Hand the reservoir's dictionaries and code matrix to a Table without
    // re-encoding; codes need not be dense (compaction keeps them close).
    const int d = schema_.num_columns();
    std::vector<std::vector<uint32_t>> cols(static_cast<size_t>(d));
    for (int c = 0; c < d; ++c) {
      cols[static_cast<size_t>(c)].reserve(
          static_cast<size_t>(reservoir_rows_));
      for (int64_t r = 0; r < reservoir_rows_; ++r) {
        cols[static_cast<size_t>(c)].push_back(
            reservoir_codes_[static_cast<size_t>(r * d + c)]);
      }
    }
    data = Table::FromColumns(schema_, std::move(reservoir_dicts_),
                              std::move(cols));
  } else {
    Status s = builder_.Build(&data);
    if (!s.ok()) {
      // Unrecoverable spill loss; the builder reset itself, reset the rest
      // so the profiler stays reusable.
      ResetReservoir();
      rows_seen_ = 0;
      ingest_ = IngestStats{};
      rng_ = Random(options_.sample_seed);
      return s;
    }
  }

  // Discovery itself must not sample again: the reservoir already did. The
  // run is the same staged pipeline FindKeys composes (core/pipeline.h).
  GordianOptions discovery = options_;
  discovery.sample_rows = 0;
  ProfileSession session(discovery);
  (void)session.Run(data, out);
  // Mark sampled runs so callers know keys carry estimates, and compute the
  // estimates the facade would have attached.
  if (reservoir_capacity_ > 0 && rows_seen_ > reservoir_capacity_) {
    out->sampled = true;
    for (DiscoveredKey& k : out->keys) {
      k.estimated_strength = EstimatedStrengthLowerBound(data, k.attrs);
      k.exact_strength = -1.0;  // unknown: the full stream is gone
    }
  }

  // Reset for reuse. The PRNG is re-seeded too, so a reused profiler draws
  // the same reservoir as a freshly constructed one over the same stream.
  builder_ = TableBuilder(schema_, spill_);
  ResetReservoir();
  rows_seen_ = 0;
  ingest_ = IngestStats{};
  keys_current_ = false;
  current_report_ = KeyDiscoveryResult{};
  rng_ = Random(options_.sample_seed);
  return Status::OK();
}

Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, const SpillPolicy& spill,
                      KeyDiscoveryResult* out, IngestStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  CsvBatchReader reader(in, csv_options);
  Status s = reader.Init();
  if (!s.ok()) return s;
  if (reader.num_columns() == 0) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }

  std::unique_ptr<ThreadPool> pool;
  if (csv_options.encode_threads > 1) {
    pool = std::make_unique<ThreadPool>(csv_options.encode_threads);
  }
  StreamingProfiler profiler(Schema(reader.column_names()), options, spill);
  RowBatch batch;
  // Once spilling, a fat batch's string arena must not linger until the
  // next NextBatch reshapes it: budget-bound ingest frees it right after
  // the encode. Same threshold as the ReadCsv spill path.
  constexpr int64_t kBatchShrinkBytes = 8 << 20;
  for (;;) {
    s = reader.NextBatch(&batch, pool.get());
    if (!s.ok()) return s;
    if (batch.num_rows() == 0) break;
    profiler.AddBatch(batch);
    if (spill.enabled() && batch.ApproxBytes() > kBatchShrinkBytes) {
      batch.Clear();
      batch.ShrinkToFit();
    }
    // Ingest can dominate the wall clock on large files, so cancellation
    // must be observable here, not just inside discovery. Amortized: one
    // atomic load per ~4k-row batch.
    if (options.cancel_flag != nullptr &&
        options.cancel_flag->load(std::memory_order_relaxed)) {
      if (stats != nullptr) *stats = profiler.ingest_stats();
      *out = KeyDiscoveryResult{};
      out->incomplete = true;
      out->incomplete_reason = AbortReason::kCancelled;
      return Status::OK();
    }
  }
  // The profiler owns the authoritative ingest accounting (counted once per
  // AddBatch); copy it out before Finish resets the profiler.
  if (stats != nullptr) *stats = profiler.ingest_stats();
  return profiler.Finish(out);
}

Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, KeyDiscoveryResult* out,
                      IngestStats* stats) {
  return ProfileCsvFile(path, csv_options, options, SpillPolicy(), out,
                        stats);
}

}  // namespace gordian
