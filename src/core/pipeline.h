#ifndef GORDIAN_CORE_PIPELINE_H_
#define GORDIAN_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/frozen_tree.h"
#include "core/gordian.h"
#include "core/options.h"
#include "core/prefix_tree.h"
#include "table/table.h"

namespace gordian {

// The staged profiling pipeline. GORDIAN's run is naturally phased — encode
// the entities (sampling, null handling, attribute ordering), build the
// prefix tree (Algorithm 2), traverse it for non-keys (Algorithm 4), convert
// non-keys to keys (Algorithm 6), attach strengths (Section 3.9) — and this
// module makes the phases explicit: each is a ProfileStage, a ProfilePlan is
// an ordered stage list, and a ProfileSession executes a plan over a
// ProfileContext, recording per-stage wall time and bytes.
//
// FindKeys, StreamingProfiler::Finish, the profiling service, and the engine
// advisor are all thin compositions over the same default plan; they differ
// only in how the context is seeded (most importantly, whether a prebuilt
// prefix tree is injected from the service's TreeArtifactCache, letting a
// job skip TreeBuildStage entirely). Results are byte-identical across all
// composition paths and across serial/parallel traversal.

// Wall time, bytes, and rows attributed to one executed stage. `bytes` is
// the stage's dominant footprint: the sample's heap for encode, the tree
// pool for build, worker pools + NonKeySet for traversal; 0 when nothing
// meaningful applies. `rows` is the row count the stage operated on (set by
// encode: the rows actually profiled after sampling).
struct StageMetric {
  std::string name;
  double seconds = 0;
  int64_t bytes = 0;
  int64_t rows = 0;
};

// Shared state threaded through the stages of one profiling run. Owns the
// result under construction plus every intermediate the stages exchange.
// Not copyable (it embeds a PrefixTree); lives on the session's stack.
struct ProfileContext {
  // Inputs, set by ProfileSession::Run before the first stage.
  const Table* input = nullptr;
  GordianOptions options;

  // EncodeStage outputs: the data actually profiled (the input table or the
  // sample held in `sample_storage`) and the attribute -> tree-level order.
  const Table* data = nullptr;
  Table sample_storage;
  std::vector<int> attr_order;

  // TreeBuildStage outputs. `tree` points at `owned_tree` when this run
  // built its own, or at an externally owned, previously built tree
  // (injected via ProfileSession::set_shared_tree — a TreeArtifactCache
  // hit). An external tree's NodePool must not be touched: traversal merge
  // intermediates then come from `external_merge_pool` instead, exactly as
  // parallel workers already allocate from private pools.
  std::unique_ptr<PrefixTree> owned_tree;
  PrefixTree* tree = nullptr;
  bool tree_external = false;
  PrefixTree::NodePool external_merge_pool;

  // Frozen counterpart of the tree fields: TreeBuildStage freezes the built
  // tree when ResolveFrozenTraversal allows (or `frozen` was injected via
  // ProfileSession::set_shared_frozen_tree alongside the shared pointer
  // tree); the traversal stages then run FrozenNonKeyFinder. Null when the
  // frozen path is disabled — traversal falls back to the pointer tree.
  std::unique_ptr<FrozenTree> owned_frozen;
  FrozenTree* frozen = nullptr;

  // The result being assembled. A stage that concludes the run (duplicate
  // entities, cancellation, aborted traversal, null-projection hand-off)
  // sets `finished`; the session then skips the remaining stages.
  KeyDiscoveryResult result;
  bool finished = false;

  bool Cancelled() const {
    return options.cancel_flag != nullptr &&
           options.cancel_flag->load(std::memory_order_relaxed);
  }
};

// One stage of the pipeline. Run() mutates the context; a non-OK Status
// aborts the session (none of the built-in stages fail — the Status channel
// is the seam for future stages with real failure modes, e.g. spill-to-disk
// trees or per-stage distribution).
class ProfileStage {
 public:
  virtual ~ProfileStage() = default;
  virtual const char* name() const = 0;
  virtual Status Run(ProfileContext* ctx) = 0;
};

// Sampling (Section 3.9), SQL-style null projection, attribute ordering,
// and the pre-build cancellation check. When null semantics exclude nullable
// columns, this stage runs a nested session over the projected table and
// lifts the results back — concluding the run.
class EncodeStage : public ProfileStage {
 public:
  const char* name() const override { return "encode"; }
  Status Run(ProfileContext* ctx) override;
};

// Algorithm 2: builds the prefix tree (unless an external tree was
// injected), detects duplicate entities, checks cancellation.
class TreeBuildStage : public ProfileStage {
 public:
  const char* name() const override { return "tree_build"; }
  Status Run(ProfileContext* ctx) override;
};

// Algorithm 4: the non-key search. One interface, two implementations —
// serial, and the slice-parallel fan-out of docs/parallel.md. Both finish
// with the same canonical non-key ordering, so downstream stages (and
// reports) cannot tell them apart.
class TraversalStage : public ProfileStage {
 public:
  const char* name() const override { return "traverse"; }
};

class SerialTraversalStage : public TraversalStage {
 public:
  Status Run(ProfileContext* ctx) override;
};

// Fans the root's top-level slices across `threads` workers. Trees too
// small to fan out (leaf root, single slice) fall back to the serial body,
// mirroring the historical FindKeys dispatch exactly.
class ParallelTraversalStage : public TraversalStage {
 public:
  explicit ParallelTraversalStage(int threads) : threads_(threads) {}
  Status Run(ProfileContext* ctx) override;

 private:
  int threads_;
};

// Algorithm 6: maximal non-keys -> minimal keys.
class KeyConversionStage : public ProfileStage {
 public:
  const char* name() const override { return "convert"; }
  Status Run(ProfileContext* ctx) override;
};

// Attaches strengths: exact 1.0 for full-data runs, the T(K) lower bound
// for sampled runs (Section 3.9).
class ValidationStage : public ProfileStage {
 public:
  const char* name() const override { return "validate"; }
  Status Run(ProfileContext* ctx) override;
};

// An ordered list of stages. Default(options) reproduces FindKeys: encode,
// tree build, traversal (parallel when the resolved thread count asks for
// it — options.traversal_threads, falling back to GORDIAN_THREADS),
// conversion, validation.
class ProfilePlan {
 public:
  static ProfilePlan Default(const GordianOptions& options);

  void Append(std::unique_ptr<ProfileStage> stage) {
    stages_.push_back(std::move(stage));
  }
  const std::vector<std::unique_ptr<ProfileStage>>& stages() const {
    return stages_;
  }

 private:
  std::vector<std::unique_ptr<ProfileStage>> stages_;
};

// Executes a plan over one table. Reusable: each Run resets the context.
//
//   ProfileSession session(options);            // default plan
//   KeyDiscoveryResult r;
//   Status s = session.Run(table, &r);
//   for (const StageMetric& m : session.stage_metrics()) ...
class ProfileSession {
 public:
  explicit ProfileSession(const GordianOptions& options)
      : options_(options), plan_(ProfilePlan::Default(options)) {}
  ProfileSession(ProfilePlan plan, const GordianOptions& options)
      : options_(options), plan_(std::move(plan)) {}

  // Injects a prebuilt prefix tree for the next Run (a TreeArtifactCache
  // hit): TreeBuildStage skips Build and traversal allocates merge
  // intermediates from a private pool, leaving `tree` byte-identical to its
  // pre-run state on return. The tree must match the table/options this
  // session profiles (same data, sample spec, attribute order, build mode)
  // and must not be used concurrently by another run — traversal touches
  // node reference counts. Cleared after Run.
  void set_shared_tree(PrefixTree* tree) { shared_tree_ = tree; }

  // Companion to set_shared_tree: injects the prefrozen artifact of the
  // same cached tree, so the run skips the freeze pass too. Only meaningful
  // together with set_shared_tree; the frozen tree's traversal-mutable
  // reference counts are restored before Run returns, exactly like the
  // pointer tree's. Cleared after Run.
  void set_shared_frozen_tree(FrozenTree* frozen) { shared_frozen_ = frozen; }

  // Runs every stage in order (stopping early when a stage concludes the
  // run) and moves the result into *out.
  Status Run(const Table& table, KeyDiscoveryResult* out);

  // Per-stage wall/bytes of the last Run, in execution order.
  const std::vector<StageMetric>& stage_metrics() const { return metrics_; }

  // The tree the last Run built, for callers that cache it (nullptr when
  // the run used a shared tree, never built one, or was never run).
  std::unique_ptr<PrefixTree> TakeTree() { return std::move(built_tree_); }

  // The frozen flattening the last Run produced (nullptr when the frozen
  // path was disabled, a prefrozen artifact was injected, or no tree was
  // built). Callers that cache the tree cache this alongside it.
  std::unique_ptr<FrozenTree> TakeFrozenTree() {
    return std::move(built_frozen_);
  }

 private:
  GordianOptions options_;
  ProfilePlan plan_;
  PrefixTree* shared_tree_ = nullptr;
  FrozenTree* shared_frozen_ = nullptr;
  std::vector<StageMetric> metrics_;
  std::unique_ptr<PrefixTree> built_tree_;
  std::unique_ptr<FrozenTree> built_frozen_;
};

// The thread count the default plan resolves for `options`:
// traversal_threads when set, else GORDIAN_THREADS, else 0 (serial);
// negative forces serial. Exposed so callers (service metrics, benches) can
// report the mode a run will use.
int ResolveTraversalThreads(const GordianOptions& options);

// Whether a run under `options` freezes the tree and traverses the flat
// layout: options.frozen_traversal gated by the process-wide GORDIAN_FROZEN
// escape hatch (see FrozenTreesEnabled).
bool ResolveFrozenTraversal(const GordianOptions& options);

}  // namespace gordian

#endif  // GORDIAN_CORE_PIPELINE_H_
