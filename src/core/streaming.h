#ifndef GORDIAN_CORE_STREAMING_H_
#define GORDIAN_CORE_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/gordian.h"
#include "core/options.h"
#include "table/csv.h"
#include "table/table.h"

namespace gordian {

// Single-pass, row-at-a-time profiling. Algorithm 2 needs only one pass
// over the entities, so a profiler can sit on a stream (a cursor, a pipe, a
// log tail) without materializing the source twice:
//
//   StreamingProfiler profiler(schema, options);
//   while (source.Next(&row)) profiler.AddRow(row);
//   KeyDiscoveryResult result = profiler.Finish();
//
// Two ingestion modes:
//  - full (options.sample_rows == 0): every row is retained (in the
//    dictionary-encoded Table representation, not the raw input);
//  - reservoir (options.sample_rows == k > 0): a uniform k-row sample of
//    the stream is maintained with Vitter's Algorithm R, so arbitrarily
//    long streams profile in O(k) memory — the streaming face of the
//    paper's Section 3.9 sampling mode.
//
// Duplicate full entities are detected at Finish() (the no_keys abort).
class StreamingProfiler {
 public:
  StreamingProfiler(Schema schema, GordianOptions options = {});

  // Appends one entity from the stream.
  void AddRow(const std::vector<Value>& row);

  int64_t rows_seen() const { return rows_seen_; }

  // Runs discovery over the ingested (or reservoir-sampled) rows and
  // returns the result; the profiler is left empty and reusable.
  KeyDiscoveryResult Finish();

 private:
  GordianOptions options_;
  Schema schema_;
  TableBuilder builder_;
  int64_t rows_seen_ = 0;

  // Reservoir state (active when options_.sample_rows > 0).
  int64_t reservoir_capacity_ = 0;
  std::vector<std::vector<Value>> reservoir_;
  Random rng_;
};

// Profiles a CSV file through a StreamingProfiler without materializing the
// whole file: with options.sample_rows = k, a file of any size profiles in
// O(k) memory. Returns the discovery result.
Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, KeyDiscoveryResult* out);

}  // namespace gordian

#endif  // GORDIAN_CORE_STREAMING_H_
