#ifndef GORDIAN_CORE_STREAMING_H_
#define GORDIAN_CORE_STREAMING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/gordian.h"
#include "core/incremental.h"
#include "core/options.h"
#include "table/csv.h"
#include "table/table.h"

namespace gordian {

// Per-source ingest accounting, owned by the profiler and reported by
// ProfileCsvFile (and surfaced by the profiling service's metrics). Counted
// exactly once per public AddRow/AddBatch call — internal re-encoding
// (reservoir replacement, keys-current delta absorption) never touches it,
// so a row contributes to `rows` once no matter how many internal paths it
// flows through.
struct IngestStats {
  int64_t batches = 0;
  int64_t rows = 0;
  int64_t bytes = 0;  // sum of RowBatch::ByteSize over ingested batches
};

// Single-pass profiling over a stream of entities. Algorithm 2 needs only
// one pass, so a profiler can sit on a stream (a cursor, a pipe, a log
// tail) without materializing the source twice:
//
//   StreamingProfiler profiler(schema, options);
//   while (source.NextBatch(&batch)) profiler.AddBatch(batch);
//   KeyDiscoveryResult result = profiler.Finish();
//
// Two ingestion modes:
//  - full (options.sample_rows == 0): every row is retained (in the
//    dictionary-encoded Table representation, not the raw input);
//  - reservoir (options.sample_rows == k > 0): a uniform k-row sample of
//    the stream is maintained with Vitter's Algorithm R, so arbitrarily
//    long streams profile in O(k) memory — the streaming face of the
//    paper's Section 3.9 sampling mode.
//
// The reservoir holds *encoded* rows: a flat k x d uint32 code matrix plus
// one ref-counted dictionary per column. Evicting a row releases its codes;
// when a column's dictionary is large and mostly dead it is compacted
// (live values re-encoded in old-code order, reservoir codes remapped), so
// a long string-heavy stream never accumulates evicted strings. The
// row-at-a-time and batch ingest paths draw the same Algorithm-R sequence
// and assign identical codes.
//
// Duplicate full entities are detected at Finish() (the no_keys abort).
class StreamingProfiler {
 public:
  // `spill` applies to full-mode ingest only (the retained encoded table may
  // stream its cold columns to GRDL files); the reservoir is O(k) by
  // construction and never spills.
  StreamingProfiler(Schema schema, GordianOptions options = {},
                    SpillPolicy spill = {});

  // Appends one entity from the stream (adapter over the batch path).
  void AddRow(const std::vector<Value>& row);

  // Appends every row of `batch` (must match the schema's column count).
  void AddBatch(const RowBatch& batch);

  int64_t rows_seen() const { return rows_seen_; }

  // Ingest accounting since construction (or the last Finish).
  const IngestStats& ingest_stats() const { return ingest_; }

  // Keys-current mode: keep a discovery report available while the stream
  // is still flowing, instead of only at Finish().
  //
  // In full mode the profiler promotes its retained rows into an
  // IncrementalProfiler: enabling pays one base profile, and every
  // RefreshKeys() after that absorbs just the delta into the standing
  // prefix tree and re-traverses warm-started from the previous non-keys —
  // per-refresh cost scales with the delta, not the table. In reservoir
  // mode there is no append-only table to absorb into (replacement evicts
  // rows), so RefreshKeys() cold-profiles a snapshot of the current sample.
  //
  // Can be enabled mid-stream; rows ingested so far become the base.
  // Finish() in keys-current full mode returns the incremental engine's
  // (refreshed) report — byte-identical, for complete runs, to what the
  // default path computes over the same rows.
  Status EnableKeysCurrent();
  bool keys_current() const { return keys_current_; }

  // Brings current_report() up to date with every ingested row. No-op when
  // already current. InvalidArgument when keys-current mode is off.
  Status RefreshKeys();

  // The report RefreshKeys() last produced (default-constructed before the
  // first refresh). Covers rows ingested up to that refresh.
  const KeyDiscoveryResult& current_report() const { return current_report_; }

  // Approximate heap footprint of the ingest state: builder (full mode) or
  // code matrix + dictionaries + refcounts (reservoir mode).
  int64_t ApproxBytes() const;

  // Runs discovery over the ingested (or reservoir-sampled) rows and
  // returns the result; the profiler is left empty and reusable. The
  // Status-returning form fails only when spilled ingest data could not be
  // recovered (TableBuilder::Build semantics); the legacy form asserts
  // that never happened.
  Status Finish(KeyDiscoveryResult* out);
  KeyDiscoveryResult Finish();

 private:
  // Encodes one cell into column `c`'s reservoir dictionary and bumps its
  // refcount; returns the code.
  uint32_t AcquireCode(int c, const Value& v);
  uint32_t AcquireCode(int c, const ColumnChunk& chunk, int64_t i);
  void ReleaseRow(int64_t slot);
  void MaybeCompactColumn(int c);
  void ResetReservoir();

  // One Algorithm-R step: returns the reservoir slot the current row (the
  // rows_seen_-th, already counted) should occupy, or -1 to drop it.
  int64_t ReservoirSlotForNextRow();

  GordianOptions options_;
  Schema schema_;
  SpillPolicy spill_;
  TableBuilder builder_;
  int64_t rows_seen_ = 0;
  IngestStats ingest_;

  // Keys-current state. In full mode `inc_` replaces `builder_` as the
  // retained-row store once enabled; in reservoir mode only the flag and
  // the cached report are used.
  bool keys_current_ = false;
  std::unique_ptr<IncrementalProfiler> inc_;
  KeyDiscoveryResult current_report_;

  // Reservoir state (active when options_.sample_rows > 0).
  int64_t reservoir_capacity_ = 0;
  int64_t reservoir_rows_ = 0;
  std::vector<uint32_t> reservoir_codes_;  // row-major, reservoir_rows_ x d
  std::vector<std::shared_ptr<Dictionary>> reservoir_dicts_;  // one per column
  std::vector<std::vector<uint32_t>> code_refs_;  // per column, per code
  std::vector<int64_t> live_codes_;               // per column: #codes ref>0
  Random rng_;
};

// Profiles a CSV file through a StreamingProfiler without materializing the
// whole file: with options.sample_rows = k, a file of any size profiles in
// O(k) memory. Ingestion is batch-wise via CsvBatchReader. If `stats` is
// non-null it receives per-batch ingest accounting. Returns the discovery
// result.
Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, KeyDiscoveryResult* out,
                      IngestStats* stats = nullptr);

// Same, with a spill policy for full-mode ingest: the retained table's cold
// columns stream to GRDL files under spill.spill_dir once encoded bytes
// exceed the budget, and each RowBatch's string arena is released right
// after it is encoded — so profiling a file much larger than RAM needs
// memory for dictionaries plus roughly the budget. Results are identical
// to the unspilled overload's.
Status ProfileCsvFile(const std::string& path, const CsvOptions& csv_options,
                      const GordianOptions& options, const SpillPolicy& spill,
                      KeyDiscoveryResult* out, IngestStats* stats = nullptr);

}  // namespace gordian

#endif  // GORDIAN_CORE_STREAMING_H_
