#include "core/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/key_conversion.h"
#include "core/non_key_finder.h"
#include "core/non_key_set.h"
#include "core/parallel_finder.h"
#include "core/strength.h"

namespace gordian {

namespace {

// GORDIAN_THREADS engages the parallel traversal for callers that leave
// GordianOptions::traversal_threads at 0 (CI runs the whole suite this way).
// Read once: discovery may run on many threads and getenv is not reliably
// safe against concurrent environment mutation.
int EnvTraversalThreads() {
  static const int cached = [] {
    const char* s = std::getenv("GORDIAN_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const int v = std::atoi(s);
    return v > 0 ? v : 0;
  }();
  return cached;
}

// Both traversal modes report non-keys in this canonical order (cardinality,
// then bitset order — the same ordering MinimizeSets uses for keys), making
// reports byte-identical across serial and parallel runs: the discovered
// antichain's *content* is mode-invariant, but its insertion order is not.
void CanonicalizeNonKeys(std::vector<AttributeSet>* non_keys) {
  std::sort(non_keys->begin(), non_keys->end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              const int ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              return a < b;
            });
}

std::vector<int> ComputeAttributeOrder(const Table& table,
                                       const GordianOptions& options) {
  const int d = table.num_columns();
  std::vector<int> order(d);
  std::iota(order.begin(), order.end(), 0);
  switch (options.attribute_order) {
    case GordianOptions::AttributeOrder::kSchema:
      break;
    case GordianOptions::AttributeOrder::kCardinalityDesc:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return table.ColumnCardinality(a) > table.ColumnCardinality(b);
      });
      break;
    case GordianOptions::AttributeOrder::kCardinalityAsc:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return table.ColumnCardinality(a) < table.ColumnCardinality(b);
      });
      break;
    case GordianOptions::AttributeOrder::kRandom: {
      Random rng(options.order_seed);
      for (int i = d - 1; i > 0; --i) {
        std::swap(order[i],
                  order[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
      }
      break;
    }
  }
  return order;
}

// Column positions containing at least one NULL. A spilled column answers
// from its per-chunk null stats (no data scan); a resident column scans
// until the first null.
std::vector<int> NullableColumns(const Table& table) {
  std::vector<int> nullable;
  for (int c = 0; c < table.num_columns(); ++c) {
    uint32_t null_code = table.dictionary(c).Lookup(Value::Null());
    if (null_code == UINT32_MAX) continue;
    const CodeColumn& codes = table.column_codes(c);
    if (codes.spilled()) {
      if (codes.CountEqual(null_code) > 0) nullable.push_back(c);
      continue;
    }
    for (uint32_t code : codes) {
      if (code == null_code) {
        nullable.push_back(c);
        break;
      }
    }
  }
  return nullable;
}

// Shared tail of both traversal stages: canonical ordering, phase timing,
// peak-memory accounting, and the incomplete short-circuit (a partial
// non-key set cannot certify keys — later stages must not run).
void FinishTraversal(ProfileContext* ctx, const Stopwatch& watch,
                     int64_t worker_pool_bytes) {
  CanonicalizeNonKeys(&ctx->result.non_keys);
  ctx->result.stats.find_seconds = watch.ElapsedSeconds();
  ctx->result.stats.peak_memory_bytes =
      ctx->tree->pool().peak_bytes() + worker_pool_bytes;
  if (ctx->tree_external) {
    ctx->result.stats.peak_memory_bytes +=
        ctx->external_merge_pool.peak_bytes();
  }
  if (ctx->frozen != nullptr) {
    ctx->result.stats.peak_memory_bytes += ctx->frozen->ApproxBytes();
  }
  if (ctx->result.incomplete) ctx->finished = true;
}

// The merge-intermediate pool for a frozen traversal: the run's own tree
// pool when the tree is this run's (its peak is already what FinishTraversal
// reports), the external pool when the tree — and therefore its pool — is a
// shared cache artifact that must come back untouched.
PrefixTree::NodePool* FrozenMergePool(ProfileContext* ctx) {
  return ctx->tree_external ? &ctx->external_merge_pool : &ctx->tree->pool();
}

}  // namespace

int ResolveTraversalThreads(const GordianOptions& options) {
  int threads = options.traversal_threads;
  if (threads == 0) threads = EnvTraversalThreads();
  if (threads < 0) threads = 0;  // explicit "force serial"
  return threads;
}

bool ResolveFrozenTraversal(const GordianOptions& options) {
  return options.frozen_traversal && FrozenTreesEnabled();
}

Status EncodeStage::Run(ProfileContext* ctx) {
  const Table& table = *ctx->input;
  const int d = table.num_columns();
  ctx->result.stats.num_attributes = d;
  if (d == 0) {
    ctx->finished = true;
    return Status::OK();
  }

  // SQL-style null handling: bar nullable columns from the search entirely,
  // then lift the results of the projection back to original positions. The
  // projection is profiled by a nested session running the same plan shape.
  if (ctx->options.null_semantics ==
      GordianOptions::NullSemantics::kExcludeNullableColumns) {
    std::vector<int> nullable = NullableColumns(table);
    if (!nullable.empty()) {
      std::vector<int> kept;
      size_t ni = 0;
      for (int c = 0; c < d; ++c) {
        if (ni < nullable.size() && nullable[ni] == c) {
          ++ni;
        } else {
          kept.push_back(c);
        }
      }
      if (kept.empty()) {  // nothing can be a key
        ctx->finished = true;
        return Status::OK();
      }
      GordianOptions inner = ctx->options;
      inner.null_semantics = GordianOptions::NullSemantics::kNullEqualsNull;
      Table projected_table = table.SelectColumns(kept);
      ProfileSession nested(inner);
      KeyDiscoveryResult projected;
      Status s = nested.Run(projected_table, &projected);
      if (!s.ok()) return s;
      auto remap = [&](const AttributeSet& attrs) {
        AttributeSet out;
        attrs.ForEach([&](int a) { out.Set(kept[a]); });
        return out;
      };
      for (DiscoveredKey& k : projected.keys) k.attrs = remap(k.attrs);
      for (AttributeSet& nk : projected.non_keys) nk = remap(nk);
      projected.stats.num_attributes = d;
      ctx->result = std::move(projected);
      ctx->finished = true;
      return Status::OK();
    }
  }

  // Optional sampling phase (Section 3.9).
  ctx->data = &table;
  if (ctx->options.sample_rows > 0 &&
      ctx->options.sample_rows < table.num_rows()) {
    ctx->sample_storage =
        table.SampleRows(ctx->options.sample_rows, ctx->options.sample_seed);
    ctx->data = &ctx->sample_storage;
    ctx->result.sampled = true;
  }
  ctx->result.stats.rows_processed = ctx->data->num_rows();

  if (ctx->Cancelled()) {
    ctx->result.incomplete = true;
    ctx->result.incomplete_reason = AbortReason::kCancelled;
    ctx->finished = true;
    return Status::OK();
  }

  ctx->attr_order = ComputeAttributeOrder(*ctx->data, ctx->options);
  return Status::OK();
}

Status TreeBuildStage::Run(ProfileContext* ctx) {
  Stopwatch watch;
  if (ctx->tree != nullptr) {
    // A prebuilt tree was injected (TreeArtifactCache hit). It was built
    // from identical data under identical options, so it is the tree this
    // stage would have produced; assert the level order agrees.
    assert(ctx->tree->attr_order() == ctx->attr_order &&
           "shared tree was built under a different attribute order");
  } else {
    ctx->owned_tree = std::make_unique<PrefixTree>(PrefixTree::Build(
        *ctx->data, ctx->attr_order, ctx->options.tree_build));
    ctx->tree = ctx->owned_tree.get();
  }
  PrefixTree& tree = *ctx->tree;
  ctx->result.stats.build_seconds = watch.ElapsedSeconds();
  ctx->result.stats.base_tree_nodes = tree.node_count();
  ctx->result.stats.base_tree_cells = tree.cell_count();

  if (tree.has_duplicate_entities()) {
    // Algorithm 2, lines 17-18: a repeated entity means no key exists.
    ctx->result.no_keys = true;
    ctx->result.non_keys.push_back(
        AttributeSet::FirstN(static_cast<int>(ctx->result.stats.num_attributes)));
    ctx->result.stats.peak_memory_bytes = tree.pool().peak_bytes();
    ctx->finished = true;
    return Status::OK();
  }

  if (ctx->Cancelled()) {
    ctx->result.incomplete = true;
    ctx->result.incomplete_reason = AbortReason::kCancelled;
    ctx->result.stats.peak_memory_bytes = tree.pool().peak_bytes();
    ctx->finished = true;
    return Status::OK();
  }

  // The tree will not be mutated again (traversal only touches reference
  // counts), so this is the point where freezing pays: flatten once, let
  // the traversal stage run the span kernels. A cache hit injects the
  // prefrozen artifact instead and skips the pass entirely.
  if (ResolveFrozenTraversal(ctx->options)) {
    if (ctx->frozen == nullptr) {
      Stopwatch freeze_watch;
      ctx->owned_frozen = FrozenTree::Freeze(tree);
      ctx->frozen = ctx->owned_frozen.get();
      ctx->result.stats.freeze_seconds = freeze_watch.ElapsedSeconds();
    }
    ctx->result.stats.frozen_tree_bytes = ctx->frozen->ApproxBytes();
  }
  return Status::OK();
}

Status SerialTraversalStage::Run(ProfileContext* ctx) {
  Stopwatch watch;
  KeyDiscoveryResult& result = ctx->result;
  NonKeySet non_key_set(&result.stats);
  // Warm start (incremental re-profiles): the prior run's non-keys are
  // genuine non-keys of the appended table, so they seed the working set —
  // keeping the final antichain complete — and double as a read-only cover
  // the futility test consults first, pruning already-settled regions.
  const std::vector<AttributeSet>* warm_seeds =
      ctx->options.warm_start_non_keys;
  const bool warm = warm_seeds != nullptr && !warm_seeds->empty();
  NonKeySet warm_set(nullptr);
  if (warm) {
    for (const AttributeSet& nk : *warm_seeds) {
      warm_set.Insert(nk);
      non_key_set.Insert(nk);
    }
    result.stats.warm_start_seeds += static_cast<int64_t>(warm_seeds->size());
  }
  if (ctx->frozen != nullptr) {
    FrozenNonKeyFinder finder(*ctx->frozen, ctx->options, &non_key_set,
                              &result.stats);
    finder.SetMergePool(FrozenMergePool(ctx));
    if (warm) finder.SetWarmCover(&warm_set);
    result.stats.frozen_traversal_used = true;
    result.incomplete = !finder.Run();
    result.incomplete_reason = finder.abort_reason();
  } else {
    NonKeyFinder finder(*ctx->tree, ctx->options, &non_key_set,
                        &result.stats);
    // An externally owned tree must come back byte-identical (other jobs
    // will reuse it), so merge intermediates go to a private pool — the
    // same discipline parallel workers already follow.
    if (ctx->tree_external) finder.SetMergePool(&ctx->external_merge_pool);
    if (warm) finder.SetWarmCover(&warm_set);
    result.incomplete = !finder.Run();
    result.incomplete_reason = finder.abort_reason();
  }
  result.stats.final_non_keys = non_key_set.size();
  result.non_keys = non_key_set.non_keys();
  FinishTraversal(ctx, watch, non_key_set.ApproxBytes());
  return Status::OK();
}

Status ParallelTraversalStage::Run(ProfileContext* ctx) {
  PrefixTree& tree = *ctx->tree;
  // The parallel path needs >= 2 top-level slices to fan out; everything
  // smaller (leaf root, single slice) is trivial and runs serially
  // regardless — the historical FindKeys dispatch.
  const bool parallel = threads_ >= 1 && tree.root() != nullptr &&
                        !tree.root()->is_leaf &&
                        tree.root()->cells.size() >= 2;
  if (!parallel) {
    SerialTraversalStage serial;
    return serial.Run(ctx);
  }

  Stopwatch watch;
  KeyDiscoveryResult& result = ctx->result;
  NonKeySet merged_set(nullptr);
  ++result.stats.nodes_visited;  // the root, visited once in serial mode
  ParallelTraversalResult pr;
  if (ctx->frozen != nullptr) {
    result.stats.frozen_traversal_used = true;
    pr = ParallelFindNonKeys(*ctx->frozen, ctx->options, threads_,
                             &merged_set, &result.stats,
                             FrozenMergePool(ctx));
  } else {
    pr = ParallelFindNonKeys(
        tree, ctx->options, threads_, &merged_set, &result.stats,
        ctx->tree_external ? &ctx->external_merge_pool : nullptr);
  }
  result.incomplete = pr.aborted;
  result.incomplete_reason = pr.reason;
  result.stats.traversal_threads_used = pr.threads_used;
  result.stats.final_non_keys = merged_set.size();
  result.non_keys = merged_set.non_keys();
  FinishTraversal(ctx, watch,
                  pr.worker_pool_peak_bytes + merged_set.ApproxBytes());
  return Status::OK();
}

Status KeyConversionStage::Run(ProfileContext* ctx) {
  Stopwatch watch;
  std::vector<AttributeSet> keys =
      NonKeysToKeys(ctx->result.non_keys,
                    static_cast<int>(ctx->result.stats.num_attributes));
  ctx->result.stats.convert_seconds = watch.ElapsedSeconds();
  ctx->result.keys.reserve(keys.size());
  for (const AttributeSet& k : keys) {
    DiscoveredKey dk;
    dk.attrs = k;
    ctx->result.keys.push_back(dk);
  }
  return Status::OK();
}

Status ValidationStage::Run(ProfileContext* ctx) {
  for (DiscoveredKey& k : ctx->result.keys) {
    k.estimated_strength =
        ctx->result.sampled ? EstimatedStrengthLowerBound(*ctx->data, k.attrs)
                            : 1.0;
    if (!ctx->result.sampled) k.exact_strength = 1.0;
  }
  return Status::OK();
}

ProfilePlan ProfilePlan::Default(const GordianOptions& options) {
  ProfilePlan plan;
  plan.Append(std::make_unique<EncodeStage>());
  plan.Append(std::make_unique<TreeBuildStage>());
  const int threads = ResolveTraversalThreads(options);
  if (threads >= 1) {
    plan.Append(std::make_unique<ParallelTraversalStage>(threads));
  } else {
    plan.Append(std::make_unique<SerialTraversalStage>());
  }
  plan.Append(std::make_unique<KeyConversionStage>());
  plan.Append(std::make_unique<ValidationStage>());
  return plan;
}

Status ProfileSession::Run(const Table& table, KeyDiscoveryResult* out) {
  ProfileContext ctx;
  ctx.input = &table;
  ctx.options = options_;
  if (shared_tree_ != nullptr) {
    ctx.tree = shared_tree_;
    ctx.tree_external = true;
    shared_tree_ = nullptr;  // one Run per injection
    if (shared_frozen_ != nullptr && ResolveFrozenTraversal(options_)) {
      ctx.frozen = shared_frozen_;
    }
  }
  shared_frozen_ = nullptr;
  metrics_.clear();
  built_tree_.reset();
  built_frozen_.reset();

  Status status;
  for (const std::unique_ptr<ProfileStage>& stage : plan_.stages()) {
    Stopwatch watch;
    status = stage->Run(&ctx);
    StageMetric m;
    m.name = stage->name();
    m.seconds = watch.ElapsedSeconds();
    // Dominant footprint per stage; see StageMetric.
    if (m.name == "encode") {
      m.rows = ctx.result.stats.rows_processed;
      if (ctx.result.sampled) m.bytes = ctx.sample_storage.ApproxBytes();
    } else if (m.name == "tree_build" && ctx.tree != nullptr) {
      m.bytes = ctx.tree->pool().current_bytes();
    } else if (m.name == "traverse") {
      m.bytes = ctx.result.stats.peak_memory_bytes;
    }
    metrics_.push_back(std::move(m));
    if (!status.ok() || ctx.finished) break;
  }
  built_tree_ = std::move(ctx.owned_tree);
  built_frozen_ = std::move(ctx.owned_frozen);
  *out = std::move(ctx.result);
  return status;
}

}  // namespace gordian
