#ifndef GORDIAN_CORE_PARALLEL_FINDER_H_
#define GORDIAN_CORE_PARALLEL_FINDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/attribute_set.h"
#include "core/frozen_tree.h"
#include "core/non_key_set.h"
#include "core/options.h"
#include "core/prefix_tree.h"

namespace gordian {

// Cross-worker exchange of discovered non-keys for futility pruning
// (docs/parallel.md). Each worker owns one slot and republishes an immutable
// snapshot of its local NonKeySet every few thousand visits; other workers
// read the snapshots lock-light: the per-slot mutex is taken only to swap a
// shared_ptr, and the atomic version counter lets readers skip Collect
// entirely when nothing changed — the traversal hot path itself only scans
// its cached, immutable snapshot vectors.
//
// Snapshots feed pruning only (CoversSet-style probes); a remote non-key is
// never inserted into a local set, so a stale or missing snapshot costs
// wasted work, never wrong results.
class FutilityBoard {
 public:
  using Snapshot = std::shared_ptr<const std::vector<AttributeSet>>;

  explicit FutilityBoard(int num_workers);

  // Replaces `worker`'s snapshot and bumps the board version.
  void Publish(int worker, std::vector<AttributeSet> non_keys);

  // Appends every other worker's current snapshot to `out` (cleared first)
  // and returns the board version the collection corresponds to.
  uint64_t Collect(int worker, std::vector<Snapshot>* out) const;

  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    mutable std::mutex mu;
    Snapshot snap;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<uint64_t> version_{0};
};

// Outcome of ParallelFindNonKeys, mirroring what FindKeys needs to fill a
// KeyDiscoveryResult.
struct ParallelTraversalResult {
  bool aborted = false;
  AbortReason reason = AbortReason::kNone;
  int threads_used = 0;
  // Summed peak bytes of the workers' private merge pools (the base tree's
  // own pool is reported separately by the caller).
  int64_t worker_pool_peak_bytes = 0;
};

// Runs the find phase of FindKeys across `threads` workers: the root's
// top-level slices are handed out dynamically, each worker traverses its
// slices with a private NonKeyFinder / NonKeySet / NodePool, the per-worker
// non-key sets are then merged (in worker order) into `merged`, and the
// final root-merge pass of Algorithm 4 runs serially against the union.
// Aborts (budget, cancellation) propagate through a shared stop flag with a
// first-wins abort reason.
//
// Produces exactly the same non-key antichain as the serial traversal: see
// docs/parallel.md for the argument. Requires a non-leaf root with >= 2
// top-level cells and no duplicate entities (the caller falls back to the
// serial path otherwise). Traversal counters are accumulated into `stats`.
//
// The final serial root-merge pass allocates from `root_merge_pool` when one
// is supplied, and from the tree's own pool otherwise. Runs over a shared
// (TreeArtifactCache) tree must pass a private pool so the cached tree's
// NodePool accounting is left untouched; the caller owns that pool and its
// byte accounting.
ParallelTraversalResult ParallelFindNonKeys(
    PrefixTree& tree, const GordianOptions& options, int threads,
    NonKeySet* merged, GordianStats* stats,
    PrefixTree::NodePool* root_merge_pool = nullptr);

// Frozen-layout twin: the same fan-out, with each worker (and the final
// serial root merge) running FrozenNonKeyFinder over the flat representation
// instead of a pointer-chasing NonKeyFinder. Produces the same antichain and
// the same traversal counters as both the serial frozen traversal and the
// pointer-tree parallel traversal. `root_merge_pool` is required here: a
// FrozenTree carries no NodePool of its own, so the caller must say where
// merge intermediates of the root pass are accounted (the owning tree's pool,
// or a private pool for shared cache artifacts). Workers' slice traversals
// mutate disjoint ranges of the frozen reference-count array and restore them
// before returning, exactly like the pointer mode's ref_count discipline.
ParallelTraversalResult ParallelFindNonKeys(
    FrozenTree& tree, const GordianOptions& options, int threads,
    NonKeySet* merged, GordianStats* stats,
    PrefixTree::NodePool* root_merge_pool);

}  // namespace gordian

#endif  // GORDIAN_CORE_PARALLEL_FINDER_H_
