#ifndef GORDIAN_CORE_KEY_CONVERSION_H_
#define GORDIAN_CORE_KEY_CONVERSION_H_

#include <vector>

#include "common/attribute_set.h"

namespace gordian {

// Algorithm 6 (Section 3.7): converts a non-redundant set of non-keys into
// the non-redundant set of minimal keys by taking the cartesian product of
// the non-keys' complement sets (with respect to `num_attributes` columns)
// and pruning redundant (superset) keys on the fly.
//
// Special cases follow from the definition:
//  - no non-keys: every single attribute is a key, so all singletons return;
//  - some non-key equals the full attribute set: no key exists, returns {}.
std::vector<AttributeSet> NonKeysToKeys(const std::vector<AttributeSet>& non_keys,
                                        int num_attributes);

// Removes duplicates and any set that is a strict superset of another,
// returning the minimal antichain sorted by (cardinality, bit pattern).
// Exposed for tests and reused by the conversion.
std::vector<AttributeSet> MinimizeSets(std::vector<AttributeSet> sets);

}  // namespace gordian

#endif  // GORDIAN_CORE_KEY_CONVERSION_H_
