#ifndef GORDIAN_CORE_INCREMENTAL_H_
#define GORDIAN_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/attribute_set.h"
#include "common/status.h"
#include "core/frozen_tree.h"
#include "core/gordian.h"
#include "core/options.h"
#include "core/prefix_tree.h"
#include "table/fingerprint.h"
#include "table/table.h"

namespace gordian {

// Incremental discovery under appends (ROADMAP's open scale item).
//
// The enabling observation is GORDIAN's monotonicity property: appending
// rows can only create non-keys, never retract one. Three consequences are
// exploited here:
//   1. the prefix tree absorbs delta rows in place (PrefixTree::AbsorbBatch)
//      instead of being rebuilt — the tree of base + delta is exactly the
//      base tree with the delta's paths inserted, provided the tree keeps
//      the attribute order it was built under;
//   2. the prior run's non-keys are a sound warm-start seed
//      (GordianOptions::warm_start_non_keys), letting the re-traversal
//      futility-prune every region the delta cannot change;
//   3. the content fingerprint extends in O(delta) per batch
//      (FingerprintAccumulator), so catalog/cache keys stay exact.
// Complete runs produce byte-identical reports to a from-scratch FindKeys
// on the concatenated table (tests/incremental_test.cc pins this across
// serial/parallel x frozen/pointer x warm on/off x spilled base tables).

// The mutable append-side twin of an immutable Table: private dictionary
// copies plus growing code vectors, seeded from a base table (spilled
// columns are read back through their mapping). Absorb() encodes a RowBatch
// column-at-a-time in row order — the same first-seen code assignment as
// TableBuilder — so the accumulated codes, dictionaries, and fingerprint
// are identical to those of the concatenated table built in one shot.
class AppendState {
 public:
  AppendState() = default;

  AppendState(const AppendState&) = delete;
  AppendState& operator=(const AppendState&) = delete;
  AppendState(AppendState&&) = default;
  AppendState& operator=(AppendState&&) = default;

  // Deep-copies `base`'s dictionaries and codes so subsequent appends never
  // mutate state shared with the caller's table.
  static Status Begin(const Table& base, AppendState* out);

  // Encodes and appends every row of `batch`. Infallible once the shape
  // matches; a column-count mismatch is rejected before any state changes.
  Status Absorb(const RowBatch& batch);

  // Encodes and appends a single entity (the streaming profiler's
  // row-at-a-time face). Assigns the same codes as a one-row batch.
  Status AbsorbRow(const std::vector<Value>& row);

  // A point-in-time immutable Table equal to base + all absorbed batches.
  // Dictionaries are copied (not shared) so later Absorb calls leave the
  // snapshot's contents and fingerprint untouched. O(rows x columns).
  Table Snapshot() const;

  // Equals TableFingerprint(Snapshot()), maintained in O(delta) per batch.
  uint64_t fingerprint() const { return acc_.Fingerprint(); }

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_columns(); }
  const Schema& schema() const { return schema_; }
  const std::vector<uint32_t>& codes(int c) const {
    return codes_[static_cast<size_t>(c)];
  }
  const Dictionary& dictionary(int c) const {
    return *dicts_[static_cast<size_t>(c)];
  }

 private:
  Schema schema_;
  std::vector<std::shared_ptr<Dictionary>> dicts_;
  std::vector<std::vector<uint32_t>> codes_;
  FingerprintAccumulator acc_;
  int64_t num_rows_ = 0;
};

// Re-runs the post-encode phases of the profiling pipeline over an
// already-built (and possibly just-absorbed) tree: duplicate-entity check,
// optional freeze, traversal (serial or parallel per the resolved thread
// count), key conversion, validation. The tree is treated as external —
// merge intermediates come from a private pool — but unlike a cache-hit
// run there is no Table in sight: the tree IS the data. `num_attributes`
// is the profiled table's column count (== tree.num_levels()).
//
// When the options resolve to frozen traversal, the tree is re-frozen here
// (any prior frozen artifact is stale after an absorb); the new artifact is
// returned through *refrozen (nullptr allowed) and the freeze wall clock is
// recorded in result->stats.freeze_seconds.
//
// `options.sample_rows` must be 0 and null semantics kNullEqualsNull — both
// need the raw table and are rejected with InvalidArgument.
Status ReprofileTree(PrefixTree* tree, const GordianOptions& options,
                     int num_attributes, int64_t num_rows,
                     KeyDiscoveryResult* result,
                     std::unique_ptr<FrozenTree>* refrozen);

// Keys-current profiling of a growing table: owns the AppendState, the
// absorbed prefix tree, and the latest report; every Append re-encodes just
// the delta, absorbs it into the tree, and re-traverses with the previous
// non-keys as a warm-start seed.
//
//   IncrementalProfiler prof;
//   IncrementalProfiler::Begin(base_table, options, &prof);
//   prof.Append(batch1);   // report() now covers base + batch1
//   prof.Append(batch2);   // ... and so on
//
// Cancellation (options.cancel_flag) is honoured mid-absorb: the tree is
// always left in a valid state covering a prefix of the pending rows, the
// report is marked incomplete, and the next Append (or Refresh) resumes
// where the absorb stopped.
class IncrementalProfiler {
 public:
  IncrementalProfiler() = default;

  IncrementalProfiler(const IncrementalProfiler&) = delete;
  IncrementalProfiler& operator=(const IncrementalProfiler&) = delete;
  IncrementalProfiler(IncrementalProfiler&&) = default;
  IncrementalProfiler& operator=(IncrementalProfiler&&) = default;

  // Profiles `base` from scratch (establishing the pinned attribute order)
  // and readies the incremental state. Rejects options that require the raw
  // table on every run: sampling (re-sampling is not append-monotone) and
  // null-excluding semantics.
  static Status Begin(const Table& base, const GordianOptions& options,
                      IncrementalProfiler* out);

  // Absorbs `batch` and brings report() current. Equivalent to Absorb(batch)
  // followed by Refresh().
  Status Append(const RowBatch& batch);

  // Encodes `batch` into the append state and queues its rows for tree
  // absorption without re-profiling. Use to coalesce several small batches
  // into one Refresh.
  Status Absorb(const RowBatch& batch);

  // Single-row Absorb (same coalescing semantics).
  Status AbsorbRow(const std::vector<Value>& row);

  // Completes any pending tree absorption and re-runs discovery (warm-
  // started unless disabled). No-op when the report is already current.
  Status Refresh();

  // Replaces the warm-start seeds. Every seed must be a genuine non-key of
  // the CURRENT data: rows only ever get appended here, so non-keys from
  // any prior state of this profiler qualify automatically — but seeds
  // carried over from a table whose rows were later REMOVED (a shrinking
  // delta) may have become unique, and futility-pruning with them would
  // silently drop real keys. Each seed is therefore verified against the
  // data; a seed that is now unique is rejected with InvalidArgument and
  // the previous seeds are kept.
  Status SeedWarmStart(const std::vector<AttributeSet>& seeds);

  // Disables (or re-enables) warm-start seeding for subsequent refreshes;
  // the equivalence suite uses this to pin cold-vs-warm byte-identity.
  void set_warm_start(bool enabled) { warm_enabled_ = enabled; }

  // The latest report. Covers every absorbed row unless it is marked
  // incomplete (cancellation/budget) — then Refresh() resumes the work.
  const KeyDiscoveryResult& report() const { return report_; }

  // True when report() reflects all absorbed rows and completed traversal.
  bool current() const { return current_; }

  uint64_t fingerprint() const { return state_.fingerprint(); }
  int64_t num_rows() const { return state_.num_rows(); }
  // Rows already inserted into the tree (== num_rows() unless an absorb was
  // interrupted mid-batch).
  int64_t tree_rows() const { return tree_rows_; }
  const AppendState& state() const { return state_; }
  const GordianStats& last_stats() const { return report_.stats; }

 private:
  Status RebuildFromScratch();

  GordianOptions options_;
  AppendState state_;
  std::unique_ptr<PrefixTree> tree_;
  std::unique_ptr<FrozenTree> frozen_;
  KeyDiscoveryResult report_;
  std::vector<AttributeSet> warm_seeds_;
  int64_t tree_rows_ = 0;
  bool warm_enabled_ = true;
  bool current_ = false;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_INCREMENTAL_H_
