#include "core/frozen_tree.h"

#include <algorithm>
#include <cstdlib>

#if defined(__x86_64__) && !defined(GORDIAN_DISABLE_SIMD) && \
    (defined(__GNUC__) || defined(__clang__))
#define GORDIAN_FROZEN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace gordian {

namespace frozen_simd {

bool AnyCountNotOneScalar(const int64_t* counts, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] != 1) return true;
  }
  return false;
}

size_t LowerBoundScalar(const uint32_t* codes, size_t n, uint32_t target) {
  return static_cast<size_t>(std::lower_bound(codes, codes + n, target) -
                             codes);
}

#ifdef GORDIAN_FROZEN_SIMD_X86

__attribute__((target("avx2"))) static bool AnyCountNotOneAvx2(
    const int64_t* counts, size_t n) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, one)) != -1) return true;
  }
  for (; i < n; ++i) {
    if (counts[i] != 1) return true;
  }
  return false;
}

__attribute__((target("avx2"))) static size_t LowerBoundAvx2(
    const uint32_t* codes, size_t n, uint32_t target) {
  if (n == 0 || codes[0] >= target) return 0;
  // Gallop from the front: codes[prev] < target throughout; the answer ends
  // up bracketed in (prev, min(prev + step, n)]. Runs consumed by the merge
  // union are usually short, so the window stays proportional to the
  // distance actually advanced.
  size_t prev = 0, step = 1;
  while (prev + step < n && codes[prev + step] < target) {
    prev += step;
    step <<= 1;
  }
  size_t i = prev + 1;
  const size_t hi = std::min(n, prev + step);
  // The span is sorted, so elements < target form a prefix of the window:
  // scan 8 codes at a time and locate the first non-member of the prefix.
  // uint32 codes are compared signed after an MSB flip.
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i tgt =
      _mm256_set1_epi32(static_cast<int32_t>(target ^ 0x80000000u));
  for (; i + 8 <= hi; i += 8) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)),
        bias);
    const uint32_t lt_mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(tgt, v))));
    if (lt_mask != 0xFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~lt_mask));
    }
  }
  for (; i < hi; ++i) {
    if (codes[i] >= target) return i;
  }
  return hi;
}

#endif  // GORDIAN_FROZEN_SIMD_X86

namespace {

using AnyCountFn = bool (*)(const int64_t*, size_t);
using LowerBoundFn = size_t (*)(const uint32_t*, size_t, uint32_t);

bool HaveAvx2() {
#ifdef GORDIAN_FROZEN_SIMD_X86
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
#else
  return false;
#endif
}

AnyCountFn ResolveAnyCount() {
#ifdef GORDIAN_FROZEN_SIMD_X86
  if (HaveAvx2()) return &AnyCountNotOneAvx2;
#endif
  return &AnyCountNotOneScalar;
}

LowerBoundFn ResolveLowerBound() {
#ifdef GORDIAN_FROZEN_SIMD_X86
  if (HaveAvx2()) return &LowerBoundAvx2;
#endif
  return &LowerBoundScalar;
}

}  // namespace

bool AnyCountNotOne(const int64_t* counts, size_t n) {
  static const AnyCountFn fn = ResolveAnyCount();
  const bool result = fn(counts, n);
#ifdef GORDIAN_SIMD_CONSISTENCY_CHECKS
  assert(result == AnyCountNotOneScalar(counts, n) &&
         "SIMD AnyCountNotOne disagrees with the scalar kernel");
#endif
  return result;
}

size_t LowerBound(const uint32_t* codes, size_t n, uint32_t target) {
  static const LowerBoundFn fn = ResolveLowerBound();
  const size_t result = fn(codes, n, target);
#ifdef GORDIAN_SIMD_CONSISTENCY_CHECKS
  assert(result == LowerBoundScalar(codes, n, target) &&
         "SIMD LowerBound disagrees with the scalar kernel");
#endif
  return result;
}

const char* ActiveKernel() { return HaveAvx2() ? "avx2" : "scalar"; }

}  // namespace frozen_simd

bool FrozenTreesEnabled() {
  static const bool enabled = [] {
    const char* s = std::getenv("GORDIAN_FROZEN");
    return s == nullptr || *s == '\0' || std::atoi(s) != 0;
  }();
  return enabled;
}

std::unique_ptr<FrozenTree> FrozenTree::Freeze(const PrefixTree& tree) {
  std::unique_ptr<FrozenTree> out(new FrozenTree());
  out->attr_order_ = tree.attr_order();
  out->num_entities_ = tree.num_entities();
  const int depth = tree.num_levels();
  out->levels_.resize(static_cast<size_t>(depth));

  // BFS, level by level: the nodes of level l + 1 are enumerated in the
  // cell order of level l, which is precisely what makes cell index == child
  // node index hold.
  std::vector<const PrefixTree::Node*> cur = {tree.root()};
  std::vector<const PrefixTree::Node*> next;
  for (int l = 0; l < depth; ++l) {
    Level& lv = out->levels_[static_cast<size_t>(l)];
    const bool leaf = (l == depth - 1);
    size_t cells = 0;
    for (const PrefixTree::Node* n : cur) cells += n->cells.size();
    assert(cells < UINT32_MAX && "level too wide for uint32 cell offsets");
    lv.cell_begin.reserve(cur.size() + 1);
    lv.code.reserve(cells);
    lv.count.reserve(cells);
    lv.entity_total.reserve(cur.size());
    if (!leaf) next.reserve(cells);
    lv.cell_begin.push_back(0);
    for (const PrefixTree::Node* n : cur) {
      assert(n->ref_count == 1 &&
             "freeze requires a share-free (freshly built / fully unwound) "
             "tree");
      assert(n->is_leaf == leaf);
      lv.entity_total.push_back(n->entity_total);
      for (const PrefixTree::Cell& c : n->cells) {
        lv.code.push_back(c.code);
        lv.count.push_back(c.count);
        lv.max_code = std::max(lv.max_code, c.code);
        if (!leaf) next.push_back(c.child);
      }
      lv.cell_begin.push_back(static_cast<uint32_t>(lv.code.size()));
    }
    lv.ref.assign(cur.size(), 1);
    out->node_count_ += static_cast<int64_t>(cur.size());
    out->cell_count_ += static_cast<int64_t>(cells);
    out->approx_bytes_ +=
        static_cast<int64_t>(lv.cell_begin.capacity() * sizeof(uint32_t) +
                             lv.code.capacity() * sizeof(uint32_t) +
                             lv.count.capacity() * sizeof(int64_t) +
                             lv.entity_total.capacity() * sizeof(int64_t) +
                             lv.ref.capacity() * sizeof(int32_t) +
                             sizeof(Level));
    cur.swap(next);
    next.clear();
  }
  assert(out->node_count_ == tree.node_count());
  assert(out->cell_count_ == tree.cell_count());
  return out;
}

bool FrozenTree::AllRefsAreOne() const {
  for (const Level& lv : levels_) {
    for (int32_t r : lv.ref) {
      if (r != 1) return false;
    }
  }
  return true;
}

FrozenNonKeyFinder::FrozenNonKeyFinder(FrozenTree& tree,
                                       const GordianOptions& options,
                                       NonKeySet* non_keys,
                                       GordianStats* stats,
                                       TraversalObserver* observer)
    : tree_(tree),
      options_(options),
      non_keys_(non_keys),
      stats_(stats),
      observer_(observer),
      depth_(tree.num_levels()) {
  suffix_attrs_.assign(static_cast<size_t>(depth_) + 1, AttributeSet());
  for (int l = depth_ - 1; l >= 0; --l) {
    suffix_attrs_[static_cast<size_t>(l)] =
        suffix_attrs_[static_cast<size_t>(l) + 1];
    suffix_attrs_[static_cast<size_t>(l)].Set(tree_.attribute_at_level(l));
  }
  child_buf_.resize(static_cast<size_t>(depth_ > 0 ? depth_ : 1));
  fallback_pool_ = std::make_unique<PrefixTree::NodePool>();
  merge_pool_ = fallback_pool_.get();
}

bool FrozenNonKeyFinder::Run() {
  if (depth_ == 0 || tree_.num_entities() == 0) return true;
  StartBudgetClock(0);
  Visit(MakeFrozen(0, 0), 0);
  return !aborted_;
}

void FrozenNonKeyFinder::StartBudgetClock(double offset_seconds) {
  budget_offset_seconds_ = offset_seconds;
  budget_watch_.Restart();
}

bool FrozenNonKeyFinder::RunSlice(int cell_index) {
  assert(depth_ >= 2);
  assert(cell_index >= 0 &&
         static_cast<size_t>(cell_index) < tree_.level(0).num_cells());
  if (aborted_) return false;
  const int attr = tree_.attribute_at_level(0);
  cur_non_key_.Set(attr);
  if (options_.singleton_pruning &&
      tree_.level(1).ref[static_cast<size_t>(cell_index)] > 1) {
    // Cannot happen in a freshly frozen tree (top-level subtrees have a
    // single parent) but kept for exact parity with the serial loop body.
    if (stats_ != nullptr) ++stats_->singleton_traversal_prunes;
    if (observer_ != nullptr) observer_->OnPrune("singleton", 0);
  } else {
    Visit(MakeFrozen(1, static_cast<uint64_t>(cell_index)), 1);
  }
  cur_non_key_.Reset(attr);
  return !aborted_;
}

bool FrozenNonKeyFinder::RunRootMerge() {
  assert(depth_ >= 2);
  if (aborted_) return false;
  assert(cur_non_key_.Empty());
  const size_t num_slices = tree_.level(0).num_cells();
  if (num_slices <= 1) {
    if (num_slices == 1) {
      if (stats_ != nullptr) ++stats_->singleton_merge_prunes;
      if (observer_ != nullptr) observer_->OnPrune("singleton-merge", 0);
    }
    return !aborted_;
  }
  if (options_.futility_pruning && FutilityCovered(suffix_attrs_[1])) {
    if (stats_ != nullptr) ++stats_->futility_prunes;
    if (observer_ != nullptr) observer_->OnPrune("futility", 0);
    return !aborted_;
  }
  NodeRef merged = MergeChildren(MakeFrozen(0, 0), 0);
  if (observer_ != nullptr) observer_->OnMerge(0);
  Visit(merged, 1);
  UnrefRef(merged);
  return !aborted_;
}

bool FrozenNonKeyFinder::OverBudget() {
  if (aborted_) return true;
  if (options_.cancel_flag != nullptr &&
      options_.cancel_flag->load(std::memory_order_relaxed)) {
    aborted_ = true;
    abort_reason_ = AbortReason::kCancelled;
    return true;
  }
  if (external_stop_ != nullptr &&
      external_stop_->load(std::memory_order_relaxed)) {
    aborted_ = true;  // reason stays kNone: it belongs to another worker
    return true;
  }
  if (options_.max_non_keys > 0 && non_keys_->size() > options_.max_non_keys) {
    aborted_ = true;
    abort_reason_ = AbortReason::kNonKeyBudget;
    return true;
  }
  if ((++visit_tick_ & 0xFFF) == 0) {
    if (maintenance_) maintenance_();
    if (options_.time_budget_seconds > 0 &&
        budget_offset_seconds_ + budget_watch_.ElapsedSeconds() >
            options_.time_budget_seconds) {
      aborted_ = true;
      abort_reason_ = AbortReason::kTimeBudget;
    }
  }
  return aborted_;
}

bool FrozenNonKeyFinder::FutilityCovered(const AttributeSet& probe) {
  if (warm_cover_ != nullptr && warm_cover_->CoversSet(probe)) {
    if (stats_ != nullptr) ++stats_->warm_start_prunes;
    return true;
  }
  if (non_keys_->CoversSet(probe)) return true;
  if (remote_cover_ && remote_cover_(probe)) {
    if (stats_ != nullptr) ++stats_->futility_snapshot_prunes;
    return true;
  }
  return false;
}

void FrozenNonKeyFinder::ProcessLeaf(NodeRef node, int level) {
  const int attr = tree_.attribute_at_level(level);
  if (observer_ != nullptr) observer_->OnSegment(cur_non_key_);
  size_t num_cells;
  int64_t first_count = 0;
  bool has_duplicate;
  if (IsFrozen(node)) {
    const FrozenTree::Level& lv = tree_.level(level);
    const size_t idx = static_cast<size_t>(FrozenIndexOf(node));
    const size_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
    num_cells = e - b;
    has_duplicate = frozen_simd::AnyCountNotOne(lv.count.data() + b, e - b);
    if (num_cells > 0) first_count = lv.count[b];
  } else {
    const PrefixTree::Node* n = AsNode(node);
    num_cells = n->cells.size();
    has_duplicate = false;
    for (const PrefixTree::Cell& cell : n->cells) {
      if (cell.count != 1) {
        has_duplicate = true;
        break;
      }
    }
    if (num_cells > 0) first_count = n->cells[0].count;
  }
  if (has_duplicate) {
    if (observer_ != nullptr) observer_->OnNonKey(cur_non_key_);
    non_keys_->Insert(cur_non_key_);
  }
  cur_non_key_.Reset(attr);
  if (observer_ != nullptr) observer_->OnSegment(cur_non_key_);
  if (num_cells > 1 || (num_cells == 1 && first_count > 1)) {
    if (observer_ != nullptr) observer_->OnNonKey(cur_non_key_);
    non_keys_->Insert(cur_non_key_);
  }
}

void FrozenNonKeyFinder::Visit(NodeRef node, int level) {
  if (stats_ != nullptr) ++stats_->nodes_visited;
  if (OverBudget()) return;
  const int attr = tree_.attribute_at_level(level);
  assert(!cur_non_key_.Test(attr));
  cur_non_key_.Set(attr);

  if (level == depth_ - 1) {
    ProcessLeaf(node, level);  // also removes attr from cur_non_key_
    return;
  }

  size_t span_begin = 0, span_end = 0;
  PrefixTree::Node* pnode = nullptr;
  int64_t entities;
  if (IsFrozen(node)) {
    const FrozenTree::Level& lv = tree_.level(level);
    const size_t idx = static_cast<size_t>(FrozenIndexOf(node));
    span_begin = lv.cell_begin[idx];
    span_end = lv.cell_begin[idx + 1];
    entities = lv.entity_total[idx];
  } else {
    pnode = AsNode(node);
    assert(!pnode->is_leaf);
    entities = pnode->EntityCount();
  }

  if (options_.single_entity_pruning && entities == 1) {
    if (stats_ != nullptr) ++stats_->single_entity_prunes;
    if (observer_ != nullptr) observer_->OnPrune("single-entity", level);
    cur_non_key_.Reset(attr);
    return;
  }

  size_t num_children;
  if (pnode == nullptr) {
    num_children = span_end - span_begin;
    const std::vector<int32_t>& child_refs = tree_.level(level + 1).ref;
    for (size_t g = span_begin; g < span_end; ++g) {
      if (aborted_) break;
      if (options_.singleton_pruning && child_refs[g] > 1) {
        if (stats_ != nullptr) ++stats_->singleton_traversal_prunes;
        if (observer_ != nullptr) observer_->OnPrune("singleton", level);
        continue;
      }
      Visit(MakeFrozen(level + 1, g), level + 1);
    }
  } else {
    num_children = pnode->cells.size();
    for (const PrefixTree::Cell& cell : pnode->cells) {
      if (aborted_) break;
      const NodeRef child = FromChild(cell.child);
      const int32_t child_refs =
          IsFrozen(child) ? FrozenRefCount(child) : AsNode(child)->ref_count;
      if (options_.singleton_pruning && child_refs > 1) {
        if (stats_ != nullptr) ++stats_->singleton_traversal_prunes;
        if (observer_ != nullptr) observer_->OnPrune("singleton", level);
        continue;
      }
      Visit(child, level + 1);
    }
  }

  cur_non_key_.Reset(attr);
  if (aborted_) return;

  // The unconditional Figure 10(b) skip, exactly as in NonKeyFinder.
  if (num_children <= 1) {
    if (num_children == 1) {
      if (stats_ != nullptr) ++stats_->singleton_merge_prunes;
      if (observer_ != nullptr) observer_->OnPrune("singleton-merge", level);
    }
    return;
  }

  if (options_.futility_pruning &&
      FutilityCovered(cur_non_key_ |
                      suffix_attrs_[static_cast<size_t>(level) + 1])) {
    if (stats_ != nullptr) ++stats_->futility_prunes;
    if (observer_ != nullptr) observer_->OnPrune("futility", level);
    return;
  }

  NodeRef merged = MergeChildren(node, level);
  if (observer_ != nullptr) observer_->OnMerge(level);
  Visit(merged, level + 1);
  UnrefRef(merged);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeChildren(NodeRef node,
                                                              int level) {
  if (IsFrozen(node)) {
    // The children of a frozen node are the contiguous run of frozen nodes
    // [b, e) at level + 1, so this is MergeRefs inlined over that run —
    // same counter discipline, no materialized NodeRef list.
    const FrozenTree::Level& lv = tree_.level(level);
    const size_t idx = static_cast<size_t>(FrozenIndexOf(node));
    const uint32_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
    assert(e > b);
    if (stats_ != nullptr) ++stats_->merges_performed;
    if (e - b == 1) {
      const NodeRef child = MakeFrozen(level + 1, b);
      AddRefRef(child);
      return child;
    }
    if (e - b == 2) return MergePairFrozen(level + 1, b, b + 1);
    const FrozenTree::Level& clv = tree_.level(level + 1);
    if (static_cast<size_t>(clv.max_code) <= 4 * clv.num_cells() + 1024) {
      return MergeFrozenRange(level + 1, b, e, 0);
    }
  }
  std::vector<NodeRef>& buf = child_buf_[static_cast<size_t>(level)];
  buf.clear();
  if (IsFrozen(node)) {
    const FrozenTree::Level& lv = tree_.level(level);
    const size_t idx = static_cast<size_t>(FrozenIndexOf(node));
    const size_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
    buf.reserve(e - b);
    for (size_t g = b; g < e; ++g) buf.push_back(MakeFrozen(level + 1, g));
    // MergeRefs already ran its bookkeeping above; go straight to the
    // sparse-domain sort union.
    return MergeSorted(buf.data(), buf.size(), level + 1, 0);
  }
  const PrefixTree::Node* n = AsNode(node);
  buf.reserve(n->cells.size());
  for (const PrefixTree::Cell& cell : n->cells) {
    buf.push_back(FromChild(cell.child));
  }
  return MergeRefs(buf.data(), buf.size(), level + 1, 0);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeRefs(
    const NodeRef* inputs, size_t n, int level, size_t depth) {
  assert(n > 0);
  if (stats_ != nullptr) ++stats_->merges_performed;
  if (n == 1) {
    // Algorithm 3, lines 1-2: nothing to merge; share the node.
    AddRefRef(inputs[0]);
    return inputs[0];
  }
  if (n == 2 && IsFrozen(inputs[0]) && IsFrozen(inputs[1])) {
    assert(FrozenLevelOf(inputs[0]) == level &&
           FrozenLevelOf(inputs[1]) == level);
    return MergePairFrozen(level, FrozenIndexOf(inputs[0]),
                           FrozenIndexOf(inputs[1]));
  }
  return MergeGeneral(inputs, n, level, depth);
}

// The branch-light fast path: a 2-way union of two frozen spans. Distinct
// codes are located with a galloping (SIMD-scanned) lower bound and copied
// as whole runs — each copied cell shares its frozen child, which is what a
// 1-input merge would have produced, so the counters advance identically to
// the general path.
FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergePairFrozen(int level,
                                                                uint64_t a,
                                                                uint64_t b) {
  FrozenTree::Level& lv = tree_.level_mutable(level);
  const bool leaf = (level == depth_ - 1);
  const uint32_t* code = lv.code.data();
  const int64_t* count = lv.count.data();
  size_t i = lv.cell_begin[static_cast<size_t>(a)];
  const size_t ie = lv.cell_begin[static_cast<size_t>(a) + 1];
  size_t j = lv.cell_begin[static_cast<size_t>(b)];
  const size_t je = lv.cell_begin[static_cast<size_t>(b) + 1];

  PrefixTree::Node* out = merge_pool_->NewNode(leaf);
  if (stats_ != nullptr) ++stats_->merge_nodes_created;
  out->cells.reserve((ie - i) + (je - j));
  int64_t total = 0;

  std::vector<int32_t>* child_refs =
      leaf ? nullptr : &tree_.level_mutable(level + 1).ref;
  auto copy_run = [&](size_t from, size_t to) {
    for (size_t k = from; k < to; ++k) {
      PrefixTree::Cell c;
      c.code = code[k];
      c.count = count[k];
      c.child = leaf ? nullptr : ToChild(MakeFrozen(level + 1, k));
      out->cells.push_back(c);
      total += c.count;
    }
    if (!leaf && to > from) {
      for (size_t k = from; k < to; ++k) ++(*child_refs)[k];
      if (stats_ != nullptr) {
        stats_->merges_performed += static_cast<int64_t>(to - from);
      }
    }
  };

  while (i < ie && j < je) {
    const uint32_t ci = code[i], cj = code[j];
    if (ci == cj) {
      PrefixTree::Cell c;
      c.code = ci;
      c.count = count[i] + count[j];
      c.child = nullptr;
      if (!leaf) {
        if (stats_ != nullptr) ++stats_->merges_performed;
        c.child = ToChild(MergePairFrozen(level + 1, i, j));
      }
      out->cells.push_back(c);
      total += c.count;
      ++i;
      ++j;
    } else if (ci < cj) {
      const size_t k =
          i + 1 + frozen_simd::LowerBound(code + i + 1, ie - i - 1, cj);
      copy_run(i, k);
      i = k;
    } else {
      const size_t k =
          j + 1 + frozen_simd::LowerBound(code + j + 1, je - j - 1, ci);
      copy_run(j, k);
      j = k;
    }
  }
  copy_run(i, ie);
  copy_run(j, je);

  out->entity_total = total;
  merge_pool_->SyncCellBytes(out);
  return FromNode(out);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeGeneral(
    const NodeRef* inputs, size_t n, int level, size_t depth) {
  // Every code an n-way merge at `level` can see is a frozen code of that
  // level (merge outputs only union them), so level(level).max_code bounds
  // the whole domain. Dictionary codes are dense, which keeps the
  // code-indexed tables proportional to the level itself; pathologically
  // sparse domains fall back to the sort-based union.
  const FrozenTree::Level& lv = tree_.level(level);
  if (static_cast<size_t>(lv.max_code) <= 4 * lv.num_cells() + 1024) {
    return MergeDirect(inputs, n, level, depth);
  }
  return MergeSorted(inputs, n, level, depth);
}

// Comparison-free n-way union: bucket every input cell by dictionary code
// (counts accumulate in place), then scatter children into per-code runs.
// O(cells + distinct log distinct) versus the sort path's
// O(cells log cells) — and when the code table is small relative to the
// input (the dense mode, typical at the low-cardinality levels where merges
// concentrate) the distinct-code sort disappears too and the whole union is
// linear. Counter discipline is identical to MergeSorted: one node per
// union, one merges_performed bump per output cell (the would-be MergeRefs
// call, 1-input shares included), and runs keep gather order.
template <typename ForEachCell, typename ForEachChild>
FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeBucketed(
    size_t total_cells, int level, size_t depth,
    const ForEachCell& for_each_cell, const ForEachChild& for_each_child) {
  const bool leaf = (level == depth_ - 1);
  const FrozenTree::Level& lv = tree_.level(level);
  MergeLevelScratch& sc = ScratchAt(depth);
  const size_t table = static_cast<size_t>(lv.max_code) + 1;
  if (sc.code_mult.size() < table) {
    // New entries are zeroed here and re-zeroed after every merge, so the
    // tables are always all-zero on entry.
    sc.code_mult.resize(table, 0);
    sc.code_acc.resize(table, 0);
    sc.code_pos.resize(table, 0);
  }
  // Recursive merges use deeper scratch levels, so these stay valid across
  // the MergeRefs calls below.
  int32_t* mult = sc.code_mult.data();
  int64_t* acc = sc.code_acc.data();
  uint32_t* cursor = sc.code_pos.data();

  // Dense mode: the table is no bigger than a few times the input, so
  // walking it beats tracking and sorting the distinct codes.
  const bool dense = table <= 4 * total_cells + 16;
  size_t distinct = 0;
  if (dense) {
    for_each_cell([&](uint32_t c, int64_t count) {
      distinct += (mult[c] == 0);
      ++mult[c];
      acc[c] += count;
    });
  } else {
    sc.distinct.clear();
    for_each_cell([&](uint32_t c, int64_t count) {
      if (mult[c]++ == 0) sc.distinct.push_back(c);
      acc[c] += count;
    });
    std::sort(sc.distinct.begin(), sc.distinct.end());
    distinct = sc.distinct.size();
  }

  if (!leaf) {
    // Prefix-sum the multiplicities into scatter cursors, then group every
    // gathered child into its code's run.
    uint32_t pos = 0;
    if (dense) {
      for (size_t c = 0; c < table; ++c) {
        cursor[c] = pos;
        pos += static_cast<uint32_t>(mult[c]);
      }
    } else {
      for (uint32_t c : sc.distinct) {
        cursor[c] = pos;
        pos += static_cast<uint32_t>(mult[c]);
      }
    }
    sc.run_children.resize(total_cells);
    NodeRef* runs = sc.run_children.data();
    for_each_child([&](uint32_t c, NodeRef child) {
      runs[cursor[c]++] = child;
    });
  }

  PrefixTree::Node* out = merge_pool_->NewNode(leaf);
  if (stats_ != nullptr) ++stats_->merge_nodes_created;
  out->cells.resize(distinct);
  PrefixTree::Cell* cells = out->cells.data();
  int64_t total = 0;
  size_t d = 0;
  auto emit = [&](uint32_t c) {
    PrefixTree::Cell& cell = cells[d++];
    cell.code = c;
    cell.count = acc[c];
    cell.child = nullptr;
    total += cell.count;
    if (!leaf) {
      const uint32_t m = static_cast<uint32_t>(mult[c]);
      NodeRef* run = sc.run_children.data() + (cursor[c] - m);
      if (m == 1) {
        // The MergeRefs n == 1 share, inlined: this is by far the most
        // common run shape, and skipping the call keeps the emit loop
        // tight.
        if (stats_ != nullptr) ++stats_->merges_performed;
        AddRefRef(run[0]);
        cell.child = ToChild(run[0]);
      } else {
        cell.child = ToChild(MergeRefs(run, m, level + 1, depth + 1));
      }
    }
    mult[c] = 0;  // restore the all-zero invariant for reuse
    acc[c] = 0;
  };
  if (dense) {
    for (size_t c = 0; c < table; ++c) {
      if (mult[c] != 0) emit(static_cast<uint32_t>(c));
    }
  } else {
    for (uint32_t c : sc.distinct) emit(c);
  }
  assert(d == distinct);
  out->entity_total = total;
  merge_pool_->SyncCellBytes(out);
  return FromNode(out);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeDirect(
    const NodeRef* inputs, size_t n, int level, size_t depth) {
  const FrozenTree::Level& lv = tree_.level(level);
  const uint32_t* code = lv.code.data();
  const int64_t* count = lv.count.data();
  size_t total_cells = 0;
  for (size_t t = 0; t < n; ++t) {
    if (IsFrozen(inputs[t])) {
      assert(FrozenLevelOf(inputs[t]) == level);
      const size_t idx = static_cast<size_t>(FrozenIndexOf(inputs[t]));
      total_cells += lv.cell_begin[idx + 1] - lv.cell_begin[idx];
    } else {
      total_cells += AsNode(inputs[t])->cells.size();
    }
  }
  const auto for_each_cell = [&](auto&& fn) {
    for (size_t t = 0; t < n; ++t) {
      if (IsFrozen(inputs[t])) {
        const size_t idx = static_cast<size_t>(FrozenIndexOf(inputs[t]));
        const size_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
        for (size_t g = b; g < e; ++g) fn(code[g], count[g]);
      } else {
        for (const PrefixTree::Cell& cell : AsNode(inputs[t])->cells) {
          assert(cell.code <= lv.max_code);
          fn(cell.code, cell.count);
        }
      }
    }
  };
  const auto for_each_child = [&](auto&& fn) {
    for (size_t t = 0; t < n; ++t) {
      if (IsFrozen(inputs[t])) {
        const size_t idx = static_cast<size_t>(FrozenIndexOf(inputs[t]));
        const size_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
        for (size_t g = b; g < e; ++g) fn(code[g], MakeFrozen(level + 1, g));
      } else {
        for (const PrefixTree::Cell& cell : AsNode(inputs[t])->cells) {
          fn(cell.code, FromChild(cell.child));
        }
      }
    }
  };
  return MergeBucketed(total_cells, level, depth, for_each_cell,
                       for_each_child);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeFrozenRange(
    int level, uint32_t node_lo, uint32_t node_hi, size_t depth) {
  const FrozenTree::Level& lv = tree_.level(level);
  const size_t b = lv.cell_begin[node_lo], e = lv.cell_begin[node_hi];
  const uint32_t* code = lv.code.data();
  const int64_t* count = lv.count.data();
  const auto for_each_cell = [&](auto&& fn) {
    for (size_t g = b; g < e; ++g) fn(code[g], count[g]);
  };
  const auto for_each_child = [&](auto&& fn) {
    for (size_t g = b; g < e; ++g) fn(code[g], MakeFrozen(level + 1, g));
  };
  return MergeBucketed(e - b, level, depth, for_each_cell, for_each_child);
}

FrozenNonKeyFinder::NodeRef FrozenNonKeyFinder::MergeSorted(
    const NodeRef* inputs, size_t n, int level, size_t depth) {
  const bool leaf = (level == depth_ - 1);
  MergeLevelScratch& sc = ScratchAt(depth);
  sc.keys.clear();
  sc.counts.clear();
  sc.children.clear();

  size_t total_cells = 0;
  const FrozenTree::Level& lv = tree_.level(level);
  for (size_t t = 0; t < n; ++t) {
    if (IsFrozen(inputs[t])) {
      const size_t idx = static_cast<size_t>(FrozenIndexOf(inputs[t]));
      total_cells += lv.cell_begin[idx + 1] - lv.cell_begin[idx];
    } else {
      total_cells += AsNode(inputs[t])->cells.size();
    }
  }
  assert(total_cells < UINT32_MAX);
  sc.keys.reserve(total_cells);
  sc.counts.reserve(total_cells);
  if (!leaf) sc.children.reserve(total_cells);

  // Gather every input cell as a packed (code, gather-index) sort key with
  // parallel count/child arrays — the SoA counterpart of MergeNodes's
  // pointer gather.
  uint32_t gi = 0;
  for (size_t t = 0; t < n; ++t) {
    if (IsFrozen(inputs[t])) {
      assert(FrozenLevelOf(inputs[t]) == level);
      const size_t idx = static_cast<size_t>(FrozenIndexOf(inputs[t]));
      const size_t b = lv.cell_begin[idx], e = lv.cell_begin[idx + 1];
      for (size_t g = b; g < e; ++g) {
        sc.keys.push_back((static_cast<uint64_t>(lv.code[g]) << 32) | gi++);
        sc.counts.push_back(lv.count[g]);
        if (!leaf) sc.children.push_back(MakeFrozen(level + 1, g));
      }
    } else {
      const PrefixTree::Node* in = AsNode(inputs[t]);
      for (const PrefixTree::Cell& cell : in->cells) {
        sc.keys.push_back((static_cast<uint64_t>(cell.code) << 32) | gi++);
        sc.counts.push_back(cell.count);
        if (!leaf) sc.children.push_back(FromChild(cell.child));
      }
    }
  }
  std::sort(sc.keys.begin(), sc.keys.end());

  size_t distinct = 0;
  for (size_t i = 0; i < sc.keys.size(); ++i) {
    if (i == 0 || (sc.keys[i] >> 32) != (sc.keys[i - 1] >> 32)) ++distinct;
  }
  PrefixTree::Node* out = merge_pool_->NewNode(leaf);
  if (stats_ != nullptr) ++stats_->merge_nodes_created;
  out->cells.reserve(distinct);

  size_t i = 0;
  while (i < sc.keys.size()) {
    const uint32_t c = static_cast<uint32_t>(sc.keys[i] >> 32);
    PrefixTree::Cell cell;
    cell.code = c;
    cell.count = 0;
    cell.child = nullptr;
    sc.run.clear();
    for (; i < sc.keys.size() && (sc.keys[i] >> 32) == c; ++i) {
      const uint32_t src = static_cast<uint32_t>(sc.keys[i]);
      cell.count += sc.counts[src];
      if (!leaf) sc.run.push_back(sc.children[src]);
    }
    if (!leaf) {
      cell.child =
          ToChild(MergeRefs(sc.run.data(), sc.run.size(), level + 1,
                            depth + 1));
    }
    out->cells.push_back(cell);
    out->entity_total += cell.count;
  }
  merge_pool_->SyncCellBytes(out);
  return FromNode(out);
}

void FrozenNonKeyFinder::AddRefRef(NodeRef r) {
  if (IsFrozen(r)) {
    ++FrozenRefCount(r);
  } else {
    ++AsNode(r)->ref_count;
  }
}

void FrozenNonKeyFinder::UnrefRef(NodeRef r) {
  if (IsFrozen(r)) {
    int32_t& rc = FrozenRefCount(r);
    assert(rc > 1 && "the frozen tree always holds the final reference");
    --rc;
    return;
  }
  PrefixTree::Node* node = AsNode(r);
  assert(node->ref_count > 0);
  if (--node->ref_count > 0) return;
  // The pool's own Unref would chase Cell::child as a raw pointer; merge
  // outputs hold tagged frozen references there, so this finder owns the
  // recursion and hands the pool only the zero-ref node itself.
  if (!node->is_leaf) {
    for (const PrefixTree::Cell& cell : node->cells) {
      UnrefRef(FromChild(cell.child));
    }
  }
  merge_pool_->Reclaim(node);
}

}  // namespace gordian
