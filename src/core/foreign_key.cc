#include "core/foreign_key.h"

#include <algorithm>
#include <unordered_set>

#include "common/hashing.h"

namespace gordian {

namespace {

// Value tuples must be compared across tables, whose dictionaries assign
// codes independently — so fingerprints are built from the decoded Values.
Fingerprint128 TupleFingerprint(const Table& t, int64_t row,
                                const std::vector<int>& cols) {
  Fingerprint128 fp;
  for (int c : cols) fp.Update(t.value(row, c).Hash());
  return fp;
}

std::vector<int> ToCols(const AttributeSet& attrs) {
  std::vector<int> cols;
  attrs.ForEach([&](int a) { cols.push_back(a); });
  return cols;
}

// Dominant value type of a column, judged from its dictionary (NULLs are
// ignored; ties resolve to the first seen).
ValueType ColumnType(const Table& t, int col) {
  const Dictionary& d = t.dictionary(col);
  for (uint32_t code = 0; code < d.size(); ++code) {
    if (!d.Decode(code).is_null()) return d.Decode(code).type();
  }
  return ValueType::kNull;
}

bool TypesCompatible(const Table& a, const std::vector<int>& a_cols,
                     const Table& b, const std::vector<int>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (ColumnType(a, a_cols[i]) != ColumnType(b, b_cols[i])) return false;
  }
  return true;
}

bool RowHasNull(const Table& t, int64_t row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (t.value(row, c).is_null()) return true;
  }
  return false;
}

// The dictionary's code for NULL, or UINT32_MAX when the column never saw
// one. A dictionary stores at most one NULL entry.
uint32_t NullCodeOf(const Dictionary& d) {
  for (uint32_t code = 0; code < d.size(); ++code) {
    if (d.Decode(code).is_null()) return code;
  }
  return UINT32_MAX;
}

// --- dictionary-first path ----------------------------------------------

// Per-column facts derivable without decoding rows into Values: which
// dictionary codes actually occur in the rows (a sample or column view may
// carry a parent dictionary with absent values), how many distinct NULL-free
// values that is, and where NULL lives. One chunk-streamed pass per column —
// spilled columns are read through their mmap a chunk at a time, never
// materialized.
struct ColumnArtifact {
  ValueType type = ValueType::kNull;
  uint32_t null_code = UINT32_MAX;
  std::vector<uint8_t> present;   // indexed by dictionary code
  int64_t present_total = 0;      // distinct codes occurring in rows
  int64_t present_nonnull = 0;    // ... excluding the NULL code
};

ColumnArtifact BuildColumnArtifact(const Table& t, int col) {
  ColumnArtifact a;
  const Dictionary& d = t.dictionary(col);
  a.type = ColumnType(t, col);
  a.null_code = NullCodeOf(d);
  a.present.assign(d.size(), 0);
  const CodeColumn& codes = t.column_codes(col);
  for (int64_t ch = 0; ch < codes.num_chunks(); ++ch) {
    CodeColumn::Span span = codes.Scan(ch);
    for (int64_t i = 0; i < span.count; ++i) a.present[span.data[i]] = 1;
  }
  for (uint32_t c = 0; c < d.size(); ++c) {
    if (!a.present[c]) continue;
    ++a.present_total;
    if (c != a.null_code) ++a.present_nonnull;
  }
  return a;
}

// Code translation from the referencing column's dictionary into the
// referenced column's: trans[fc_code] is the referenced code carrying the
// same Value, or UINT32_MAX when the value is absent there. Only codes that
// occur in rows are probed (absent ones can never appear in a tuple).
std::vector<uint32_t> BuildTranslation(const Dictionary& from,
                                       const ColumnArtifact& from_art,
                                       const Dictionary& to) {
  std::vector<uint32_t> trans(from.size(), UINT32_MAX);
  for (uint32_t c = 0; c < from.size(); ++c) {
    if (!from_art.present[c] || c == from_art.null_code) continue;
    trans[c] = to.Lookup(from.Decode(c));
  }
  return trans;
}

// Lazily built, memoized per VerifyForeignKeysAgainstKey call (calls are
// independent, so concurrent verification units never share one).
class ArtifactSet {
 public:
  explicit ArtifactSet(const Table& table) : table_(table) {}

  const ColumnArtifact& Get(int col) {
    if (arts_.empty()) {
      arts_.resize(table_.num_columns());
      built_.assign(table_.num_columns(), false);
    }
    if (!built_[col]) {
      arts_[col] = BuildColumnArtifact(table_, col);
      built_[col] = true;
    }
    return arts_[col];
  }

 private:
  const Table& table_;
  std::vector<ColumnArtifact> arts_;
  std::vector<bool> built_;
};

uint64_t PackPair(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Applies the shared tail filters and appends the candidate when it passes.
void EmitIfQualified(int fi, int ki, const std::vector<int>& fcols,
                     const AttributeSet& key, int64_t covered,
                     int64_t denominator, int64_t key_tuples,
                     const ForeignKeyOptions& options,
                     std::vector<ForeignKeyCandidate>* out) {
  if (denominator == 0) return;  // every referencing tuple carried a NULL
  if (denominator < options.min_distinct_values) return;
  double coverage =
      static_cast<double>(covered) / static_cast<double>(denominator);
  if (coverage + 1e-12 < options.min_coverage) return;
  double referenced_coverage =
      key_tuples == 0 ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(key_tuples);
  if (referenced_coverage + 1e-12 < options.min_referenced_coverage) return;

  ForeignKeyCandidate cand;
  cand.referencing_table = fi;
  cand.referenced_table = ki;
  cand.foreign_key_columns = fcols;
  cand.referenced_key = key;
  cand.coverage = coverage;
  cand.referenced_coverage = referenced_coverage;
  cand.distinct_fk_tuples = denominator;
  out->push_back(std::move(cand));
}

// All candidate column tuples of `ft` with the key's arity, in the fixed
// enumeration order both paths share.
std::vector<std::vector<int>> EnumerateCandidates(const Table& ft,
                                                  size_t arity) {
  std::vector<std::vector<int>> candidates;
  if (arity == 1) {
    for (int c = 0; c < ft.num_columns(); ++c) candidates.push_back({c});
  } else if (arity == 2) {
    for (int c1 = 0; c1 < ft.num_columns(); ++c1) {
      for (int c2 = 0; c2 < ft.num_columns(); ++c2) {
        if (c1 != c2) candidates.push_back({c1, c2});
      }
    }
  }
  return candidates;
}

void VerifyDictionaryFirst(const std::vector<ProfiledTable>& tables, int fi,
                           int ki, const AttributeSet& key,
                           const std::vector<int>& kcols,
                           const ForeignKeyOptions& options,
                           std::vector<ForeignKeyCandidate>* out) {
  const Table& ft = *tables[fi].table;
  const Table& kt = *tables[ki].table;
  const bool strict = options.min_coverage >= 1.0;

  ArtifactSet fk_arts(ft);
  ArtifactSet key_arts(kt);
  // Key-side artifacts are always needed; referencing-side ones only for
  // columns that survive the type check.
  std::vector<const ColumnArtifact*> karts;
  for (int kc : kcols) karts.push_back(&key_arts.Get(kc));

  // The referenced key's distinct code-pair set, built once per call and
  // only for arity-2 keys (arity 1 reads presence straight off the
  // artifact). Chunk-streamed over both key columns.
  std::unordered_set<uint64_t> key_pairs;
  if (kcols.size() == 2) {
    const CodeColumn& k1 = kt.column_codes(kcols[0]);
    const CodeColumn& k2 = kt.column_codes(kcols[1]);
    key_pairs.reserve(static_cast<size_t>(kt.num_rows()));
    const uint32_t* d2 = k2.data();
    for (int64_t ch = 0; ch < k1.num_chunks(); ++ch) {
      CodeColumn::Span span = k1.Scan(ch);
      for (int64_t i = 0; i < span.count; ++i) {
        key_pairs.insert(
            PackPair(span.data[i], d2[span.begin + i]));
      }
    }
  }

  // Memoized translations, keyed by (fk column, key position).
  std::vector<std::vector<std::vector<uint32_t>>> trans_memo(
      ft.num_columns(),
      std::vector<std::vector<uint32_t>>(kcols.size()));
  std::vector<std::vector<uint8_t>> trans_built(
      ft.num_columns(), std::vector<uint8_t>(kcols.size(), 0));
  auto translation = [&](int fc, size_t kpos) -> const std::vector<uint32_t>& {
    if (!trans_built[fc][kpos]) {
      trans_memo[fc][kpos] = BuildTranslation(
          ft.dictionary(fc), fk_arts.Get(fc), kt.dictionary(kcols[kpos]));
      trans_built[fc][kpos] = 1;
    }
    return trans_memo[fc][kpos];
  };

  for (const std::vector<int>& fcols : EnumerateCandidates(ft, kcols.size())) {
    if (fi == ki && fcols == kcols) continue;  // the key referencing itself
    if (options.require_type_compatibility &&
        !TypesCompatible(ft, fcols, kt, kcols)) {
      continue;
    }

    if (kcols.size() == 1) {
      // Arity 1 is decided entirely from dictionaries + presence: coverage
      // counts the referencing column's occurring NULL-free values whose
      // translation lands on a referenced code that itself occurs.
      const ColumnArtifact& fa = fk_arts.Get(fcols[0]);
      const ColumnArtifact& ka = *karts[0];
      const std::vector<uint32_t>& trans = translation(fcols[0], 0);
      int64_t covered = 0;
      bool viable = true;
      for (uint32_t c = 0; c < trans.size(); ++c) {
        if (!fa.present[c] || c == fa.null_code) continue;
        uint32_t k = trans[c];
        if (k != UINT32_MAX && ka.present[k]) {
          ++covered;
        } else if (strict) {
          viable = false;  // strict inclusion already broken
          break;
        }
      }
      if (!viable) continue;
      EmitIfQualified(fi, ki, fcols, key, covered, fa.present_nonnull,
                      ka.present_total, options, out);
      continue;
    }

    // Arity 2. Column-level dictionary prune first: under strict inclusion
    // every component of a NULL-free tuple must translate to an occurring
    // referenced code, so a failing value in one column kills the pair —
    // provided the *other* column is NULL-free in the rows (otherwise the
    // failing value might only ever co-occur with NULLs, which the
    // denominator excludes, and the prune would be unsound).
    const ColumnArtifact& fa1 = fk_arts.Get(fcols[0]);
    const ColumnArtifact& fa2 = fk_arts.Get(fcols[1]);
    if (strict) {
      bool pruned = false;
      for (int side = 0; side < 2 && !pruned; ++side) {
        const ColumnArtifact& fa = side == 0 ? fa1 : fa2;
        const ColumnArtifact& other = side == 0 ? fa2 : fa1;
        const bool other_nullfree =
            other.null_code == UINT32_MAX || !other.present[other.null_code];
        if (!other_nullfree) continue;
        const ColumnArtifact& ka = *karts[side];
        const std::vector<uint32_t>& trans = translation(fcols[side], side);
        for (uint32_t c = 0; c < trans.size(); ++c) {
          if (!fa.present[c] || c == fa.null_code) continue;
          uint32_t k = trans[c];
          if (k == UINT32_MAX || !ka.present[k]) {
            pruned = true;
            break;
          }
        }
      }
      if (pruned) continue;
    }

    // Survivors: verify over translated code pairs, streaming the
    // referencing columns chunk by chunk.
    const std::vector<uint32_t>& t1 = translation(fcols[0], 0);
    const std::vector<uint32_t>& t2 = translation(fcols[1], 1);
    const CodeColumn& c1 = ft.column_codes(fcols[0]);
    const CodeColumn& c2 = ft.column_codes(fcols[1]);
    const uint32_t* d2 = c2.data();
    std::unordered_set<uint64_t> seen;
    int64_t covered = 0;
    bool viable = true;
    for (int64_t ch = 0; ch < c1.num_chunks() && viable; ++ch) {
      CodeColumn::Span span = c1.Scan(ch);
      for (int64_t i = 0; i < span.count; ++i) {
        uint32_t a = span.data[i];
        uint32_t b = d2[span.begin + i];
        if (a == fa1.null_code || b == fa2.null_code) continue;  // SQL NULLs
        if (!seen.insert(PackPair(a, b)).second) continue;
        uint32_t ta = t1[a], tb = t2[b];
        if (ta != UINT32_MAX && tb != UINT32_MAX &&
            key_pairs.count(PackPair(ta, tb)) > 0) {
          ++covered;
        } else if (strict) {
          viable = false;
          break;
        }
      }
    }
    if (!viable) continue;
    EmitIfQualified(fi, ki, fcols, key, covered,
                    static_cast<int64_t>(seen.size()),
                    static_cast<int64_t>(key_pairs.size()), options, out);
  }
}

// --- legacy value-materializing path (the equivalence oracle) ------------

void VerifyLegacy(const std::vector<ProfiledTable>& tables, int fi, int ki,
                  const AttributeSet& key, const std::vector<int>& kcols,
                  const ForeignKeyOptions& options,
                  std::vector<ForeignKeyCandidate>* out) {
  const Table& ft = *tables[fi].table;
  const Table& kt = *tables[ki].table;

  // The referenced key's tuple set, once per call.
  std::unordered_set<Fingerprint128, Fingerprint128Hash> key_tuples;
  key_tuples.reserve(static_cast<size_t>(kt.num_rows()));
  for (int64_t r = 0; r < kt.num_rows(); ++r) {
    key_tuples.insert(TupleFingerprint(kt, r, kcols));
  }

  for (const std::vector<int>& fcols : EnumerateCandidates(ft, kcols.size())) {
    if (fi == ki && fcols == kcols) continue;
    if (options.require_type_compatibility &&
        !TypesCompatible(ft, fcols, kt, kcols)) {
      continue;
    }

    std::unordered_set<Fingerprint128, Fingerprint128Hash> fk_tuples;
    int64_t covered = 0;
    bool viable = true;
    for (int64_t r = 0; r < ft.num_rows(); ++r) {
      if (RowHasNull(ft, r, fcols)) continue;  // SQL FK NULL semantics
      Fingerprint128 fp = TupleFingerprint(ft, r, fcols);
      if (fk_tuples.insert(fp).second) {
        if (key_tuples.count(fp) > 0) {
          ++covered;
        } else if (options.min_coverage >= 1.0) {
          viable = false;  // strict inclusion already broken
          break;
        }
      }
    }
    if (!viable) continue;
    EmitIfQualified(fi, ki, fcols, key, covered,
                    static_cast<int64_t>(fk_tuples.size()),
                    static_cast<int64_t>(key_tuples.size()), options, out);
  }
}

}  // namespace

double InclusionCoverage(const Table& fk_table, const AttributeSet& fk_cols,
                         const Table& key_table,
                         const AttributeSet& key_cols) {
  std::vector<int> fcols = ToCols(fk_cols);
  std::vector<int> kcols = ToCols(key_cols);
  if (fcols.size() != kcols.size() || fcols.empty()) return 0;

  std::unordered_set<Fingerprint128, Fingerprint128Hash> key_tuples;
  key_tuples.reserve(static_cast<size_t>(key_table.num_rows()));
  for (int64_t r = 0; r < key_table.num_rows(); ++r) {
    key_tuples.insert(TupleFingerprint(key_table, r, kcols));
  }

  std::unordered_set<Fingerprint128, Fingerprint128Hash> fk_tuples;
  int64_t covered = 0;
  for (int64_t r = 0; r < fk_table.num_rows(); ++r) {
    if (RowHasNull(fk_table, r, fcols)) continue;
    Fingerprint128 fp = TupleFingerprint(fk_table, r, fcols);
    if (fk_tuples.insert(fp).second) {
      if (key_tuples.count(fp) > 0) ++covered;
    }
  }
  if (fk_tuples.empty()) return 0;
  return static_cast<double>(covered) / static_cast<double>(fk_tuples.size());
}

std::vector<ForeignKeyCandidate> VerifyForeignKeysAgainstKey(
    const std::vector<ProfiledTable>& tables, int referencing_table,
    int referenced_table, const AttributeSet& key,
    const ForeignKeyOptions& options) {
  std::vector<ForeignKeyCandidate> out;
  std::vector<int> kcols = ToCols(key);
  if (kcols.empty() || static_cast<int>(kcols.size()) > options.max_arity ||
      kcols.size() > 2) {
    return out;
  }
  if (options.dictionary_first) {
    VerifyDictionaryFirst(tables, referencing_table, referenced_table, key,
                          kcols, options, &out);
  } else {
    VerifyLegacy(tables, referencing_table, referenced_table, key, kcols,
                 options, &out);
  }
  return out;
}

bool ForeignKeyCandidateLess(const ForeignKeyCandidate& a,
                             const ForeignKeyCandidate& b) {
  if (a.coverage != b.coverage) return a.coverage > b.coverage;
  if (a.referencing_table != b.referencing_table) {
    return a.referencing_table < b.referencing_table;
  }
  if (a.referenced_table != b.referenced_table) {
    return a.referenced_table < b.referenced_table;
  }
  if (a.foreign_key_columns != b.foreign_key_columns) {
    return a.foreign_key_columns < b.foreign_key_columns;
  }
  return a.referenced_key < b.referenced_key;
}

void SortForeignKeyCandidates(std::vector<ForeignKeyCandidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(), ForeignKeyCandidateLess);
}

std::vector<ForeignKeyCandidate> DiscoverForeignKeys(
    const std::vector<ProfiledTable>& tables,
    const ForeignKeyOptions& options) {
  std::vector<ForeignKeyCandidate> found;
  for (size_t ki = 0; ki < tables.size(); ++ki) {
    for (const AttributeSet& key : tables[ki].keys) {
      for (size_t fi = 0; fi < tables.size(); ++fi) {
        std::vector<ForeignKeyCandidate> unit = VerifyForeignKeysAgainstKey(
            tables, static_cast<int>(fi), static_cast<int>(ki), key, options);
        found.insert(found.end(), unit.begin(), unit.end());
      }
    }
  }
  SortForeignKeyCandidates(&found);
  return found;
}

}  // namespace gordian
