#include "core/foreign_key.h"

#include <algorithm>
#include <unordered_set>

#include "common/hashing.h"

namespace gordian {

namespace {

// Value tuples must be compared across tables, whose dictionaries assign
// codes independently — so fingerprints are built from the decoded Values.
Fingerprint128 TupleFingerprint(const Table& t, int64_t row,
                                const std::vector<int>& cols) {
  Fingerprint128 fp;
  for (int c : cols) fp.Update(t.value(row, c).Hash());
  return fp;
}

std::vector<int> ToCols(const AttributeSet& attrs) {
  std::vector<int> cols;
  attrs.ForEach([&](int a) { cols.push_back(a); });
  return cols;
}

// Dominant value type of a column, judged from its dictionary (NULLs are
// ignored; ties resolve to the first seen).
ValueType ColumnType(const Table& t, int col) {
  const Dictionary& d = t.dictionary(col);
  for (uint32_t code = 0; code < d.size(); ++code) {
    if (!d.Decode(code).is_null()) return d.Decode(code).type();
  }
  return ValueType::kNull;
}

bool TypesCompatible(const Table& a, const std::vector<int>& a_cols,
                     const Table& b, const std::vector<int>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (ColumnType(a, a_cols[i]) != ColumnType(b, b_cols[i])) return false;
  }
  return true;
}

}  // namespace

double InclusionCoverage(const Table& fk_table, const AttributeSet& fk_cols,
                         const Table& key_table,
                         const AttributeSet& key_cols) {
  std::vector<int> fcols = ToCols(fk_cols);
  std::vector<int> kcols = ToCols(key_cols);
  if (fcols.size() != kcols.size() || fcols.empty()) return 0;

  std::unordered_set<Fingerprint128, Fingerprint128Hash> key_tuples;
  key_tuples.reserve(static_cast<size_t>(key_table.num_rows()));
  for (int64_t r = 0; r < key_table.num_rows(); ++r) {
    key_tuples.insert(TupleFingerprint(key_table, r, kcols));
  }

  std::unordered_set<Fingerprint128, Fingerprint128Hash> fk_tuples;
  int64_t covered = 0;
  for (int64_t r = 0; r < fk_table.num_rows(); ++r) {
    Fingerprint128 fp = TupleFingerprint(fk_table, r, fcols);
    if (fk_tuples.insert(fp).second) {
      if (key_tuples.count(fp) > 0) ++covered;
    }
  }
  if (fk_tuples.empty()) return 0;
  return static_cast<double>(covered) / static_cast<double>(fk_tuples.size());
}

std::vector<ForeignKeyCandidate> DiscoverForeignKeys(
    const std::vector<ProfiledTable>& tables,
    const ForeignKeyOptions& options) {
  std::vector<ForeignKeyCandidate> found;

  for (size_t ki = 0; ki < tables.size(); ++ki) {
    const ProfiledTable& keyed = tables[ki];
    for (const AttributeSet& key : keyed.keys) {
      std::vector<int> kcols = ToCols(key);
      if (static_cast<int>(kcols.size()) > options.max_arity) continue;

      // Precompute the referenced key's tuple set once per (table, key).
      std::unordered_set<Fingerprint128, Fingerprint128Hash> key_tuples;
      key_tuples.reserve(static_cast<size_t>(keyed.table->num_rows()));
      for (int64_t r = 0; r < keyed.table->num_rows(); ++r) {
        key_tuples.insert(TupleFingerprint(*keyed.table, r, kcols));
      }

      for (size_t fi = 0; fi < tables.size(); ++fi) {
        const ProfiledTable& refing = tables[fi];
        const Table& ft = *refing.table;

        // Enumerate candidate column tuples of the same arity. For arity 1
        // this is every column; for arity 2 every ordered pair of distinct
        // columns (order must match the key's column order semantics).
        std::vector<std::vector<int>> candidates;
        if (kcols.size() == 1) {
          for (int c = 0; c < ft.num_columns(); ++c) candidates.push_back({c});
        } else if (kcols.size() == 2) {
          for (int c1 = 0; c1 < ft.num_columns(); ++c1) {
            for (int c2 = 0; c2 < ft.num_columns(); ++c2) {
              if (c1 != c2) candidates.push_back({c1, c2});
            }
          }
        } else {
          continue;  // arity > 2 unsupported by enumeration
        }

        for (const std::vector<int>& fcols : candidates) {
          // Exclude the key referencing itself.
          if (fi == ki && fcols == kcols) continue;
          if (options.require_type_compatibility &&
              !TypesCompatible(ft, fcols, *keyed.table, kcols)) {
            continue;
          }

          std::unordered_set<Fingerprint128, Fingerprint128Hash> fk_tuples;
          int64_t covered = 0;
          bool viable = true;
          for (int64_t r = 0; r < ft.num_rows(); ++r) {
            Fingerprint128 fp = TupleFingerprint(ft, r, fcols);
            if (fk_tuples.insert(fp).second) {
              if (key_tuples.count(fp) > 0) {
                ++covered;
              } else if (options.min_coverage >= 1.0) {
                viable = false;  // strict inclusion already broken
                break;
              }
            }
          }
          if (!viable) continue;
          if (static_cast<int64_t>(fk_tuples.size()) <
              options.min_distinct_values) {
            continue;
          }
          double coverage = static_cast<double>(covered) /
                            static_cast<double>(fk_tuples.size());
          if (coverage + 1e-12 < options.min_coverage) continue;
          double referenced_coverage =
              key_tuples.empty()
                  ? 0.0
                  : static_cast<double>(covered) /
                        static_cast<double>(key_tuples.size());
          if (referenced_coverage + 1e-12 < options.min_referenced_coverage) {
            continue;
          }

          ForeignKeyCandidate cand;
          cand.referencing_table = static_cast<int>(fi);
          cand.referenced_table = static_cast<int>(ki);
          cand.foreign_key_columns = fcols;
          cand.referenced_key = key;
          cand.coverage = coverage;
          cand.referenced_coverage = referenced_coverage;
          cand.distinct_fk_tuples = static_cast<int64_t>(fk_tuples.size());
          found.push_back(cand);
        }
      }
    }
  }
  std::stable_sort(found.begin(), found.end(),
                   [](const ForeignKeyCandidate& a,
                      const ForeignKeyCandidate& b) {
                     return a.coverage > b.coverage;
                   });
  return found;
}

}  // namespace gordian
