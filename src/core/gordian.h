#ifndef GORDIAN_CORE_GORDIAN_H_
#define GORDIAN_CORE_GORDIAN_H_

#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "core/options.h"
#include "table/table.h"

namespace gordian {

// One discovered key together with its quality measures. For a run on the
// full dataset every key is strict (strength 1). For a run on a sample,
// `estimated_strength` carries the T(K) lower bound computed from the sample
// (Section 3.9); `exact_strength` is filled in by ValidateKeys.
struct DiscoveredKey {
  AttributeSet attrs;
  double estimated_strength = 1.0;
  double exact_strength = -1.0;  // < 0 until validated against full data
};

// The result of a key-discovery run.
struct KeyDiscoveryResult {
  // True iff some entity appears more than once, in which case no attribute
  // set can be a key (Algorithm 2, lines 17-18) and `keys` is empty.
  bool no_keys = false;

  // Minimal keys of the profiled (possibly sampled) entity collection,
  // sorted by ascending cardinality.
  std::vector<DiscoveredKey> keys;

  // The non-redundant (maximal) non-keys from which the keys were derived.
  std::vector<AttributeSet> non_keys;

  // True iff the run profiled a proper sample rather than the full table.
  bool sampled = false;

  // True iff discovery stopped early because a budget in GordianOptions
  // (max_non_keys / time_budget_seconds) tripped or the run was cancelled
  // through options.cancel_flag. The non-keys listed are all genuine but
  // possibly not exhaustive; `keys` is left empty because a partial non-key
  // set cannot certify keys.
  bool incomplete = false;

  // Which limit stopped the run; kNone when incomplete is false.
  AbortReason incomplete_reason = AbortReason::kNone;

  GordianStats stats;

  // Keys as bare attribute sets, in result order.
  std::vector<AttributeSet> KeySets() const {
    std::vector<AttributeSet> out;
    out.reserve(keys.size());
    for (const DiscoveredKey& k : keys) out.push_back(k.attrs);
    return out;
  }
};

// Runs GORDIAN on `table`: builds the prefix tree, finds all non-redundant
// non-keys (Algorithm 4 with the configured prunings), and converts them to
// the exact set of minimal composite keys (Algorithm 6). When
// options.sample_rows selects a proper subset, discovery runs on that sample
// and the result's keys carry T(K) strength estimates.
KeyDiscoveryResult FindKeys(const Table& table,
                            const GordianOptions& options = {});

// Re-validates sample-discovered keys against the full table: fills in
// exact_strength for every key of `result`. A key with exact_strength == 1
// is a true key; others are approximate keys.
void ValidateKeys(const Table& full_table, KeyDiscoveryResult* result);

// Human-readable multi-line report of a discovery result (one key per line
// with column names and strengths).
std::string FormatResult(const Table& table, const KeyDiscoveryResult& result);

// Independent verification of a (non-sampled) discovery result against the
// table it was computed from: every key must be unique and minimal, every
// non-key genuinely duplicated, and both lists antichains. Intended for
// cautious adopters and used throughout the test suite. Stops collecting
// after 20 problems.
struct VerificationReport {
  bool ok = true;
  std::vector<std::string> problems;
};
VerificationReport VerifyResult(const Table& table,
                                const KeyDiscoveryResult& result);

}  // namespace gordian

#endif  // GORDIAN_CORE_GORDIAN_H_
