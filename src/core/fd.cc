#include "core/fd.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace gordian {

namespace {

// Candidate enumeration order shared by every run: LHS width ascending,
// then LHS ascending (AttributeSet order), then RHS ascending. The
// max_verifications cap cuts a prefix of this order, so capped runs are
// still deterministic.
struct CandidateLess {
  bool operator()(const std::pair<AttributeSet, int>& a,
                  const std::pair<AttributeSet, int>& b) const {
    int ac = a.first.Count(), bc = b.first.Count();
    if (ac != bc) return ac < bc;
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
};

// All non-empty subsets of `space` with at most max_size attributes.
// Widths beyond 2 extend recursively; in practice max_lhs_size is 1 or 2.
void EnumerateSubsets(const AttributeSet& space, int max_size,
                      std::vector<AttributeSet>* out) {
  std::vector<int> attrs;
  space.ForEach([&](int a) { attrs.push_back(a); });
  out->clear();
  std::vector<AttributeSet> frontier;
  frontier.push_back(AttributeSet());
  std::vector<int> frontier_max = {-1};  // largest member per frontier set
  for (int size = 1; size <= max_size; ++size) {
    std::vector<AttributeSet> next;
    std::vector<int> next_max;
    for (size_t f = 0; f < frontier.size(); ++f) {
      for (int a : attrs) {
        if (a <= frontier_max[f]) continue;  // each subset exactly once
        AttributeSet s = frontier[f];
        s.Set(a);
        next.push_back(s);
        next_max.push_back(a);
      }
    }
    out->insert(out->end(), next.begin(), next.end());
    frontier = std::move(next);
    frontier_max = std::move(next_max);
  }
}

}  // namespace

bool FdCandidateLess(const FdCandidate& a, const FdCandidate& b) {
  if (a.redundancy != b.redundancy) return a.redundancy > b.redundancy;
  int ac = a.lhs.Count(), bc = b.lhs.Count();
  if (ac != bc) return ac < bc;
  if (a.lhs != b.lhs) return a.lhs < b.lhs;
  return a.rhs < b.rhs;
}

std::vector<FdCandidate> DiscoverFds(const Table& table,
                                     const KeyDiscoveryResult& result,
                                     const FdOptions& options) {
  std::vector<FdCandidate> out;
  if (table.num_rows() == 0 || result.incomplete) return out;

  // Candidate space: for each maximal non-key N, every (X ⊆ N, A ∈ N \ X)
  // with |X| <= max_lhs_size. When no_keys is set every attribute set is a
  // non-key, so the whole schema acts as the single "non-key".
  std::vector<AttributeSet> non_keys = result.non_keys;
  if (result.no_keys || (non_keys.empty() && result.keys.empty())) {
    non_keys = {AttributeSet::FirstN(table.num_columns())};
  }

  // Deduplicate (X, A) pairs across overlapping non-keys, then order them
  // deterministically before applying the verification cap.
  std::set<std::pair<AttributeSet, int>, CandidateLess> candidates;
  std::vector<AttributeSet> subsets;
  for (const AttributeSet& nk : non_keys) {
    EnumerateSubsets(nk, options.max_lhs_size, &subsets);
    for (const AttributeSet& lhs : subsets) {
      AttributeSet rest = nk - lhs;
      rest.ForEach([&](int a) { candidates.insert({lhs, a}); });
    }
  }

  // Verify: X -> A iff distinct(X ∪ {A}) == distinct(X). Distinct counts
  // for repeated LHSs are memoized; the cardinality prune skips pairs where
  // A alone has more distinct values than X (A cannot be a function of X).
  std::unordered_map<AttributeSet, int64_t, AttributeSetHash> distinct_memo;
  auto distinct_of = [&](const AttributeSet& s) {
    auto it = distinct_memo.find(s);
    if (it != distinct_memo.end()) return it->second;
    int64_t d = table.DistinctCountFast(s);
    distinct_memo.emplace(s, d);
    return d;
  };

  int64_t verifications = 0;
  const double rows = static_cast<double>(table.num_rows());
  for (const auto& [lhs, rhs] : candidates) {
    if (options.max_verifications > 0 &&
        verifications >= options.max_verifications) {
      break;
    }
    int64_t lhs_distinct = distinct_of(lhs);
    if (lhs_distinct >= table.num_rows()) continue;  // X unique -> trivial
    if (table.ColumnCardinality(rhs) > lhs_distinct) continue;  // prune
    ++verifications;
    AttributeSet both = lhs;
    both.Set(rhs);
    if (distinct_of(both) != lhs_distinct) continue;  // FD does not hold
    FdCandidate fd;
    fd.lhs = lhs;
    fd.rhs = rhs;
    fd.lhs_distinct = lhs_distinct;
    fd.redundancy = 1.0 - static_cast<double>(lhs_distinct) / rows;
    out.push_back(fd);
  }

  std::sort(out.begin(), out.end(), FdCandidateLess);
  if (options.top_k > 0 && static_cast<int>(out.size()) > options.top_k) {
    out.resize(options.top_k);
  }
  return out;
}

}  // namespace gordian
