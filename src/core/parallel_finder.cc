#include "core/parallel_finder.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/non_key_finder.h"

namespace gordian {

FutilityBoard::FutilityBoard(int num_workers) {
  slots_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void FutilityBoard::Publish(int worker, std::vector<AttributeSet> non_keys) {
  auto snap = std::make_shared<const std::vector<AttributeSet>>(
      std::move(non_keys));
  {
    std::lock_guard<std::mutex> lock(slots_[worker]->mu);
    slots_[worker]->snap = std::move(snap);
  }
  version_.fetch_add(1, std::memory_order_release);
}

uint64_t FutilityBoard::Collect(int worker,
                                std::vector<Snapshot>* out) const {
  // Read the version first: if publishes race with the collection the
  // returned version is stale and the caller will simply collect again on
  // its next maintenance tick.
  const uint64_t v = version_.load(std::memory_order_acquire);
  out->clear();
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (static_cast<int>(i) == worker) continue;
    std::lock_guard<std::mutex> lock(slots_[i]->mu);
    if (slots_[i]->snap != nullptr && !slots_[i]->snap->empty()) {
      out->push_back(slots_[i]->snap);
    }
  }
  return v;
}

namespace {

// Traversal counters a worker accumulates privately and the driver sums
// back (in worker order) into the caller's stats.
void AccumulateStats(const GordianStats& from, GordianStats* into) {
  into->nodes_visited += from.nodes_visited;
  into->merges_performed += from.merges_performed;
  into->merge_nodes_created += from.merge_nodes_created;
  into->singleton_traversal_prunes += from.singleton_traversal_prunes;
  into->singleton_merge_prunes += from.singleton_merge_prunes;
  into->single_entity_prunes += from.single_entity_prunes;
  into->futility_prunes += from.futility_prunes;
  into->futility_snapshot_prunes += from.futility_snapshot_prunes;
  into->warm_start_prunes += from.warm_start_prunes;
  into->non_key_insert_attempts += from.non_key_insert_attempts;
  into->non_keys_rejected_covered += from.non_keys_rejected_covered;
  into->non_keys_evicted += from.non_keys_evicted;
}

// The fan-out driver, shared between the pointer-tree and frozen-layout
// modes. `Finder` must expose the slice API (SetMergePool, SetExternalStop,
// StartBudgetClock, SetMaintenanceHook, SetRemoteCover, RunSlice,
// RunRootMerge, abort_reason) — NonKeyFinder and FrozenNonKeyFinder both do,
// by construction. The bodies are otherwise identical, so the equivalence
// argument of docs/parallel.md applies to both instantiations verbatim.
template <typename Tree, typename Finder>
ParallelTraversalResult ParallelFindNonKeysImpl(
    Tree& tree, int num_slices, const GordianOptions& options, int threads,
    NonKeySet* merged, GordianStats* stats,
    PrefixTree::NodePool* root_merge_pool) {
  threads = std::max(1, std::min(threads, num_slices));

  ParallelTraversalResult result;
  result.threads_used = threads;

  struct Worker {
    GordianStats stats;
    std::unique_ptr<PrefixTree::NodePool> pool =
        std::make_unique<PrefixTree::NodePool>();
    std::unique_ptr<NonKeySet> set;
    bool aborted = false;
  };
  std::vector<Worker> workers(static_cast<size_t>(threads));
  for (Worker& w : workers) {
    w.set = std::make_unique<NonKeySet>(&w.stats);
  }

  // Warm-start cover shared read-only across workers (concurrent CoversSet
  // probes against an immutable set are safe). The seeds also go into the
  // union set below so the final antichain — and hence the derived keys —
  // is identical to an unseeded run.
  const std::vector<AttributeSet>* warm_seeds = options.warm_start_non_keys;
  const bool warm = warm_seeds != nullptr && !warm_seeds->empty();
  NonKeySet warm_set(nullptr);
  if (warm) {
    for (const AttributeSet& nk : *warm_seeds) warm_set.Insert(nk);
    stats->warm_start_seeds +=
        static_cast<int64_t>(warm_seeds->size());
  }

  FutilityBoard board(threads);
  Stopwatch phase_watch;
  std::atomic<int> next_slice{0};
  std::atomic<bool> stop{false};
  // First abort reason wins (0 == AbortReason::kNone); externally stopped
  // workers report kNone and never write here.
  std::atomic<int> global_reason{0};

  // Completion latch: ThreadPool::Submit is fire-and-forget.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int done_count = 0;

  auto worker_body = [&](int w) {
    Worker& self = workers[static_cast<size_t>(w)];
    Finder finder(tree, options, self.set.get(), &self.stats);
    finder.SetMergePool(self.pool.get());
    finder.SetExternalStop(&stop);
    if (warm) finder.SetWarmCover(&warm_set);
    finder.StartBudgetClock(phase_watch.ElapsedSeconds());

    uint64_t published_rev = 0;
    uint64_t seen_version = 0;
    std::vector<FutilityBoard::Snapshot> remote;
    finder.SetMaintenanceHook([&] {
      if (self.set->revision() != published_rev) {
        published_rev = self.set->revision();
        board.Publish(w, self.set->non_keys());
      }
      if (board.version() != seen_version) {
        seen_version = board.Collect(w, &remote);
      }
    });
    finder.SetRemoteCover([&remote](const AttributeSet& probe) {
      for (const FutilityBoard::Snapshot& snap : remote) {
        for (const AttributeSet& nk : *snap) {
          if (nk.Covers(probe)) return true;
        }
      }
      return false;
    });

    int slice;
    while (!stop.load(std::memory_order_relaxed) &&
           (slice = next_slice.fetch_add(1, std::memory_order_relaxed)) <
               num_slices) {
      if (!finder.RunSlice(slice)) {
        self.aborted = true;
        const AbortReason r = finder.abort_reason();
        if (r != AbortReason::kNone) {
          int expected = 0;
          global_reason.compare_exchange_strong(expected,
                                                static_cast<int>(r));
          stop.store(true, std::memory_order_release);
        }
        break;
      }
    }

    std::lock_guard<std::mutex> lock(done_mu);
    ++done_count;
    done_cv.notify_one();
  };

  {
    ThreadPool exec(threads);
    for (int w = 0; w < threads; ++w) {
      exec.Submit([&worker_body, w] { worker_body(w); });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done_count == threads; });
  }

  // Deterministic merge, worker order. The union's antichain is the same
  // whatever the insertion order; iterating workers in index order keeps the
  // aggregation reproducible all the same. Warm seeds go in first: they are
  // genuine non-keys and must appear in the union for the regions the warm
  // cover pruned away.
  if (warm) {
    for (const AttributeSet& nk : *warm_seeds) merged->Insert(nk);
  }
  bool any_aborted = false;
  for (Worker& w : workers) {
    any_aborted = any_aborted || w.aborted;
    AccumulateStats(w.stats, stats);
    result.worker_pool_peak_bytes += w.pool->peak_bytes();
    for (const AttributeSet& nk : w.set->non_keys()) {
      merged->Insert(nk);
    }
  }

  if (any_aborted) {
    result.aborted = true;
    result.reason = static_cast<AbortReason>(global_reason.load());
    if (result.reason == AbortReason::kNone) {
      result.reason = AbortReason::kCancelled;
    }
    return result;
  }

  // Workers enforce max_non_keys against their local sets only; the union
  // can exceed the budget without any single worker tripping it.
  if (options.max_non_keys > 0 && merged->size() > options.max_non_keys) {
    result.aborted = true;
    result.reason = AbortReason::kNonKeyBudget;
    return result;
  }

  // Final pass of Algorithm 4 at the root: merge all top-level subtrees and
  // explore the projection that drops the root attribute. Serial, against
  // the union set, allocating from the tree's own pool like the serial mode
  // does — unless the caller supplied a private pool (shared-tree runs).
  Finder root_finder(tree, options, merged, stats);
  if (root_merge_pool != nullptr) root_finder.SetMergePool(root_merge_pool);
  if (warm) root_finder.SetWarmCover(&warm_set);
  root_finder.StartBudgetClock(phase_watch.ElapsedSeconds());
  if (!root_finder.RunRootMerge()) {
    result.aborted = true;
    result.reason = root_finder.abort_reason();
  }
  return result;
}

}  // namespace

ParallelTraversalResult ParallelFindNonKeys(
    PrefixTree& tree, const GordianOptions& options, int threads,
    NonKeySet* merged, GordianStats* stats,
    PrefixTree::NodePool* root_merge_pool) {
  PrefixTree::Node* root = tree.root();
  assert(root != nullptr && !root->is_leaf && root->cells.size() >= 2);
  const int num_slices = static_cast<int>(root->cells.size());
  return ParallelFindNonKeysImpl<PrefixTree, NonKeyFinder>(
      tree, num_slices, options, threads, merged, stats, root_merge_pool);
}

ParallelTraversalResult ParallelFindNonKeys(
    FrozenTree& tree, const GordianOptions& options, int threads,
    NonKeySet* merged, GordianStats* stats,
    PrefixTree::NodePool* root_merge_pool) {
  assert(tree.num_levels() >= 2);
  assert(root_merge_pool != nullptr);
  const int num_slices = static_cast<int>(tree.level(0).num_cells());
  assert(num_slices >= 2);
  return ParallelFindNonKeysImpl<FrozenTree, FrozenNonKeyFinder>(
      tree, num_slices, options, threads, merged, stats, root_merge_pool);
}

}  // namespace gordian
