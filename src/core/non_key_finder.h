#ifndef GORDIAN_CORE_NON_KEY_FINDER_H_
#define GORDIAN_CORE_NON_KEY_FINDER_H_

#include <atomic>
#include <functional>
#include <vector>

#include "common/attribute_set.h"
#include "common/stopwatch.h"
#include "core/non_key_set.h"
#include "core/options.h"
#include "core/prefix_tree.h"

namespace gordian {

// Observation hooks into the traversal, for debugging, tracing, and the
// specification tests that pin the paper's Figure 9 processing order. All
// callbacks default to no-ops; the finder never depends on them.
class TraversalObserver {
 public:
  virtual ~TraversalObserver() = default;

  // A segment (candidate non-key) of the current slice was examined at the
  // leaf level — the unit of work Figure 9 orders.
  virtual void OnSegment(const AttributeSet& /*segment*/) {}

  // A non-key was handed to the NonKeySet (it may still be rejected there
  // as redundant).
  virtual void OnNonKey(const AttributeSet& /*non_key*/) {}

  // A merge produced the tree for the next projection at `level`.
  virtual void OnMerge(int /*level*/) {}

  // A pruning rule fired: "singleton", "singleton-merge", "single-entity",
  // or "futility".
  virtual void OnPrune(const char* /*kind*/, int /*level*/) {}
};

// Algorithm 4: the doubly-recursive depth-first traversal that interleaves
// the (virtual) cube computation with non-key discovery. The outer recursion
// explores slices; after all children of a node are visited, its children
// are merged (projecting out the node's attribute) and the merged tree is
// explored recursively — so every segment of every slice is examined, in the
// order shown in the paper's Figure 9, except where pruning applies.
//
// Run() is the ordinary serial entry point. For the parallel traversal
// (docs/parallel.md) each worker owns a private finder and drives it through
// RunSlice / RunRootMerge instead; the Set* hooks below wire the worker into
// the shared machinery (merge-node pool, stop flag, futility snapshots).
// A finder is never shared across threads.
class NonKeyFinder {
 public:
  NonKeyFinder(PrefixTree& tree, const GordianOptions& options,
               NonKeySet* non_keys, GordianStats* stats,
               TraversalObserver* observer = nullptr);

  // Runs the traversal, populating the NonKeySet passed at construction.
  // Returns false if a budget (options.max_non_keys /
  // options.time_budget_seconds) tripped or options.cancel_flag was raised
  // and the traversal stopped early; abort_reason() then says which.
  bool Run();

  // Why the traversal stopped early, or kNone after a complete run. An
  // external stop (SetExternalStop) aborts with kNone — the reason belongs
  // to whichever worker tripped it, and the parallel driver resolves it.
  AbortReason abort_reason() const { return abort_reason_; }

  // --- parallel-traversal entry points -----------------------------------

  // Replays the slice body of Visit(root, 0) for exactly one top-level cell
  // of the base tree: appends the root attribute to the candidate non-key,
  // visits (or singleton-prunes) cell_index's subtree, removes the
  // attribute again. Valid only for a non-leaf root. Returns false once the
  // finder has aborted.
  bool RunSlice(int cell_index);

  // Replays the post-children tail of Visit(root, 0): singleton-merge /
  // futility checks, then the merge of all top-level subtrees (projecting
  // out the root attribute) and the recursive exploration of the merged
  // tree. Run serially, after every slice of every worker has finished,
  // against the union NonKeySet. Returns false once aborted.
  bool RunRootMerge();

  // Starts the budget clock with time already spent elsewhere in the find
  // phase (a worker picking up its first slice late must charge the wait
  // against options.time_budget_seconds). Run() resets the offset to zero;
  // callers of RunSlice/RunRootMerge invoke this once instead.
  void StartBudgetClock(double offset_seconds);

  // Merge intermediates are allocated from `pool` instead of the tree's own
  // pool. Workers traverse disjoint base subtrees but must not share an
  // allocator; each passes its private pool here.
  void SetMergePool(PrefixTree::NodePool* pool) { merge_pool_ = pool; }

  // When `stop` becomes true the finder unwinds exactly like a cancellation
  // but leaves abort_reason() at kNone (see above).
  void SetExternalStop(const std::atomic<bool>* stop) { external_stop_ = stop; }

  // `cover` is consulted by the futility test after the local NonKeySet
  // fails to cover the probe; returning true prunes and is counted under
  // futility_snapshot_prunes. Used to test against other workers' published
  // snapshots. Must be cheap-ish: it runs on the traversal hot path.
  void SetRemoteCover(std::function<bool(const AttributeSet&)> cover) {
    remote_cover_ = std::move(cover);
  }

  // Warm-start cover (options.warm_start_non_keys materialized as a
  // NonKeySet): consulted by the futility test before the working set, so
  // prunes earned by the prior run's non-keys are counted under
  // warm_start_prunes. `warm` is read-only here and may be shared across
  // workers; it must outlive the traversal.
  void SetWarmCover(const NonKeySet* warm) { warm_cover_ = warm; }

  // Invoked once every 4096 visits (the same amortization as the wall-clock
  // budget check). Workers use it to publish their local non-keys and to
  // refresh their view of the snapshot board.
  void SetMaintenanceHook(std::function<void()> hook) {
    maintenance_ = std::move(hook);
  }

 private:
  void Visit(PrefixTree::Node* node, int level);
  void ProcessLeaf(PrefixTree::Node* node, int level);
  bool OverBudget();
  // The futility predicate: local NonKeySet first, then the remote-cover
  // hook. Bumps futility_snapshot_prunes when only the remote side fires.
  bool FutilityCovered(const AttributeSet& probe);

  PrefixTree& tree_;
  const GordianOptions& options_;
  NonKeySet* non_keys_;
  GordianStats* stats_;
  TraversalObserver* observer_;

  // Current candidate non-key (in original column positions), maintained as
  // attributes are appended/removed along the traversal (curNonKey in the
  // paper's pseudocode).
  AttributeSet cur_non_key_;

  // suffix_attrs_[l] = set of original attributes at tree levels >= l; used
  // by the futility test (the largest non-key a merge at level l-1 could
  // still produce is cur_non_key_ | suffix_attrs_[l]).
  std::vector<AttributeSet> suffix_attrs_;

  // Reused across every MergeNodes call of the traversal.
  MergeScratch merge_scratch_;

  // Pool for merge intermediates; defaults to tree_.pool() (serial mode).
  PrefixTree::NodePool* merge_pool_ = nullptr;

  // Parallel hooks (all optional, unset in serial mode).
  const std::atomic<bool>* external_stop_ = nullptr;
  std::function<bool(const AttributeSet&)> remote_cover_;
  std::function<void()> maintenance_;
  const NonKeySet* warm_cover_ = nullptr;

  // Budget state (see GordianOptions): aborted_ unwinds the recursion.
  // visit_tick_ amortizes the clock check and maintenance hook; it is local
  // so the budget is enforced even when no stats sink was supplied.
  Stopwatch budget_watch_;
  double budget_offset_seconds_ = 0;
  uint64_t visit_tick_ = 0;
  bool aborted_ = false;
  AbortReason abort_reason_ = AbortReason::kNone;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_NON_KEY_FINDER_H_
