#ifndef GORDIAN_CORE_NON_KEY_FINDER_H_
#define GORDIAN_CORE_NON_KEY_FINDER_H_

#include <vector>

#include "common/attribute_set.h"
#include "common/stopwatch.h"
#include "core/non_key_set.h"
#include "core/options.h"
#include "core/prefix_tree.h"

namespace gordian {

// Observation hooks into the traversal, for debugging, tracing, and the
// specification tests that pin the paper's Figure 9 processing order. All
// callbacks default to no-ops; the finder never depends on them.
class TraversalObserver {
 public:
  virtual ~TraversalObserver() = default;

  // A segment (candidate non-key) of the current slice was examined at the
  // leaf level — the unit of work Figure 9 orders.
  virtual void OnSegment(const AttributeSet& /*segment*/) {}

  // A non-key was handed to the NonKeySet (it may still be rejected there
  // as redundant).
  virtual void OnNonKey(const AttributeSet& /*non_key*/) {}

  // A merge produced the tree for the next projection at `level`.
  virtual void OnMerge(int /*level*/) {}

  // A pruning rule fired: "singleton", "singleton-merge", "single-entity",
  // or "futility".
  virtual void OnPrune(const char* /*kind*/, int /*level*/) {}
};

// Algorithm 4: the doubly-recursive depth-first traversal that interleaves
// the (virtual) cube computation with non-key discovery. The outer recursion
// explores slices; after all children of a node are visited, its children
// are merged (projecting out the node's attribute) and the merged tree is
// explored recursively — so every segment of every slice is examined, in the
// order shown in the paper's Figure 9, except where pruning applies.
class NonKeyFinder {
 public:
  NonKeyFinder(PrefixTree& tree, const GordianOptions& options,
               NonKeySet* non_keys, GordianStats* stats,
               TraversalObserver* observer = nullptr);

  // Runs the traversal, populating the NonKeySet passed at construction.
  // Returns false if a budget (options.max_non_keys /
  // options.time_budget_seconds) tripped or options.cancel_flag was raised
  // and the traversal stopped early; abort_reason() then says which.
  bool Run();

  // Why the traversal stopped early, or kNone after a complete run.
  AbortReason abort_reason() const { return abort_reason_; }

 private:
  void Visit(PrefixTree::Node* node, int level);
  void ProcessLeaf(PrefixTree::Node* node, int level);
  bool OverBudget();

  PrefixTree& tree_;
  const GordianOptions& options_;
  NonKeySet* non_keys_;
  GordianStats* stats_;
  TraversalObserver* observer_;

  // Current candidate non-key (in original column positions), maintained as
  // attributes are appended/removed along the traversal (curNonKey in the
  // paper's pseudocode).
  AttributeSet cur_non_key_;

  // suffix_attrs_[l] = set of original attributes at tree levels >= l; used
  // by the futility test (the largest non-key a merge at level l-1 could
  // still produce is cur_non_key_ | suffix_attrs_[l]).
  std::vector<AttributeSet> suffix_attrs_;

  // Budget state (see GordianOptions): aborted_ unwinds the recursion.
  Stopwatch budget_watch_;
  bool aborted_ = false;
  AbortReason abort_reason_ = AbortReason::kNone;
};

}  // namespace gordian

#endif  // GORDIAN_CORE_NON_KEY_FINDER_H_
