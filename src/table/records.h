#ifndef GORDIAN_TABLE_RECORDS_H_
#define GORDIAN_TABLE_RECORDS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace gordian {

// Support for profiling semi-structured entities. The paper applies GORDIAN
// to "any collection of entities, e.g., ... key leaf-node sets in a
// collection of XML documents with a common schema": such a collection is a
// bag of (path, value) records. FlattenRecords turns it into a Table whose
// columns are the union of all leaf paths (sorted for determinism); fields a
// record lacks become NULL.

// One semi-structured entity: field path -> value.
using Record = std::vector<std::pair<std::string, Value>>;

// Flattens the records into a table. Duplicate field names within one
// record are rejected.
Status FlattenRecords(const std::vector<Record>& records, Table* out);

}  // namespace gordian

#endif  // GORDIAN_TABLE_RECORDS_H_
