#include "table/fingerprint.h"

#include "common/hashing.h"

namespace gordian {

uint64_t TableFingerprint(const Table& table) {
  uint64_t h = 0x474f5244u;  // "GORD"
  h = HashCombine(h, static_cast<uint64_t>(table.num_columns()));
  h = HashCombine(h, static_cast<uint64_t>(table.num_rows()));
  for (int c = 0; c < table.num_columns(); ++c) {
    h = HashCombine(h, HashBytes(table.schema().name(c)));
    const Dictionary& dict = table.dictionary(c);
    h = HashCombine(h, dict.size());
    // Dictionary values in code order pin the meaning of every code; the
    // code vector then pins the actual cell contents. Hashing the values
    // once here (instead of per cell) keeps the pass O(rows) per column.
    for (uint32_t code = 0; code < dict.size(); ++code) {
      h = HashCombine(h, dict.Decode(code).Hash());
    }
    for (uint32_t code : table.column_codes(c)) {
      h = HashCombine(h, code);
    }
  }
  return h;
}

}  // namespace gordian
