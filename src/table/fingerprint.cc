#include "table/fingerprint.h"

#include "common/hashing.h"

namespace gordian {

uint64_t FingerprintAccumulator::Fingerprint() const {
  uint64_t h = 0x474f5244u;  // "GORD"
  h = HashCombine(h, static_cast<uint64_t>(columns_.size()));
  h = HashCombine(h, static_cast<uint64_t>(num_rows_));
  for (const ColumnChain& col : columns_) {
    uint64_t ch = col.name_hash;
    ch = HashCombine(ch, col.dict_size);
    ch = HashCombine(ch, col.dict_chain);
    ch = HashCombine(ch, col.code_chain);
    h = HashCombine(h, ch);
  }
  return h;
}

FingerprintAccumulator FingerprintAccumulator::FromTable(const Table& table) {
  FingerprintAccumulator acc;
  acc.columns_.resize(static_cast<size_t>(table.num_columns()));
  acc.num_rows_ = table.num_rows();
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnChain& col = acc.columns_[static_cast<size_t>(c)];
    col.name_hash = HashBytes(table.schema().name(c));
    const Dictionary& dict = table.dictionary(c);
    col.dict_size = dict.size();
    // Dictionary values in code order pin the meaning of every code; the
    // code vector then pins the actual cell contents. Hashing the values
    // once here (instead of per cell) keeps the pass O(rows) per column.
    for (uint32_t code = 0; code < dict.size(); ++code) {
      col.dict_chain = HashCombine(col.dict_chain, dict.Decode(code).Hash());
    }
    for (uint32_t code : table.column_codes(c)) {
      col.code_chain = HashCombine(col.code_chain, code);
    }
  }
  return acc;
}

uint64_t TableFingerprint(const Table& table) {
  return FingerprintAccumulator::FromTable(table).Fingerprint();
}

}  // namespace gordian
