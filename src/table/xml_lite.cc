#include "table/xml_lite.h"

#include <cctype>
#include <cstring>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gordian {

namespace {

// Cursor over the XML text with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool StartsWith(const char* s) const {
    return text_.compare(pos_, std::strlen(s), s) == 0;
  }
  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < text_.size(); ++i) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string Slice(size_t from, size_t to) const {
    return text_.substr(from, to - from);
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("xml line " + std::to_string(line_) + ": " +
                                   msg);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

Status DecodeEntities(const Cursor& cur, const std::string& raw,
                      std::string* out) {
  out->clear();
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string::npos) return cur.Error("unterminated entity");
    std::string name = raw.substr(i + 1, semi - i - 1);
    if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "amp") {
      out->push_back('&');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      long code = std::strtol(name.c_str() + 1, nullptr,
                              name.size() > 1 && name[1] == 'x' ? 0 : 10);
      if (code <= 0 || code > 0x10FFFF) return cur.Error("bad char reference");
      // ASCII only; wider code points are passed through as '?' — profiling
      // cares about equality, not rendering.
      out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
    } else {
      return cur.Error("unknown entity &" + name + ";");
    }
    i = semi;
  }
  return Status::OK();
}

Value InferValue(const std::string& text) {
  if (text.empty()) return Value::Null();
  {
    errno = 0;
    char* end = nullptr;
    long long i = std::strtoll(text.c_str(), &end, 10);
    if (errno == 0 && end == text.c_str() + text.size()) {
      return Value(static_cast<int64_t>(i));
    }
  }
  {
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(text.c_str(), &end);
    if (errno == 0 && end == text.c_str() + text.size()) return Value(d);
  }
  return Value(text);
}

// Trims surrounding whitespace (inter-element text is insignificant here).
std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Skips comments and processing instructions; returns true if one was
// skipped.
Status SkipMisc(Cursor& cur, bool* skipped) {
  *skipped = false;
  if (cur.StartsWith("<!--")) {
    cur.Advance(4);
    while (!cur.AtEnd() && !cur.StartsWith("-->")) cur.Advance();
    if (cur.AtEnd()) return cur.Error("unterminated comment");
    cur.Advance(3);
    *skipped = true;
  } else if (cur.StartsWith("<?")) {
    cur.Advance(2);
    while (!cur.AtEnd() && !cur.StartsWith("?>")) cur.Advance();
    if (cur.AtEnd()) return cur.Error("unterminated processing instruction");
    cur.Advance(2);
    *skipped = true;
  }
  return Status::OK();
}

Status ParseName(Cursor& cur, std::string* name) {
  size_t start = cur.pos();
  while (!cur.AtEnd() && IsNameChar(cur.Peek())) cur.Advance();
  if (cur.pos() == start) return cur.Error("expected a name");
  *name = cur.Slice(start, cur.pos());
  return Status::OK();
}

struct OpenTag {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  bool self_closing = false;
};

// Parses "<name attr='v' ...>" with the cursor on '<'.
Status ParseOpenTag(Cursor& cur, OpenTag* tag) {
  cur.Advance();  // '<'
  Status s = ParseName(cur, &tag->name);
  if (!s.ok()) return s;
  while (true) {
    cur.SkipWhitespace();
    if (cur.AtEnd()) return cur.Error("unterminated tag <" + tag->name);
    if (cur.Peek() == '>') {
      cur.Advance();
      return Status::OK();
    }
    if (cur.StartsWith("/>")) {
      cur.Advance(2);
      tag->self_closing = true;
      return Status::OK();
    }
    std::string attr;
    s = ParseName(cur, &attr);
    if (!s.ok()) return s;
    cur.SkipWhitespace();
    if (cur.AtEnd() || cur.Peek() != '=') return cur.Error("expected '='");
    cur.Advance();
    cur.SkipWhitespace();
    if (cur.AtEnd() || (cur.Peek() != '"' && cur.Peek() != '\'')) {
      return cur.Error("expected a quoted attribute value");
    }
    char quote = cur.Peek();
    cur.Advance();
    size_t start = cur.pos();
    while (!cur.AtEnd() && cur.Peek() != quote) cur.Advance();
    if (cur.AtEnd()) return cur.Error("unterminated attribute value");
    std::string raw = cur.Slice(start, cur.pos());
    cur.Advance();
    std::string decoded;
    s = DecodeEntities(cur, raw, &decoded);
    if (!s.ok()) return s;
    tag->attributes.emplace_back(attr, decoded);
  }
}

Status AddField(const Cursor& cur, const std::string& path, Value value,
                Record* record) {
  for (const auto& [existing, v] : *record) {
    if (existing == path) {
      return cur.Error("repeated field '" + path +
                       "' in one entity (set-valued children are not "
                       "representable as a table)");
    }
  }
  record->emplace_back(path, std::move(value));
  return Status::OK();
}

// Parses the element whose open tag was just consumed, adding leaf fields
// under `prefix` to `record`. Returns at the matching close tag.
Status ParseElementBody(Cursor& cur, const OpenTag& tag,
                        const std::string& prefix, Record* record) {
  const std::string path =
      prefix.empty() ? tag.name : prefix + "/" + tag.name;
  for (const auto& [attr, value] : tag.attributes) {
    Status s = AddField(cur, path + "/@" + attr, InferValue(value), record);
    if (!s.ok()) return s;
  }
  if (tag.self_closing) return Status::OK();

  std::string text;
  bool has_children = false;
  while (true) {
    if (cur.AtEnd()) return cur.Error("missing </" + tag.name + ">");
    if (cur.Peek() == '<') {
      bool skipped = false;
      Status s = SkipMisc(cur, &skipped);
      if (!s.ok()) return s;
      if (skipped) continue;
      if (cur.StartsWith("</")) {
        cur.Advance(2);
        std::string close;
        s = ParseName(cur, &close);
        if (!s.ok()) return s;
        cur.SkipWhitespace();
        if (cur.AtEnd() || cur.Peek() != '>') return cur.Error("expected '>'");
        cur.Advance();
        if (close != tag.name) {
          return cur.Error("mismatched </" + close + ">, expected </" +
                           tag.name + ">");
        }
        break;
      }
      OpenTag child;
      s = ParseOpenTag(cur, &child);
      if (!s.ok()) return s;
      has_children = true;
      s = ParseElementBody(cur, child, path, record);
      if (!s.ok()) return s;
    } else {
      size_t start = cur.pos();
      while (!cur.AtEnd() && cur.Peek() != '<') cur.Advance();
      text += cur.Slice(start, cur.pos());
    }
  }

  std::string trimmed = Trim(text);
  if (!trimmed.empty()) {
    if (has_children) {
      return cur.Error("mixed content in <" + tag.name +
                       "> is not representable as a table");
    }
    std::string decoded;
    Status s = DecodeEntities(cur, trimmed, &decoded);
    if (!s.ok()) return s;
    return AddField(cur, path, InferValue(decoded), record);
  }
  if (!has_children && tag.attributes.empty()) {
    // An empty leaf: a present-but-NULL field.
    return AddField(cur, path, Value::Null(), record);
  }
  return Status::OK();
}

}  // namespace

Status ParseXmlCollection(const std::string& xml, std::vector<Record>* out) {
  out->clear();
  Cursor cur(xml);

  // Prolog / comments, then the root element's open tag.
  cur.SkipWhitespace();
  while (!cur.AtEnd()) {
    bool skipped = false;
    Status s = SkipMisc(cur, &skipped);
    if (!s.ok()) return s;
    if (!skipped) break;
    cur.SkipWhitespace();
  }
  if (cur.AtEnd() || cur.Peek() != '<') {
    return cur.Error("expected the root element");
  }
  OpenTag root;
  Status s = ParseOpenTag(cur, &root);
  if (!s.ok()) return s;
  if (root.self_closing) return Status::OK();  // empty collection

  // Children of the root are the entities.
  while (true) {
    cur.SkipWhitespace();
    if (cur.AtEnd()) return cur.Error("missing </" + root.name + ">");
    bool skipped = false;
    s = SkipMisc(cur, &skipped);
    if (!s.ok()) return s;
    if (skipped) continue;
    if (cur.StartsWith("</")) {
      cur.Advance(2);
      std::string close;
      s = ParseName(cur, &close);
      if (!s.ok()) return s;
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Peek() != '>') return cur.Error("expected '>'");
      cur.Advance();
      if (close != root.name) {
        return cur.Error("mismatched </" + close + ">");
      }
      break;
    }
    if (cur.Peek() != '<') {
      return cur.Error("stray text between entities");
    }
    OpenTag entity;
    s = ParseOpenTag(cur, &entity);
    if (!s.ok()) return s;
    Record record;
    // The entity element's own name is not part of field paths: fields are
    // named relative to the entity.
    OpenTag anonymous = entity;
    anonymous.name.clear();
    // Attributes of the entity element itself.
    for (const auto& [attr, value] : entity.attributes) {
      s = AddField(cur, "@" + attr, InferValue(value), &record);
      if (!s.ok()) return s;
    }
    if (!entity.self_closing) {
      // Parse children with an empty prefix; reuse ParseElementBody by
      // faking a tag with no attributes (already handled above).
      OpenTag shell;
      shell.name = entity.name;
      Status body = [&]() -> Status {
        std::string text;
        bool has_children = false;
        while (true) {
          if (cur.AtEnd()) return cur.Error("missing </" + entity.name + ">");
          if (cur.Peek() == '<') {
            bool skipped2 = false;
            Status st = SkipMisc(cur, &skipped2);
            if (!st.ok()) return st;
            if (skipped2) continue;
            if (cur.StartsWith("</")) {
              cur.Advance(2);
              std::string close;
              st = ParseName(cur, &close);
              if (!st.ok()) return st;
              cur.SkipWhitespace();
              if (cur.AtEnd() || cur.Peek() != '>') {
                return cur.Error("expected '>'");
              }
              cur.Advance();
              if (close != entity.name) {
                return cur.Error("mismatched </" + close + ">");
              }
              return Status::OK();
            }
            OpenTag child;
            st = ParseOpenTag(cur, &child);
            if (!st.ok()) return st;
            has_children = true;
            st = ParseElementBody(cur, child, "", &record);
            if (!st.ok()) return st;
          } else {
            size_t start = cur.pos();
            while (!cur.AtEnd() && cur.Peek() != '<') cur.Advance();
            text += cur.Slice(start, cur.pos());
          }
          if (!has_children && !Trim(text).empty()) {
            return cur.Error("entity <" + entity.name +
                             "> has bare text instead of fields");
          }
        }
      }();
      if (!body.ok()) return body;
    }
    if (record.empty()) {
      return cur.Error("entity <" + entity.name + "> has no fields");
    }
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Status ReadXmlCollection(const std::string& path, Table* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<Record> records;
  Status s = ParseXmlCollection(buffer.str(), &records);
  if (!s.ok()) return s;
  if (records.empty()) {
    return Status::InvalidArgument("no entities in " + path);
  }
  return FlattenRecords(records, out);
}

}  // namespace gordian
