#include "table/table.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <unordered_set>

#include "common/hashing.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace gordian {

namespace {

// Hoisted per-column code pointers for the sort/scan hot paths: both
// resident and spilled columns are contiguous arrays, so one indirection
// per column replaces one per access.
std::vector<const uint32_t*> ColumnPointers(const Table& t,
                                            const std::vector<int>& cols) {
  std::vector<const uint32_t*> ptrs;
  ptrs.reserve(cols.size());
  for (int c : cols) ptrs.push_back(t.column_codes(c).data());
  return ptrs;
}

// Sorts row indices lexicographically by the codes of the given columns.
void SortRowsBy(const std::vector<const uint32_t*>& ptrs,
                std::vector<int64_t>& rows) {
  std::sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (const uint32_t* p : ptrs) {
      if (p[a] != p[b]) return p[a] < p[b];
    }
    return false;
  });
}

bool RowsEqualOn(const std::vector<const uint32_t*>& ptrs, int64_t a,
                 int64_t b) {
  for (const uint32_t* p : ptrs) {
    if (p[a] != p[b]) return false;
  }
  return true;
}

std::vector<int> ToColumnList(const AttributeSet& attrs) {
  std::vector<int> cols;
  attrs.ForEach([&](int a) { cols.push_back(a); });
  return cols;
}

}  // namespace

int Table::spilled_column_count() const {
  int n = 0;
  for (const ColumnData& col : columns_) n += col.codes.spilled() ? 1 : 0;
  return n;
}

int64_t Table::ColumnCardinality(int col) const {
  if (cardinality_cache_.empty()) {
    cardinality_cache_.assign(num_columns(), -1);
  }
  if (cardinality_cache_[col] >= 0) return cardinality_cache_[col];
  // Distinct codes via a presence bitmap over the (dense) code space.
  // Spilled columns validated every code < dict size at open, so the
  // bitmap index is in range for both representations.
  std::vector<bool> seen(columns_[col].dict->size(), false);
  int64_t distinct = 0;
  for (uint32_t c : columns_[col].codes) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  cardinality_cache_[col] = distinct;
  return distinct;
}

int64_t Table::DistinctCount(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 0;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return 1;
  if (cols.size() == 1) return ColumnCardinality(cols[0]);
  std::vector<const uint32_t*> ptrs = ColumnPointers(*this, cols);
  std::vector<int64_t> rows(num_rows_);
  std::iota(rows.begin(), rows.end(), int64_t{0});
  SortRowsBy(ptrs, rows);
  int64_t distinct = 1;
  for (int64_t i = 1; i < num_rows_; ++i) {
    if (!RowsEqualOn(ptrs, rows[i - 1], rows[i])) ++distinct;
  }
  return distinct;
}

int64_t Table::DistinctCountFast(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 0;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return 1;
  if (cols.size() == 1) return ColumnCardinality(cols[0]);
  std::vector<const uint32_t*> ptrs = ColumnPointers(*this, cols);
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen;
  seen.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    Fingerprint128 fp;
    for (const uint32_t* p : ptrs) fp.Update(p[r]);
    seen.insert(fp);
  }
  return static_cast<int64_t>(seen.size());
}

bool Table::IsUnique(const AttributeSet& attrs) const {
  if (num_rows_ <= 1) return true;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return false;
  std::vector<const uint32_t*> ptrs = ColumnPointers(*this, cols);
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen;
  seen.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    Fingerprint128 fp;
    for (const uint32_t* p : ptrs) fp.Update(p[r]);
    if (!seen.insert(fp).second) return false;
  }
  return true;
}

double Table::Strength(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 1.0;
  return static_cast<double>(DistinctCount(attrs)) /
         static_cast<double>(num_rows_);
}

Table Table::SampleRows(int64_t count, uint64_t seed) const {
  count = std::min(count, num_rows_);
  // Choose `count` distinct row positions via a partial Fisher-Yates over
  // the index array, then restore original order so the sample preserves
  // the table's row order.
  std::vector<int64_t> idx(num_rows_);
  std::iota(idx.begin(), idx.end(), int64_t{0});
  Random rng(seed);
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = i + static_cast<int64_t>(
                        rng.Uniform(static_cast<uint64_t>(num_rows_ - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  std::sort(idx.begin(), idx.end());

  Table out;
  out.schema_ = schema_;
  out.num_rows_ = count;
  out.columns_.reserve(columns_.size());
  for (const ColumnData& col : columns_) {
    ColumnData sc;
    sc.dict = col.dict;
    std::vector<uint32_t> codes;
    codes.reserve(count);
    for (int64_t r : idx) codes.push_back(col.codes[r]);
    sc.codes = CodeColumn::Resident(std::move(codes));
    out.columns_.push_back(std::move(sc));
  }
  return out;
}

Table Table::ProjectColumns(int num_cols) const {
  std::vector<int> cols(num_cols);
  std::iota(cols.begin(), cols.end(), 0);
  return SelectColumns(cols);
}

Table Table::SelectColumns(const std::vector<int>& cols) const {
  Table out;
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (int c : cols) defs.push_back(schema_.column(c));
  out.schema_ = Schema(std::move(defs));
  out.num_rows_ = num_rows_;
  for (int c : cols) out.columns_.push_back(columns_[c]);
  return out;
}

int64_t Table::ApproxBytes() const {
  int64_t b = 0;
  // Samples and column projections share Dictionary objects — and, since
  // CodeColumn copies share storage, code arrays — between tables and
  // (after SelectColumns with repeats) between columns; count each
  // distinct object once so sharing isn't double-billed.
  std::unordered_set<const Dictionary*> counted;
  std::unordered_set<const uint32_t*> counted_codes;
  for (const ColumnData& col : columns_) {
    if (col.codes.data() != nullptr &&
        counted_codes.insert(col.codes.data()).second) {
      b += col.codes.resident_bytes();
    }
    if (col.dict && counted.insert(col.dict.get()).second) {
      b += col.dict->ApproxBytes();
    }
  }
  b += static_cast<int64_t>(cardinality_cache_.capacity() * sizeof(int64_t));
  return b;
}

int64_t Table::MappedBytes() const {
  int64_t b = 0;
  std::unordered_set<const MappedRegion*> counted;
  for (const ColumnData& col : columns_) {
    const std::shared_ptr<MappedRegion>& region = col.codes.region();
    if (region && counted.insert(region.get()).second) {
      b += col.codes.mapped_bytes();
    }
  }
  return b;
}

Table Table::FromColumns(Schema schema,
                         std::vector<std::shared_ptr<Dictionary>> dicts,
                         std::vector<std::vector<uint32_t>> codes) {
  std::vector<CodeColumn> cols;
  cols.reserve(codes.size());
  for (std::vector<uint32_t>& c : codes) {
    cols.push_back(CodeColumn::Resident(std::move(c)));
  }
  return FromCodeColumns(std::move(schema), std::move(dicts),
                         std::move(cols));
}

Table Table::FromCodeColumns(Schema schema,
                             std::vector<std::shared_ptr<Dictionary>> dicts,
                             std::vector<CodeColumn> columns) {
  assert(dicts.size() == columns.size());
  assert(static_cast<int>(dicts.size()) == schema.num_columns());
  Table out;
  out.schema_ = std::move(schema);
  out.num_rows_ = columns.empty() ? 0 : columns.front().size();
  out.columns_.resize(dicts.size());
  for (size_t c = 0; c < dicts.size(); ++c) {
    assert(columns[c].size() == out.num_rows_);
    out.columns_[c].dict = std::move(dicts[c]);
    out.columns_[c].codes = std::move(columns[c]);
  }
  return out;
}

std::string Table::RowToString(int64_t row) const {
  std::string out;
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out += "|";
    out += value(row, c).ToString();
  }
  return out;
}

TableBuilder::TableBuilder(Schema schema, SpillPolicy policy)
    : policy_(std::move(policy)) {
  table_.schema_ = std::move(schema);
  table_.columns_.resize(table_.schema_.num_columns());
  for (auto& col : table_.columns_) {
    col.dict = std::make_shared<Dictionary>();
  }
  cols_.resize(table_.schema_.num_columns());
  // Distinct per-builder file names let several spilling builders share
  // one directory.
  static std::atomic<uint64_t> seq{0};
  spill_prefix_ = "tbl-" + std::to_string(seq.fetch_add(1));
}

uint32_t TableBuilder::NullCodeOf(int c) const {
  return table_.columns_[c].dict->Lookup(Value::Null());
}

int TableBuilder::spilling_column_count() const {
  int n = 0;
  for (const BuildColumn& bc : cols_) n += bc.writer != nullptr ? 1 : 0;
  return n;
}

int64_t TableBuilder::ApproxBytes() const {
  int64_t b = 0;
  std::unordered_set<const Dictionary*> counted;
  for (size_t c = 0; c < cols_.size(); ++c) {
    b += static_cast<int64_t>(cols_[c].codes.capacity() * sizeof(uint32_t));
    const Dictionary* dict = table_.columns_[c].dict.get();
    if (dict && counted.insert(dict).second) b += dict->ApproxBytes();
  }
  return b;
}

// Encodes batch column `c`, routing the codes to the column's spill writer
// when one exists. Only touches column-local state plus the column's
// dictionary, so the pooled AddBatch runs one call per column concurrently;
// any spill problem is parked in the column and merged under no lock after
// the latch.
void TableBuilder::EncodeColumnBatch(const RowBatch& batch, int c) {
  BuildColumn& bc = cols_[c];
  Dictionary* dict = table_.columns_[c].dict.get();
  if (bc.writer == nullptr) {
    dict->EncodeBatch(batch.column(c), &bc.codes);
    return;
  }
  bc.codes.clear();  // scratch: capacity persists across batches
  dict->EncodeBatch(batch.column(c), &bc.codes);
  Status s = bc.writer->Append(bc.codes.data(),
                               static_cast<int64_t>(bc.codes.size()),
                               NullCodeOf(c));
  if (s.ok()) {
    bc.codes.clear();
    return;
  }
  // Fall back to a resident column without losing a code: everything the
  // writer accepted (including this batch) comes back via Reabsorb.
  bc.pending_status = s;
  bc.codes.clear();
  Status r = bc.writer->Reabsorb(&bc.codes);
  if (!r.ok()) {
    bc.pending_status = r;
    bc.lost_data = true;
  }
  bc.writer.reset();
}

void TableBuilder::MaybeSpill() {
  if (!policy_.enabled() || poisoned_) return;
  auto resident_bytes = [&] {
    int64_t b = 0;
    for (const BuildColumn& bc : cols_) {
      b += static_cast<int64_t>(bc.codes.capacity() * sizeof(uint32_t));
    }
    return b;
  };
  if (resident_bytes() <= policy_.memory_budget_bytes) return;

  // Spill the largest resident columns first: fewest files for the most
  // reclaimed bytes.
  std::vector<int> order;
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (cols_[c].writer == nullptr) order.push_back(static_cast<int>(c));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return cols_[a].codes.size() > cols_[b].codes.size();
  });
  FileSystem* fs = policy_.fs ? policy_.fs : DefaultFileSystem();
  for (int c : order) {
    if (resident_bytes() <= policy_.memory_budget_bytes) break;
    BuildColumn& bc = cols_[c];
    std::string path = policy_.spill_dir + "/" + spill_prefix_ + "-c" +
                       std::to_string(c) + ".grdl";
    auto writer = std::make_unique<SpillColumnWriter>(fs, std::move(path),
                                                      policy_.chunk_rows);
    Status s = writer->Append(bc.codes.data(),
                              static_cast<int64_t>(bc.codes.size()),
                              NullCodeOf(c));
    if (!s.ok()) {
      // The codes are still intact in bc.codes; stay resident and stop
      // trying to spill (the directory is unhealthy).
      if (spill_status_.ok()) spill_status_ = s;
      return;
    }
    bc.writer = std::move(writer);
    bc.codes.clear();
    bc.codes.shrink_to_fit();
  }
}

void TableBuilder::AddRow(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == table_.schema_.num_columns());
  for (int c = 0; c < table_.schema_.num_columns(); ++c) {
    uint32_t code = table_.columns_[c].dict->Encode(row[c]);
    BuildColumn& bc = cols_[c];
    if (bc.writer == nullptr) {
      bc.codes.push_back(code);
      continue;
    }
    Status s = bc.writer->Append(&code, 1, NullCodeOf(c));
    if (!s.ok()) {
      bc.pending_status = s;
      bc.codes.clear();
      // Reabsorb returns every accepted code — including this one, which
      // reached the writer's buffer before the flush failed.
      Status r = bc.writer->Reabsorb(&bc.codes);
      if (!r.ok()) {
        bc.pending_status = r;
        bc.lost_data = true;
      }
      bc.writer.reset();
    }
  }
  ++num_rows_;
  MergeColumnStatuses();
  if ((num_rows_ & 4095) == 0) MaybeSpill();
}

void TableBuilder::AddBatch(const RowBatch& batch, ThreadPool* pool) {
  const int ncols = table_.schema_.num_columns();
  assert(batch.num_columns() == ncols);
  if (pool == nullptr || pool->num_threads() <= 1 || ncols <= 1) {
    for (int c = 0; c < ncols; ++c) EncodeColumnBatch(batch, c);
  } else {
    // One task per column; per-column dictionaries are disjoint, so tasks
    // never contend on data — the latch is the only synchronization.
    std::mutex mu;
    std::condition_variable cv;
    int pending = ncols;
    for (int c = 0; c < ncols; ++c) {
      pool->Submit([this, &batch, &mu, &cv, &pending, c] {
        EncodeColumnBatch(batch, c);
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  num_rows_ += batch.num_rows();
  MergeColumnStatuses();
  MaybeSpill();
}

void TableBuilder::MergeColumnStatuses() {
  for (BuildColumn& bc : cols_) {
    if (!bc.pending_status.ok()) {
      if (spill_status_.ok()) spill_status_ = bc.pending_status;
      if (bc.lost_data) poisoned_ = true;
      bc.pending_status = Status::OK();
      bc.lost_data = false;
    }
  }
}

Status TableBuilder::Build(Table* out) {
  FileSystem* fs = policy_.fs ? policy_.fs : DefaultFileSystem();
  for (size_t c = 0; c < cols_.size(); ++c) {
    BuildColumn& bc = cols_[c];
    Table::ColumnData& cd = table_.columns_[c];
    if (bc.writer == nullptr) {
      cd.codes = CodeColumn::Resident(std::move(bc.codes));
      continue;
    }
    uint32_t dict_size = cd.dict->size();
    Status s = bc.writer->Finish(dict_size, NullCodeOf(static_cast<int>(c)));
    if (s.ok()) {
      CodeColumn col;
      s = CodeColumn::OpenSpilled(fs, bc.writer->path(), dict_size, &col);
      if (s.ok()) {
        cd.codes = std::move(col);
        bc.writer.reset();
        continue;
      }
      // A just-written file failing validation means the medium mangled
      // it; the temp is gone after Finish, so nothing is recoverable.
      if (spill_status_.ok()) spill_status_ = s;
      poisoned_ = true;
      bc.writer.reset();
      continue;
    }
    // Finish failed before the rename: every accepted code is still at the
    // front of the temp file.
    if (spill_status_.ok()) spill_status_ = s;
    bc.codes.clear();
    Status r = bc.writer->Reabsorb(&bc.codes);
    if (r.ok()) {
      cd.codes = CodeColumn::Resident(std::move(bc.codes));
    } else {
      if (spill_status_.ok()) spill_status_ = r;
      poisoned_ = true;
    }
    bc.writer.reset();
  }
  if (poisoned_) {
    Status s = spill_status_.ok()
                   ? Status::IOError("spilled column data lost")
                   : spill_status_;
    table_ = Table();
    cols_.clear();
    num_rows_ = 0;
    return s;
  }
  table_.num_rows_ = num_rows_;
  *out = std::move(table_);
  table_ = Table();
  cols_.clear();
  num_rows_ = 0;
  return Status::OK();
}

Table TableBuilder::Build() {
  Table out;
  Status s = Build(&out);
  // Spilling degrades to resident on I/O trouble; only unrecoverable data
  // loss fails, and callers that enable spilling should use the Status
  // overload to see it.
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace gordian
