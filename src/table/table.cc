#include "table/table.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <unordered_set>

#include "common/hashing.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace gordian {

namespace {

// Sorts row indices lexicographically by the codes of the given columns.
void SortRowsBy(const Table& t, const std::vector<int>& cols,
                std::vector<int64_t>& rows) {
  std::sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (int c : cols) {
      uint32_t ca = t.code(a, c), cb = t.code(b, c);
      if (ca != cb) return ca < cb;
    }
    return false;
  });
}

bool RowsEqualOn(const Table& t, const std::vector<int>& cols, int64_t a,
                 int64_t b) {
  for (int c : cols) {
    if (t.code(a, c) != t.code(b, c)) return false;
  }
  return true;
}

std::vector<int> ToColumnList(const AttributeSet& attrs) {
  std::vector<int> cols;
  attrs.ForEach([&](int a) { cols.push_back(a); });
  return cols;
}

}  // namespace

int64_t Table::ColumnCardinality(int col) const {
  if (cardinality_cache_.empty()) {
    cardinality_cache_.assign(num_columns(), -1);
  }
  if (cardinality_cache_[col] >= 0) return cardinality_cache_[col];
  // Distinct codes via a presence bitmap over the (dense) code space.
  std::vector<bool> seen(columns_[col].dict->size(), false);
  int64_t distinct = 0;
  for (uint32_t c : columns_[col].codes) {
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
  }
  cardinality_cache_[col] = distinct;
  return distinct;
}

int64_t Table::DistinctCount(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 0;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return 1;
  if (cols.size() == 1) return ColumnCardinality(cols[0]);
  std::vector<int64_t> rows(num_rows_);
  std::iota(rows.begin(), rows.end(), int64_t{0});
  SortRowsBy(*this, cols, rows);
  int64_t distinct = 1;
  for (int64_t i = 1; i < num_rows_; ++i) {
    if (!RowsEqualOn(*this, cols, rows[i - 1], rows[i])) ++distinct;
  }
  return distinct;
}

int64_t Table::DistinctCountFast(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 0;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return 1;
  if (cols.size() == 1) return ColumnCardinality(cols[0]);
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen;
  seen.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    Fingerprint128 fp;
    for (int c : cols) fp.Update(code(r, c));
    seen.insert(fp);
  }
  return static_cast<int64_t>(seen.size());
}

bool Table::IsUnique(const AttributeSet& attrs) const {
  if (num_rows_ <= 1) return true;
  std::vector<int> cols = ToColumnList(attrs);
  if (cols.empty()) return false;
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen;
  seen.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    Fingerprint128 fp;
    for (int c : cols) fp.Update(code(r, c));
    if (!seen.insert(fp).second) return false;
  }
  return true;
}

double Table::Strength(const AttributeSet& attrs) const {
  if (num_rows_ == 0) return 1.0;
  return static_cast<double>(DistinctCount(attrs)) /
         static_cast<double>(num_rows_);
}

Table Table::SampleRows(int64_t count, uint64_t seed) const {
  count = std::min(count, num_rows_);
  // Choose `count` distinct row positions via a partial Fisher-Yates over
  // the index array, then restore original order so the sample preserves
  // the table's row order.
  std::vector<int64_t> idx(num_rows_);
  std::iota(idx.begin(), idx.end(), int64_t{0});
  Random rng(seed);
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = i + static_cast<int64_t>(
                        rng.Uniform(static_cast<uint64_t>(num_rows_ - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  std::sort(idx.begin(), idx.end());

  Table out;
  out.schema_ = schema_;
  out.num_rows_ = count;
  out.columns_.reserve(columns_.size());
  for (const ColumnData& col : columns_) {
    ColumnData sc;
    sc.dict = col.dict;
    sc.codes.reserve(count);
    for (int64_t r : idx) sc.codes.push_back(col.codes[r]);
    out.columns_.push_back(std::move(sc));
  }
  return out;
}

Table Table::ProjectColumns(int num_cols) const {
  std::vector<int> cols(num_cols);
  std::iota(cols.begin(), cols.end(), 0);
  return SelectColumns(cols);
}

Table Table::SelectColumns(const std::vector<int>& cols) const {
  Table out;
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (int c : cols) defs.push_back(schema_.column(c));
  out.schema_ = Schema(std::move(defs));
  out.num_rows_ = num_rows_;
  for (int c : cols) out.columns_.push_back(columns_[c]);
  return out;
}

int64_t Table::ApproxBytes() const {
  int64_t b = 0;
  // Samples and column projections share Dictionary objects between tables
  // and (after SelectColumns with repeats) between columns; count each
  // distinct dictionary once so sharing isn't double-billed.
  std::unordered_set<const Dictionary*> counted;
  for (const ColumnData& col : columns_) {
    b += static_cast<int64_t>(col.codes.capacity() * sizeof(uint32_t));
    if (col.dict && counted.insert(col.dict.get()).second) {
      b += col.dict->ApproxBytes();
    }
  }
  b += static_cast<int64_t>(cardinality_cache_.capacity() * sizeof(int64_t));
  return b;
}

Table Table::FromColumns(Schema schema,
                         std::vector<std::shared_ptr<Dictionary>> dicts,
                         std::vector<std::vector<uint32_t>> codes) {
  assert(dicts.size() == codes.size());
  assert(static_cast<int>(dicts.size()) == schema.num_columns());
  Table out;
  out.schema_ = std::move(schema);
  out.num_rows_ =
      codes.empty() ? 0 : static_cast<int64_t>(codes.front().size());
  out.columns_.resize(dicts.size());
  for (size_t c = 0; c < dicts.size(); ++c) {
    assert(static_cast<int64_t>(codes[c].size()) == out.num_rows_);
    out.columns_[c].dict = std::move(dicts[c]);
    out.columns_[c].codes = std::move(codes[c]);
  }
  return out;
}

std::string Table::RowToString(int64_t row) const {
  std::string out;
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out += "|";
    out += value(row, c).ToString();
  }
  return out;
}

TableBuilder::TableBuilder(Schema schema) {
  table_.schema_ = std::move(schema);
  table_.columns_.resize(table_.schema_.num_columns());
  for (auto& col : table_.columns_) {
    col.dict = std::make_shared<Dictionary>();
  }
}

void TableBuilder::AddRow(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == table_.schema_.num_columns());
  for (int c = 0; c < table_.schema_.num_columns(); ++c) {
    table_.columns_[c].codes.push_back(table_.columns_[c].dict->Encode(row[c]));
  }
  ++num_rows_;
}

void TableBuilder::AddBatch(const RowBatch& batch, ThreadPool* pool) {
  const int ncols = table_.schema_.num_columns();
  assert(batch.num_columns() == ncols);
  if (pool == nullptr || pool->num_threads() <= 1 || ncols <= 1) {
    for (int c = 0; c < ncols; ++c) {
      table_.columns_[c].dict->EncodeBatch(batch.column(c),
                                           &table_.columns_[c].codes);
    }
  } else {
    // One task per column; per-column dictionaries are disjoint, so tasks
    // never contend on data — the latch is the only synchronization.
    std::mutex mu;
    std::condition_variable cv;
    int pending = ncols;
    for (int c = 0; c < ncols; ++c) {
      pool->Submit([this, &batch, &mu, &cv, &pending, c] {
        table_.columns_[c].dict->EncodeBatch(batch.column(c),
                                             &table_.columns_[c].codes);
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  num_rows_ += batch.num_rows();
}

Table TableBuilder::Build() {
  table_.num_rows_ = num_rows_;
  Table out = std::move(table_);
  table_ = Table();
  num_rows_ = 0;
  return out;
}

}  // namespace gordian
