#include "table/code_column.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/hashing.h"

namespace gordian {

namespace {

constexpr char kMagic[4] = {'G', 'R', 'D', 'L'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kTrailerBytes = 56;
constexpr size_t kChunkStatBytes = 16;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("spilled column " + path + ": " + what);
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace

CodeColumn CodeColumn::Resident(std::vector<uint32_t> codes) {
  CodeColumn out;
  out.size_ = static_cast<int64_t>(codes.size());
  out.resident_ =
      std::make_shared<const std::vector<uint32_t>>(std::move(codes));
  out.data_ = out.resident_->data();
  return out;
}

Status CodeColumn::OpenSpilled(FileSystem* fs, const std::string& path,
                               uint32_t dict_size, CodeColumn* out) {
  if (fs == nullptr) fs = DefaultFileSystem();
  std::shared_ptr<MappedRegion> region;
  Status s = fs->MapFile(path, &region);
  if (!s.ok()) return s;
  if (region->size() < kTrailerBytes) {
    return Corrupt(path, "file shorter than trailer");
  }
  const char* trailer = region->data() + region->size() - kTrailerBytes;
  if (std::memcmp(trailer, kMagic, 4) != 0) {
    return Corrupt(path, "bad magic");
  }
  uint32_t version = GetU32(trailer + 4);
  if (version != kFormatVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(version));
  }
  uint64_t stored_hash = GetU64(trailer + 48);
  if (HashBytes(std::string_view(trailer, 48)) != stored_hash) {
    return Corrupt(path, "trailer checksum mismatch");
  }
  uint64_t rows = GetU64(trailer + 8);
  uint32_t chunk_rows = GetU32(trailer + 16);
  uint32_t stored_dict_size = GetU32(trailer + 20);
  uint32_t null_code = GetU32(trailer + 24);
  uint32_t num_chunks = GetU32(trailer + 28);
  uint64_t codes_bytes = GetU64(trailer + 32);

  if (rows > 0 && chunk_rows == 0) return Corrupt(path, "zero chunk size");
  if (codes_bytes != rows * sizeof(uint32_t)) {
    return Corrupt(path, "code-section size disagrees with row count");
  }
  uint64_t expect_chunks =
      rows == 0 ? 0 : (rows + chunk_rows - 1) / chunk_rows;
  if (num_chunks != expect_chunks) {
    return Corrupt(path, "chunk count disagrees with row count");
  }
  uint64_t expect_size = codes_bytes +
                         uint64_t{num_chunks} * kChunkStatBytes +
                         kTrailerBytes;
  if (region->size() != expect_size) {
    return Corrupt(path, "file size disagrees with trailer");
  }
  if (stored_dict_size != dict_size) {
    return Corrupt(path, "dictionary size mismatch (file " +
                             std::to_string(stored_dict_size) +
                             ", expected " + std::to_string(dict_size) + ")");
  }
  if (null_code != UINT32_MAX && null_code >= dict_size) {
    return Corrupt(path, "null code out of dictionary range");
  }

  auto meta = std::make_shared<SpillMeta>();
  meta->path = path;
  meta->region = region;
  meta->chunk_rows = static_cast<int64_t>(chunk_rows);
  meta->dict_size = dict_size;
  meta->null_code = null_code;
  meta->chunks.resize(num_chunks);

  const char* codes_base = region->data();
  const char* stats_base = codes_base + codes_bytes;
  const uint32_t* codes = reinterpret_cast<const uint32_t*>(codes_base);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    const char* stat = stats_base + size_t{i} * kChunkStatBytes;
    ChunkStat& cs = meta->chunks[i];
    cs.hash = GetU64(stat);
    cs.max_code = GetU32(stat + 8);
    cs.null_count = GetU32(stat + 12);

    uint64_t begin = uint64_t{i} * chunk_rows;
    uint64_t count = std::min<uint64_t>(chunk_rows, rows - begin);
    std::string_view bytes(codes_base + begin * sizeof(uint32_t),
                           count * sizeof(uint32_t));
    if (HashBytes(bytes) != cs.hash) {
      return Corrupt(path, "chunk " + std::to_string(i) +
                               " checksum mismatch");
    }
    uint32_t max_code = 0;
    uint32_t null_count = 0;
    for (uint64_t r = begin; r < begin + count; ++r) {
      max_code = std::max(max_code, codes[r]);
      null_count += codes[r] == null_code ? 1 : 0;
    }
    if (max_code != cs.max_code || max_code >= dict_size) {
      return Corrupt(path, "chunk " + std::to_string(i) +
                               " codes exceed the dictionary");
    }
    if (null_count != cs.null_count) {
      return Corrupt(path, "chunk " + std::to_string(i) +
                               " null count mismatch");
    }
    meta->null_total += null_count;
  }

  CodeColumn col;
  col.size_ = static_cast<int64_t>(rows);
  col.meta_ = std::move(meta);
  col.data_ = codes;
  *out = std::move(col);
  return Status::OK();
}

const std::string& CodeColumn::path() const {
  static const std::string kEmpty;
  return meta_ ? meta_->path : kEmpty;
}

int64_t CodeColumn::chunk_rows() const {
  return meta_ ? meta_->chunk_rows : kSpillChunkRows;
}

int64_t CodeColumn::num_chunks() const {
  if (size_ == 0) return 0;
  int64_t cr = chunk_rows();
  return (size_ + cr - 1) / cr;
}

CodeColumn::Span CodeColumn::Scan(int64_t chunk_index) const {
  int64_t begin = chunk_index * chunk_rows();
  assert(begin >= 0 && begin < size_);
  return Span{data_ + begin, begin, std::min(chunk_rows(), size_ - begin)};
}

int64_t CodeColumn::CountEqual(uint32_t code) const {
  if (meta_ && code == meta_->null_code && code != UINT32_MAX) {
    return meta_->null_total;
  }
  int64_t n = 0;
  for (int64_t r = 0; r < size_; ++r) n += data_[r] == code ? 1 : 0;
  return n;
}

uint32_t CodeColumn::spilled_null_code() const {
  return meta_ ? meta_->null_code : UINT32_MAX;
}

int64_t CodeColumn::resident_bytes() const {
  return resident_ ? static_cast<int64_t>(resident_->capacity() *
                                          sizeof(uint32_t))
                   : 0;
}

int64_t CodeColumn::mapped_bytes() const {
  return meta_ ? static_cast<int64_t>(meta_->region->size()) : 0;
}

const std::shared_ptr<MappedRegion>& CodeColumn::region() const {
  static const std::shared_ptr<MappedRegion> kNull;
  return meta_ ? meta_->region : kNull;
}

SpillColumnWriter::SpillColumnWriter(FileSystem* fs, std::string final_path,
                                     int64_t chunk_rows)
    : fs_(fs == nullptr ? DefaultFileSystem() : fs),
      final_path_(std::move(final_path)),
      tmp_path_(final_path_ + ".tmp"),
      chunk_rows_(chunk_rows) {
  assert(chunk_rows_ > 0);
  // A stale temp from a previous crashed run must not be appended to.
  (void)fs_->Remove(tmp_path_);
}

SpillColumnWriter::~SpillColumnWriter() {
  if (!finished_) {
    (void)fs_->Remove(renamed_ ? final_path_ : tmp_path_);
  }
}

Status SpillColumnWriter::FlushChunk(int64_t rows_in_chunk) {
  CodeColumn::ChunkStat cs{0, 0, 0};
  for (int64_t i = 0; i < rows_in_chunk; ++i) {
    cs.max_code = std::max(cs.max_code, buffer_[i]);
    cs.null_count +=
        (latest_null_code_ != UINT32_MAX && buffer_[i] == latest_null_code_)
            ? 1
            : 0;
  }
  std::string_view bytes(reinterpret_cast<const char*>(buffer_.data()),
                         static_cast<size_t>(rows_in_chunk) *
                             sizeof(uint32_t));
  cs.hash = HashBytes(bytes);
  Status s = fs_->AppendFile(tmp_path_, bytes);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + rows_in_chunk);
  rows_flushed_ += rows_in_chunk;
  chunks_.push_back(cs);
  return Status::OK();
}

Status SpillColumnWriter::Append(const uint32_t* codes, int64_t n,
                                 uint32_t null_code) {
  assert(!finished_);
  if (failed_) return Status::IOError("spill writer already failed");
  if (null_code != UINT32_MAX) latest_null_code_ = null_code;
  buffer_.insert(buffer_.end(), codes, codes + n);
  while (static_cast<int64_t>(buffer_.size()) >= chunk_rows_) {
    Status s = FlushChunk(chunk_rows_);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SpillColumnWriter::Finish(uint32_t dict_size, uint32_t null_code) {
  assert(!finished_);
  if (failed_) return Status::IOError("spill writer already failed");
  if (null_code != UINT32_MAX) latest_null_code_ = null_code;
  if (!buffer_.empty()) {
    Status s = FlushChunk(static_cast<int64_t>(buffer_.size()));
    if (!s.ok()) return s;
  }

  std::string tail;
  tail.reserve(chunks_.size() * kChunkStatBytes + kTrailerBytes);
  for (const CodeColumn::ChunkStat& cs : chunks_) {
    PutU64(&tail, cs.hash);
    PutU32(&tail, cs.max_code);
    PutU32(&tail, cs.null_count);
  }
  std::string trailer;
  trailer.reserve(kTrailerBytes);
  trailer.append(kMagic, 4);
  PutU32(&trailer, kFormatVersion);
  PutU64(&trailer, static_cast<uint64_t>(rows_flushed_));
  PutU32(&trailer, static_cast<uint32_t>(chunk_rows_));
  PutU32(&trailer, dict_size);
  PutU32(&trailer, latest_null_code_);
  PutU32(&trailer, static_cast<uint32_t>(chunks_.size()));
  PutU64(&trailer, static_cast<uint64_t>(rows_flushed_) * sizeof(uint32_t));
  PutU64(&trailer, 0);  // reserved
  PutU64(&trailer, HashBytes(trailer));
  tail += trailer;

  Status s = fs_->AppendFile(tmp_path_, tail);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  s = fs_->SyncFile(tmp_path_);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  s = fs_->Rename(tmp_path_, final_path_);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  renamed_ = true;
  s = fs_->SyncDir(DirOf(final_path_));
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  finished_ = true;
  return Status::OK();
}

Status SpillColumnWriter::Reabsorb(std::vector<uint32_t>* out) {
  assert(!finished_);
  // A failure after the rename (the directory fsync) leaves the flushed
  // bytes under the final name instead of the temp one.
  const std::string& flushed_path = renamed_ ? final_path_ : tmp_path_;
  std::string bytes;
  if (rows_flushed_ > 0) {
    Status s = fs_->ReadFile(flushed_path, &bytes);
    if (!s.ok()) return s;
    size_t need = static_cast<size_t>(rows_flushed_) * sizeof(uint32_t);
    if (bytes.size() < need) {
      return Status::IOError("spill temp file " + flushed_path +
                             " lost flushed data");
    }
    size_t old = out->size();
    out->resize(old + static_cast<size_t>(rows_flushed_));
    std::memcpy(out->data() + old, bytes.data(), need);
  }
  out->insert(out->end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  rows_flushed_ = 0;
  chunks_.clear();
  failed_ = true;  // the writer is dead either way
  (void)fs_->Remove(flushed_path);
  return Status::OK();
}

}  // namespace gordian
