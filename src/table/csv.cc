#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace gordian {


Value ParseCsvField(const std::string& field, bool infer_types) {
  if (!infer_types) return Value(field);
  if (field.empty()) return Value::Null();
  // Integer?
  {
    errno = 0;
    char* end = nullptr;
    long long i = std::strtoll(field.c_str(), &end, 10);
    if (errno == 0 && end == field.c_str() + field.size()) {
      return Value(static_cast<int64_t>(i));
    }
  }
  // Double?
  {
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(field.c_str(), &end);
    if (errno == 0 && end == field.c_str() + field.size()) {
      return Value(d);
    }
  }
  return Value(field);
}

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& os, const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

Status SplitCsvRecord(const std::string& line, char delimiter,
                      std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields->push_back(std::move(cur));
  return Status::OK();
}

Status ReadCsv(const std::string& path, const CsvOptions& options,
               Table* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  std::vector<std::string> fields;
  int num_cols = -1;
  std::unique_ptr<TableBuilder> builder;
  std::vector<Value> row;
  int64_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    Status s = SplitCsvRecord(line, options.delimiter, &fields);
    if (!s.ok()) return s;

    if (num_cols < 0) {
      num_cols = static_cast<int>(fields.size());
      std::vector<std::string> names;
      if (options.has_header) {
        names = fields;
      } else {
        for (int i = 0; i < num_cols; ++i) names.push_back("c" + std::to_string(i));
      }
      builder = std::make_unique<TableBuilder>(Schema(names));
      if (options.has_header) continue;
    }
    if (static_cast<int>(fields.size()) != num_cols) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(num_cols) + " fields, got " +
          std::to_string(fields.size()));
    }
    row.clear();
    for (const std::string& f : fields) {
      row.push_back(ParseCsvField(f, options.infer_types));
    }
    builder->AddRow(row);
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  *out = builder->Build();
  return Status::OK();
}

Status WriteCsv(const Table& table, const CsvOptions& options,
                const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  if (options.has_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      WriteField(os, table.schema().name(c), options.delimiter);
    }
    os << "\n";
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      const Value& v = table.value(r, c);
      if (!v.is_null()) WriteField(os, v.ToString(), options.delimiter);
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace gordian
