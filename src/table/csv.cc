#include "table/csv.h"

#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>

#include "common/thread_pool.h"

namespace gordian {

Value ParseCsvField(const std::string& field, bool infer_types) {
  if (!infer_types) return Value(field);
  if (field.empty()) return Value::Null();
  // Integer?
  {
    errno = 0;
    char* end = nullptr;
    long long i = std::strtoll(field.c_str(), &end, 10);
    if (errno == 0 && end == field.c_str() + field.size()) {
      return Value(static_cast<int64_t>(i));
    }
  }
  // Double?
  {
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(field.c_str(), &end);
    if (errno == 0 && end == field.c_str() + field.size()) {
      return Value(d);
    }
  }
  return Value(field);
}

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& os, const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

Status SplitCsvRecord(const std::string& line, char delimiter,
                      std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields->push_back(std::move(cur));
  return Status::OK();
}

CsvBatchReader::CsvBatchReader(std::istream& in, const CsvOptions& options)
    : in_(in), options_(options), buf_(1 << 16) {}

bool CsvBatchReader::Refill() {
  in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  len_ = static_cast<size_t>(in_.gcount());
  pos_ = 0;
  return len_ > 0;
}

Status CsvBatchReader::ScanRecord(Scan* result) {
  rec_fields_.clear();
  record_line_ = line_;
  uint64_t field_start = arena_.size();
  // Raw-length bookkeeping reproduces the line reader's blank-record rule:
  // a record is blank (and skipped) iff its raw content is "" or "\r".
  int64_t raw_len = 0;
  char first_raw = 0;
  bool in_quotes = false;

  auto end_field = [&] {
    rec_fields_.emplace_back(field_start,
                             static_cast<uint32_t>(arena_.size() - field_start));
    arena_.push_back('\0');  // sentinel so numeric inference parses in place
    field_start = arena_.size();
  };
  auto count_raw = [&](char c) {
    if (raw_len == 0) first_raw = c;
    ++raw_len;
  };

  for (;;) {
    // Fast path: outside quotes, bulk-copy the run of ordinary bytes ahead
    // of the cursor (anything but delimiter, quote, LF, CR) in one go
    // instead of dispatching per character.
    if (!in_quotes && pos_ < len_) {
      const char* base = buf_.data() + pos_;
      const size_t n = len_ - pos_;
      const char delim = options_.delimiter;
      size_t k = 0;
      while (k < n) {
        const char ch = base[k];
        if (ch == delim || ch == '"' || ch == '\n' || ch == '\r') break;
        ++k;
      }
      if (k > 0) {
        if (raw_len == 0) first_raw = base[0];
        raw_len += static_cast<int64_t>(k);
        arena_.insert(arena_.end(), base, base + k);
        pos_ += k;
        if (pos_ >= len_) continue;  // refill before the next special byte
      }
    }
    int ci = NextChar();
    if (ci < 0) {
      if (in_quotes) {
        return Status::InvalidArgument("line " + std::to_string(record_line_) +
                                       ": unterminated quoted field");
      }
      if (raw_len == 0 || (raw_len == 1 && first_raw == '\r')) {
        *result = Scan::kEof;  // nothing (or a bare CR) before EOF
        return Status::OK();
      }
      end_field();  // final record without trailing newline
      *result = Scan::kRecord;
      return Status::OK();
    }
    char c = static_cast<char>(ci);
    if (in_quotes) {
      if (c == '"') {
        count_raw(c);
        if (PeekChar() == '"') {
          NextChar();
          count_raw('"');
          arena_.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line_;
        count_raw(c);
        arena_.push_back(c);
      }
    } else if (c == '\n') {
      ++line_;
      if (raw_len == 0 || (raw_len == 1 && first_raw == '\r')) {
        // Blank line: skip and restart the record on the next line.
        raw_len = 0;
        record_line_ = line_;
        continue;
      }
      end_field();
      *result = Scan::kRecord;
      return Status::OK();
    } else if (c == options_.delimiter) {
      count_raw(c);
      end_field();
    } else if (c == '"') {
      count_raw(c);
      in_quotes = true;
    } else if (c == '\r') {
      count_raw(c);  // dropped outside quotes (CRLF tolerance)
    } else {
      count_raw(c);
      arena_.push_back(c);
    }
  }
}

Status CsvBatchReader::Init() {
  Scan got;
  Status s = ScanRecord(&got);
  if (!s.ok()) return s;
  if (got == Scan::kEof) return Status::OK();  // no records: num_columns()==0

  const int ncols = static_cast<int>(rec_fields_.size());
  names_.reserve(static_cast<size_t>(ncols));
  for (int i = 0; i < ncols; ++i) {
    if (options_.has_header) {
      names_.emplace_back(arena_.data() + rec_fields_[i].first,
                          rec_fields_[i].second);
    } else {
      names_.push_back("c" + std::to_string(i));
    }
  }
  col_spans_.resize(static_cast<size_t>(ncols));
  if (options_.has_header) {
    arena_.clear();
  } else {
    // The first record is data: stage it for the first NextBatch.
    for (int c = 0; c < ncols; ++c) col_spans_[c].push_back(rec_fields_[c]);
    staged_rows_ = 1;
  }
  return Status::OK();
}

namespace {

// First bytes from which strtoll/strtod can possibly consume the whole
// field: leading whitespace, a sign, a digit, a decimal point, or the
// inf/nan spellings. Any other first byte is a string without paying for
// the two libc parse attempts.
bool MaybeNumericStart(char c) {
  switch (c) {
    case ' ': case '\t': case '\n': case '\v': case '\f': case '\r':
    case '+': case '-': case '.':
    case '0': case '1': case '2': case '3': case '4':
    case '5': case '6': case '7': case '8': case '9':
    case 'i': case 'I': case 'n': case 'N':
      return true;
    default:
      return false;
  }
}

}  // namespace

void CsvBatchReader::ParseColumnInto(int col, ColumnChunk* chunk) const {
  for (const auto& [off, len] : col_spans_[static_cast<size_t>(col)]) {
    const char* s = arena_.data() + off;
    if (!options_.infer_types) {
      chunk->AppendString(std::string_view(s, len));
      continue;
    }
    if (len == 0) {
      chunk->AppendNull();
      continue;
    }
    if (!MaybeNumericStart(s[0])) {
      chunk->AppendString(std::string_view(s, len));
      continue;
    }
    errno = 0;
    char* end = nullptr;
    long long i = std::strtoll(s, &end, 10);
    if (errno == 0 && end == s + len) {
      chunk->AppendInt64(static_cast<int64_t>(i));
      continue;
    }
    errno = 0;
    double d = std::strtod(s, &end);
    if (errno == 0 && end == s + len) {
      chunk->AppendDouble(d);
      continue;
    }
    chunk->AppendString(std::string_view(s, len));
  }
}

Status CsvBatchReader::NextBatch(RowBatch* batch, ThreadPool* pool) {
  const int ncols = num_columns();
  batch->Reset(ncols);
  if (ncols == 0) return Status::OK();

  int64_t rows = staged_rows_;
  staged_rows_ = 0;
  if (rows == 0) {
    arena_.clear();
    for (auto& spans : col_spans_) spans.clear();
  }
  while (rows < RowBatch::kDefaultRows) {
    Scan got;
    Status s = ScanRecord(&got);
    if (!s.ok()) return s;
    if (got == Scan::kEof) break;
    if (static_cast<int>(rec_fields_.size()) != ncols) {
      return Status::InvalidArgument(
          "line " + std::to_string(record_line_) + ": expected " +
          std::to_string(ncols) + " fields, got " +
          std::to_string(rec_fields_.size()));
    }
    for (int c = 0; c < ncols; ++c) {
      col_spans_[static_cast<size_t>(c)].push_back(rec_fields_[c]);
    }
    ++rows;
  }
  rows_read_ += rows;

  if (pool != nullptr && pool->num_threads() > 1 && ncols > 1 && rows > 0) {
    std::mutex mu;
    std::condition_variable cv;
    int pending = ncols;
    for (int c = 0; c < ncols; ++c) {
      pool->Submit([this, batch, &mu, &cv, &pending, c] {
        ParseColumnInto(c, &batch->column(c));
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  } else {
    for (int c = 0; c < ncols; ++c) ParseColumnInto(c, &batch->column(c));
  }
  return Status::OK();
}

namespace {

Status ReadCsvImpl(const std::string& path, const CsvOptions& options,
                   const SpillPolicy& spill, Table* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  CsvBatchReader reader(in, options);
  Status s = reader.Init();
  if (!s.ok()) return s;
  if (reader.num_columns() == 0) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.encode_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.encode_threads);
  }
  TableBuilder builder{Schema(reader.column_names()), spill};
  RowBatch batch;
  // Once the builder is spilling, the batch arena is the ingest loop's
  // largest transient; release any outsized capacity (a string-heavy
  // stretch of the file) right after the encode that consumed it.
  constexpr int64_t kBatchShrinkBytes = 8 << 20;
  for (;;) {
    s = reader.NextBatch(&batch, pool.get());
    if (!s.ok()) return s;
    if (batch.num_rows() == 0) break;
    builder.AddBatch(batch, pool.get());
    if (spill.enabled() && batch.ApproxBytes() > kBatchShrinkBytes) {
      batch.Clear();
      batch.ShrinkToFit();
    }
  }
  return builder.Build(out);
}

}  // namespace

Status ReadCsv(const std::string& path, const CsvOptions& options,
               Table* out) {
  return ReadCsvImpl(path, options, SpillPolicy(), out);
}

Status ReadCsv(const std::string& path, const CsvOptions& options,
               const SpillPolicy& spill, Table* out) {
  return ReadCsvImpl(path, options, spill, out);
}

Status WriteCsv(const Table& table, const CsvOptions& options,
                const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  if (options.has_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      WriteField(os, table.schema().name(c), options.delimiter);
    }
    os << "\n";
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      const Value& v = table.value(r, c);
      if (!v.is_null()) WriteField(os, v.ToString(), options.delimiter);
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace gordian
