#ifndef GORDIAN_TABLE_FINGERPRINT_H_
#define GORDIAN_TABLE_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "common/hashing.h"
#include "table/table.h"

namespace gordian {

// 64-bit content fingerprint of a table: column names, per-column
// dictionaries (values in code order), and the code vectors. Everything the
// profiling algorithms can observe feeds the hash, and nothing else — no
// pointers, no capacities — so the fingerprint is stable across processes
// and across save/load through WriteTableFile/ReadTableFile or CSV
// round-trips that reproduce the same first-seen value order.
//
// Two tables with the same schema and the same rows in the same order have
// the same fingerprint; changing any name, value, or row (or reordering
// rows) perturbs it. The key catalog uses this as its cache key: a matching
// fingerprint means the stored discovery result is valid for the table.
//
// The hash is append-composable: each column carries two independent
// chains — dictionary values folded in code order, and codes folded in row
// order — that are only combined with the schema and row count when the
// final fingerprint is requested. Appending rows only extends the chains,
// so FingerprintAccumulator below reproduces TableFingerprint of the
// concatenated table in O(delta) per batch.
//
// Cost is one pass over the codes, O(rows x columns) with a trivial
// constant — orders of magnitude cheaper than discovery itself.
uint64_t TableFingerprint(const Table& table);

// Incrementally maintained table fingerprint. Seed it from a base table
// (one O(rows x columns) pass), then feed it exactly what the encoder
// produces for each appended row: an AbsorbDictValue call whenever a
// column dictionary grows by one value, an AbsorbCode call per cell, and
// one AddRows per batch. Fingerprint() then equals TableFingerprint of the
// base table with all absorbed rows appended.
class FingerprintAccumulator {
 public:
  FingerprintAccumulator() = default;

  // Seeds the accumulator so Fingerprint() == TableFingerprint(table).
  static FingerprintAccumulator FromTable(const Table& table);

  // Extends column `c`'s dictionary chain with the hash of the value just
  // appended to its dictionary (i.e. Decode(new_code).Hash()). Must be
  // called in code order, exactly once per new dictionary entry.
  void AbsorbDictValue(int c, uint64_t value_hash) {
    ColumnChain& col = columns_[static_cast<size_t>(c)];
    col.dict_chain = HashCombine(col.dict_chain, value_hash);
    ++col.dict_size;
  }

  // Extends column `c`'s code chain with the next row's code.
  void AbsorbCode(int c, uint32_t code) {
    ColumnChain& col = columns_[static_cast<size_t>(c)];
    col.code_chain = HashCombine(col.code_chain, code);
  }

  void AddRows(int64_t n) { num_rows_ += n; }

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  uint64_t Fingerprint() const;

 private:
  struct ColumnChain {
    uint64_t name_hash = 0;
    uint64_t dict_size = 0;
    uint64_t dict_chain = 0;
    uint64_t code_chain = 0;
  };
  std::vector<ColumnChain> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_FINGERPRINT_H_
