#ifndef GORDIAN_TABLE_FINGERPRINT_H_
#define GORDIAN_TABLE_FINGERPRINT_H_

#include <cstdint>

#include "table/table.h"

namespace gordian {

// 64-bit content fingerprint of a table: column names, per-column
// dictionaries (values in code order), and the code vectors. Everything the
// profiling algorithms can observe feeds the hash, and nothing else — no
// pointers, no capacities — so the fingerprint is stable across processes
// and across save/load through WriteTableFile/ReadTableFile or CSV
// round-trips that reproduce the same first-seen value order.
//
// Two tables with the same schema and the same rows in the same order have
// the same fingerprint; changing any name, value, or row (or reordering
// rows) perturbs it. The key catalog uses this as its cache key: a matching
// fingerprint means the stored discovery result is valid for the table.
//
// Cost is one pass over the codes, O(rows x columns) with a trivial
// constant — orders of magnitude cheaper than discovery itself.
uint64_t TableFingerprint(const Table& table);

}  // namespace gordian

#endif  // GORDIAN_TABLE_FINGERPRINT_H_
