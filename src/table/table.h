#ifndef GORDIAN_TABLE_TABLE_H_
#define GORDIAN_TABLE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/attribute_set.h"
#include "common/status.h"
#include "table/code_column.h"
#include "table/column_chunk.h"
#include "table/dictionary.h"
#include "table/schema.h"
#include "table/value.h"

namespace gordian {

class ThreadPool;

// An immutable, dictionary-encoded column collection — the "collection of
// entities" that GORDIAN profiles. Each column stores one uint32 code per
// row behind a CodeColumn, which is either heap-resident or an mmap of a
// spilled GRDL file; the per-column Dictionary maps codes back to Values.
// Row addressing works identically either way (both representations are
// one contiguous code array), so profiling code never branches on where a
// column lives.
//
// Row samples of a Table share the parent's dictionaries (codes keep their
// meaning), so a sample-discovered key can be re-validated against the full
// table cheaply.
class Table {
 public:
  Table() = default;

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  int64_t num_rows() const { return num_rows_; }

  uint32_t code(int64_t row, int col) const { return columns_[col].codes[row]; }
  const Value& value(int64_t row, int col) const {
    return columns_[col].dict->Decode(code(row, col));
  }
  const CodeColumn& column_codes(int col) const {
    return columns_[col].codes;
  }
  const Dictionary& dictionary(int col) const { return *columns_[col].dict; }

  // Number of columns currently backed by spilled GRDL files.
  int spilled_column_count() const;

  // Number of distinct values of `col` among this table's rows. For a table
  // built directly by TableBuilder this equals dictionary(col).size(); for a
  // sample it is typically smaller. O(rows) on first call per column; cached.
  int64_t ColumnCardinality(int col) const;

  // Exact number of distinct rows of the projection onto `attrs`
  // (sort-based; no hashing, no collisions). Empty `attrs` yields
  // min(1, num_rows).
  int64_t DistinctCount(const AttributeSet& attrs) const;

  // Same count via 128-bit row fingerprints: O(rows) instead of
  // O(rows log rows), with an astronomically small (2^-64-ish) collision
  // risk. Used by strength validation over many keys; tests cross-check it
  // against DistinctCount.
  int64_t DistinctCountFast(const AttributeSet& attrs) const;

  // True iff no two rows agree on every attribute in `attrs`, i.e., `attrs`
  // is a (composite) key of this table. Equivalent to
  // DistinctCount(attrs) == num_rows but exits early on the first duplicate.
  bool IsUnique(const AttributeSet& attrs) const;

  // Strength of `attrs` as defined in Section 3.9 of the paper:
  // DistinctCount(attrs) / num_rows. 1.0 for true keys. Returns 1.0 for an
  // empty table.
  double Strength(const AttributeSet& attrs) const;

  // A new table containing `count` rows drawn uniformly without replacement
  // (deterministic in `seed`), sharing this table's dictionaries. `count` is
  // clamped to num_rows. Row order is preserved.
  Table SampleRows(int64_t count, uint64_t seed) const;

  // A new table with only the first `count` columns (shared dictionaries).
  // Used by the attribute-count sweeps (paper Figures 12 and 13).
  Table ProjectColumns(int num_cols) const;

  // A new table restricted to the given column positions, in the given
  // order (shared dictionaries).
  Table SelectColumns(const std::vector<int>& cols) const;

  // Approximate heap-resident footprint: resident code vectors +
  // dictionaries + the cardinality cache. Storage shared between columns
  // or tables (dictionaries, code vectors after SelectColumns/ProjectColumns)
  // is counted once per distinct object. Mmap-backed bytes of spilled
  // columns are deliberately excluded — the OS pages them in and out on
  // demand, so they don't compete for the same budget; MappedBytes()
  // reports them separately.
  int64_t ApproxBytes() const;

  // Bytes of spilled-column file mappings, counted once per distinct
  // mapping even when column views share it.
  int64_t MappedBytes() const;

  // Assembles a table directly from per-column dictionaries and code
  // vectors (all code vectors must have equal length; codes need not be
  // dense in their dictionary's code space — samples already have that
  // property). Used by consumers that maintain encoded rows themselves,
  // e.g. the streaming reservoir.
  static Table FromColumns(Schema schema,
                           std::vector<std::shared_ptr<Dictionary>> dicts,
                           std::vector<std::vector<uint32_t>> codes);

  // Same, from ready-made CodeColumns (resident or spilled). The artifact
  // store uses this to reattach persisted GRDL columns to their reloaded
  // dictionaries.
  static Table FromCodeColumns(Schema schema,
                               std::vector<std::shared_ptr<Dictionary>> dicts,
                               std::vector<CodeColumn> columns);

  // Renders row `row` as "v0|v1|...".
  std::string RowToString(int64_t row) const;

 private:
  friend class TableBuilder;

  struct ColumnData {
    std::shared_ptr<Dictionary> dict;
    CodeColumn codes;
  };

  Schema schema_;
  std::vector<ColumnData> columns_;
  int64_t num_rows_ = 0;
  mutable std::vector<int64_t> cardinality_cache_;
};

// Construction of a Table. The primary path is batch-wise: producers fill
// a RowBatch and AddBatch dictionary-encodes it column-at-a-time
// (optionally one ThreadPool task per column). AddRow survives as a thin
// row-at-a-time adapter; both paths assign identical dictionary codes
// because each column sees its values in the same first-seen order.
//
// With an enabled SpillPolicy, the builder watches its resident code bytes
// after every batch and, when over budget, converts the largest resident
// columns to streaming GRDL writers — subsequent batches append a chunk at
// a time and only a sub-chunk tail stays in memory per spilled column.
// Spilling never changes the table's contents: a spill-I/O failure falls
// back to a resident column with every code intact (recorded in
// spill_status()); only an unrecoverable loss poisons the builder, which
// the Status-returning Build overload reports.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema, SpillPolicy policy = SpillPolicy());

  // Appends one entity; `row` must have schema().num_columns() values.
  void AddRow(const std::vector<Value>& row);

  // Appends every row of `batch` (batch.num_columns() must match the
  // schema). With a pool, columns are encoded concurrently — per-column
  // dictionaries are independent, so the result is deterministic and
  // identical to the serial path.
  void AddBatch(const RowBatch& batch, ThreadPool* pool = nullptr);

  int64_t num_rows() const { return num_rows_; }

  const Schema& schema() const { return table_.schema(); }

  // Approximate heap footprint of the under-construction resident code
  // vectors and dictionaries (spilled bytes excluded, like
  // Table::ApproxBytes).
  int64_t ApproxBytes() const;

  // First spill problem encountered, if any. ok() when spilling is off or
  // healthy; an error here with a successful Build means the builder
  // degraded to resident columns without data loss.
  const Status& spill_status() const { return spill_status_; }

  // Columns currently being streamed to GRDL writers.
  int spilling_column_count() const;

  // Finalizes into *out. Fails only when spilled data could not be
  // recovered (never for a clean degrade to resident). The builder is left
  // empty.
  Status Build(Table* out);

  // Legacy infallible form; asserts that no unrecoverable spill loss
  // occurred (always true when spilling is disabled).
  Table Build();

 private:
  struct BuildColumn {
    // Resident codes for an unspilled column; per-batch scratch (cleared
    // after each writer append) once spilling.
    std::vector<uint32_t> codes;
    std::unique_ptr<SpillColumnWriter> writer;
    // Spill problem found while encoding this column (possibly on a pool
    // thread); merged into spill_status_ after the batch latch.
    Status pending_status;
    bool lost_data = false;
  };

  void EncodeColumnBatch(const RowBatch& batch, int c);
  void MaybeSpill();
  void MergeColumnStatuses();
  uint32_t NullCodeOf(int c) const;

  Table table_;
  std::vector<BuildColumn> cols_;
  SpillPolicy policy_;
  std::string spill_prefix_;
  Status spill_status_;
  bool poisoned_ = false;
  int64_t num_rows_ = 0;
};

// Row-shaped convenience over the batch path: callers append whole rows of
// raw typed values (integers, doubles, strings, or Values — one argument
// per column) and the writer flushes full RowBatches into the builder
// automatically. Generators use this to fill batches directly without
// materializing std::vector<Value> rows. Remaining rows flush on
// destruction (or an explicit Flush()).
class BatchWriter {
 public:
  explicit BatchWriter(TableBuilder* builder, ThreadPool* pool = nullptr)
      : builder_(builder),
        pool_(pool),
        batch_(builder->schema().num_columns()) {}

  ~BatchWriter() { Flush(); }

  BatchWriter(const BatchWriter&) = delete;
  BatchWriter& operator=(const BatchWriter&) = delete;

  template <typename... Args>
  void Append(Args&&... args) {
    assert(static_cast<int>(sizeof...(Args)) == batch_.num_columns());
    int c = 0;
    (internal::AppendToChunk(&batch_.column(c++), std::forward<Args>(args)),
     ...);
    if (batch_.full()) Flush();
  }

  void Flush() {
    if (batch_.num_rows() > 0) {
      builder_->AddBatch(batch_, pool_);
      batch_.Clear();
    }
  }

 private:
  TableBuilder* builder_;
  ThreadPool* pool_;
  RowBatch batch_;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_TABLE_H_
