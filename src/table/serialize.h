#ifndef GORDIAN_TABLE_SERIALIZE_H_
#define GORDIAN_TABLE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "table/table.h"

namespace gordian {

// Compact binary persistence for tables, so repeated profiling runs skip
// CSV/XML parsing and dictionary rebuilding. The format is a single file:
//
//   magic "GRDT", format version (u32),
//   column count (u32), row count (u64),
//   per column: name, dictionary (typed values), then the code vector.
//
// Strings are length-prefixed; integers are little-endian fixed width.
// Loading validates the magic, version, type tags, code ranges, and
// truncation, returning InvalidArgument rather than crashing on corrupt
// input (fuzz-style tests exercise this).

// Writes `table` to `path`, overwriting it.
Status WriteTableFile(const Table& table, const std::string& path);

// Reads a table written by WriteTableFile.
Status ReadTableFile(const std::string& path, Table* out);

// The same format against an arbitrary stream, so tables can travel through
// memory as well as files — the RPC layer (src/net) ships a table to its
// shard-owner worker as exactly these bytes. A table that round-trips
// through Write/ReadTable reproduces its dictionary code assignment, so its
// fingerprint (table/fingerprint.h) is identical on both sides of the wire.
Status WriteTable(const Table& table, std::ostream& os);
Status ReadTable(std::istream& is, Table* out);

// The metadata half of a spilled table artifact: schema + per-column
// dictionaries + row count, without the code vectors (those live in
// per-column GRDL files next to it — see service/table_artifacts.h).
// Reading rebuilds each Dictionary with its original code assignment
// (values re-encoded in stored order, so value i gets code i).
Status WriteSchemaAndDicts(const Table& table, std::ostream& os);
Status ReadSchemaAndDicts(std::istream& is, Schema* schema,
                          std::vector<std::shared_ptr<Dictionary>>* dicts,
                          int64_t* num_rows);

}  // namespace gordian

#endif  // GORDIAN_TABLE_SERIALIZE_H_
