#include "table/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace gordian {

namespace {

constexpr char kMagic[4] = {'G', 'R', 'D', 'T'};
constexpr uint32_t kFormatVersion = 1;

// Type tags in the dictionary section.
enum class Tag : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void U8(uint8_t v) { os_.put(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      os_.put(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      os_.put(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    os_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void ValueRecord(const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        U8(static_cast<uint8_t>(Tag::kNull));
        break;
      case ValueType::kInt64:
        U8(static_cast<uint8_t>(Tag::kInt64));
        U64(static_cast<uint64_t>(v.int64()));
        break;
      case ValueType::kDouble: {
        U8(static_cast<uint8_t>(Tag::kDouble));
        double d = v.dbl();
        uint64_t bits;
        __builtin_memcpy(&bits, &d, sizeof(bits));
        U64(bits);
        break;
      }
      case ValueType::kString:
        U8(static_cast<uint8_t>(Tag::kString));
        Str(v.str());
        break;
    }
  }

 private:
  std::ostream& os_;
};

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  bool U8(uint8_t* v) {
    int c = is_.get();
    if (c == EOF) return false;
    *v = static_cast<uint8_t>(c);
    return true;
  }
  bool U32(uint32_t* v) {
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      uint8_t b;
      if (!U8(&b)) return false;
      *v |= static_cast<uint32_t>(b) << (8 * i);
    }
    return true;
  }
  bool U64(uint64_t* v) {
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      uint8_t b;
      if (!U8(&b)) return false;
      *v |= static_cast<uint64_t>(b) << (8 * i);
    }
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (len > (1u << 28)) return false;  // refuse absurd lengths
    s->resize(len);
    is_.read(s->data(), len);
    return static_cast<uint32_t>(is_.gcount()) == len;
  }
  bool ValueRecord(Value* v) {
    uint8_t tag;
    if (!U8(&tag)) return false;
    switch (static_cast<Tag>(tag)) {
      case Tag::kNull:
        *v = Value::Null();
        return true;
      case Tag::kInt64: {
        uint64_t bits;
        if (!U64(&bits)) return false;
        *v = Value(static_cast<int64_t>(bits));
        return true;
      }
      case Tag::kDouble: {
        uint64_t bits;
        if (!U64(&bits)) return false;
        double d;
        __builtin_memcpy(&d, &bits, sizeof(d));
        *v = Value(d);
        return true;
      }
      case Tag::kString: {
        std::string s;
        if (!Str(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }

 private:
  std::istream& is_;
};

}  // namespace

Status WriteTable(const Table& table, std::ostream& os) {
  os.write(kMagic, 4);
  Writer w(os);
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(table.num_columns()));
  w.U64(static_cast<uint64_t>(table.num_rows()));
  for (int c = 0; c < table.num_columns(); ++c) {
    w.Str(table.schema().name(c));
    const Dictionary& dict = table.dictionary(c);
    w.U32(dict.size());
    for (uint32_t code = 0; code < dict.size(); ++code) {
      w.ValueRecord(dict.Decode(code));
    }
    for (uint32_t code : table.column_codes(c)) w.U32(code);
  }
  if (!os) return Status::IOError("table serialization write failed");
  return Status::OK();
}

Status WriteTableFile(const Table& table, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  Status s = WriteTable(table, os);
  if (s.ok() && !os) return Status::IOError("write failed: " + path);
  return s;
}

Status ReadTable(std::istream& is, Table* out) {
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a gordian table stream");
  }
  Reader r(is);
  uint32_t version, num_cols;
  uint64_t num_rows;
  if (!r.U32(&version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported format version");
  }
  if (!r.U32(&num_cols) || !r.U64(&num_rows)) {
    return Status::InvalidArgument("truncated header");
  }
  if (num_cols > static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::InvalidArgument("too many columns");
  }
  if (num_rows > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("implausible row count");
  }

  std::vector<std::string> names(num_cols);
  std::vector<std::vector<Value>> dicts(num_cols);
  std::vector<std::vector<uint32_t>> codes(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    if (!r.Str(&names[c])) return Status::InvalidArgument("truncated name");
    uint32_t dict_size;
    if (!r.U32(&dict_size)) return Status::InvalidArgument("truncated dict");
    dicts[c].resize(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      if (!r.ValueRecord(&dicts[c][i])) {
        return Status::InvalidArgument("corrupt dictionary value");
      }
    }
    codes[c].resize(num_rows);
    for (uint64_t i = 0; i < num_rows; ++i) {
      if (!r.U32(&codes[c][i])) {
        return Status::InvalidArgument("truncated code vector");
      }
      if (codes[c][i] >= dict_size) {
        return Status::InvalidArgument("code out of dictionary range");
      }
    }
  }

  TableBuilder builder{Schema(names)};
  std::vector<Value> row(num_cols);
  for (uint64_t i = 0; i < num_rows; ++i) {
    for (uint32_t c = 0; c < num_cols; ++c) {
      row[c] = dicts[c][codes[c][i]];
    }
    builder.AddRow(row);
  }
  *out = builder.Build();
  return Status::OK();
}

Status WriteSchemaAndDicts(const Table& table, std::ostream& os) {
  // Distinct magic from the full-table GRDT stream so the two cannot be
  // confused: a dictionary file fed to ReadTable (or vice versa) fails on
  // the first four bytes.
  os.write("GRDD", 4);
  Writer w(os);
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(table.num_columns()));
  w.U64(static_cast<uint64_t>(table.num_rows()));
  for (int c = 0; c < table.num_columns(); ++c) {
    w.Str(table.schema().name(c));
    const Dictionary& dict = table.dictionary(c);
    w.U32(dict.size());
    for (uint32_t code = 0; code < dict.size(); ++code) {
      w.ValueRecord(dict.Decode(code));
    }
  }
  if (!os) return Status::IOError("schema serialization write failed");
  return Status::OK();
}

Status ReadSchemaAndDicts(std::istream& is, Schema* schema,
                          std::vector<std::shared_ptr<Dictionary>>* dicts,
                          int64_t* num_rows) {
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, "GRDD", 4) != 0) {
    return Status::InvalidArgument("not a gordian schema stream");
  }
  Reader r(is);
  uint32_t version, num_cols;
  uint64_t rows;
  if (!r.U32(&version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported format version");
  }
  if (!r.U32(&num_cols) || !r.U64(&rows)) {
    return Status::InvalidArgument("truncated header");
  }
  if (num_cols > static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::InvalidArgument("too many columns");
  }
  if (rows > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("implausible row count");
  }
  std::vector<std::string> names(num_cols);
  dicts->clear();
  dicts->reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    if (!r.Str(&names[c])) return Status::InvalidArgument("truncated name");
    uint32_t dict_size;
    if (!r.U32(&dict_size)) return Status::InvalidArgument("truncated dict");
    auto dict = std::make_shared<Dictionary>();
    for (uint32_t i = 0; i < dict_size; ++i) {
      Value v;
      if (!r.ValueRecord(&v)) {
        return Status::InvalidArgument("corrupt dictionary value");
      }
      if (dict->Encode(v) != i) {
        // A repeated value would silently shift every later code.
        return Status::InvalidArgument("duplicate dictionary value");
      }
    }
    dicts->push_back(std::move(dict));
  }
  *schema = Schema(names);
  *num_rows = static_cast<int64_t>(rows);
  return Status::OK();
}

Status ReadTableFile(const std::string& path, Table* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open " + path);
  Status s = ReadTable(is, out);
  if (!s.ok() && s.code() == Status::Code::kInvalidArgument) {
    return Status::InvalidArgument(s.message() + ": " + path);
  }
  return s;
}

}  // namespace gordian
