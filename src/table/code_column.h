#ifndef GORDIAN_TABLE_CODE_COLUMN_H_
#define GORDIAN_TABLE_CODE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/status.h"

namespace gordian {

// Rows per chunk of a spilled column file. A chunk is the unit of
// checksumming and of streaming writes (256 KiB of codes), not of read
// access: the reader maps the whole file, so lookups stay a flat pointer
// dereference whether the column is resident or spilled.
constexpr int64_t kSpillChunkRows = 64 * 1024;

// When and where TableBuilder may move encoded columns out of RAM.
// The budget governs heap-resident code bytes across the builder's
// columns; dictionaries always stay resident (codes are meaningless
// without them, and they are small relative to codes for realistic
// cardinalities). A default-constructed policy never spills.
struct SpillPolicy {
  int64_t memory_budget_bytes = 0;  // 0 disables spilling
  std::string spill_dir;            // must exist; files named <prefix>-cNN.grdl
  FileSystem* fs = nullptr;         // DefaultFileSystem() when null
  int64_t chunk_rows = kSpillChunkRows;

  bool enabled() const { return memory_budget_bytes > 0 && !spill_dir.empty(); }
};

// One column's dictionary codes, resident or spilled — the storage boundary
// the rest of the system sees. Both representations expose the codes as one
// contiguous uint32 array (`data()`), so row addressing costs the same
// either way; a spilled column's array lives in a shared read-only mmap of
// its GRDL file and the OS pages it in on demand.
//
// Copies are cheap and share storage (a shared_ptr either way), which is
// what makes SampleRows/SelectColumns views affordable over spilled tables.
//
// GRDL v1 file layout (machine-local spill format, native little-endian;
// magic GRDL — GRDT names the whole-table interchange format in
// table/serialize.h):
//
//   [codes]        rows * 4 bytes, appended chunk by chunk
//   [chunk table]  num_chunks * 16 bytes: u64 hash, u32 max_code,
//                  u32 null_count — per-chunk FNV hash of the code bytes
//                  plus stats the reader re-derives and cross-checks
//   [trailer]      56 bytes at the very end (the file is append-only while
//                  being written, so the header goes last, Parquet-style):
//                  magic 'GRDL', u32 version=1, u64 rows, u32 chunk_rows,
//                  u32 dict_size, u32 null_code (UINT32_MAX = column has no
//                  nulls), u32 num_chunks, u64 codes_bytes, u64 reserved,
//                  u64 trailer_hash (over the preceding 48 trailer bytes)
//
// OpenSpilled revalidates everything — trailer hash, size arithmetic,
// every chunk hash, and that every code is < dict_size — so a torn or
// bit-flipped file yields a clean Status, never out-of-bounds decoding.
class CodeColumn {
 public:
  struct Span {
    const uint32_t* data;  // `count` codes starting at row `begin`
    int64_t begin;
    int64_t count;
  };

  CodeColumn() = default;

  static CodeColumn Resident(std::vector<uint32_t> codes);

  // Opens and fully validates a GRDL file written by SpillColumnWriter.
  // `dict_size` is the owning dictionary's size; stored and recomputed
  // per-chunk max codes must stay below it.
  static Status OpenSpilled(FileSystem* fs, const std::string& path,
                            uint32_t dict_size, CodeColumn* out);

  int64_t size() const { return size_; }
  bool spilled() const { return meta_ != nullptr; }
  // Path of the backing GRDL file; empty for resident columns.
  const std::string& path() const;

  uint32_t operator[](int64_t row) const { return data_[row]; }
  const uint32_t* data() const { return data_; }
  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }

  // Chunked view for consumers that stream rather than address rows.
  // Resident columns report the default chunking.
  int64_t chunk_rows() const;
  int64_t num_chunks() const;
  Span Scan(int64_t chunk_index) const;

  // Occurrences of `code` in the column. O(1) from chunk stats when this
  // is a spilled column's null code; one pass otherwise.
  int64_t CountEqual(uint32_t code) const;

  // Null code recorded in a spilled column's trailer (UINT32_MAX when the
  // column has no nulls or is resident).
  uint32_t spilled_null_code() const;

  // Heap bytes held by this column (code vector capacity); 0 when spilled.
  int64_t resident_bytes() const;
  // Bytes of the backing file mapping; 0 when resident.
  int64_t mapped_bytes() const;
  // Identity of the shared mapping, for deduplicated accounting across
  // column views; null for resident columns.
  const std::shared_ptr<MappedRegion>& region() const;

 private:
  struct ChunkStat {
    uint64_t hash;
    uint32_t max_code;
    uint32_t null_count;
  };

  struct SpillMeta {
    std::string path;
    std::shared_ptr<MappedRegion> region;
    int64_t chunk_rows = kSpillChunkRows;
    uint32_t dict_size = 0;
    uint32_t null_code = UINT32_MAX;
    std::vector<ChunkStat> chunks;
    int64_t null_total = 0;
  };

  friend class SpillColumnWriter;

  std::shared_ptr<const std::vector<uint32_t>> resident_;
  std::shared_ptr<const SpillMeta> meta_;
  const uint32_t* data_ = nullptr;
  int64_t size_ = 0;
};

// Content equality, irrespective of where either column lives.
inline bool operator==(const CodeColumn& a, const CodeColumn& b) {
  if (a.size() != b.size()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator!=(const CodeColumn& a, const CodeColumn& b) {
  return !(a == b);
}

// Streams one column's codes into a GRDL file as they are encoded, so the
// column never needs all its bytes in memory at once. Chunks are written
// with AppendFile to <final_path>.tmp; Finish appends the chunk table and
// trailer, fsyncs, renames over the final name, and fsyncs the directory —
// the same durable-replace sequence the catalog shards use.
//
// Failure model: a chunk leaves the in-memory buffer only after its append
// succeeded, so after any failed call every accepted code is still
// recoverable — rows_flushed() complete rows at the front of the temp file
// (a torn tail past that point is ignored) plus the buffer. Reabsorb()
// hands them back so the builder can fall back to a resident column
// without losing data; the writer is dead after any failure.
class SpillColumnWriter {
 public:
  SpillColumnWriter(FileSystem* fs, std::string final_path,
                    int64_t chunk_rows = kSpillChunkRows);
  ~SpillColumnWriter();

  SpillColumnWriter(const SpillColumnWriter&) = delete;
  SpillColumnWriter& operator=(const SpillColumnWriter&) = delete;

  // Accepts `n` codes. `null_code` is the owning dictionary's current code
  // for null (UINT32_MAX while no null has been seen); a code cannot occur
  // in the stream before the dictionary assigned it, so counting the
  // latest null code at chunk-flush time is exact.
  Status Append(const uint32_t* codes, int64_t n, uint32_t null_code);

  // Flushes the final short chunk, writes chunk table + trailer, and
  // atomically publishes the file at path().
  Status Finish(uint32_t dict_size, uint32_t null_code);

  // Total codes accepted by successful Append calls (flushed + buffered).
  int64_t rows() const { return rows_flushed_ + buffered_rows(); }
  const std::string& path() const { return final_path_; }

  // After a failure: appends every accepted code to *out, in order, and
  // removes the temp file. Fails only if the temp file itself has become
  // unreadable or shorter than the rows known to be flushed.
  Status Reabsorb(std::vector<uint32_t>* out);

 private:
  int64_t buffered_rows() const {
    return static_cast<int64_t>(buffer_.size());
  }
  Status FlushChunk(int64_t rows_in_chunk);

  FileSystem* fs_;
  std::string final_path_;
  std::string tmp_path_;
  int64_t chunk_rows_;
  std::vector<uint32_t> buffer_;
  int64_t rows_flushed_ = 0;
  uint32_t latest_null_code_ = UINT32_MAX;
  std::vector<CodeColumn::ChunkStat> chunks_;
  bool failed_ = false;
  bool finished_ = false;
  // The rename onto final_path_ succeeded (set even when the directory
  // fsync after it failed): recovery and cleanup must look at final_path_,
  // not the temp name.
  bool renamed_ = false;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_CODE_COLUMN_H_
