#include "table/column_chunk.h"

namespace gordian {

void ColumnChunk::AppendValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      AppendNull();
      break;
    case ValueType::kInt64:
      AppendInt64(v.int64());
      break;
    case ValueType::kDouble:
      AppendDouble(v.dbl());
      break;
    case ValueType::kString:
      AppendString(v.str());
      break;
  }
}

Value ColumnChunk::ValueAt(int64_t i) const {
  switch (type(i)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64:
      return Value(int64_at(i));
    case ValueType::kDouble:
      return Value(double_at(i));
    case ValueType::kString:
      return Value(std::string(string_at(i)));
  }
  return Value::Null();
}

void RowBatch::AppendRow(const std::vector<Value>& row) {
  assert(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
}

}  // namespace gordian
