#ifndef GORDIAN_TABLE_SCHEMA_H_
#define GORDIAN_TABLE_SCHEMA_H_

#include <string>
#include <utility>
#include <vector>

#include "common/attribute_set.h"

namespace gordian {

struct ColumnDef {
  std::string name;
};

// The list of attributes of an entity collection. Column positions are the
// attribute numbers used throughout the GORDIAN core (AttributeSet bits).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}
  explicit Schema(const std::vector<std::string>& names) {
    for (const auto& n : names) columns_.push_back({n});
  }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::string& name(int i) const { return columns_[i].name; }

  // Position of the column with the given name, or -1.
  int Find(const std::string& name) const {
    for (int i = 0; i < num_columns(); ++i) {
      if (columns_[i].name == name) return i;
    }
    return -1;
  }

  // Renders an attribute set with column names: "<Last Name, Phone>".
  std::string Describe(const AttributeSet& attrs) const {
    std::string out = "<";
    bool first = true;
    attrs.ForEach([&](int a) {
      if (!first) out += ", ";
      first = false;
      out += a < num_columns() ? name(a) : ("#" + std::to_string(a));
    });
    out += ">";
    return out;
  }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_SCHEMA_H_
