#ifndef GORDIAN_TABLE_DICTIONARY_H_
#define GORDIAN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "table/value.h"

namespace gordian {

// Bidirectional mapping between Values and dense uint32 codes for one
// column. Codes are assigned in first-seen order; the code space of a
// column is [0, size()).
//
// Each Value is stored exactly once, in `values_`; the reverse direction is
// an open-addressed table of codes probed by Value::Hash() and resolved by
// comparing against `values_[code]`. This halves dictionary memory versus
// keeping a second Value copy inside a map key.
class Dictionary {
 public:
  // Returns the code for `v`, inserting it if new.
  uint32_t Encode(const Value& v) {
    if (values_.size() + 1 > (slots_.size() * 7) / 10) Rehash();
    size_t i = Probe(v);
    if (slots_[i] != kEmpty) return slots_[i];
    uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(v);
    slots_[i] = code;
    return code;
  }

  // Returns the code for `v`, or UINT32_MAX if absent.
  uint32_t Lookup(const Value& v) const {
    if (slots_.empty()) return UINT32_MAX;
    size_t i = Probe(v);
    return slots_[i] == kEmpty ? UINT32_MAX : slots_[i];
  }

  const Value& Decode(uint32_t code) const { return values_[code]; }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  // Approximate heap footprint; used by memory accounting.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(values_.capacity() * sizeof(Value) +
                                slots_.capacity() * sizeof(uint32_t));
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  // Index of the slot holding `v`'s code, or of the empty slot where it
  // would be inserted. Requires a non-empty, never-full table.
  size_t Probe(const Value& v) const {
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(v.Hash()) & mask;
    while (slots_[i] != kEmpty && !(values_[slots_[i]] == v)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash() {
    size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(cap, kEmpty);
    size_t mask = cap - 1;
    for (uint32_t code = 0; code < values_.size(); ++code) {
      size_t i = static_cast<size_t>(values_[code].Hash()) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = code;
    }
  }

  std::vector<Value> values_;
  // Power-of-two open-addressing table of codes; kEmpty marks a free slot.
  std::vector<uint32_t> slots_;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_DICTIONARY_H_
