#ifndef GORDIAN_TABLE_DICTIONARY_H_
#define GORDIAN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "table/column_chunk.h"
#include "table/value.h"

namespace gordian {

// Bidirectional mapping between Values and dense uint32 codes for one
// column. Codes are assigned in first-seen order; the code space of a
// column is [0, size()).
//
// Each Value is stored exactly once, in `values_`; the reverse direction is
// an open-addressed table of codes probed by Value::Hash() and resolved by
// comparing against `values_[code]`. This halves dictionary memory versus
// keeping a second Value copy inside a map key.
//
// The typed Encode overloads and EncodeBatch are the vectorized ingest
// path: they probe with the same per-type hashes Value::Hash() composes
// (Value::HashOf), so a value reaches the same slot — and therefore the
// same code — whether it arrives as a Value or as a raw int64/double/
// string_view. A Value is only constructed when the probe misses and the
// value is genuinely new.
class Dictionary {
 public:
  // Returns the code for `v`, inserting it if new.
  uint32_t Encode(const Value& v) {
    MaybeRehash();
    size_t i = Probe(v.Hash(), [&](const Value& u) { return u == v; });
    if (slots_[i] != kEmpty) return slots_[i];
    return Insert(i, Value(v));
  }

  uint32_t EncodeNull() {
    MaybeRehash();
    size_t i = Probe(Value::NullHash(),
                     [](const Value& u) { return u.is_null(); });
    if (slots_[i] != kEmpty) return slots_[i];
    return Insert(i, Value::Null());
  }

  uint32_t Encode(int64_t v) {
    MaybeRehash();
    size_t i = Probe(Value::HashOf(v), [&](const Value& u) {
      return u.type() == ValueType::kInt64 && u.int64() == v;
    });
    if (slots_[i] != kEmpty) return slots_[i];
    return Insert(i, Value(v));
  }

  uint32_t Encode(double v) {
    MaybeRehash();
    size_t i = Probe(Value::HashOf(v), [&](const Value& u) {
      return u.type() == ValueType::kDouble && u.dbl() == v;
    });
    if (slots_[i] != kEmpty) return slots_[i];
    return Insert(i, Value(v));
  }

  uint32_t Encode(std::string_view v) {
    MaybeRehash();
    size_t i = Probe(Value::HashOf(v), [&](const Value& u) {
      return u.type() == ValueType::kString && u.str() == v;
    });
    if (slots_[i] != kEmpty) return slots_[i];
    return Insert(i, Value(std::string(v)));
  }

  // Encodes every entry of `chunk` in order, appending one code per entry
  // to *codes. Equivalent to (and code-for-code identical with) calling the
  // row-at-a-time Encode on each materialized Value.
  void EncodeBatch(const ColumnChunk& chunk, std::vector<uint32_t>* codes) {
    const int64_t n = chunk.size();
    codes->reserve(codes->size() + static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      switch (chunk.type(i)) {
        case ValueType::kNull:
          codes->push_back(EncodeNull());
          break;
        case ValueType::kInt64:
          codes->push_back(Encode(chunk.int64_at(i)));
          break;
        case ValueType::kDouble:
          codes->push_back(Encode(chunk.double_at(i)));
          break;
        case ValueType::kString:
          codes->push_back(Encode(chunk.string_at(i)));
          break;
      }
    }
  }

  // Returns the code for `v`, or UINT32_MAX if absent.
  uint32_t Lookup(const Value& v) const {
    if (slots_.empty()) return UINT32_MAX;
    size_t i = Probe(v.Hash(), [&](const Value& u) { return u == v; });
    return slots_[i] == kEmpty ? UINT32_MAX : slots_[i];
  }

  const Value& Decode(uint32_t code) const { return values_[code]; }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  // Approximate heap footprint; used by memory accounting.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(values_.capacity() * sizeof(Value) +
                                slots_.capacity() * sizeof(uint32_t));
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  void MaybeRehash() {
    if (values_.size() + 1 > (slots_.size() * 7) / 10) Rehash();
  }

  uint32_t Insert(size_t slot, Value v) {
    uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(std::move(v));
    slots_[slot] = code;
    return code;
  }

  // Index of the slot whose stored value satisfies `eq`, or of the empty
  // slot where such a value would be inserted. Requires a non-empty,
  // never-full table.
  template <typename Eq>
  size_t Probe(uint64_t hash, const Eq& eq) const {
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots_[i] != kEmpty && !eq(values_[slots_[i]])) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash() {
    size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(cap, kEmpty);
    size_t mask = cap - 1;
    for (uint32_t code = 0; code < values_.size(); ++code) {
      size_t i = static_cast<size_t>(values_[code].Hash()) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = code;
    }
  }

  std::vector<Value> values_;
  // Power-of-two open-addressing table of codes; kEmpty marks a free slot.
  std::vector<uint32_t> slots_;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_DICTIONARY_H_
