#ifndef GORDIAN_TABLE_DICTIONARY_H_
#define GORDIAN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "table/value.h"

namespace gordian {

// Bidirectional mapping between Values and dense uint32 codes for one
// column. Codes are assigned in first-seen order; the code space of a
// column is [0, size()).
class Dictionary {
 public:
  // Returns the code for `v`, inserting it if new.
  uint32_t Encode(const Value& v) {
    auto it = to_code_.find(v);
    if (it != to_code_.end()) return it->second;
    uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(v);
    to_code_.emplace(values_.back(), code);
    return code;
  }

  // Returns the code for `v`, or UINT32_MAX if absent.
  uint32_t Lookup(const Value& v) const {
    auto it = to_code_.find(v);
    return it == to_code_.end() ? UINT32_MAX : it->second;
  }

  const Value& Decode(uint32_t code) const { return values_[code]; }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  // Approximate heap footprint; used by memory accounting.
  int64_t ApproxBytes() const {
    int64_t b = static_cast<int64_t>(values_.capacity() * sizeof(Value));
    b += static_cast<int64_t>(to_code_.size() *
                              (sizeof(Value) + sizeof(uint32_t) + 16));
    return b;
  }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash> to_code_;
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_DICTIONARY_H_
