#ifndef GORDIAN_TABLE_XML_LITE_H_
#define GORDIAN_TABLE_XML_LITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/records.h"
#include "table/table.h"

namespace gordian {

// Minimal XML reader for the paper's second entity-collection use case:
// "key leaf-node sets in a collection of XML documents with a common
// schema". The supported dialect is deliberately small but covers real
// export formats of that shape:
//
//   <collection>
//     <doc id="7">
//       <name>Ada</name>
//       <address><city>Zurich</city><zip>8001</zip></address>
//     </doc>
//     ...
//   </collection>
//
// Every child of the root element is one entity. Leaf text nodes become
// fields named by their slash-joined path ("address/city"); attributes
// become "@"-prefixed fields ("@id", "address/@kind"). Character entities
// &lt; &gt; &amp; &quot; &apos; are decoded. Comments (<!-- -->) and
// processing instructions/prolog (<? ?>) are skipped. Not supported (and
// rejected or ignored rather than misparsed): CDATA, DTDs, namespaces
// beyond treating ':' as a name character, and repeated fields within one
// entity (a genuine limitation: set-valued children have no tabular
// equivalent; the second occurrence is an error).
//
// Values are type-inferred like the CSV reader's fields (int64, double,
// else string); missing fields become NULL across the collection.

// Parses an XML document-collection string into flat records.
Status ParseXmlCollection(const std::string& xml, std::vector<Record>* out);

// Reads a file and assembles the table (ParseXmlCollection + FlattenRecords).
Status ReadXmlCollection(const std::string& path, Table* out);

}  // namespace gordian

#endif  // GORDIAN_TABLE_XML_LITE_H_
