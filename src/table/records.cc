#include "table/records.h"

#include <algorithm>
#include <map>
#include <set>

namespace gordian {

Status FlattenRecords(const std::vector<Record>& records, Table* out) {
  // Union of field paths, sorted for a deterministic column order.
  std::set<std::string> paths;
  for (const Record& rec : records) {
    std::set<std::string> in_record;
    for (const auto& [path, value] : rec) {
      if (!in_record.insert(path).second) {
        return Status::InvalidArgument("duplicate field '" + path +
                                       "' in record");
      }
      paths.insert(path);
    }
  }
  if (paths.empty()) {
    return Status::InvalidArgument("no fields in any record");
  }

  std::vector<std::string> names(paths.begin(), paths.end());
  std::map<std::string, int> position;
  for (size_t i = 0; i < names.size(); ++i) {
    position[names[i]] = static_cast<int>(i);
  }

  TableBuilder builder{Schema(names)};
  std::vector<Value> row(names.size());
  for (const Record& rec : records) {
    std::fill(row.begin(), row.end(), Value::Null());
    for (const auto& [path, value] : rec) row[position[path]] = value;
    builder.AddRow(row);
  }
  *out = builder.Build();
  return Status::OK();
}

}  // namespace gordian
