#ifndef GORDIAN_TABLE_CSV_H_
#define GORDIAN_TABLE_CSV_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/column_chunk.h"
#include "table/table.h"

namespace gordian {

class ThreadPool;

struct CsvOptions {
  char delimiter = ',';
  // When true the first record provides column names; otherwise columns are
  // named c0, c1, ...
  bool has_header = true;
  // When true, fields that parse as integers/doubles become typed values;
  // empty fields become NULL. When false every field is a string.
  bool infer_types = true;
  // When > 1, field inference and dictionary encoding run column-at-a-time
  // on a thread pool of this many workers. 0/1 = serial. The result is
  // identical either way (per-column work is independent).
  int encode_threads = 0;
};

// Streaming, quote-aware CSV scanner that emits RowBatches.
//
// Unlike line-oriented readers, the scanner carries RFC-4180 quote state
// across line and batch boundaries, so quoted fields containing embedded
// newlines parse correctly. Each batch is produced in two passes: the
// scanner splits records into per-column raw field spans over a shared
// character arena (each span NUL-terminated so numeric inference runs in
// place), then each column is type-inferred and appended to its
// ColumnChunk — independently per column, hence parallelizable.
class CsvBatchReader {
 public:
  // `in` must outlive the reader.
  CsvBatchReader(std::istream& in, const CsvOptions& options);

  // Consumes the header (or, without a header, stages the first record) to
  // establish the column count. Init returning OK with num_columns() == 0
  // means the input had no records at all.
  Status Init();

  int num_columns() const { return static_cast<int>(names_.size()); }
  const std::vector<std::string>& column_names() const { return names_; }

  // Scans up to RowBatch::kDefaultRows records into `batch` (reshaped to
  // num_columns()). batch.num_rows() == 0 signals end of input. With a
  // pool, per-column inference runs concurrently.
  Status NextBatch(RowBatch* batch, ThreadPool* pool = nullptr);

  // Total data records emitted so far (header excluded).
  int64_t rows_read() const { return rows_read_; }

 private:
  enum class Scan { kRecord, kEof };

  // Scans one non-blank record into rec_fields_ (spans over arena_).
  Status ScanRecord(Scan* result);
  void ParseColumnInto(int col, ColumnChunk* chunk) const;

  int NextChar() {
    if (pos_ < len_) return static_cast<unsigned char>(buf_[pos_++]);
    return Refill() ? static_cast<unsigned char>(buf_[pos_++]) : -1;
  }
  int PeekChar() {
    if (pos_ < len_) return static_cast<unsigned char>(buf_[pos_]);
    return Refill() ? static_cast<unsigned char>(buf_[pos_]) : -1;
  }
  bool Refill();

  std::istream& in_;
  CsvOptions options_;
  std::vector<std::string> names_;

  // Buffered input.
  std::vector<char> buf_;
  size_t pos_ = 0;
  size_t len_ = 0;

  int64_t line_ = 1;         // 1-based physical line being scanned
  int64_t record_line_ = 1;  // physical line the current record started on
  int64_t rows_read_ = 0;

  // Per-batch staging: field payload bytes (NUL-terminated) and, per
  // column, the (offset, length) spans of that column's fields.
  std::vector<char> arena_;
  std::vector<std::pair<uint64_t, uint32_t>> rec_fields_;
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> col_spans_;
  int64_t staged_rows_ = 0;  // rows already in staging (headerless first record)
};

// Reads a CSV file into a Table via CsvBatchReader + TableBuilder::AddBatch.
// Supports RFC-4180 quoting ("..." fields with "" escapes, embedded
// newlines). All records must have the same number of fields.
Status ReadCsv(const std::string& path, const CsvOptions& options, Table* out);

// Same, with a spill policy: encoded columns over the memory budget stream
// to GRDL files in spill.spill_dir as batches arrive, and the scanner's
// batch arena is released promptly after each encode, so peak ingest
// memory stays near budget + dictionaries + one batch. The resulting
// table's contents are identical to the unspilled overload's.
Status ReadCsv(const std::string& path, const CsvOptions& options,
               const SpillPolicy& spill, Table* out);

// Writes a table as CSV (header row + one record per entity), quoting fields
// that contain the delimiter, quotes, or newlines. NULLs are written as
// empty fields.
Status WriteCsv(const Table& table, const CsvOptions& options,
                const std::string& path);

// Parsing helpers exposed for reuse and tests.
// Splits one CSV record respecting RFC-4180 quoting (single-line form; the
// batch scanner generalizes this across lines).
Status SplitCsvRecord(const std::string& line, char delimiter,
                      std::vector<std::string>* fields);

// Converts one raw field to a Value (type inference as in CsvOptions).
Value ParseCsvField(const std::string& field, bool infer_types);

}  // namespace gordian

#endif  // GORDIAN_TABLE_CSV_H_
