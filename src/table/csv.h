#ifndef GORDIAN_TABLE_CSV_H_
#define GORDIAN_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace gordian {

struct CsvOptions {
  char delimiter = ',';
  // When true the first record provides column names; otherwise columns are
  // named c0, c1, ...
  bool has_header = true;
  // When true, fields that parse as integers/doubles become typed values;
  // empty fields become NULL. When false every field is a string.
  bool infer_types = true;
};

// Reads a CSV file into a Table. Supports RFC-4180 quoting ("..." fields
// with "" escapes). All records must have the same number of fields.
Status ReadCsv(const std::string& path, const CsvOptions& options, Table* out);

// Writes a table as CSV (header row + one record per entity), quoting fields
// that contain the delimiter, quotes, or newlines. NULLs are written as
// empty fields.
Status WriteCsv(const Table& table, const CsvOptions& options,
                const std::string& path);

// Parsing helpers exposed for reuse (streaming ingestion) and tests.
// Splits one CSV record respecting RFC-4180 quoting.
Status SplitCsvRecord(const std::string& line, char delimiter,
                      std::vector<std::string>* fields);

// Converts one raw field to a Value (type inference as in CsvOptions).
Value ParseCsvField(const std::string& field, bool infer_types);

}  // namespace gordian

#endif  // GORDIAN_TABLE_CSV_H_
