#ifndef GORDIAN_TABLE_VALUE_H_
#define GORDIAN_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/hashing.h"

namespace gordian {

enum class ValueType { kNull, kInt64, kDouble, kString };

// A single attribute value. The table layer dictionary-encodes values into
// dense uint32 codes, so Value only appears at the boundaries (loading,
// generation, printing); the algorithms operate on codes.
//
// NULL is modeled as a first-class value that compares equal to itself,
// i.e., two rows that are both NULL in a column "match" there. This is the
// conservative choice for key discovery: a column containing two NULLs can
// never be part of a key by itself.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }

  // Per-type hashes, exposed so typed encode paths (Dictionary::EncodeBatch)
  // can probe without materializing a Value. Hash() composes exactly these.
  static uint64_t NullHash() { return 0x6e61736eULL; }  // arbitrary NULL tag
  static uint64_t HashOf(int64_t i) {
    return Mix64(static_cast<uint64_t>(i));
  }
  static uint64_t HashOf(double d) {
    if (d == 0.0) d = 0.0;  // -0.0 == 0.0 must hash identically
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return Mix64(bits ^ 0xd0e1f2a3ULL);
  }
  static uint64_t HashOf(std::string_view s) { return HashBytes(s); }

  uint64_t Hash() const {
    switch (v_.index()) {
      case 0: return NullHash();
      case 1: return HashOf(std::get<int64_t>(v_));
      case 2: return HashOf(std::get<double>(v_));
      default: return HashOf(std::string_view(std::get<std::string>(v_)));
    }
  }

  std::string ToString() const {
    switch (v_.index()) {
      case 0: return "NULL";
      case 1: return std::to_string(std::get<int64_t>(v_));
      case 2: return std::to_string(std::get<double>(v_));
      default: return std::get<std::string>(v_);
    }
  }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace gordian

#endif  // GORDIAN_TABLE_VALUE_H_
