#ifndef GORDIAN_TABLE_COLUMN_CHUNK_H_
#define GORDIAN_TABLE_COLUMN_CHUNK_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "table/value.h"

namespace gordian {

// One column's slice of a row batch: a typed, append-only vector of values
// stored without per-value heap allocation. Ints and doubles live in a flat
// word array; string payloads are concatenated into a shared character
// arena (each terminated by a NUL so numeric parsers can run in place); a
// null bitmap marks NULL entries. This is the unit the vectorized ingest
// boundary moves — parsers and generators append into chunks, and
// Dictionary::EncodeBatch turns a whole chunk into codes in one pass.
//
// Append order is row order, so batch-encoding a chunk assigns dictionary
// codes in exactly the order row-at-a-time Encode calls would have.
class ColumnChunk {
 public:
  int64_t size() const { return static_cast<int64_t>(tags_.size()); }

  void Clear() {
    tags_.clear();
    words_.clear();
    null_bits_.clear();
    str_data_.clear();
  }

  // Returns the chunk's heap to the allocator (Clear only resets sizes).
  // Spilling ingest loops call this so a one-off string-heavy batch doesn't
  // pin its arena capacity for the rest of the file.
  void ShrinkToFit() {
    tags_.shrink_to_fit();
    words_.shrink_to_fit();
    null_bits_.shrink_to_fit();
    str_data_.shrink_to_fit();
  }

  void AppendNull() {
    PushTag(ValueType::kNull, /*null=*/true);
    words_.push_back(0);
  }

  void AppendInt64(int64_t v) {
    PushTag(ValueType::kInt64, /*null=*/false);
    words_.push_back(static_cast<uint64_t>(v));
  }

  void AppendDouble(double v) {
    PushTag(ValueType::kDouble, /*null=*/false);
    uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    words_.push_back(bits);
  }

  void AppendString(std::string_view s) {
    assert(str_data_.size() < (uint64_t{1} << 40) &&
           s.size() < (uint64_t{1} << 24));
    PushTag(ValueType::kString, /*null=*/false);
    words_.push_back((static_cast<uint64_t>(s.size()) << 40) |
                     static_cast<uint64_t>(str_data_.size()));
    str_data_.insert(str_data_.end(), s.begin(), s.end());
    str_data_.push_back('\0');  // in-place NUL sentinel for numeric parsing
  }

  // Boundary adapter for callers that still hold Values.
  void AppendValue(const Value& v);

  ValueType type(int64_t i) const {
    return static_cast<ValueType>(tags_[static_cast<size_t>(i)]);
  }
  bool is_null(int64_t i) const {
    return (null_bits_[static_cast<size_t>(i) >> 6] >>
            (static_cast<size_t>(i) & 63)) & 1;
  }
  int64_t int64_at(int64_t i) const {
    return static_cast<int64_t>(words_[static_cast<size_t>(i)]);
  }
  double double_at(int64_t i) const {
    double d;
    __builtin_memcpy(&d, &words_[static_cast<size_t>(i)], sizeof(d));
    return d;
  }
  std::string_view string_at(int64_t i) const {
    uint64_t w = words_[static_cast<size_t>(i)];
    return std::string_view(str_data_.data() + (w & ((uint64_t{1} << 40) - 1)),
                            w >> 40);
  }

  // Materializes entry `i` as a Value (boundary/compat path).
  Value ValueAt(int64_t i) const;

  int64_t ApproxBytes() const {
    return static_cast<int64_t>(tags_.capacity() +
                                words_.capacity() * sizeof(uint64_t) +
                                null_bits_.capacity() * sizeof(uint64_t) +
                                str_data_.capacity());
  }

  // Bytes of data actually held (sizes, not capacities); the per-chunk
  // ingest metric.
  int64_t ByteSize() const {
    return static_cast<int64_t>(tags_.size() +
                                words_.size() * sizeof(uint64_t) +
                                null_bits_.size() * sizeof(uint64_t) +
                                str_data_.size());
  }

 private:
  void PushTag(ValueType t, bool null) {
    size_t i = tags_.size();
    tags_.push_back(static_cast<uint8_t>(t));
    if ((i & 63) == 0) null_bits_.push_back(0);
    if (null) null_bits_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  std::vector<uint8_t> tags_;      // ValueType per entry
  std::vector<uint64_t> words_;    // int64/double bits; strings: len<<40|offset
  std::vector<uint64_t> null_bits_;  // 1 bit per entry
  std::vector<char> str_data_;     // NUL-terminated string payloads
};

// A fixed-capacity batch of rows in columnar form: one ColumnChunk per
// column. Producers (CSV scanner, generators, adapters) fill the chunks;
// consumers (TableBuilder::AddBatch, StreamingProfiler::AddBatch) drain
// them column-at-a-time.
class RowBatch {
 public:
  static constexpr int64_t kDefaultRows = 4096;

  RowBatch() = default;
  explicit RowBatch(int num_columns) { Reset(num_columns); }

  // Re-shapes the batch to `num_columns` empty chunks.
  void Reset(int num_columns) {
    columns_.resize(static_cast<size_t>(num_columns));
    Clear();
  }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  bool full() const { return num_rows() >= kDefaultRows; }

  ColumnChunk& column(int c) { return columns_[static_cast<size_t>(c)]; }
  const ColumnChunk& column(int c) const {
    return columns_[static_cast<size_t>(c)];
  }

  // Row-at-a-time adapter; `row` must have num_columns() values.
  void AppendRow(const std::vector<Value>& row);

  void Clear() {
    for (ColumnChunk& c : columns_) c.Clear();
  }

  void ShrinkToFit() {
    for (ColumnChunk& c : columns_) c.ShrinkToFit();
  }

  int64_t ApproxBytes() const {
    int64_t b = 0;
    for (const ColumnChunk& c : columns_) b += c.ApproxBytes();
    return b;
  }

  int64_t ByteSize() const {
    int64_t b = 0;
    for (const ColumnChunk& c : columns_) b += c.ByteSize();
    return b;
  }

 private:
  std::vector<ColumnChunk> columns_;
};

namespace internal {

inline void AppendToChunk(ColumnChunk* chunk, const Value& v) {
  chunk->AppendValue(v);
}
inline void AppendToChunk(ColumnChunk* chunk, double v) {
  chunk->AppendDouble(v);
}
inline void AppendToChunk(ColumnChunk* chunk, std::string_view v) {
  chunk->AppendString(v);
}
inline void AppendToChunk(ColumnChunk* chunk, const std::string& v) {
  chunk->AppendString(v);
}
inline void AppendToChunk(ColumnChunk* chunk, const char* v) {
  chunk->AppendString(v);
}
template <typename T,
          typename = std::enable_if_t<std::is_integral_v<std::decay_t<T>>>>
inline void AppendToChunk(ColumnChunk* chunk, T v) {
  chunk->AppendInt64(static_cast<int64_t>(v));
}

}  // namespace internal

}  // namespace gordian

#endif  // GORDIAN_TABLE_COLUMN_CHUNK_H_
