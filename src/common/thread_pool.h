#ifndef GORDIAN_COMMON_THREAD_POOL_H_
#define GORDIAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gordian {

// A fixed-size pool of worker threads draining a FIFO task queue. This is
// the execution substrate of both the profiling service and the core's
// parallel slice traversal; scheduling policy (priorities, cancellation,
// job bookkeeping) lives one layer up in JobScheduler, which feeds the pool
// exactly one closure per runnable job.
//
// Thread-safe: Submit may be called from any thread, including from inside
// a running task. The destructor finishes every task already submitted
// (running and queued) before joining the workers, so no submitted work is
// silently dropped and no threads leak.
class ThreadPool {
 public:
  // Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  // Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called after the destructor has begun.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Tasks submitted but not yet started (diagnostic; racy by nature).
  int64_t queued_tasks() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// The machine's hardware thread count, with a floor of 1 (the standard
// permits hardware_concurrency() == 0 when unknown).
int DefaultThreadCount();

}  // namespace gordian

#endif  // GORDIAN_COMMON_THREAD_POOL_H_
