#ifndef GORDIAN_COMMON_STATUS_H_
#define GORDIAN_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gordian {

// Minimal error-reporting type in the RocksDB/Arrow tradition: library code
// never throws; operations that can fail return a Status (or a value plus a
// Status through StatusOr-like out parameters).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kOutOfRange,
    kUnsupported,
    // A best-effort operation salvaged some of its work but not all of it —
    // e.g. catalog recovery loaded the surviving shards and quarantined a
    // corrupt one. Deliberately not ok(): callers that cannot tolerate
    // partial results reject it for free, while callers that can opt in via
    // IsPartial().
    kPartial,
    // The operation was refused or could not reach its target, but retrying
    // later may succeed: a load-shed reply from a full queue, a worker that
    // is down, an exhausted quota. The distributed front-end (src/net) maps
    // its backpressure and failover decisions onto this code; callers check
    // IsUnavailable() to decide whether a retry is worthwhile.
    kUnavailable,
    // The caller's deadline expired before the operation finished. Unlike
    // kUnavailable, retrying with the same deadline cannot help.
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Partial(std::string msg) {
    return Status(Code::kPartial, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsPartial() const { return code_ == Code::kPartial; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kOutOfRange: name = "OutOfRange"; break;
      case Code::kUnsupported: name = "Unsupported"; break;
      case Code::kPartial: name = "Partial"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
      case Code::kDeadlineExceeded: name = "DeadlineExceeded"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_STATUS_H_
