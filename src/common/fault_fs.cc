#include "common/fault_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gordian {

const char* FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kWriteFile: return "write";
    case FsOp::kSyncFile: return "sync";
    case FsOp::kRename: return "rename";
    case FsOp::kSyncDir: return "syncdir";
    case FsOp::kReadFile: return "read";
    case FsOp::kRemove: return "remove";
    case FsOp::kListDir: return "list";
    case FsOp::kLock: return "lock";
    case FsOp::kCreateDir: return "mkdir";
    case FsOp::kAppend: return "append";
    case FsOp::kMap: return "map";
  }
  return "unknown";
}

MappedRegion::~MappedRegion() {
  if (owned_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
}

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::IOError(std::string(what) + " " + path + ": " +
                         std::strerror(errno));
}

class PosixFileSystem : public FileSystem {
 public:
  Status WriteFile(const std::string& path, std::string_view data) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("cannot create", path);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("write failed on", path);
        ::close(fd);
        return s;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (::close(fd) != 0) return Errno("close failed on", path);
    return Status::OK();
  }

  Status AppendFile(const std::string& path, std::string_view data) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Errno("cannot open for append", path);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("append failed on", path);
        ::close(fd);
        return s;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (::close(fd) != 0) return Errno("close failed on", path);
    return Status::OK();
  }

  Status MapFile(const std::string& path,
                 std::shared_ptr<MappedRegion>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("cannot open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = Errno("cannot stat", path);
      ::close(fd);
      return s;
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      *out = std::make_shared<MappedRegion>(nullptr, 0, /*owned=*/false);
      return Status::OK();
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping stays valid after close
    if (addr == MAP_FAILED) return Errno("cannot mmap", path);
    *out = std::make_shared<MappedRegion>(addr, size, /*owned=*/true);
    return Status::OK();
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return Errno("cannot open for sync", path);
    if (::fsync(fd) != 0) {
      Status s = Errno("fsync failed on", path);
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("cannot rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("cannot open directory", dir);
    if (::fsync(fd) != 0) {
      Status s = Errno("fsync failed on directory", dir);
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("cannot open", path);
    out->clear();
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("read failed on", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("cannot remove", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("cannot open directory", dir);
    while (struct dirent* ent = ::readdir(d)) {
      std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(std::move(name));
    }
    ::closedir(d);
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("cannot create directory", path);
    }
    return Status::OK();
  }

  Status LockFile(const std::string& path, int* handle) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return Errno("cannot open lock file", path);
    // flock is per open-file-description: a second open() of the same path
    // conflicts even within one process, which is what makes the
    // two-stores-one-directory tests faithful to the two-process case.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      Status s = errno == EWOULDBLOCK
                     ? Status::IOError("lock " + path +
                                       " is held by another writer")
                     : Errno("cannot lock", path);
      ::close(fd);
      return s;
    }
    *handle = fd;
    return Status::OK();
  }

  void UnlockFile(int handle) override {
    if (handle >= 0) ::close(handle);  // close drops the flock
  }
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

void FaultInjectionFs::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  armed_ = true;
  fired_ = false;
  halted_ = false;
}

void FaultInjectionFs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  fired_ = false;
  halted_ = false;
}

bool FaultInjectionFs::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultInjectionFs::Check(FsOp op, const std::string& path,
                               int64_t* partial_bytes) {
  const bool mutates = op == FsOp::kWriteFile || op == FsOp::kSyncFile ||
                       op == FsOp::kRename || op == FsOp::kSyncDir ||
                       op == FsOp::kRemove || op == FsOp::kCreateDir ||
                       op == FsOp::kAppend;
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_ && mutates) {
    return Status::IOError("file system halted after injected fault");
  }
  if (!armed_ || fired_ || op != spec_.op ||
      path.find(spec_.path_substr) == std::string::npos) {
    return Status::OK();
  }
  if (spec_.countdown > 0) {
    --spec_.countdown;
    return Status::OK();
  }
  fired_ = true;
  halted_ = spec_.halt_after;
  if ((op == FsOp::kWriteFile || op == FsOp::kAppend) &&
      spec_.partial_bytes >= 0) {
    *partial_bytes = spec_.partial_bytes;
  }
  return Status::IOError(spec_.message + " (" + std::string(FsOpName(op)) +
                         " " + path + ")");
}

Status FaultInjectionFs::WriteFile(const std::string& path,
                                   std::string_view data) {
  int64_t partial = -1;
  Status fault = Check(FsOp::kWriteFile, path, &partial);
  if (fault.ok()) return base_->WriteFile(path, data);
  if (partial >= 0) {
    // A short write: the prefix reaches the disk, then the failure hits.
    size_t n = std::min(static_cast<size_t>(partial), data.size());
    (void)base_->WriteFile(path, data.substr(0, n));
  }
  return fault;
}

Status FaultInjectionFs::AppendFile(const std::string& path,
                                    std::string_view data) {
  int64_t partial = -1;
  Status fault = Check(FsOp::kAppend, path, &partial);
  if (fault.ok()) return base_->AppendFile(path, data);
  if (partial >= 0) {
    // A short append: the prefix reaches the disk, then the failure hits.
    size_t n = std::min(static_cast<size_t>(partial), data.size());
    (void)base_->AppendFile(path, data.substr(0, n));
  }
  return fault;
}

Status FaultInjectionFs::MapFile(const std::string& path,
                                 std::shared_ptr<MappedRegion>* out) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kMap, path, &unused);
  return fault.ok() ? base_->MapFile(path, out) : fault;
}

Status FaultInjectionFs::SyncFile(const std::string& path) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kSyncFile, path, &unused);
  return fault.ok() ? base_->SyncFile(path) : fault;
}

Status FaultInjectionFs::Rename(const std::string& from,
                                const std::string& to) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kRename, to, &unused);
  return fault.ok() ? base_->Rename(from, to) : fault;
}

Status FaultInjectionFs::SyncDir(const std::string& dir) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kSyncDir, dir, &unused);
  return fault.ok() ? base_->SyncDir(dir) : fault;
}

Status FaultInjectionFs::ReadFile(const std::string& path, std::string* out) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kReadFile, path, &unused);
  return fault.ok() ? base_->ReadFile(path, out) : fault;
}

Status FaultInjectionFs::Remove(const std::string& path) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kRemove, path, &unused);
  return fault.ok() ? base_->Remove(path) : fault;
}

bool FaultInjectionFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionFs::ListDir(const std::string& dir,
                                 std::vector<std::string>* names) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kListDir, dir, &unused);
  return fault.ok() ? base_->ListDir(dir, names) : fault;
}

Status FaultInjectionFs::CreateDir(const std::string& path) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kCreateDir, path, &unused);
  return fault.ok() ? base_->CreateDir(path) : fault;
}

Status FaultInjectionFs::LockFile(const std::string& path, int* handle) {
  int64_t unused = -1;
  Status fault = Check(FsOp::kLock, path, &unused);
  return fault.ok() ? base_->LockFile(path, handle) : fault;
}

void FaultInjectionFs::UnlockFile(int handle) { base_->UnlockFile(handle); }

}  // namespace gordian
