#ifndef GORDIAN_COMMON_MEMORY_TRACKER_H_
#define GORDIAN_COMMON_MEMORY_TRACKER_H_

#include <algorithm>
#include <cstdint>

namespace gordian {

// Explicit byte accounting for the data structures whose footprint the
// paper's Table 2 reports. Components register allocations/releases; the
// tracker keeps the current and peak totals. This is deliberate manual
// instrumentation (not a malloc hook) so each algorithm reports exactly the
// memory its own structures use.
class MemoryTracker {
 public:
  void Add(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }

  void Release(int64_t bytes) { current_ -= bytes; }

  int64_t current_bytes() const { return current_; }
  int64_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_MEMORY_TRACKER_H_
