#ifndef GORDIAN_COMMON_MEMORY_TRACKER_H_
#define GORDIAN_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace gordian {

// Explicit byte accounting for the data structures whose footprint the
// paper's Table 2 reports. Components register allocations/releases; the
// tracker keeps the current and peak totals. This is deliberate manual
// instrumentation (not a malloc hook) so each algorithm reports exactly the
// memory its own structures use.
//
// Thread-safe: concurrent profiling jobs may share one tracker. The peak is
// maintained with a CAS loop, so it never under-reports a high-water mark
// even when two threads allocate at once. Relaxed ordering suffices —
// counters are independent tallies, not synchronization points.
class MemoryTracker {
 public:
  void Add(int64_t bytes) {
    int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Release(int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  // Mmap-backed bytes are tallied separately from heap-resident bytes:
  // the OS pages mapped data in and out on demand, so they do not count
  // against a resident-memory budget, but Table-2-style reports still
  // want to see them.
  void AddMapped(int64_t bytes) {
    int64_t now =
        mapped_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_mapped_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_mapped_.compare_exchange_weak(peak, now,
                                               std::memory_order_relaxed)) {
    }
  }

  void ReleaseMapped(int64_t bytes) {
    mapped_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t current_mapped_bytes() const {
    return mapped_.load(std::memory_order_relaxed);
  }
  int64_t peak_mapped_bytes() const {
    return peak_mapped_.load(std::memory_order_relaxed);
  }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    mapped_.store(0, std::memory_order_relaxed);
    peak_mapped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> mapped_{0};
  std::atomic<int64_t> peak_mapped_{0};
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_MEMORY_TRACKER_H_
