#ifndef GORDIAN_COMMON_ATTRIBUTE_SET_H_
#define GORDIAN_COMMON_ATTRIBUTE_SET_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>

namespace gordian {

// A fixed-width bitmap over attribute (column) positions.
//
// GORDIAN represents non-keys and keys as sets of attributes; the paper
// (Section 3.6) stores them as bitmaps "both for compactness and for
// efficiency when performing the redundancy test". The widest table in the
// paper's evaluation has 66 attributes, so two 64-bit words are sufficient;
// kMaxAttributes bounds every schema this library accepts.
class AttributeSet {
 public:
  static constexpr int kMaxAttributes = 128;

  constexpr AttributeSet() : words_{0, 0} {}
  AttributeSet(std::initializer_list<int> attrs) : words_{0, 0} {
    for (int a : attrs) Set(a);
  }

  // The set {attr}.
  static AttributeSet Single(int attr) {
    AttributeSet s;
    s.Set(attr);
    return s;
  }

  // The set {0, 1, ..., n-1}.
  static AttributeSet FirstN(int n);

  // The set {lo, lo+1, ..., hi-1}.
  static AttributeSet Range(int lo, int hi);

  void Set(int attr) { words_[Word(attr)] |= Mask(attr); }
  void Reset(int attr) { words_[Word(attr)] &= ~Mask(attr); }
  bool Test(int attr) const { return (words_[Word(attr)] & Mask(attr)) != 0; }

  bool Empty() const { return (words_[0] | words_[1]) == 0; }
  int Count() const {
    return __builtin_popcountll(words_[0]) + __builtin_popcountll(words_[1]);
  }

  // True iff this set is a (non-strict) superset of `other`. In the paper's
  // terminology for non-keys, "this covers other" / "other is redundant to
  // this".
  bool Covers(const AttributeSet& other) const {
    return (other.words_[0] & ~words_[0]) == 0 &&
           (other.words_[1] & ~words_[1]) == 0;
  }

  bool Intersects(const AttributeSet& other) const {
    return (words_[0] & other.words_[0]) != 0 ||
           (words_[1] & other.words_[1]) != 0;
  }

  // Index of the lowest set bit, or -1 if empty.
  int First() const;

  // Index of the lowest set bit strictly greater than `attr`, or -1.
  int Next(int attr) const;

  friend AttributeSet operator|(AttributeSet a, const AttributeSet& b) {
    a.words_[0] |= b.words_[0];
    a.words_[1] |= b.words_[1];
    return a;
  }
  friend AttributeSet operator&(AttributeSet a, const AttributeSet& b) {
    a.words_[0] &= b.words_[0];
    a.words_[1] &= b.words_[1];
    return a;
  }
  // Set difference (a minus b).
  friend AttributeSet operator-(AttributeSet a, const AttributeSet& b) {
    a.words_[0] &= ~b.words_[0];
    a.words_[1] &= ~b.words_[1];
    return a;
  }
  AttributeSet& operator|=(const AttributeSet& b) {
    words_[0] |= b.words_[0];
    words_[1] |= b.words_[1];
    return *this;
  }
  AttributeSet& operator&=(const AttributeSet& b) {
    words_[0] &= b.words_[0];
    words_[1] &= b.words_[1];
    return *this;
  }

  friend bool operator==(const AttributeSet& a, const AttributeSet& b) {
    return a.words_[0] == b.words_[0] && a.words_[1] == b.words_[1];
  }
  friend bool operator!=(const AttributeSet& a, const AttributeSet& b) {
    return !(a == b);
  }
  // Arbitrary-but-total order so AttributeSets can live in sorted containers.
  friend bool operator<(const AttributeSet& a, const AttributeSet& b) {
    if (a.words_[1] != b.words_[1]) return a.words_[1] < b.words_[1];
    return a.words_[0] < b.words_[0];
  }

  // Calls fn(attr) for each member, in ascending order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (int w = 0; w < 2; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int bit = __builtin_ctzll(bits);
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  size_t Hash() const {
    // 64-bit mix of both words (splitmix-style finalizer).
    uint64_t h = words_[0] * 0x9e3779b97f4a7c15ULL ^ (words_[1] + 0x7f4a7c15ULL);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return static_cast<size_t>(h);
  }

  // "{0,3,7}"-style rendering using attribute positions.
  std::string ToString() const;

 private:
  static constexpr int Word(int attr) { return attr >> 6; }
  static constexpr uint64_t Mask(int attr) {
    return uint64_t{1} << (attr & 63);
  }

  uint64_t words_[2];
};

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.Hash(); }
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_ATTRIBUTE_SET_H_
