#ifndef GORDIAN_COMMON_HASHING_H_
#define GORDIAN_COMMON_HASHING_H_

#include <cstdint>
#include <string_view>

namespace gordian {

// splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

// FNV-1a over bytes; adequate for dictionary lookups of string values.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

// A 128-bit fingerprint used where hash collisions must be negligible
// (e.g., distinct-counting of projected rows in the brute-force baseline).
// The two halves use independent mixes of the same input stream.
struct Fingerprint128 {
  uint64_t lo = 0x243f6a8885a308d3ULL;
  uint64_t hi = 0x13198a2e03707344ULL;

  void Update(uint64_t v) {
    lo = HashCombine(lo, v);
    hi = HashCombine(hi, Mix64(v + 0xa4093822299f31d0ULL));
  }

  friend bool operator==(const Fingerprint128& a, const Fingerprint128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

struct Fingerprint128Hash {
  size_t operator()(const Fingerprint128& f) const {
    return static_cast<size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_HASHING_H_
