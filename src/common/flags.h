#ifndef GORDIAN_COMMON_FLAGS_H_
#define GORDIAN_COMMON_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace gordian {

// Minimal command-line parsing for the example binaries: "--name=value",
// "--name value", bare "--switch", and positional arguments, in any order.
// Unknown flags are collected rather than rejected so callers can report
// them with their own usage text.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      std::string name = arg.substr(2);
      std::string value = "true";
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        // "--name value" only when the flag is not a known boolean switch;
        // callers resolve ambiguity by using "=" for values. Here we take
        // the conservative route: consume the next token as a value only if
        // it does not look like a flag.
        value = argv[++i];
      }
      values_[name] = value;
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback = 0) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback = 0) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& name, bool fallback = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
  }

  // Worker-count convention shared by the concurrent binaries: absent or
  // "--threads=0" means one per hardware thread (never less than 1).
  int ThreadCount(const std::string& name = "threads") const {
    int64_t n = GetInt(name, 0);
    if (n > 0) return static_cast<int>(n);
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_FLAGS_H_
