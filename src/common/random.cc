#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"

namespace gordian {

namespace {
uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  // Seed the four state words via splitmix64, the initialization recommended
  // by the xoshiro authors. A zero state is impossible because Mix64 of
  // distinct inputs cannot all be zero.
  for (int i = 0; i < 4; ++i) {
    seed += 0x9e3779b97f4a7c15ULL;
    state_[i] = Mix64(seed);
  }
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  // theta == 0 is the uniform distribution; skip the O(n) CDF so huge
  // uniform domains (e.g., surrogate-key pools) cost nothing.
  if (theta_ == 0.0) return;
  cdf_.reserve(n_);
  double total = 0.0;
  for (uint64_t i = 0; i < n_; ++i) {
    total += std::pow(static_cast<double>(i + 1), -theta_);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfGenerator::Sample(Random& rng) const {
  if (theta_ == 0.0) return rng.Uniform(n_);
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace gordian
