#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gordian {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int64_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain before exiting so destruction never drops submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace gordian
