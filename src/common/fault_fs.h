#ifndef GORDIAN_COMMON_FAULT_FS_H_
#define GORDIAN_COMMON_FAULT_FS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gordian {

// The file-system operations the durable stores perform (catalog shards,
// spilled table columns), named so a fault can be aimed at exactly one step
// of a durable-save sequence (write/append temp file -> fsync it -> rename
// over the final name -> fsync the directory -> map it back).
enum class FsOp {
  kWriteFile,
  kSyncFile,
  kRename,
  kSyncDir,
  kReadFile,
  kRemove,
  kListDir,
  kLock,
  kCreateDir,
  kAppend,
  kMap,
};

const char* FsOpName(FsOp op);

// A read-only byte view of a whole file, held open for the lifetime of the
// object (mmap on the real file system; the mapping is released on
// destruction). Spilled table columns hand out pointers into a shared
// MappedRegion, so copies of a column cost nothing and the OS pages data
// in and out on demand.
class MappedRegion {
 public:
  // Takes ownership of an existing mapping (munmap'd on destruction) when
  // `owned`; otherwise wraps caller-owned bytes (tests, in-memory stubs).
  MappedRegion(const void* data, size_t size, bool owned)
      : data_(data), size_(size), owned_(owned) {}
  ~MappedRegion();

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

 private:
  const void* data_;
  size_t size_;
  bool owned_;
};

// Narrow file-system seam between the durable stores and the OS. Production
// code uses DefaultFileSystem(); tests substitute FaultInjectionFs to make
// crash points deterministic. Operations are path-based rather than
// handle-based on purpose: every call is independently interceptable, and
// the stores' access patterns (whole-file writes/reads of small shard
// files; append-only chunk streams for spilled columns) never need a seek.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Creates or truncates `path` with exactly `data`. No durability is
  // implied until SyncFile succeeds.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  // Appends `data` to `path`, creating the file if absent. The streaming
  // write primitive of the column spiller: chunks go out as they fill, so
  // an arbitrarily long column never needs its bytes assembled in memory.
  virtual Status AppendFile(const std::string& path,
                            std::string_view data) = 0;

  // Maps the whole of `path` read-only. The region stays valid for the
  // lifetime of the returned object, independent of this FileSystem.
  virtual Status MapFile(const std::string& path,
                         std::shared_ptr<MappedRegion>* out) = 0;

  // fsyncs `path`'s contents to stable storage.
  virtual Status SyncFile(const std::string& path) = 0;

  // Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // fsyncs the directory itself, making completed renames durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  // Replaces *out with the file's entire contents.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  virtual Status Remove(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  // Plain file and directory names in `dir`, unordered, without "."/"..".
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  // mkdir; succeeds if the directory already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  // Takes an advisory exclusive lock on `path` (creating it if absent),
  // failing fast — never blocking — when another holder exists. The lock
  // lives until UnlockFile and is process-crash-safe (the OS drops it).
  virtual Status LockFile(const std::string& path, int* handle) = 0;
  virtual void UnlockFile(int handle) = 0;
};

// The real POSIX file system; a process-lifetime singleton.
FileSystem* DefaultFileSystem();

// A one-shot fault armed on a FaultInjectionFs. The fault fires on the
// (countdown+1)-th call of `op` whose path contains `path_substr`.
struct FaultSpec {
  FsOp op = FsOp::kWriteFile;
  std::string path_substr;  // empty matches every path
  int countdown = 0;        // matching calls to let through first

  // kWriteFile/kAppend only: bytes that reach the disk before the failure
  // (-1 = none). Models a short write, a torn page, or ENOSPC mid-file.
  int64_t partial_bytes = -1;

  std::string message = "injected fault";

  // After the fault fires, every further mutating operation fails as well,
  // as if the process died at the fault point: nothing later in the save
  // sequence reaches the disk. Reads keep working so a test can inspect
  // the post-crash state without swapping file systems.
  bool halt_after = true;
};

// Wraps a base FileSystem and fails deterministically at an armed point.
// Thread-safe; used by the crash-recovery matrix in
// tests/catalog_store_test.cc.
class FaultInjectionFs : public FileSystem {
 public:
  explicit FaultInjectionFs(FileSystem* base) : base_(base) {}

  // Replaces any previously armed fault. Resets the fired/halted state.
  void Arm(FaultSpec spec);

  // Clears the armed fault and the halted state.
  void Reset();

  // True once the armed fault has triggered.
  bool fired() const;

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status MapFile(const std::string& path,
                 std::shared_ptr<MappedRegion>* out) override;
  Status SyncFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status Remove(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status CreateDir(const std::string& path) override;
  Status LockFile(const std::string& path, int* handle) override;
  void UnlockFile(int handle) override;

 private:
  // Decides, under the mutex, whether this call proceeds. Returns OK to
  // proceed; otherwise the Status the operation must return.
  // For kWriteFile faults with partial_bytes >= 0, *partial_bytes receives
  // the prefix length to let through before failing.
  Status Check(FsOp op, const std::string& path, int64_t* partial_bytes);

  FileSystem* base_;
  mutable std::mutex mu_;
  bool armed_ = false;
  bool fired_ = false;
  bool halted_ = false;
  FaultSpec spec_;
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_FAULT_FS_H_
