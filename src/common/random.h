#ifndef GORDIAN_COMMON_RANDOM_H_
#define GORDIAN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace gordian {

// xoshiro256** — a fast, high-quality, reproducible PRNG. All data
// generation in this library is seeded explicitly so every experiment is
// deterministic.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t Next();

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform integer in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_[4];
};

// Samples ranks from a generalized Zipfian distribution over {0, ..., n-1}:
// P(rank i) proportional to (i+1)^-theta. theta == 0 is uniform. This is the
// frequency model of the paper's Theorem 1 (Section 3.8, Assumption 1).
//
// Sampling uses a precomputed CDF and binary search: O(n) setup,
// O(log n) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Returns a rank in [0, n).
  uint64_t Sample(Random& rng) const;

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace gordian

#endif  // GORDIAN_COMMON_RANDOM_H_
