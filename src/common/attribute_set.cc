#include "common/attribute_set.h"

namespace gordian {

AttributeSet AttributeSet::FirstN(int n) { return Range(0, n); }

AttributeSet AttributeSet::Range(int lo, int hi) {
  AttributeSet s;
  for (int i = lo; i < hi; ++i) s.Set(i);
  return s;
}

int AttributeSet::First() const {
  if (words_[0] != 0) return __builtin_ctzll(words_[0]);
  if (words_[1] != 0) return 64 + __builtin_ctzll(words_[1]);
  return -1;
}

int AttributeSet::Next(int attr) const {
  for (int i = attr + 1; i < kMaxAttributes; ++i) {
    if (Test(i)) return i;
  }
  return -1;
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int a) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(a);
  });
  out += "}";
  return out;
}

}  // namespace gordian
