#ifndef GORDIAN_NET_WIRE_H_
#define GORDIAN_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/gordian.h"

namespace gordian {

// Payload codecs for the RPC methods of net/frame.h. All integers are
// little-endian fixed width and all strings are u32-length-prefixed,
// matching the repo's GRDT/GRDC conventions; decoding validates counts,
// ranges, and truncation and returns InvalidArgument instead of crashing on
// garbage (the framing fault tests feed these random bytes).

// --- kProfile request --------------------------------------------------
//
// The fingerprint and client id lead the record so the router can route and
// meter a request by decoding a small prefix, forwarding the payload
// verbatim without ever materializing the table.
struct ProfileRequest {
  uint64_t fingerprint = 0;   // TableFingerprint of table_bytes
  std::string client_id;      // quota bucket key; "" = anonymous
  std::string table_name;
  int32_t priority = 0;
  bool use_catalog = true;
  bool use_tree_cache = true;
  int64_t sample_rows = 0;    // GordianOptions subset that affects results
  uint64_t sample_seed = 42;
  std::string table_bytes;    // WriteTable serialization of the table
};

void EncodeProfileRequest(const ProfileRequest& req, std::string* out);
Status DecodeProfileRequest(const std::string& bytes, ProfileRequest* req);

// Decodes only the routing prefix (fingerprint + client id), leaving the
// table bytes untouched — the router's fast path.
Status DecodeProfileRequestPrefix(const std::string& bytes,
                                  uint64_t* fingerprint,
                                  std::string* client_id);

// --- kProfile response -------------------------------------------------
struct ProfileResponse {
  uint64_t fingerprint = 0;
  bool cache_hit = false;       // served from the owner's catalog
  bool follower_hit = false;    // served from a read-only follower catalog
  bool tree_cache_hit = false;  // discovery ran but reused a cached tree
  std::string served_by;        // worker identity, e.g. "owner-00-07"
  KeyDiscoveryResult result;
};

void EncodeProfileResponse(const ProfileResponse& resp, std::string* out);
Status DecodeProfileResponse(const std::string& bytes, ProfileResponse* resp);

// --- kHealth response --------------------------------------------------
//
// The request payload is empty; the response is a small load probe. The
// router aggregates its workers' probes into its own.
struct HealthInfo {
  enum class Role : uint8_t { kWorker = 1, kRouter = 2 };
  Role role = Role::kWorker;
  bool accepting = true;     // false once draining for shutdown
  int shard_first = 0;       // owned fingerprint-shard range, inclusive
  int shard_last = 0;
  int64_t queue_depth = 0;   // scheduler jobs waiting (worker)
  int64_t running_jobs = 0;
  int64_t active_rpcs = 0;   // profile RPCs currently held open
  int64_t catalog_entries = 0;
  int workers_up = 0;        // router only
  int workers_total = 0;     // router only
};

void EncodeHealthInfo(const HealthInfo& info, std::string* out);
Status DecodeHealthInfo(const std::string& bytes, HealthInfo* info);

// --- shared pieces -----------------------------------------------------

// KeyDiscoveryResult <-> bytes. Unlike the catalog's entry record
// (service/key_catalog.h), this codec carries incomplete results too — a
// remote job that tripped its budget must report that honestly rather than
// masquerade as "no keys".
void EncodeDiscoveryResult(const KeyDiscoveryResult& result, std::string* out);
Status DecodeDiscoveryResult(const std::string& bytes, size_t* pos,
                             KeyDiscoveryResult* result);

// Parses "a-b" (or a single "a") into an inclusive shard range within
// [0, KeyCatalog::kNumShards); used by --shards flags and worker specs.
Status ParseShardRange(const std::string& text, int* first, int* last);

}  // namespace gordian

#endif  // GORDIAN_NET_WIRE_H_
