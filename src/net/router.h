#ifndef GORDIAN_NET_ROUTER_H_
#define GORDIAN_NET_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "service/metrics.h"

namespace gordian {

// One shard-owner worker as the router sees it.
struct WorkerSpec {
  std::string host = "127.0.0.1";
  int port = 0;
  int shard_first = 0;  // inclusive owned range; must tile [0, 16) with the
  int shard_last = 0;   // other specs for every shard to have an owner
};

struct RouterOptions {
  int port = 0;  // 0 = ephemeral; read back via port()

  std::vector<WorkerSpec> workers;

  // Bound on requests queued for one worker (admitted but not yet sent).
  // Beyond it the router sheds with Unavailable + retry-after instead of
  // letting a slow worker absorb unbounded memory.
  int per_worker_queue = 32;

  // Dispatcher threads (each with its own RpcClient connection) per worker.
  int per_worker_connections = 4;

  // Forwarding attempts per request across transport failures. The first
  // retry goes back to the owner (it may have restarted); later ones fail
  // over to any healthy worker, which serves non-owned shards from its
  // follower catalogs or by uncached discovery.
  int max_attempts = 4;

  // Base for the jittered exponential backoff between attempts.
  int retry_base_millis = 20;

  // Retry-after hint carried by the router's own shed replies.
  int retry_after_millis = 100;

  // Health-probe period; 0 disables the heartbeat thread (worker liveness
  // is then learned only from forwarding failures).
  int heartbeat_period_millis = 250;

  // Per-client token-bucket quota: sustained requests/second and burst
  // capacity, keyed by the request's client id. 0 = no quotas.
  double quota_tokens_per_second = 0;
  double quota_burst = 0;

  // Deadline stamped on forwarded requests that arrived without one, so a
  // hung worker cannot pin a dispatcher forever. 0 = none.
  int default_deadline_millis = 30'000;
};

// The distributed front-end: accepts kProfile RPCs, routes each by its
// table-fingerprint shard to the owning worker, and forwards the payload
// verbatim (the table is never deserialized here — only the routing prefix
// is decoded). Admission control is layered: a per-client token bucket, a
// bounded per-worker queue, and the workers' own active-RPC caps; every
// refusal is an Unavailable reply carrying a retry-after hint rather than a
// silent stall. Transport failures are retried with jittered backoff, first
// against the (possibly restarted) owner and then against any live worker.
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Stop();

  int port() const { return server_ == nullptr ? 0 : server_->port(); }

  // Workers currently considered up (by heartbeat, or by last forward).
  int workers_up() const;

  ServiceMetrics::Snapshot Metrics() const { return metrics_.Read(); }

 private:
  // A forward waiting in a worker queue; the connection thread that
  // admitted it blocks on `cv` until a dispatcher publishes the outcome.
  struct PendingCall {
    const Frame* request = nullptr;
    Frame* response = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  struct WorkerState {
    WorkerSpec spec;
    std::atomic<bool> up{true};  // optimistic until proven otherwise
    std::mutex mu;               // guards queue
    std::condition_variable cv;
    std::deque<PendingCall*> queue;
    std::vector<std::unique_ptr<RpcClient>> clients;  // one per dispatcher
    std::unique_ptr<RpcClient> health_client;
  };

  struct TokenBucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last;
  };

  void HandleRpc(const Frame& request, Frame* response);
  void HandleProfile(const Frame& request, Frame* response);
  void HandleHealth(Frame* response);

  // True when the request is within quota (or quotas are off).
  bool AdmitClient(const std::string& client_id);

  int OwnerOf(uint64_t fingerprint) const;

  // Dispatcher loop: drains worker `w`'s queue through `client`.
  void DispatchLoop(WorkerState* w, RpcClient* client);

  // One request's full forwarding lifecycle: owner first, retries with
  // jittered backoff, failover to live peers. Fills `*response`.
  void Forward(WorkerState* owner, RpcClient* owner_client,
               const Frame& request, Frame* response);

  void HeartbeatLoop();

  RouterOptions options_;
  ServiceMetrics metrics_;
  std::unique_ptr<RpcServer> server_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  int shard_owner_[16] = {};  // shard index -> workers_ index

  std::atomic<bool> stopping_{false};
  std::vector<std::thread> dispatchers_;
  std::thread heartbeat_thread_;
  std::mutex heartbeat_mu_;  // pairs with heartbeat_cv_ for prompt shutdown
  std::condition_variable heartbeat_cv_;

  std::mutex quota_mu_;
  std::unordered_map<std::string, TokenBucket> quotas_;

  std::atomic<uint64_t> jitter_state_{0x9e3779b97f4a7c15ull};
};

}  // namespace gordian

#endif  // GORDIAN_NET_ROUTER_H_
