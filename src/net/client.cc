#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "table/fingerprint.h"
#include "table/serialize.h"

namespace gordian {

ProfileClient::ProfileClient(std::string host, int port,
                             ServiceMetrics* metrics)
    : rpc_(std::move(host), port, metrics),
      jitter_state_(0xc3a5c85c97cb3127ull ^
                    (static_cast<uint64_t>(port) << 32)) {}

Status ProfileClient::Profile(const std::string& table_name,
                              const Table& table,
                              const RemoteProfileOptions& options,
                              RemoteOutcome* outcome) {
  ProfileRequest req;
  req.client_id = options.client_id;
  req.table_name = table_name;
  req.priority = options.priority;
  req.use_catalog = options.use_catalog;
  req.use_tree_cache = options.use_tree_cache;
  req.sample_rows = options.sample_rows;
  req.sample_seed = options.sample_seed;
  {
    std::ostringstream os;
    Status s = WriteTable(table, os);
    if (!s.ok()) return s;
    req.table_bytes = os.str();
  }
  req.fingerprint = TableFingerprint(table);

  std::string payload;
  EncodeProfileRequest(req, &payload);

  *outcome = RemoteOutcome();
  outcome->fingerprint = req.fingerprint;

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < std::max(1, options.max_attempts);
       ++attempt) {
    RpcReply reply;
    Status s = rpc_.Call(RpcMethod::kProfile, payload,
                         options.deadline_millis, &reply);
    if (!s.ok()) {
      // Transport failure: the peer may be restarting. Back off with
      // jitter and reconnect (Call reconnects internally).
      last = s;
      ++outcome->transport_retries;
      uint64_t x = (jitter_state_ += 0x9e3779b97f4a7c15ull);
      x ^= x >> 31;
      const int base =
          std::max(1, options.retry_base_millis) << std::min(attempt, 6);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(base / 2 + static_cast<int>(x % base)));
      continue;
    }
    if (reply.remote.IsUnavailable()) {
      // Load shed: honor the server's retry-after hint.
      last = reply.remote;
      ++outcome->sheds;
      if (attempt + 1 < std::max(1, options.max_attempts)) {
        ++outcome->shed_retries;
      }
      const uint32_t wait = reply.retry_after_millis > 0
                                ? reply.retry_after_millis
                                : static_cast<uint32_t>(
                                      std::max(1, options.retry_base_millis));
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    if (!reply.remote.ok()) return reply.remote;  // not retryable

    ProfileResponse resp;
    Status decode = DecodeProfileResponse(reply.payload, &resp);
    if (!decode.ok()) return decode;
    outcome->result = std::move(resp.result);
    outcome->fingerprint = resp.fingerprint;
    outcome->cache_hit = resp.cache_hit;
    outcome->follower_hit = resp.follower_hit;
    outcome->tree_cache_hit = resp.tree_cache_hit;
    outcome->served_by = std::move(resp.served_by);
    return Status::OK();
  }
  return last;
}

Status ProfileClient::Health(HealthInfo* info, uint32_t deadline_millis) {
  RpcReply reply;
  Status s = rpc_.Call(RpcMethod::kHealth, "", deadline_millis, &reply);
  if (!s.ok()) return s;
  if (!reply.remote.ok()) return reply.remote;
  return DecodeHealthInfo(reply.payload, info);
}

}  // namespace gordian
