#include "net/frame.h"

#include <cstring>

namespace gordian {

namespace {

constexpr char kMagic[4] = {'G', 'R', 'D', 'N'};

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

uint8_t StatusCodeToWire(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return 0;
    case Status::Code::kInvalidArgument: return 1;
    case Status::Code::kNotFound: return 2;
    case Status::Code::kIOError: return 3;
    case Status::Code::kOutOfRange: return 4;
    case Status::Code::kUnsupported: return 5;
    case Status::Code::kPartial: return 6;
    case Status::Code::kUnavailable: return 7;
    case Status::Code::kDeadlineExceeded: return 8;
  }
  return 3;  // unreachable; map to kIOError
}

Status::Code StatusCodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0: return Status::Code::kOk;
    case 1: return Status::Code::kInvalidArgument;
    case 2: return Status::Code::kNotFound;
    case 3: return Status::Code::kIOError;
    case 4: return Status::Code::kOutOfRange;
    case 5: return Status::Code::kUnsupported;
    case 6: return Status::Code::kPartial;
    case 7: return Status::Code::kUnavailable;
    case 8: return Status::Code::kDeadlineExceeded;
    default: return Status::Code::kIOError;
  }
}

Status WriteFrame(ByteStream& stream, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte limit");
  }
  std::string wire;
  wire.reserve(kFrameHeaderBytes + frame.payload.size());
  wire.append(kMagic, 4);
  PutU32(&wire, static_cast<uint32_t>(frame.payload.size()));
  PutU64(&wire, frame.request_id);
  wire.push_back(static_cast<char>(frame.type));
  wire.push_back(static_cast<char>(frame.method));
  wire.push_back(static_cast<char>(StatusCodeToWire(frame.status_code)));
  wire.push_back(0);  // reserved
  PutU32(&wire, frame.deadline_millis);
  wire.append(frame.payload);
  return stream.Write(wire.data(), wire.size());
}

Status ReadFrame(ByteStream& stream, Frame* frame) {
  char header[kFrameHeaderBytes];
  Status s = ReadExact(stream, header, sizeof(header));
  if (!s.ok()) return s;  // NotFound between frames, IOError mid-header
  if (std::memcmp(header, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint32_t payload_len = GetU32(header + 4);
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(payload_len) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte limit");
  }
  frame->request_id = GetU64(header + 8);
  const uint8_t type = static_cast<uint8_t>(header[16]);
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  frame->type = static_cast<FrameType>(type);
  const uint8_t method = static_cast<uint8_t>(header[17]);
  if (method != static_cast<uint8_t>(RpcMethod::kProfile) &&
      method != static_cast<uint8_t>(RpcMethod::kHealth)) {
    return Status::InvalidArgument("unknown rpc method " +
                                   std::to_string(method));
  }
  frame->method = static_cast<RpcMethod>(method);
  frame->status_code = StatusCodeFromWire(static_cast<uint8_t>(header[18]));
  if (header[19] != 0) {
    return Status::InvalidArgument("nonzero reserved frame byte");
  }
  frame->deadline_millis = GetU32(header + 20);
  frame->payload.resize(payload_len);
  if (payload_len > 0) {
    s = ReadExact(stream, frame->payload.data(), payload_len);
    if (!s.ok()) {
      // A clean hang-up mid-payload is still a torn frame, not an
      // end-of-stream the caller should tolerate.
      if (s.code() == Status::Code::kNotFound) {
        return Status::IOError("stream ended mid-frame");
      }
      return s;
    }
  }
  return Status::OK();
}

}  // namespace gordian
