#ifndef GORDIAN_NET_SOCKET_H_
#define GORDIAN_NET_SOCKET_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/byte_stream.h"

namespace gordian {

// A connected TCP socket behind the ByteStream seam. Reads and writes honor
// the deadline set through SetDeadline (poll() under the hood); Close is
// safe from another thread and aborts blocked operations via shutdown().
class TcpStream : public ByteStream {
 public:
  // Takes ownership of a connected socket descriptor.
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override { Close(); }

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  Status ReadSome(char* buf, size_t len, size_t* n) override;
  Status Write(const char* buf, size_t len) override;
  void Close() override;
  void SetDeadline(std::chrono::steady_clock::time_point deadline) override {
    deadline_ = deadline;
  }

 private:
  // Waits until the socket is ready for `events` or the deadline passes.
  Status WaitReady(short events);

  std::atomic<int> fd_;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
};

// A listening TCP socket on 127.0.0.1. The distributed front-end is a
// loopback/LAN substrate, not an internet-facing server, so the listener
// binds the loopback interface only.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens on `port`; 0 picks an ephemeral port (see port()).
  // SO_REUSEADDR is set so a restarted worker can re-bind its old port
  // immediately.
  Status Listen(int port);

  // Blocks until a connection arrives or Close() is called from another
  // thread (then Unavailable is returned and the loop should exit).
  Status Accept(std::unique_ptr<ByteStream>* stream);

  // The bound port; 0 before Listen succeeds.
  int port() const { return port_; }

  void Close();

 private:
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

// Connects to host:port, failing with DeadlineExceeded if the handshake
// does not complete within `timeout`. `host` is a dotted quad or name
// resolvable by getaddrinfo.
Status TcpConnect(const std::string& host, int port,
                  std::chrono::milliseconds timeout,
                  std::unique_ptr<ByteStream>* stream);

}  // namespace gordian

#endif  // GORDIAN_NET_SOCKET_H_
