#include "net/router.h"

#include <algorithm>
#include <utility>

#include "service/key_catalog.h"

namespace gordian {

namespace {

void FailResponse(Frame* response, const Status& status,
                  uint32_t retry_after_millis = 0) {
  response->status_code = status.code();
  response->payload = status.message();
  response->deadline_millis = retry_after_millis;
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (options_.workers.empty()) {
    return Status::InvalidArgument("router needs at least one worker");
  }
  // Build the shard -> owner map and verify every shard has exactly one.
  int owner_count[KeyCatalog::kNumShards] = {};
  for (size_t i = 0; i < options_.workers.size(); ++i) {
    const WorkerSpec& spec = options_.workers[i];
    if (spec.shard_first < 0 || spec.shard_last < spec.shard_first ||
        spec.shard_last >= KeyCatalog::kNumShards) {
      return Status::InvalidArgument("bad shard range in worker spec");
    }
    for (int shard = spec.shard_first; shard <= spec.shard_last; ++shard) {
      shard_owner_[shard] = static_cast<int>(i);
      ++owner_count[shard];
    }
  }
  for (int shard = 0; shard < KeyCatalog::kNumShards; ++shard) {
    if (owner_count[shard] != 1) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) + " has " +
          std::to_string(owner_count[shard]) +
          " owners; worker shard ranges must tile 0-15 exactly");
    }
  }

  const int conns = std::max(1, options_.per_worker_connections);
  for (const WorkerSpec& spec : options_.workers) {
    auto w = std::make_unique<WorkerState>();
    w->spec = spec;
    for (int c = 0; c < conns; ++c) {
      w->clients.push_back(
          std::make_unique<RpcClient>(spec.host, spec.port, &metrics_));
    }
    w->health_client = std::make_unique<RpcClient>(spec.host, spec.port);
    workers_.push_back(std::move(w));
  }

  stopping_.store(false);
  for (auto& w : workers_) {
    for (auto& client : w->clients) {
      dispatchers_.emplace_back(
          [this, worker = w.get(), c = client.get()] {
            DispatchLoop(worker, c);
          });
    }
  }
  if (options_.heartbeat_period_millis > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }

  RpcServer::Options rpc_options;
  rpc_options.port = options_.port;
  rpc_options.metrics = &metrics_;
  server_ = std::make_unique<RpcServer>(rpc_options);
  Status s = server_->Start(
      [this](const Frame& request, Frame* response) {
        HandleRpc(request, response);
      });
  if (!s.ok()) {
    Stop();
    return s;
  }
  return Status::OK();
}

void Router::Stop() {
  if (stopping_.exchange(true)) {
    if (server_ != nullptr) {
      server_->Stop();
      server_.reset();
    }
    return;
  }
  // Wake the dispatchers first: they keep running until their queues are
  // empty, fast-failing each remaining call, so the connection threads the
  // server join waits on are guaranteed to be released.
  for (auto& w : workers_) w->cv.notify_all();
  heartbeat_cv_.notify_all();
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
  for (auto& w : workers_) {
    for (auto& client : w->clients) client->Close();
    if (w->health_client != nullptr) w->health_client->Close();
  }
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  workers_.clear();
}

int Router::workers_up() const {
  int up = 0;
  for (const auto& w : workers_) {
    if (w->up.load()) ++up;
  }
  return up;
}

void Router::HandleRpc(const Frame& request, Frame* response) {
  switch (request.method) {
    case RpcMethod::kProfile:
      HandleProfile(request, response);
      return;
    case RpcMethod::kHealth:
      HandleHealth(response);
      return;
  }
  FailResponse(response, Status::Unsupported("unknown method"));
}

void Router::HandleProfile(const Frame& request, Frame* response) {
  uint64_t fingerprint = 0;
  std::string client_id;
  Status s = DecodeProfileRequestPrefix(request.payload, &fingerprint,
                                        &client_id);
  if (!s.ok()) {
    FailResponse(response, s);
    return;
  }
  if (!AdmitClient(client_id)) {
    metrics_.OnRpcShed();
    FailResponse(response,
                 Status::Unavailable("client quota exhausted: " + client_id),
                 options_.retry_after_millis);
    return;
  }

  WorkerState* owner = workers_[OwnerOf(fingerprint)].get();
  PendingCall call;
  call.request = &request;
  call.response = response;
  {
    std::lock_guard<std::mutex> lock(owner->mu);
    // Checked under the queue lock: the dispatchers' exit check holds the
    // same lock, so a call can never be enqueued after the last dispatcher
    // for this worker has drained and left.
    if (stopping_.load()) {
      FailResponse(response, Status::Unavailable("router shutting down"));
      return;
    }
    if (static_cast<int>(owner->queue.size()) >= options_.per_worker_queue) {
      metrics_.OnRpcShed();
      FailResponse(response,
                   Status::Unavailable("worker queue full for shards " +
                                       std::to_string(owner->spec.shard_first) +
                                       "-" +
                                       std::to_string(owner->spec.shard_last)),
                   options_.retry_after_millis);
      return;
    }
    owner->queue.push_back(&call);
  }
  owner->cv.notify_one();

  std::unique_lock<std::mutex> lock(call.mu);
  call.cv.wait(lock, [&call] { return call.done; });
}

void Router::HandleHealth(Frame* response) {
  HealthInfo info;
  info.role = HealthInfo::Role::kRouter;
  info.accepting = !stopping_.load();
  info.workers_total = static_cast<int>(workers_.size());
  info.workers_up = workers_up();
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    info.queue_depth += static_cast<int64_t>(w->queue.size());
  }
  EncodeHealthInfo(info, &response->payload);
}

bool Router::AdmitClient(const std::string& client_id) {
  if (options_.quota_tokens_per_second <= 0) return true;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(quota_mu_);
  TokenBucket& bucket = quotas_[client_id];
  if (bucket.last.time_since_epoch().count() == 0) {
    // New bucket starts full.
    bucket.tokens = options_.quota_burst;
    bucket.last = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - bucket.last).count();
  bucket.last = now;
  bucket.tokens = std::min(options_.quota_burst,
                           bucket.tokens +
                               elapsed * options_.quota_tokens_per_second);
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

int Router::OwnerOf(uint64_t fingerprint) const {
  return shard_owner_[KeyCatalog::ShardIndexOf(fingerprint)];
}

void Router::DispatchLoop(WorkerState* w, RpcClient* client) {
  for (;;) {
    PendingCall* call = nullptr;
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait_for(lock, std::chrono::milliseconds(50), [this, w] {
        return stopping_.load() || !w->queue.empty();
      });
      if (!w->queue.empty()) {
        call = w->queue.front();
        w->queue.pop_front();
      } else if (stopping_.load()) {
        return;
      } else {
        continue;
      }
    }
    Forward(w, client, *call->request, call->response);
    {
      // Notify while still holding the lock: the waiting connection
      // thread owns the PendingCall on its stack and destroys it the
      // moment it observes `done`, so signalling after unlocking would
      // touch a freed condition variable.
      std::lock_guard<std::mutex> lock(call->mu);
      call->done = true;
      call->cv.notify_one();
    }
  }
}

void Router::Forward(WorkerState* owner, RpcClient* owner_client,
                     const Frame& request, Frame* response) {
  const uint32_t deadline =
      request.deadline_millis > 0
          ? request.deadline_millis
          : static_cast<uint32_t>(
                std::max(0, options_.default_deadline_millis));
  Status last = Status::OK();
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (stopping_.load()) break;
    // Attempt 0 and 1 target the owner (a restarted worker answers on the
    // same port); later attempts fail over round-robin across live peers.
    WorkerState* target = owner;
    RpcClient* client = owner_client;
    std::unique_ptr<RpcClient> failover_client;
    if (attempt >= 2 && workers_.size() > 1) {
      WorkerState* live = nullptr;
      for (size_t i = 0; i < workers_.size(); ++i) {
        WorkerState* candidate =
            workers_[(static_cast<size_t>(attempt) + i) % workers_.size()]
                .get();
        if (candidate != owner && candidate->up.load()) {
          live = candidate;
          break;
        }
      }
      if (live != nullptr) {
        target = live;
        // A fresh connection, not a dispatcher's: those belong to the
        // peer's own queue and may be mid-call.
        failover_client = std::make_unique<RpcClient>(
            live->spec.host, live->spec.port, &metrics_);
        client = failover_client.get();
      }
    }

    if (attempt > 0) {
      metrics_.OnRpcRetry();
      // Jittered exponential backoff; xorshift keeps it cheap and seedless.
      uint64_t x = jitter_state_.fetch_add(0x9e3779b97f4a7c15ull);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 29;
      const int base = std::max(1, options_.retry_base_millis) << (attempt - 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(base / 2 + static_cast<int>(x % base)));
      if (stopping_.load()) break;
    }

    RpcReply reply;
    Status s = client->Call(RpcMethod::kProfile, request.payload, deadline,
                            &reply);
    if (s.ok()) {
      const bool was_down = !target->up.exchange(true);
      if (was_down) metrics_.OnWorkerRestart();
      // Remote outcomes — including sheds and remote errors — pass through
      // to the client verbatim; only transport failures are retried here.
      response->status_code = reply.remote.code();
      response->deadline_millis = reply.retry_after_millis;
      response->payload = reply.remote.ok() ? std::move(reply.payload)
                                            : reply.remote.message();
      return;
    }
    target->up.store(false);
    last = s;
  }
  metrics_.OnRpcShed();
  FailResponse(response,
               Status::Unavailable("no worker reachable for request: " +
                                   last.ToString()),
               options_.retry_after_millis);
}

void Router::HeartbeatLoop() {
  while (!stopping_.load()) {
    for (auto& w : workers_) {
      if (stopping_.load()) return;
      RpcReply reply;
      Status s = w->health_client->Call(
          RpcMethod::kHealth, "",
          static_cast<uint32_t>(
              std::max(50, options_.heartbeat_period_millis)),
          &reply);
      const bool healthy = s.ok() && reply.remote.ok();
      const bool was_up = w->up.exchange(healthy);
      if (healthy && !was_up) metrics_.OnWorkerRestart();
    }
    std::unique_lock<std::mutex> lock(heartbeat_mu_);
    heartbeat_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.heartbeat_period_millis),
        [this] { return stopping_.load(); });
  }
}

}  // namespace gordian
