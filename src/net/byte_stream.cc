#include "net/byte_stream.h"

#include <algorithm>
#include <cstring>

namespace gordian {

const char* NetOpName(NetOp op) {
  switch (op) {
    case NetOp::kRead: return "read";
    case NetOp::kWrite: return "write";
  }
  return "?";
}

Status ReadExact(ByteStream& stream, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    size_t n = 0;
    Status s = stream.ReadSome(buf + got, len - got, &n);
    if (!s.ok()) return s;
    if (n == 0) {
      if (got == 0) return Status::NotFound("end of stream");
      return Status::IOError("short read: stream ended " +
                             std::to_string(len - got) + " byte(s) early");
    }
    got += n;
  }
  return Status::OK();
}

Status MemoryStream::ReadSome(char* buf, size_t len, size_t* n) {
  *n = 0;
  if (closed_) return Status::IOError("stream closed");
  size_t avail = input_.size() - pos_;
  size_t take = std::min({len, avail, max_chunk_});
  std::memcpy(buf, input_.data() + pos_, take);
  pos_ += take;
  *n = take;
  return Status::OK();
}

Status MemoryStream::Write(const char* buf, size_t len) {
  if (closed_) return Status::IOError("stream closed");
  output_.append(buf, len);
  return Status::OK();
}

void FaultInjectionStream::Arm(NetFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  armed_ = true;
  fired_ = false;
}

void FaultInjectionStream::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  fired_ = false;
}

bool FaultInjectionStream::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultInjectionStream::Admit(NetOp op, size_t len, size_t* allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  *allowed = len;
  if (fired_ && spec_.kind == NetFaultSpec::Kind::kDisconnect) {
    // A vanished peer stays vanished: reads keep reporting end-of-stream
    // (signalled by *allowed = 0), writes keep failing.
    if (op == NetOp::kRead) {
      *allowed = 0;
      return Status::OK();
    }
    return Status::IOError(spec_.message);
  }
  if (!armed_ || fired_ || spec_.op != op) return Status::OK();
  if (static_cast<int64_t>(len) <= spec_.countdown_bytes) {
    spec_.countdown_bytes -= static_cast<int64_t>(len);
    return Status::OK();
  }
  // This call exhausts the budget: it is the one that fails.
  fired_ = true;
  if (spec_.kind == NetFaultSpec::Kind::kDisconnect) {
    if (op == NetOp::kRead) {
      // Let the residual bytes through; the *next* read sees end-of-stream.
      // A zero residual makes this read the clean EOF itself.
      *allowed = static_cast<size_t>(spec_.countdown_bytes);
      return Status::OK();
    }
    return Status::IOError(spec_.message);
  }
  if (op == NetOp::kWrite && spec_.countdown_bytes > 0) {
    // Torn write: a prefix reaches the peer, then the connection dies.
    size_t prefix = static_cast<size_t>(spec_.countdown_bytes);
    spec_.countdown_bytes = 0;
    *allowed = prefix;
    return Status::IOError(spec_.message);  // caller writes prefix, then fails
  }
  return Status::IOError(spec_.message);
}

Status FaultInjectionStream::ReadSome(char* buf, size_t len, size_t* n) {
  size_t allowed = 0;
  Status s = Admit(NetOp::kRead, len, &allowed);
  if (!s.ok()) {
    *n = 0;
    return s;
  }
  if (allowed == 0) {
    *n = 0;
    return Status::OK();  // injected end-of-stream
  }
  return base_->ReadSome(buf, allowed, n);
}

Status FaultInjectionStream::Write(const char* buf, size_t len) {
  size_t allowed = 0;
  Status s = Admit(NetOp::kWrite, len, &allowed);
  if (s.ok()) return base_->Write(buf, len);
  if (allowed > 0) (void)base_->Write(buf, allowed);  // the torn prefix
  return s;
}

}  // namespace gordian
