#ifndef GORDIAN_NET_CLIENT_H_
#define GORDIAN_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "table/table.h"

namespace gordian {

// Per-request knobs for a remote profile call.
struct RemoteProfileOptions {
  std::string client_id;     // quota bucket at the router; "" = anonymous
  int32_t priority = 0;
  bool use_catalog = true;
  bool use_tree_cache = true;
  int64_t sample_rows = 0;
  uint64_t sample_seed = 42;

  // End-to-end deadline per attempt, propagated in the frame header.
  uint32_t deadline_millis = 30'000;

  // Attempts across load-sheds and transport failures. Sheds are waited
  // out using the server's retry-after hint; transport failures back off
  // with jitter (the peer may be restarting).
  int max_attempts = 8;
  int retry_base_millis = 25;
};

// What a remote profile produced, beyond the discovery report itself.
struct RemoteOutcome {
  KeyDiscoveryResult result;
  uint64_t fingerprint = 0;
  bool cache_hit = false;
  bool follower_hit = false;
  bool tree_cache_hit = false;
  std::string served_by;     // worker identity that answered
  int sheds = 0;             // backpressure replies absorbed by retrying
  int shed_retries = 0;      // retries actually driven by those sheds (a
                             // terminal shed that exhausts attempts is
                             // counted in sheds but retried by nobody)
  int transport_retries = 0; // reconnects after connection failures
};

// Client-side entry point to the distributed front-end: serializes a table,
// stamps its fingerprint, and drives the retry loop against a router (or a
// single worker — the protocol is identical). Honest about backpressure:
// a shed reply is slept out per its retry-after hint and retried, and the
// counts of sheds/retries absorbed surface in the outcome.
class ProfileClient {
 public:
  ProfileClient(std::string host, int port,
                ServiceMetrics* metrics = nullptr);

  // Blocks through retries until a profile reply, a non-retryable remote
  // error, or attempt exhaustion (then the last Unavailable/transport
  // error).
  Status Profile(const std::string& table_name, const Table& table,
                 const RemoteProfileOptions& options, RemoteOutcome* outcome);

  // One health probe (no retries).
  Status Health(HealthInfo* info, uint32_t deadline_millis = 2000);

  void Close() { rpc_.Close(); }

 private:
  RpcClient rpc_;
  uint64_t jitter_state_;
};

}  // namespace gordian

#endif  // GORDIAN_NET_CLIENT_H_
