#include "net/worker.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "net/frame.h"
#include "common/fault_fs.h"
#include "table/fingerprint.h"
#include "table/serialize.h"

namespace gordian {

namespace {

std::string OwnerDirName(int first, int last) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "owner-%02d-%02d", first, last);
  return buf;
}

void FailResponse(Frame* response, const Status& status,
                  uint32_t retry_after_millis = 0) {
  response->status_code = status.code();
  response->payload = status.message();
  response->deadline_millis = retry_after_millis;
}

}  // namespace

WorkerDaemon::WorkerDaemon(WorkerOptions options)
    : options_(std::move(options)),
      name_(OwnerDirName(options_.shard_first, options_.shard_last)) {}

WorkerDaemon::~WorkerDaemon() { Stop(); }

Status WorkerDaemon::Start() {
  if (options_.shard_first < 0 || options_.shard_last < options_.shard_first ||
      options_.shard_last >= KeyCatalog::kNumShards) {
    return Status::InvalidArgument("bad shard range");
  }
  ServiceOptions service_options;
  service_options.num_threads = options_.num_threads;
  service_options.tree_cache_bytes = options_.tree_cache_bytes;
  service_options.flush_every_puts = options_.flush_every_puts;
  if (!options_.catalog_root.empty()) {
    Status s = DefaultFileSystem()->CreateDir(options_.catalog_root);
    if (!s.ok()) return s;
    service_options.catalog_dir = options_.catalog_root + "/" + name_;
  }
  service_ = std::make_unique<ProfilingService>(service_options);
  if (!options_.catalog_root.empty()) {
    // The service degrades gracefully when the lease is taken, but for a
    // daemon that would mean two live writers for the same shard range —
    // refuse to start instead.
    Status persistence = service_->persistence_status();
    if (!persistence.ok() && !persistence.IsPartial()) {
      service_.reset();
      return persistence;
    }
    std::lock_guard<std::mutex> lock(followers_mu_);
    ScanFollowers();
  }

  RpcServer::Options rpc_options;
  rpc_options.port = options_.port;
  rpc_options.metrics = &net_metrics_;
  server_ = std::make_unique<RpcServer>(rpc_options);
  accepting_.store(true);
  Status s = server_->Start(
      [this](const Frame& request, Frame* response) {
        HandleRpc(request, response);
      });
  if (!s.ok()) {
    accepting_.store(false);
    server_.reset();
    service_.reset();
    return s;
  }
  return Status::OK();
}

void WorkerDaemon::Stop() {
  accepting_.store(false);
  if (server_ != nullptr) {
    server_->Stop();  // joins connection threads; no new RPCs after this
    server_.reset();
  }
  if (service_ != nullptr) {
    service_->WaitAll();
    service_.reset();  // destructor runs the final catalog flush
  }
  std::lock_guard<std::mutex> lock(followers_mu_);
  followers_.clear();
}

void WorkerDaemon::HandleRpc(const Frame& request, Frame* response) {
  switch (request.method) {
    case RpcMethod::kProfile:
      HandleProfile(request, response);
      return;
    case RpcMethod::kHealth:
      HandleHealth(response);
      return;
  }
  FailResponse(response, Status::Unsupported("unknown method"));
}

void WorkerDaemon::HandleProfile(const Frame& request, Frame* response) {
  if (!accepting_.load()) {
    net_metrics_.OnRpcShed();
    FailResponse(response, Status::Unavailable("worker draining"),
                 options_.retry_after_millis);
    return;
  }
  // Admission control: each held-open profile RPC pins a table and a
  // connection thread, so the count is bounded and the excess is shed with
  // a retry-after instead of queueing unboundedly.
  if (active_rpcs_.fetch_add(1) >= options_.max_active_rpcs) {
    active_rpcs_.fetch_sub(1);
    net_metrics_.OnRpcShed();
    FailResponse(response,
                 Status::Unavailable("worker at capacity (" +
                                     std::to_string(options_.max_active_rpcs) +
                                     " active profile rpcs)"),
                 options_.retry_after_millis);
    return;
  }
  struct ActiveGuard {
    std::atomic<int64_t>& n;
    ~ActiveGuard() { n.fetch_sub(1); }
  } guard{active_rpcs_};

  ProfileRequest req;
  Status s = DecodeProfileRequest(request.payload, &req);
  if (!s.ok()) {
    FailResponse(response, s);
    return;
  }
  Table table;
  {
    std::istringstream is(req.table_bytes);
    s = ReadTable(is, &table);
  }
  if (!s.ok()) {
    FailResponse(response, s);
    return;
  }
  const uint64_t fingerprint = TableFingerprint(table);
  if (req.fingerprint != 0 && req.fingerprint != fingerprint) {
    FailResponse(response,
                 Status::InvalidArgument(
                     "fingerprint mismatch: request claims " +
                     std::to_string(req.fingerprint) + ", table hashes to " +
                     std::to_string(fingerprint)));
    return;
  }
  const int shard = KeyCatalog::ShardIndexOf(fingerprint);
  const bool owned = OwnsShard(shard);

  ProfileResponse resp;
  resp.fingerprint = fingerprint;
  resp.served_by = name_;

  // A non-owned shard reaches us only when the router failed over. Prefer
  // the owner's flushed results (our read-only follower of its directory)
  // over redoing its work.
  if (!owned && req.use_catalog) {
    CatalogEntry entry;
    if (FollowerLookup(fingerprint, &entry)) {
      resp.follower_hit = true;
      resp.cache_hit = true;
      resp.result = std::move(entry.result);
      EncodeProfileResponse(resp, &response->payload);
      return;
    }
  }

  ProfileJobOptions job;
  job.priority = req.priority;
  // Never write another owner's shard: ownership is what keeps exactly one
  // writer per shard fleet-wide, so failover work is compute-only.
  job.use_catalog = owned && req.use_catalog;
  job.use_tree_cache = req.use_tree_cache;
  job.gordian.sample_rows = req.sample_rows;
  job.gordian.sample_seed = req.sample_seed;
  if (request.deadline_millis > 0) {
    job.timeout_seconds = request.deadline_millis * 1e-3;
  }

  JobId id = service_->SubmitTable(req.table_name, &table, job);
  ProfileOutcome outcome = service_->Wait(id);
  if (outcome.info.state == JobState::kFailed) {
    FailResponse(response, Status::IOError("profiling failed: " +
                                           outcome.info.error));
    return;
  }
  resp.cache_hit = outcome.cache_hit;
  resp.tree_cache_hit = outcome.tree_cache_hit;
  resp.result = std::move(outcome.result);
  EncodeProfileResponse(resp, &response->payload);
}

void WorkerDaemon::HandleHealth(Frame* response) {
  HealthInfo info;
  info.role = HealthInfo::Role::kWorker;
  info.accepting = accepting_.load();
  info.shard_first = options_.shard_first;
  info.shard_last = options_.shard_last;
  ServiceMetrics::Snapshot snap = service_->Metrics();
  info.queue_depth = snap.queue_depth;
  info.running_jobs = snap.running_jobs;
  info.active_rpcs = active_rpcs_.load();
  info.catalog_entries = service_->catalog().size();
  EncodeHealthInfo(info, &response->payload);
}

void WorkerDaemon::ScanFollowers() {
  std::vector<std::string> names;
  if (!DefaultFileSystem()->ListDir(options_.catalog_root, &names).ok()) {
    return;
  }
  for (const std::string& dir_name : names) {
    if (dir_name.rfind("owner-", 0) != 0 || dir_name == name_) continue;
    bool known = false;
    for (const Follower& f : followers_) {
      if (f.name == dir_name) known = true;
    }
    if (known) continue;
    Follower follower;
    follower.name = dir_name;
    follower.catalog = std::make_unique<KeyCatalog>();
    CatalogStore::Options store_options;
    store_options.mode = CatalogStore::Mode::kReadOnly;
    follower.store = std::make_unique<CatalogStore>(
        options_.catalog_root + "/" + dir_name, follower.catalog.get(),
        store_options);
    Status s = follower.store->Open(nullptr);
    // Partial is fine (the surviving shards still serve); a directory that
    // cannot be opened at all is retried on the next scan.
    if (!s.ok() && !s.IsPartial()) continue;
    followers_.push_back(std::move(follower));
  }
}

bool WorkerDaemon::FollowerLookup(uint64_t fingerprint, CatalogEntry* entry) {
  if (options_.catalog_root.empty()) return false;
  std::lock_guard<std::mutex> lock(followers_mu_);
  for (Follower& f : followers_) {
    if (f.catalog->Lookup(fingerprint, entry)) return true;
  }
  // Miss: the owner may have flushed since we last looked, or appeared
  // since the last scan. Refresh and retry once.
  ScanFollowers();
  for (Follower& f : followers_) {
    (void)f.store->Refresh(nullptr);
    if (f.catalog->Lookup(fingerprint, entry)) return true;
  }
  return false;
}

ServiceMetrics::Snapshot WorkerDaemon::Metrics() const {
  ServiceMetrics::Snapshot s = service_ != nullptr
                                   ? service_->Metrics()
                                   : ServiceMetrics::Snapshot{};
  ServiceMetrics::Snapshot net = net_metrics_.Read();
  s.rpcs_in = net.rpcs_in;
  s.rpcs_out = net.rpcs_out;
  s.rpc_bytes_in = net.rpc_bytes_in;
  s.rpc_bytes_out = net.rpc_bytes_out;
  s.rpc_sheds = net.rpc_sheds;
  s.rpc_retries = net.rpc_retries;
  s.worker_restarts = net.worker_restarts;
  return s;
}

}  // namespace gordian
