#include "net/rpc.h"

#include <utility>

namespace gordian {

namespace {

int64_t FramedBytes(const Frame& frame) {
  return static_cast<int64_t>(kFrameHeaderBytes + frame.payload.size());
}

std::chrono::steady_clock::time_point DeadlineFrom(uint32_t millis) {
  if (millis == 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(millis);
}

}  // namespace

Status RpcServer::Start(Handler handler) {
  handler_ = std::move(handler);
  Status s = listener_.Listen(options_.port);
  if (!s.ok()) return s;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::AcceptLoop() {
  for (;;) {
    std::unique_ptr<ByteStream> stream;
    Status s = listener_.Accept(&stream);
    if (!s.ok()) return;  // listener closed: shutting down
    ByteStream* raw = stream.get();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      stream->Close();
      return;
    }
    connections_.push_back(std::move(stream));
    threads_.emplace_back([this, raw] { ServeConnection(raw); });
  }
}

void RpcServer::ServeConnection(ByteStream* stream) {
  for (;;) {
    Frame request;
    Status s = ReadFrame(*stream, &request);
    if (!s.ok()) break;  // hang-up, torn frame, or garbage: drop the conn
    if (request.type != FrameType::kRequest) break;  // protocol violation
    if (options_.metrics != nullptr) {
      options_.metrics->OnRpcIn(FramedBytes(request));
    }
    Frame response;
    response.type = FrameType::kResponse;
    response.request_id = request.request_id;
    response.method = request.method;
    handler_(request, &response);
    if (options_.metrics != nullptr) {
      options_.metrics->OnRpcOut(FramedBytes(response));
    }
    if (!WriteFrame(*stream, response).ok()) break;
  }
  stream->Close();
}

void RpcServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // With the accept thread gone no new connections appear; close the live
  // ones to kick their threads out of blocked reads, then join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) conn->Close();
  }
  for (std::thread& t : threads_) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  threads_.clear();
  connections_.clear();
}

Status RpcClient::Call(RpcMethod method, const std::string& payload,
                       uint32_t deadline_millis, RpcReply* reply) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto deadline = DeadlineFrom(deadline_millis);
  if (stream_ == nullptr) {
    Status s = TcpConnect(
        host_, port_,
        deadline_millis == 0 ? std::chrono::milliseconds(0)
                             : std::chrono::milliseconds(deadline_millis),
        &stream_);
    if (!s.ok()) {
      stream_.reset();
      return s;
    }
  }
  stream_->SetDeadline(deadline);

  Frame request;
  request.type = FrameType::kRequest;
  request.method = method;
  request.request_id = next_request_id_++;
  request.deadline_millis = deadline_millis;
  request.payload = payload;

  Status s = WriteFrame(*stream_, request);
  if (s.ok()) {
    if (metrics_ != nullptr) metrics_->OnRpcOut(FramedBytes(request));
    Frame response;
    s = ReadFrame(*stream_, &response);
    if (s.ok()) {
      if (metrics_ != nullptr) metrics_->OnRpcIn(FramedBytes(response));
      if (response.type != FrameType::kResponse ||
          response.request_id != request.request_id) {
        s = Status::IOError("response does not match request");
      } else {
        reply->retry_after_millis = response.deadline_millis;
        if (response.status_code == Status::Code::kOk) {
          reply->remote = Status::OK();
          reply->payload = std::move(response.payload);
        } else {
          // Error responses carry the message as their payload; rebuild the
          // peer's Status from code + text.
          const std::string& msg = response.payload;
          switch (response.status_code) {
            case Status::Code::kInvalidArgument:
              reply->remote = Status::InvalidArgument(msg);
              break;
            case Status::Code::kNotFound:
              reply->remote = Status::NotFound(msg);
              break;
            case Status::Code::kOutOfRange:
              reply->remote = Status::OutOfRange(msg);
              break;
            case Status::Code::kUnsupported:
              reply->remote = Status::Unsupported(msg);
              break;
            case Status::Code::kPartial:
              reply->remote = Status::Partial(msg);
              break;
            case Status::Code::kUnavailable:
              reply->remote = Status::Unavailable(msg);
              break;
            case Status::Code::kDeadlineExceeded:
              reply->remote = Status::DeadlineExceeded(msg);
              break;
            default:
              reply->remote = Status::IOError(msg);
              break;
          }
          reply->payload.clear();
        }
        return Status::OK();
      }
    } else if (s.code() == Status::Code::kNotFound) {
      // Clean hang-up while awaiting the response: the peer died between
      // our frames. For the caller that is a transport failure.
      s = Status::IOError("connection closed awaiting response");
    }
  }
  stream_->Close();
  stream_.reset();
  return s;
}

void RpcClient::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_ != nullptr) {
    stream_->Close();
    stream_.reset();
  }
}

}  // namespace gordian
