#include "net/wire.h"

#include <cstring>

#include "service/key_catalog.h"

namespace gordian {

namespace {

// Plausibility caps mirroring the catalog codec: a flipped byte in a count
// field must not talk the decoder into a gigabyte allocation.
constexpr uint32_t kMaxSets = 1u << 20;
constexpr uint32_t kMaxString = 1u << 20;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutAttrs(std::string* out, const AttributeSet& attrs) {
  PutU8(out, static_cast<uint8_t>(attrs.Count()));
  for (int a = attrs.First(); a >= 0; a = attrs.Next(a)) {
    PutU8(out, static_cast<uint8_t>(a));
  }
}

// Bounds-checked sequential reader over an encoded payload.
class Cursor {
 public:
  Cursor(const std::string& bytes, size_t pos) : bytes_(bytes), pos_(pos) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  bool U8(uint8_t* v) {
    if (bytes_.size() - pos_ < 1) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool Double(double* d) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(d, &bits, sizeof(*d));
    return true;
  }

  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || len > kMaxString || bytes_.size() - pos_ < len) {
      return false;
    }
    s->assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }

  bool Attrs(AttributeSet* attrs) {
    uint8_t count;
    if (!U8(&count)) return false;
    *attrs = AttributeSet();
    int prev = -1;
    for (int i = 0; i < count; ++i) {
      uint8_t a;
      if (!U8(&a)) return false;
      if (a >= AttributeSet::kMaxAttributes || static_cast<int>(a) <= prev) {
        return false;  // out of range or not strictly ascending
      }
      attrs->Set(a);
      prev = a;
    }
    return true;
  }

 private:
  const std::string& bytes_;
  size_t pos_;
};

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt ") + what);
}

}  // namespace

void EncodeDiscoveryResult(const KeyDiscoveryResult& result,
                           std::string* out) {
  uint8_t flags = 0;
  if (result.no_keys) flags |= 1;
  if (result.sampled) flags |= 2;
  if (result.incomplete) flags |= 4;
  PutU8(out, flags);
  PutU8(out, static_cast<uint8_t>(result.incomplete_reason));
  PutU64(out, static_cast<uint64_t>(result.stats.rows_processed));
  PutU64(out, static_cast<uint64_t>(result.stats.num_attributes));
  PutU32(out, static_cast<uint32_t>(result.keys.size()));
  for (const DiscoveredKey& k : result.keys) {
    PutAttrs(out, k.attrs);
    PutDouble(out, k.estimated_strength);
    PutDouble(out, k.exact_strength);
  }
  PutU32(out, static_cast<uint32_t>(result.non_keys.size()));
  for (const AttributeSet& nk : result.non_keys) PutAttrs(out, nk);
}

Status DecodeDiscoveryResult(const std::string& bytes, size_t* pos,
                             KeyDiscoveryResult* result) {
  Cursor c(bytes, *pos);
  *result = KeyDiscoveryResult();
  uint8_t flags, reason;
  uint64_t rows, attrs;
  if (!c.U8(&flags) || !c.U8(&reason) || !c.U64(&rows) || !c.U64(&attrs)) {
    return Corrupt("result header");
  }
  if (flags > 7) return Corrupt("result flags");
  if (reason > static_cast<uint8_t>(AbortReason::kCancelled)) {
    return Corrupt("abort reason");
  }
  if (rows > (uint64_t{1} << 40) ||
      attrs > static_cast<uint64_t>(AttributeSet::kMaxAttributes)) {
    return Corrupt("result counts");
  }
  result->no_keys = (flags & 1) != 0;
  result->sampled = (flags & 2) != 0;
  result->incomplete = (flags & 4) != 0;
  result->incomplete_reason = static_cast<AbortReason>(reason);
  if (result->incomplete == (result->incomplete_reason == AbortReason::kNone)) {
    return Corrupt("abort reason / incomplete flag mismatch");
  }
  result->stats.rows_processed = static_cast<int64_t>(rows);
  result->stats.num_attributes = static_cast<int64_t>(attrs);
  uint32_t num_keys;
  if (!c.U32(&num_keys) || num_keys > kMaxSets) return Corrupt("key count");
  result->keys.resize(num_keys);
  for (uint32_t k = 0; k < num_keys; ++k) {
    DiscoveredKey& key = result->keys[k];
    if (!c.Attrs(&key.attrs) || !c.Double(&key.estimated_strength) ||
        !c.Double(&key.exact_strength)) {
      return Corrupt("key record");
    }
  }
  uint32_t num_non_keys;
  if (!c.U32(&num_non_keys) || num_non_keys > kMaxSets) {
    return Corrupt("non-key count");
  }
  result->non_keys.resize(num_non_keys);
  for (uint32_t k = 0; k < num_non_keys; ++k) {
    if (!c.Attrs(&result->non_keys[k])) return Corrupt("non-key record");
  }
  *pos = c.pos();
  return Status::OK();
}

void EncodeProfileRequest(const ProfileRequest& req, std::string* out) {
  PutU64(out, req.fingerprint);
  PutStr(out, req.client_id);
  PutStr(out, req.table_name);
  PutU32(out, static_cast<uint32_t>(req.priority));
  uint8_t flags = 0;
  if (req.use_catalog) flags |= 1;
  if (req.use_tree_cache) flags |= 2;
  PutU8(out, flags);
  PutU64(out, static_cast<uint64_t>(req.sample_rows));
  PutU64(out, req.sample_seed);
  PutU32(out, static_cast<uint32_t>(req.table_bytes.size()));
  out->append(req.table_bytes);
}

Status DecodeProfileRequest(const std::string& bytes, ProfileRequest* req) {
  Cursor c(bytes, 0);
  *req = ProfileRequest();
  uint32_t priority;
  uint8_t flags;
  uint64_t sample_rows;
  if (!c.U64(&req->fingerprint) || !c.Str(&req->client_id) ||
      !c.Str(&req->table_name) || !c.U32(&priority) || !c.U8(&flags) ||
      !c.U64(&sample_rows) || !c.U64(&req->sample_seed)) {
    return Corrupt("profile request header");
  }
  if (flags > 3) return Corrupt("profile request flags");
  req->priority = static_cast<int32_t>(priority);
  req->use_catalog = (flags & 1) != 0;
  req->use_tree_cache = (flags & 2) != 0;
  req->sample_rows = static_cast<int64_t>(sample_rows);
  uint32_t table_len;
  if (!c.U32(&table_len) || bytes.size() - c.pos() != table_len) {
    return Corrupt("profile request table length");
  }
  req->table_bytes.assign(bytes, c.pos(), table_len);
  return Status::OK();
}

Status DecodeProfileRequestPrefix(const std::string& bytes,
                                  uint64_t* fingerprint,
                                  std::string* client_id) {
  Cursor c(bytes, 0);
  if (!c.U64(fingerprint) || !c.Str(client_id)) {
    return Corrupt("profile request prefix");
  }
  return Status::OK();
}

void EncodeProfileResponse(const ProfileResponse& resp, std::string* out) {
  PutU64(out, resp.fingerprint);
  uint8_t flags = 0;
  if (resp.cache_hit) flags |= 1;
  if (resp.follower_hit) flags |= 2;
  if (resp.tree_cache_hit) flags |= 4;
  PutU8(out, flags);
  PutStr(out, resp.served_by);
  EncodeDiscoveryResult(resp.result, out);
}

Status DecodeProfileResponse(const std::string& bytes,
                             ProfileResponse* resp) {
  Cursor c(bytes, 0);
  *resp = ProfileResponse();
  uint8_t flags;
  if (!c.U64(&resp->fingerprint) || !c.U8(&flags) ||
      !c.Str(&resp->served_by)) {
    return Corrupt("profile response header");
  }
  if (flags > 7) return Corrupt("profile response flags");
  resp->cache_hit = (flags & 1) != 0;
  resp->follower_hit = (flags & 2) != 0;
  resp->tree_cache_hit = (flags & 4) != 0;
  size_t pos = c.pos();
  Status s = DecodeDiscoveryResult(bytes, &pos, &resp->result);
  if (!s.ok()) return s;
  if (pos != bytes.size()) return Corrupt("profile response trailer");
  return Status::OK();
}

void EncodeHealthInfo(const HealthInfo& info, std::string* out) {
  PutU8(out, static_cast<uint8_t>(info.role));
  PutU8(out, info.accepting ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(info.shard_first));
  PutU8(out, static_cast<uint8_t>(info.shard_last));
  PutU64(out, static_cast<uint64_t>(info.queue_depth));
  PutU64(out, static_cast<uint64_t>(info.running_jobs));
  PutU64(out, static_cast<uint64_t>(info.active_rpcs));
  PutU64(out, static_cast<uint64_t>(info.catalog_entries));
  PutU32(out, static_cast<uint32_t>(info.workers_up));
  PutU32(out, static_cast<uint32_t>(info.workers_total));
}

Status DecodeHealthInfo(const std::string& bytes, HealthInfo* info) {
  Cursor c(bytes, 0);
  *info = HealthInfo();
  uint8_t role, accepting, first, last;
  uint64_t queue, running, active, entries;
  uint32_t up, total;
  if (!c.U8(&role) || !c.U8(&accepting) || !c.U8(&first) || !c.U8(&last) ||
      !c.U64(&queue) || !c.U64(&running) || !c.U64(&active) ||
      !c.U64(&entries) || !c.U32(&up) || !c.U32(&total) || !c.AtEnd()) {
    return Corrupt("health info");
  }
  if (role != static_cast<uint8_t>(HealthInfo::Role::kWorker) &&
      role != static_cast<uint8_t>(HealthInfo::Role::kRouter)) {
    return Corrupt("health role");
  }
  if (accepting > 1 || first >= KeyCatalog::kNumShards ||
      last >= KeyCatalog::kNumShards) {
    return Corrupt("health fields");
  }
  info->role = static_cast<HealthInfo::Role>(role);
  info->accepting = accepting != 0;
  info->shard_first = first;
  info->shard_last = last;
  info->queue_depth = static_cast<int64_t>(queue);
  info->running_jobs = static_cast<int64_t>(running);
  info->active_rpcs = static_cast<int64_t>(active);
  info->catalog_entries = static_cast<int64_t>(entries);
  info->workers_up = static_cast<int>(up);
  info->workers_total = static_cast<int>(total);
  return Status::OK();
}

Status ParseShardRange(const std::string& text, int* first, int* last) {
  const auto parse_int = [](const std::string& s, int* out) {
    if (s.empty() || s.size() > 2) return false;
    int v = 0;
    for (char ch : s) {
      if (ch < '0' || ch > '9') return false;
      v = v * 10 + (ch - '0');
    }
    *out = v;
    return true;
  };
  const size_t dash = text.find('-');
  int a, b;
  if (dash == std::string::npos) {
    if (!parse_int(text, &a)) {
      return Status::InvalidArgument("bad shard range: " + text);
    }
    b = a;
  } else if (!parse_int(text.substr(0, dash), &a) ||
             !parse_int(text.substr(dash + 1), &b)) {
    return Status::InvalidArgument("bad shard range: " + text);
  }
  if (a > b || b >= KeyCatalog::kNumShards) {
    return Status::InvalidArgument("shard range " + text +
                                   " outside 0-" +
                                   std::to_string(KeyCatalog::kNumShards - 1));
  }
  *first = a;
  *last = b;
  return Status::OK();
}

}  // namespace gordian
