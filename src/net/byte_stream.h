#ifndef GORDIAN_NET_BYTE_STREAM_H_
#define GORDIAN_NET_BYTE_STREAM_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace gordian {

// The transport operations the RPC layer performs on one connection, named
// so a fault can be aimed at exactly one of them (the socket-side mirror of
// FsOp in common/fault_fs.h).
enum class NetOp {
  kRead,
  kWrite,
};

const char* NetOpName(NetOp op);

// Narrow byte-pipe seam between the RPC framing layer and the OS socket.
// Production code uses TcpStream (net/socket.h); tests substitute
// MemoryStream or FaultInjectionStream to make short reads, torn writes,
// and mid-frame disconnects deterministic. The framing layer only ever
// needs "read some", "write all", and "close" — no seeking, no peeking.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Reads up to `len` bytes into `buf`; *n receives how many arrived. A
  // clean end-of-stream is OK with *n == 0 (the caller decides whether the
  // boundary fell between frames or tore one in half).
  virtual Status ReadSome(char* buf, size_t len, size_t* n) = 0;

  // Writes all `len` bytes or fails. A failure reports how the connection
  // died; whether a prefix reached the peer is unknowable, exactly as with
  // a real socket.
  virtual Status Write(const char* buf, size_t len) = 0;

  // Closes the connection. Safe to call from another thread to abort a
  // blocked ReadSome/Write (TcpStream shuts the socket down first), and
  // safe to call twice.
  virtual void Close() = 0;

  // Absolute deadline applied to every subsequent read and write; a blocked
  // operation that reaches it fails with DeadlineExceeded. time_point::max()
  // (the default) means no deadline.
  virtual void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    (void)deadline;
  }
};

// Reads exactly `len` bytes, mapping a clean end-of-stream short of the
// target onto IOError("short read ...") — the framing layer's way to tell a
// between-frames disconnect (ReadSome returns 0 at offset 0, reported as
// kEof below) from a torn frame.
//
// Returns OK, IOError, or whatever the stream failed with. When the stream
// ends cleanly before the first byte, returns NotFound (sentinel for "peer
// hung up between frames"; the server loop exits quietly on it).
Status ReadExact(ByteStream& stream, char* buf, size_t len);

// In-memory script stream for unit tests: serves `input` to ReadSome (in
// chunks of at most `max_chunk` to exercise short-read handling) and
// captures everything Write sends into `output`.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input = "", size_t max_chunk = SIZE_MAX)
      : input_(std::move(input)), max_chunk_(max_chunk) {}

  Status ReadSome(char* buf, size_t len, size_t* n) override;
  Status Write(const char* buf, size_t len) override;
  void Close() override { closed_ = true; }

  const std::string& output() const { return output_; }
  bool closed() const { return closed_; }

 private:
  std::string input_;
  size_t pos_ = 0;
  size_t max_chunk_;
  std::string output_;
  bool closed_ = false;
};

// A one-shot fault armed on a FaultInjectionStream. The fault fires once
// `countdown_bytes` bytes of the matching operation have passed through.
struct NetFaultSpec {
  NetOp op = NetOp::kWrite;

  // Bytes of `op` traffic to let through before the fault fires. The call
  // in flight when the budget runs out is the one that fails.
  int64_t countdown_bytes = 0;

  // How the fault presents:
  //  - kError: the call fails with IOError(message); a kWrite fault first
  //    lets the remaining countdown budget through (a short/torn write).
  //  - kDisconnect: the stream behaves as if the peer vanished — reads hit
  //    a clean end-of-stream, writes fail — modelling a mid-frame
  //    disconnect rather than a socket error.
  enum class Kind { kError, kDisconnect };
  Kind kind = Kind::kError;

  std::string message = "injected network fault";
};

// Wraps a base stream and fails deterministically at an armed byte offset.
// Thread-safe; the framing fault matrix in tests/net_frame_test.cc drives
// it the same way the catalog crash matrix drives FaultInjectionFs.
class FaultInjectionStream : public ByteStream {
 public:
  explicit FaultInjectionStream(ByteStream* base) : base_(base) {}

  // Replaces any previously armed fault and resets the fired state.
  void Arm(NetFaultSpec spec);
  void Reset();
  bool fired() const;

  Status ReadSome(char* buf, size_t len, size_t* n) override;
  Status Write(const char* buf, size_t len) override;
  void Close() override { base_->Close(); }
  void SetDeadline(std::chrono::steady_clock::time_point deadline) override {
    base_->SetDeadline(deadline);
  }

 private:
  // Returns how many bytes of this call may proceed (possibly all of
  // `len`), or a failure to return instead. Updates the countdown.
  Status Admit(NetOp op, size_t len, size_t* allowed);

  ByteStream* base_;
  mutable std::mutex mu_;
  bool armed_ = false;
  bool fired_ = false;
  NetFaultSpec spec_;
};

}  // namespace gordian

#endif  // GORDIAN_NET_BYTE_STREAM_H_
