#ifndef GORDIAN_NET_FRAME_H_
#define GORDIAN_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/byte_stream.h"

namespace gordian {

// The RPC methods of the distributed profiling front-end.
enum class RpcMethod : uint8_t {
  kProfile = 1,  // table bytes in, discovery report out
  kHealth = 2,   // liveness + load probe (heartbeats, demo status)
};

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// One length-prefixed binary frame — the unit of the wire protocol:
//
//   magic "GRDN" (4 bytes)
//   u32 payload length            (rejected above kMaxFramePayload)
//   u64 request id                (echoed by the response)
//   u8  type                      (FrameType)
//   u8  method                    (RpcMethod)
//   u8  status code               (wire status; 0 = OK, requests always 0)
//   u8  reserved                  (must be 0)
//   u32 deadline / retry-after ms (requests: remaining deadline budget,
//                                  0 = none; responses: retry-after hint on
//                                  load-shed replies, 0 otherwise)
//   payload bytes
//
// Integers are little-endian fixed width, matching the GRDT/GRDC formats.
// For OK responses the payload is the method's response message; for error
// responses it is the error text (the Status message).
struct Frame {
  uint64_t request_id = 0;
  FrameType type = FrameType::kRequest;
  RpcMethod method = RpcMethod::kProfile;
  Status::Code status_code = Status::Code::kOk;
  uint32_t deadline_millis = 0;  // or retry-after, per the table above
  std::string payload;
};

// Fixed bytes before the payload.
inline constexpr size_t kFrameHeaderBytes = 24;

// Hard ceiling on one frame's payload: large enough for any realistic
// serialized table, small enough that a corrupt or hostile length field
// cannot talk the receiver into a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

// Status::Code <-> wire byte. The wire values are frozen independently of
// the enum's order so old and new binaries can interoperate; an unknown
// wire byte decodes as kIOError (the connection is speaking a newer
// protocol, which the receiver treats as a transport-level problem).
uint8_t StatusCodeToWire(Status::Code code);
Status::Code StatusCodeFromWire(uint8_t wire);

// Serializes `frame` onto the stream as one contiguous write (header +
// payload), so a frame is either fully queued to the kernel or the
// connection is dead. Fails if the payload exceeds kMaxFramePayload.
Status WriteFrame(ByteStream& stream, const Frame& frame);

// Reads and validates one frame. Returns:
//  - OK with *frame filled,
//  - NotFound when the stream ended cleanly between frames (server loops
//    exit quietly on this),
//  - IOError for a torn frame (disconnect mid-header or mid-payload),
//  - InvalidArgument for garbage: bad magic, unknown type/method byte,
//    nonzero reserved byte, or a length field above kMaxFramePayload.
// On InvalidArgument the connection is desynchronized and must be closed;
// re-reading cannot recover the frame boundary.
Status ReadFrame(ByteStream& stream, Frame* frame);

}  // namespace gordian

#endif  // GORDIAN_NET_FRAME_H_
