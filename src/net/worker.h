#ifndef GORDIAN_NET_WORKER_H_
#define GORDIAN_NET_WORKER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "service/catalog_store.h"
#include "service/key_catalog.h"
#include "service/profiling_service.h"

namespace gordian {

struct WorkerOptions {
  int port = 0;  // 0 = ephemeral; read back via port()

  // Inclusive range of the 16 fingerprint shards this worker owns. The
  // owner is the writer for those shards' catalog entries; requests for
  // other shards are still served (failover) but never persisted here.
  int shard_first = 0;
  int shard_last = KeyCatalog::kNumShards - 1;

  // Directory under which every worker of the fleet keeps its durable
  // catalog: this worker writes `<root>/owner-FF-LL` (holding that
  // directory's flock writer lease for its lifetime) and opens each peer
  // `owner-*` directory read-only as a follower it can serve lookups from.
  // Empty = memory-only catalog, no lease, no followers.
  std::string catalog_root;

  // Threads for the wrapped ProfilingService; 0 = one per hardware thread.
  int num_threads = 0;

  // Admission bound: profile RPCs held open concurrently (each pins a
  // deserialized table and a connection thread). Beyond it the worker
  // sheds with Unavailable + retry-after instead of queueing without limit.
  int max_active_rpcs = 64;

  // Retry-after hint carried by shed replies.
  int retry_after_millis = 50;

  int64_t tree_cache_bytes = TreeArtifactCache::kDefaultByteBudget;

  // Catalog puts between background flushes (ServiceOptions semantics).
  // The default is deliberately small: followers only see flushed state,
  // so a distributed fleet wants flushes at a brisker cadence than a
  // single-process service would pick.
  int flush_every_puts = 8;
};

// A shard-owner worker daemon: a ProfilingService wrapped in an RpcServer.
// kProfile requests are deserialized, submitted, awaited, and answered with
// the serialized discovery report; kHealth answers a load probe. Shards
// outside the owned range are served on a best-effort basis for failover —
// first from the read-only follower catalogs of their owners, then by
// running discovery without caching the result (ownership means exactly
// one writer per shard, fleet-wide).
class WorkerDaemon {
 public:
  explicit WorkerDaemon(WorkerOptions options);
  ~WorkerDaemon();

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  // Opens the catalog directory (when configured) and starts serving.
  // Partial catalog recovery is not fatal (the service degrades exactly as
  // a local one would); a lease held elsewhere or an unusable port is.
  Status Start();

  // Drains: stops accepting, waits for in-flight jobs, flushes the catalog.
  void Stop();

  int port() const { return server_ == nullptr ? 0 : server_->port(); }
  int shard_first() const { return options_.shard_first; }
  int shard_last() const { return options_.shard_last; }

  // "owner-FF-LL" — the worker's identity, also its catalog directory name.
  const std::string& name() const { return name_; }

  bool OwnsShard(int shard) const {
    return shard >= options_.shard_first && shard <= options_.shard_last;
  }

  ProfilingService& service() { return *service_; }

  // Service counters merged with the RPC-side counters.
  ServiceMetrics::Snapshot Metrics() const;

 private:
  struct Follower {
    std::string name;  // peer directory name, e.g. "owner-08-15"
    std::unique_ptr<KeyCatalog> catalog;
    std::unique_ptr<CatalogStore> store;
  };

  void HandleRpc(const Frame& request, Frame* response);
  void HandleProfile(const Frame& request, Frame* response);
  void HandleHealth(Frame* response);

  // Looks `fingerprint` up in the follower catalogs, refreshing them from
  // disk (and rescanning the root for newly created peers) on a miss.
  bool FollowerLookup(uint64_t fingerprint, CatalogEntry* entry);
  void ScanFollowers();  // under followers_mu_

  WorkerOptions options_;
  std::string name_;
  std::unique_ptr<ProfilingService> service_;
  ServiceMetrics net_metrics_;
  std::unique_ptr<RpcServer> server_;
  std::atomic<int64_t> active_rpcs_{0};
  std::atomic<bool> accepting_{false};

  std::mutex followers_mu_;
  std::vector<Follower> followers_;
};

}  // namespace gordian

#endif  // GORDIAN_NET_WORKER_H_
