#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <cstring>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace gordian {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Remaining time before `deadline`, clamped for poll(); -1 = wait forever.
int PollTimeout(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left.count(), 1 << 30));
}

}  // namespace

Status TcpStream::WaitReady(short events) {
  for (;;) {
    int fd = fd_.load();
    if (fd < 0) return Status::IOError("stream closed");
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    int timeout = PollTimeout(deadline_);
    if (timeout == 0) return Status::DeadlineExceeded("socket deadline");
    int rc = ::poll(&p, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("socket deadline");
    if (errno != EINTR) return Errno("poll");
  }
}

Status TcpStream::ReadSome(char* buf, size_t len, size_t* n) {
  *n = 0;
  for (;;) {
    Status ready = WaitReady(POLLIN);
    if (!ready.ok()) return ready;
    int fd = fd_.load();
    if (fd < 0) return Status::IOError("stream closed");
    ssize_t rc = ::recv(fd, buf, len, 0);
    if (rc >= 0) {
      *n = static_cast<size_t>(rc);
      return Status::OK();  // rc == 0 is the peer's clean shutdown
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll raced
    return Errno("recv");
  }
}

Status TcpStream::Write(const char* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    Status ready = WaitReady(POLLOUT);
    if (!ready.ok()) return ready;
    int fd = fd_.load();
    if (fd < 0) return Status::IOError("stream closed");
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    ssize_t rc = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

void TcpStream::Close() {
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks concurrent recv/send
    ::close(fd);
  }
}

Status TcpListener::Listen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
  return Status::OK();
}

Status TcpListener::Accept(std::unique_ptr<ByteStream>* stream) {
  for (;;) {
    int fd = fd_.load();
    if (fd < 0) return Status::Unavailable("listener closed");
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      int one = 1;
      (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *stream = std::make_unique<TcpStream>(conn);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    // Close() from another thread invalidates the descriptor under us; any
    // error after that is simply "we are shutting down".
    if (fd_.load() < 0) return Status::Unavailable("listener closed");
    if (errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks a concurrent accept
    ::close(fd);
  }
}

Status TcpConnect(const std::string& host, int port,
                  std::chrono::milliseconds timeout,
                  std::unique_ptr<ByteStream>* stream) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0 || res == nullptr) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Errno("socket");
  }
  // Non-blocking connect so the handshake honors the caller's timeout
  // (a down worker must fail fast, not hang the router's dispatcher).
  int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc < 0 && errno != EINPROGRESS) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (rc < 0) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLOUT;
    p.revents = 0;
    int ms = static_cast<int>(std::max<int64_t>(timeout.count(), 0));
    rc = ::poll(&p, 1, ms == 0 ? -1 : ms);
    if (rc == 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect " + host + ":" +
                                      std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (rc < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      if (err != 0) errno = err;
      Status s = Errno("connect " + host + ":" + std::to_string(port));
      ::close(fd);
      return s;
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);  // back to blocking; poll() paces I/O
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *stream = std::make_unique<TcpStream>(fd);
  return Status::OK();
}

}  // namespace gordian
