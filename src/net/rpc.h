#ifndef GORDIAN_NET_RPC_H_
#define GORDIAN_NET_RPC_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"
#include "service/metrics.h"

namespace gordian {

// Serves GRDN frames on a loopback TCP port: one accept thread, one thread
// per connection, one handler call per request frame. Connections are
// persistent — a client sends many requests down one socket, each answered
// in order. A malformed frame (garbage, oversized length) poisons only its
// own connection: the server closes it and the other connections carry on.
//
// The handler runs on the connection's thread and may block (the worker's
// profile handler waits for discovery to finish); concurrency across
// requests comes from concurrent connections.
class RpcServer {
 public:
  struct Options {
    int port = 0;  // 0 = ephemeral; read the choice back via port()
    ServiceMetrics* metrics = nullptr;  // rpcs/bytes counters, optional
  };

  // The handler fills `*response` (type/request_id are pre-set to match the
  // request; it may override payload, status_code, and retry-after).
  using Handler = std::function<void(const Frame& request, Frame* response)>;

  explicit RpcServer(Options options) : options_(options) {}
  ~RpcServer() { Stop(); }

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Binds, listens, and starts accepting. Fails if the port is taken.
  Status Start(Handler handler);

  // The bound port; valid after Start succeeds.
  int port() const { return listener_.port(); }

  // Stops accepting, closes every live connection (aborting blocked reads),
  // and joins all threads. Idempotent; called by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(ByteStream* stream);

  Options options_;
  Handler handler_;
  TcpListener listener_;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  // Streams stay owned here until Stop so a shutdown can Close() them out
  // from under their (blocked) connection threads.
  std::list<std::unique_ptr<ByteStream>> connections_;
  std::vector<std::thread> threads_;
};

// What one RPC produced, beyond transport success: the remote Status (OK or
// the error the peer mapped onto the frame), the response payload, and the
// retry-after hint carried by load-shed replies.
struct RpcReply {
  Status remote;
  std::string payload;
  uint32_t retry_after_millis = 0;
};

// One persistent client connection. Call() connects lazily, sends a request
// frame, and blocks for the matching response; any transport or framing
// error closes the connection so the next Call reconnects from scratch.
// Thread-safe; calls are serialized (the router opens several clients per
// worker for parallelism).
class RpcClient {
 public:
  explicit RpcClient(std::string host, int port,
                     ServiceMetrics* metrics = nullptr)
      : host_(std::move(host)), port_(port), metrics_(metrics) {}
  ~RpcClient() { Close(); }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Returns the transport outcome: OK means a well-formed response arrived
  // and `*reply` is filled (its `remote` Status may still be an error the
  // peer reported); anything else means the connection failed and was
  // closed. `deadline_millis` bounds connect + send + receive and is also
  // propagated in the request frame (0 = none).
  Status Call(RpcMethod method, const std::string& payload,
              uint32_t deadline_millis, RpcReply* reply);

  void Close();

  const std::string& host() const { return host_; }
  int port() const { return port_; }

 private:
  const std::string host_;
  const int port_;
  ServiceMetrics* metrics_;
  std::mutex mu_;
  std::unique_ptr<ByteStream> stream_;
  uint64_t next_request_id_ = 1;
};

}  // namespace gordian

#endif  // GORDIAN_NET_RPC_H_
