#ifndef GORDIAN_SERVICE_KEY_CATALOG_H_
#define GORDIAN_SERVICE_KEY_CATALOG_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/gordian.h"

namespace gordian {

// One cached discovery result, keyed by the table's content fingerprint
// (TableFingerprint in table/fingerprint.h).
struct CatalogEntry {
  uint64_t fingerprint = 0;
  std::string table_name;  // informational: name at first profiling
  int num_columns = 0;
  KeyDiscoveryResult result;
};

// Thread-safe cache of discovery results keyed by table fingerprint. The
// profiling service consults it before scheduling discovery: an unchanged
// table (same fingerprint) is a cache hit and skips the run entirely.
//
// Storage is striped across 16 shards keyed by the fingerprint's top bits
// (fingerprints are hashes, so the high bits are uniform): every worker of
// the scheduler pool hits the catalog around each job, and a single mutex
// would serialize them on entry copies that can be kilobytes. Point
// operations lock exactly one shard; whole-catalog operations (Clear, size,
// Fingerprints, persistence) visit shards in index order.
//
// Only complete results are admitted — an incomplete result (budget trip or
// cancellation) certifies nothing and would poison the cache, so Put
// rejects it. Lookups copy the entry out; the catalog never hands out
// references into its own storage, so readers and writers cannot alias.
class KeyCatalog {
 public:
  static constexpr int kNumShards = 16;

  // Shard a fingerprint routes to: the top 4 bits (fingerprints are hashes,
  // so the high bits are uniform). Exposed because the per-shard catalog
  // store (service/catalog_store.h) names its files by shard index and
  // validates that every loaded entry belongs to its file.
  static int ShardIndexOf(uint64_t fingerprint) {
    return static_cast<int>(fingerprint >> 60);
  }

  KeyCatalog() = default;

  // Catalogs are plumbed by pointer (services, advisor); copying one would
  // fork the cache silently, so it is non-copyable by design.
  KeyCatalog(const KeyCatalog&) = delete;
  KeyCatalog& operator=(const KeyCatalog&) = delete;

  // Stores `result` for `fingerprint`, replacing any previous entry.
  // Returns false (and stores nothing) for incomplete results.
  bool Put(uint64_t fingerprint, const std::string& table_name,
           int num_columns, const KeyDiscoveryResult& result);

  // Copies the entry for `fingerprint` into *out (when non-null) and
  // returns true, or returns false on a miss.
  bool Lookup(uint64_t fingerprint, CatalogEntry* out) const;

  bool Contains(uint64_t fingerprint) const;
  bool Erase(uint64_t fingerprint);
  void Clear();
  int64_t size() const;

  // All cached fingerprints, unordered.
  std::vector<uint64_t> Fingerprints() const;

  // --- Per-shard access for the catalog store ---------------------------
  //
  // Each shard carries a version counter bumped by every mutation that
  // touches it (Put, successful Erase, Clear, ReplaceShard). The store
  // compares versions against what it last flushed — the dirty bit — so a
  // warm Flush() skips clean shards without comparing bytes.

  // Copies shard `shard`'s entries out, sorted by fingerprint (so a shard's
  // serialized form is deterministic), along with its current version.
  std::vector<CatalogEntry> ShardSnapshot(int shard,
                                          uint64_t* version = nullptr) const;

  // Replaces shard `shard`'s contents wholesale (catalog-store loads).
  // Every entry must route to `shard`; entries that do not are skipped.
  void ReplaceShard(int shard, std::vector<CatalogEntry> entries);

  uint64_t ShardVersion(int shard) const;

 private:
  friend Status WriteCatalogFile(const KeyCatalog& catalog,
                                 const std::string& path);
  friend Status ReadCatalogFile(const std::string& path, KeyCatalog* out);

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, CatalogEntry> entries;
    uint64_t version = 0;  // bumped under mu by every mutation
  };

  Shard& ShardFor(uint64_t fingerprint) const {
    return shards_[ShardIndexOf(fingerprint)];
  }

  mutable std::array<Shard, kNumShards> shards_;
};

// Binary persistence, following the GRDT conventions of table/serialize.h:
//
//   magic "GRDC", format version (u32), entry count (u64),
//   per entry: fingerprint (u64), table name (length-prefixed string),
//   column count (u32), flags (u8: no_keys | sampled<<1),
//   rows processed (u64),
//   keys (u32 count; per key: attribute list as u8 count + ascending u8
//   positions, then estimated/exact strength as IEEE754 bit patterns),
//   non-keys (u32 count; per non-key: attribute list).
//
// Loading validates the magic, version, counts, attribute ordering and
// range, truncation, and trailing bytes after the last entry, returning
// InvalidArgument rather than crashing on corrupt input (the catalog fuzz
// tests exercise this).

// Writes the whole catalog to `path`, overwriting it.
Status WriteCatalogFile(const KeyCatalog& catalog, const std::string& path);

// Replaces *out's contents with the catalog stored at `path`.
Status ReadCatalogFile(const std::string& path, KeyCatalog* out);

// --- Entry wire codec --------------------------------------------------
//
// The per-entry record format is shared between the legacy single-file GRDC
// format above and the per-shard files of service/catalog_store.h, so a
// shard file is bit-compatible with the corresponding slice of a GRDC file.

// Appends one entry record (fingerprint through non-key list) to `os`.
void WriteCatalogEntryRecord(std::ostream& os, const CatalogEntry& entry);

// Reads and fully validates one entry record: flags, plausibility-capped
// counts, attribute ordering and range. Returns InvalidArgument on any
// structural violation, including truncation mid-record.
Status ReadCatalogEntryRecord(std::istream& is, CatalogEntry* entry);

}  // namespace gordian

#endif  // GORDIAN_SERVICE_KEY_CATALOG_H_
