#include "service/schema_profiler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"

namespace gordian {

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string FormatDouble(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void AppendAttrNames(const Schema& schema, const AttributeSet& attrs,
                     std::string* out) {
  bool first = true;
  attrs.ForEach([&](int a) {
    if (!first) *out += ", ";
    first = false;
    *out += "\"" + JsonEscape(schema.name(a)) + "\"";
  });
}

}  // namespace

DatabaseProfile SchemaReport::AsDatabaseProfile() const {
  DatabaseProfile profile;
  for (const TableEntry& t : tables) {
    profile.tables.push_back({t.name, t.table, t.result});
  }
  profile.foreign_keys = foreign_keys;
  return profile;
}

std::vector<ProfiledTable> SchemaReport::AsProfiledTables() const {
  std::vector<ProfiledTable> out;
  out.reserve(tables.size());
  for (const TableEntry& t : tables) {
    out.push_back({t.name, t.table, t.result.KeySets()});
  }
  return out;
}

Status SchemaProfiler::Profile(
    const std::vector<std::pair<std::string, const Table*>>& tables,
    const SchemaProfileOptions& options, SchemaReport* report) {
  *report = SchemaReport();
  report->tables.resize(tables.size());

  // Stage 1: per-table key discovery as service jobs — catalog hits skip
  // discovery, tree-cache hits skip the build stage.
  Stopwatch watch;
  std::vector<JobId> key_jobs;
  key_jobs.reserve(tables.size());
  for (const auto& [name, table] : tables) {
    key_jobs.push_back(service_->SubmitTable(name, table, options.job));
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    ProfileOutcome outcome = service_->Wait(key_jobs[i]);
    SchemaReport::TableEntry& entry = report->tables[i];
    entry.name = tables[i].first;
    entry.table = tables[i].second;
    entry.fingerprint = outcome.fingerprint;
    entry.catalog_hit = outcome.cache_hit;
    entry.tree_cache_hit = outcome.tree_cache_hit;
    entry.result = std::move(outcome.result);
  }
  report->key_seconds = watch.ElapsedSeconds();

  JobScheduler& scheduler = service_->scheduler();

  // Stage 2: ranked FDs, one job per table. Jobs touch only their own
  // table, so its lazy cardinality cache is never shared across threads.
  if (options.discover_fds) {
    watch.Restart();
    std::vector<JobId> fd_jobs;
    fd_jobs.reserve(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      SchemaReport::TableEntry* entry = &report->tables[i];
      const FdOptions fd_options = options.fd;
      fd_jobs.push_back(scheduler.Submit([entry, fd_options](
                                             const JobContext& ctx) {
        if (ctx.Cancelled()) return;
        entry->fds = DiscoverFds(*entry->table, entry->result, fd_options);
      }));
    }
    for (JobId id : fd_jobs) scheduler.Wait(id);
    report->fd_seconds = watch.ElapsedSeconds();
  }

  // Stage 3: FK verification units fanned across the pool. Units are
  // enumerated in the exact order DiscoverForeignKeys uses, land in
  // preallocated slots, and the sorted concatenation therefore matches a
  // serial run byte for byte at any thread count.
  if (options.discover_foreign_keys) {
    watch.Restart();
    const std::vector<ProfiledTable> profiled = report->AsProfiledTables();
    struct FkUnit {
      int referencing = 0;
      int referenced = 0;
      AttributeSet key;
    };
    std::vector<FkUnit> units;
    for (size_t ki = 0; ki < profiled.size(); ++ki) {
      for (const AttributeSet& key : profiled[ki].keys) {
        for (size_t fi = 0; fi < profiled.size(); ++fi) {
          units.push_back(
              {static_cast<int>(fi), static_cast<int>(ki), key});
        }
      }
    }
    std::vector<std::vector<ForeignKeyCandidate>> slots(units.size());
    std::vector<JobId> fk_jobs;
    fk_jobs.reserve(units.size());
    const ForeignKeyOptions fk_options = options.fk;
    for (size_t u = 0; u < units.size(); ++u) {
      const FkUnit& unit = units[u];
      std::vector<ForeignKeyCandidate>* slot = &slots[u];
      fk_jobs.push_back(scheduler.Submit(
          [&profiled, unit, slot, fk_options](const JobContext& ctx) {
            if (ctx.Cancelled()) return;
            *slot = VerifyForeignKeysAgainstKey(
                profiled, unit.referencing, unit.referenced, unit.key,
                fk_options);
          }));
    }
    for (JobId id : fk_jobs) scheduler.Wait(id);
    for (std::vector<ForeignKeyCandidate>& slot : slots) {
      report->foreign_keys.insert(report->foreign_keys.end(), slot.begin(),
                                  slot.end());
    }
    SortForeignKeyCandidates(&report->foreign_keys);
    report->fk_seconds = watch.ElapsedSeconds();
  }

  // Persist the artifact next to the catalog (durable write: temp + sync +
  // rename + dirsync, the same discipline as the stores).
  std::string dir =
      !options.report_dir.empty() ? options.report_dir : service_->catalog_dir();
  if (dir.empty()) return Status::OK();
  FileSystem* fs = options.fs != nullptr ? options.fs : DefaultFileSystem();
  Status s = fs->CreateDir(dir);
  if (!s.ok()) return s;
  const std::string path = JoinPath(dir, "schema_report.json");
  const std::string tmp = path + ".tmp";
  const std::string json = SchemaReportToJson(*report);
  if (s.ok()) s = fs->WriteFile(tmp, json);
  if (s.ok()) s = fs->SyncFile(tmp);
  if (s.ok()) s = fs->Rename(tmp, path);
  if (s.ok()) s = fs->SyncDir(dir);
  if (s.ok()) report->report_path = path;
  return s;
}

std::string SchemaReportToJson(const SchemaReport& report) {
  std::string out = "{\n  \"tables\": [\n";
  for (size_t i = 0; i < report.tables.size(); ++i) {
    const SchemaReport::TableEntry& t = report.tables[i];
    const Schema& schema = t.table->schema();
    out += "    {\n";
    out += "      \"name\": \"" + JsonEscape(t.name) + "\",\n";
    out += "      \"rows\": " + std::to_string(t.table->num_rows()) + ",\n";
    out += "      \"columns\": " + std::to_string(t.table->num_columns()) +
           ",\n";
    out += "      \"fingerprint\": " + std::to_string(t.fingerprint) + ",\n";
    out += std::string("      \"catalog_hit\": ") +
           (t.catalog_hit ? "true" : "false") + ",\n";
    out += std::string("      \"tree_cache_hit\": ") +
           (t.tree_cache_hit ? "true" : "false") + ",\n";
    out += "      \"keys\": [\n";
    for (size_t k = 0; k < t.result.keys.size(); ++k) {
      const DiscoveredKey& key = t.result.keys[k];
      out += "        {\"columns\": [";
      AppendAttrNames(schema, key.attrs, &out);
      out += "], \"estimated_strength\": " +
             FormatDouble(key.estimated_strength) + "}";
      out += k + 1 < t.result.keys.size() ? ",\n" : "\n";
    }
    out += "      ],\n";
    out += "      \"fds\": [\n";
    for (size_t f = 0; f < t.fds.size(); ++f) {
      const FdCandidate& fd = t.fds[f];
      out += "        {\"lhs\": [";
      AppendAttrNames(schema, fd.lhs, &out);
      out += "], \"rhs\": \"" + JsonEscape(schema.name(fd.rhs)) + "\"";
      out += ", \"redundancy\": " + FormatDouble(fd.redundancy);
      out += ", \"lhs_distinct\": " + std::to_string(fd.lhs_distinct) + "}";
      out += f + 1 < t.fds.size() ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += i + 1 < report.tables.size() ? "    },\n" : "    }\n";
  }
  out += "  ],\n  \"foreign_keys\": [\n";
  for (size_t i = 0; i < report.foreign_keys.size(); ++i) {
    const ForeignKeyCandidate& fk = report.foreign_keys[i];
    const SchemaReport::TableEntry& ft = report.tables[fk.referencing_table];
    const SchemaReport::TableEntry& kt = report.tables[fk.referenced_table];
    out += "    {\"referencing_table\": \"" + JsonEscape(ft.name) + "\"";
    out += ", \"columns\": [";
    for (size_t c = 0; c < fk.foreign_key_columns.size(); ++c) {
      if (c > 0) out += ", ";
      out += "\"" +
             JsonEscape(ft.table->schema().name(fk.foreign_key_columns[c])) +
             "\"";
    }
    out += "], \"referenced_table\": \"" + JsonEscape(kt.name) + "\"";
    out += ", \"referenced_key\": [";
    AppendAttrNames(kt.table->schema(), fk.referenced_key, &out);
    out += "], \"coverage\": " + FormatDouble(fk.coverage);
    out += ", \"referenced_coverage\": " + FormatDouble(fk.referenced_coverage);
    out += ", \"distinct_fk_tuples\": " + std::to_string(fk.distinct_fk_tuples);
    out += "}";
    out += i + 1 < report.foreign_keys.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"key_seconds\": " + FormatDouble(report.key_seconds) + ",\n";
  out += "  \"fd_seconds\": " + FormatDouble(report.fd_seconds) + ",\n";
  out += "  \"fk_seconds\": " + FormatDouble(report.fk_seconds) + "\n";
  out += "}\n";
  return out;
}

}  // namespace gordian
