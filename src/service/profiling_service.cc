#include "service/profiling_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gordian {

ProfilingService::ProfilingService(ServiceOptions options)
    : owned_catalog_(options.catalog == nullptr ? new KeyCatalog() : nullptr),
      catalog_(options.catalog == nullptr ? owned_catalog_.get()
                                          : options.catalog),
      tree_cache_(options.tree_cache_bytes > 0
                      ? std::make_unique<TreeArtifactCache>(
                            options.tree_cache_bytes)
                      : nullptr),
      catalog_dir_(options.catalog_dir),
      flush_every_puts_(options.flush_every_puts),
      scheduler_(options.num_threads) {
  ingest_spill_.memory_budget_bytes = options.spill_memory_budget;
  ingest_spill_.spill_dir = options.spill_dir;
  ingest_spill_.fs = options.fs;
  if (ingest_spill_.enabled()) {
    // The spill directory is scratch space; create it up front rather than
    // having CSV jobs race to (CreateDir succeeds when it exists).
    FileSystem* fs = options.fs != nullptr ? options.fs : DefaultFileSystem();
    (void)fs->CreateDir(ingest_spill_.spill_dir);
  }
  if (!options.table_artifact_dir.empty()) {
    TableArtifactStore::Options store_options;
    store_options.fs = options.fs;
    store_options.metrics = &metrics_;
    artifact_store_ = std::make_unique<TableArtifactStore>(
        options.table_artifact_dir, store_options);
    if (!artifact_store_->Init().ok()) {
      // Unusable root: run without table persistence, like an unusable
      // catalog directory runs without result persistence.
      artifact_store_.reset();
    }
  }
  if (!options.catalog_dir.empty()) {
    CatalogStore::Options store_options;
    store_options.mode = CatalogStore::Mode::kReadWrite;
    store_options.fs = options.fs;
    store_options.metrics = &metrics_;
    catalog_store_ = std::make_unique<CatalogStore>(
        options.catalog_dir, catalog_, store_options);
    Status open_status = catalog_store_->Open(&recovery_report_);
    persistence_status_ = open_status;
    if (!open_status.ok() && !open_status.IsPartial()) {
      // Unusable directory (most often: another writer holds the lease).
      // The service still works, just without durability; callers that
      // need the guarantee check persistence_status().
      catalog_store_.reset();
    } else if (flush_every_puts_ > 0) {
      flusher_ = std::thread([this] { FlusherMain(); });
    }
  }
}

ProfilingService::~ProfilingService() {
  // Drain jobs first: their bodies are what put entries into the catalog,
  // and the final flush below must see all of them.
  scheduler_.WaitAll();
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_flusher_ = true;
    }
    flush_cv_.notify_one();
    flusher_.join();
  }
  if (catalog_store_ != nullptr) (void)FlushCatalog();
}

Status ProfilingService::persistence_status() const {
  std::lock_guard<std::mutex> lock(flush_mu_);
  return persistence_status_;
}

Status ProfilingService::FlushCatalog() {
  if (catalog_store_ == nullptr) return Status::OK();
  Status s = catalog_store_->Flush(nullptr);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(flush_mu_);
    persistence_status_ = s;
  }
  return s;
}

void ProfilingService::NotePut() {
  if (catalog_store_ == nullptr || flush_every_puts_ <= 0) return;
  bool wake;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    wake = ++unflushed_puts_ >= flush_every_puts_;
  }
  if (wake) flush_cv_.notify_one();
}

void ProfilingService::FlusherMain() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    flush_cv_.wait(lock, [this] {
      return stop_flusher_ || unflushed_puts_ >= flush_every_puts_;
    });
    if (stop_flusher_) return;  // the destructor runs the final flush
    unflushed_puts_ = 0;
    lock.unlock();
    (void)FlushCatalog();
    lock.lock();
  }
}

GordianOptions ProfilingService::EffectiveOptions(
    const ProfileJobOptions& options, const JobContext& ctx) {
  GordianOptions g = options.gordian;
  g.cancel_flag = ctx.cancel_flag;
  if (options.timeout_seconds > 0) {
    g.time_budget_seconds =
        g.time_budget_seconds > 0
            ? std::min(g.time_budget_seconds, options.timeout_seconds)
            : options.timeout_seconds;
  }
  return g;
}

JobId ProfilingService::SubmitTable(const std::string& name,
                                    const Table* table,
                                    const ProfileJobOptions& options) {
  metrics_.OnSubmitted();
  auto rec = std::make_shared<Record>();
  rec->name = name;
  rec->table = table;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(table);
    if (it != inflight_.end()) {
      // Coalesce onto a live job for the same table; a stale entry (its job
      // already terminal) is dropped and this submission runs fresh.
      if (!IsTerminal(scheduler_.Poll(it->second).state)) {
        rec->alias_of = it->second;
        JobId id = next_alias_id_--;
        records_.emplace(id, std::move(rec));
        metrics_.OnCoalesced();
        return id;
      }
      inflight_.erase(it);
    }
  }

  Stopwatch submit_watch;
  JobId id = scheduler_.Submit(
      [this, rec, options, submit_watch](const JobContext& ctx) {
        try {
          RunTableJob(rec.get(), options, ctx);
        } catch (...) {
          metrics_.OnFailed();
          metrics_.OnJobFinished(submit_watch.ElapsedSeconds());
          throw;  // the scheduler records the message and marks kFailed
        }
        if (ctx.Cancelled()) {
          metrics_.OnCancelled();
        } else {
          metrics_.OnCompleted();
        }
        metrics_.OnJobFinished(submit_watch.ElapsedSeconds());
      },
      options.priority);

  {
    std::lock_guard<std::mutex> lock(mu_);
    records_.emplace(id, rec);
    // The job may already have finished on a fast worker; registering it
    // anyway is harmless because lookups validate liveness (above).
    inflight_[table] = id;
  }
  return id;
}

JobId ProfilingService::SubmitCsv(const std::string& name,
                                  const std::string& path,
                                  const CsvOptions& csv_options,
                                  const ProfileJobOptions& options) {
  metrics_.OnSubmitted();
  auto rec = std::make_shared<Record>();
  rec->name = name;

  Stopwatch submit_watch;
  JobId id = scheduler_.Submit(
      [this, rec, path, csv_options, options,
       submit_watch](const JobContext& ctx) {
        try {
          RunCsvJob(rec.get(), path, csv_options, options, ctx);
        } catch (...) {
          metrics_.OnFailed();
          metrics_.OnJobFinished(submit_watch.ElapsedSeconds());
          throw;
        }
        if (ctx.Cancelled()) {
          metrics_.OnCancelled();
        } else {
          metrics_.OnCompleted();
        }
        metrics_.OnJobFinished(submit_watch.ElapsedSeconds());
      },
      options.priority);

  std::lock_guard<std::mutex> lock(mu_);
  records_.emplace(id, std::move(rec));
  return id;
}

void ProfilingService::RunTableJob(Record* rec,
                                   const ProfileJobOptions& options,
                                   const JobContext& ctx) {
  rec->started = true;
  const Table& table = *rec->table;
  rec->fingerprint = TableFingerprint(table);
  if (options.use_catalog) {
    CatalogEntry entry;
    if (catalog_->Lookup(rec->fingerprint, &entry)) {
      rec->cache_hit = true;
      rec->result = std::move(entry.result);
      metrics_.OnCacheHit();
      return;
    }
    metrics_.OnCacheMiss();
  }
  // Discovery through the staged pipeline, reusing a cached prefix-tree
  // artifact when one matches this job's table + tree-shape options.
  TreeArtifactCache* cache =
      options.use_tree_cache ? tree_cache_.get() : nullptr;
  std::vector<StageMetric> stage_metrics;
  rec->result =
      ProfileWithTreeCache(table, EffectiveOptions(options, ctx),
                           rec->fingerprint, cache, &rec->tree_cache_hit,
                           &stage_metrics);
  if (cache != nullptr) {
    if (rec->tree_cache_hit) {
      metrics_.OnTreeCacheHit();
      // A hit whose traversal ran the frozen layout was served the cached
      // artifact's prefrozen twin — the run paid neither build nor freeze.
      if (rec->result.stats.frozen_traversal_used) metrics_.OnFrozenServe();
    } else {
      metrics_.OnTreeCacheMiss();
      if (rec->result.stats.freeze_seconds > 0 ||
          rec->result.stats.frozen_tree_bytes > 0) {
        metrics_.OnTreeFrozen(rec->result.stats.freeze_seconds,
                              rec->result.stats.frozen_tree_bytes,
                              rec->result.stats.base_tree_nodes);
      }
    }
  }
  metrics_.OnStageMetrics(stage_metrics);
  // Incomplete results (budget, timeout, cancellation) certify nothing and
  // must not poison the catalog; Put would refuse them anyway.
  if (options.use_catalog && !rec->result.incomplete) {
    if (catalog_->Put(rec->fingerprint, rec->name, table.num_columns(),
                      rec->result)) {
      NotePut();
    }
    // Persist the table itself alongside its result, so a later process
    // can reload it by fingerprint without the original source. Failures
    // are counted (artifact_put_errors) but don't fail the job — the
    // discovery result stands on its own.
    if (artifact_store_ != nullptr) {
      (void)artifact_store_->Put(rec->fingerprint, table);
    }
  }
}

void ProfilingService::RunCsvJob(Record* rec, const std::string& path,
                                 const CsvOptions& csv_options,
                                 const ProfileJobOptions& options,
                                 const JobContext& ctx) {
  rec->started = true;
  KeyDiscoveryResult result;
  IngestStats ingest;
  Status s =
      ProfileCsvFile(path, csv_options, EffectiveOptions(options, ctx),
                     ingest_spill_, &result, &ingest);
  metrics_.OnIngest(ingest.batches, ingest.rows, ingest.bytes);
  if (!s.ok()) throw std::runtime_error(s.ToString());
  rec->result = std::move(result);
}

bool ProfilingService::Cancel(JobId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(id);
    if (it == records_.end() || it->second->alias_of != 0) return false;
  }
  bool before_running = false;
  if (!scheduler_.Cancel(id, &before_running)) return false;
  if (before_running) {
    // The body never ran, so its completion hooks never will; account for
    // the cancellation here.
    metrics_.OnCancelled();
    metrics_.OnJobFinished(scheduler_.Poll(id).latency_seconds);
  }
  return true;
}

JobInfo ProfilingService::Poll(JobId id) const {
  JobId target = id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(id);
    if (it == records_.end()) return JobInfo{};
    if (it->second->alias_of != 0) target = it->second->alias_of;
  }
  return scheduler_.Poll(target);
}

ProfileOutcome ProfilingService::Wait(JobId id) {
  std::shared_ptr<Record> rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(id);
    if (it == records_.end()) return ProfileOutcome{};
    rec = it->second;
  }
  if (rec->alias_of != 0) {
    ProfileOutcome out = Wait(rec->alias_of);
    out.coalesced = true;
    out.table_name = rec->name;
    return out;
  }
  ProfileOutcome out;
  out.info = scheduler_.Wait(id);
  out.cache_hit = rec->cache_hit;
  out.tree_cache_hit = rec->tree_cache_hit;
  out.fingerprint = rec->fingerprint;
  out.table_name = rec->name;
  out.result = rec->result;
  if (out.info.state == JobState::kCancelled && !rec->started) {
    // Cancelled while still queued: discovery never ran, so the default
    // result must say so rather than masquerade as "no keys found".
    out.result.incomplete = true;
    out.result.incomplete_reason = AbortReason::kCancelled;
  }
  return out;
}

void ProfilingService::WaitAll() { scheduler_.WaitAll(); }

Status ProfilingService::RegisterAppendable(const std::string& name,
                                            const Table& table,
                                            const GordianOptions& options,
                                            uint64_t* fingerprint) {
  // The chain re-profiles from the tree alone; options that need the raw
  // table on every run cannot be honoured incrementally (and ReprofileTree
  // would reject them on the first append — fail at registration instead).
  if (options.sample_rows > 0) {
    return Status::InvalidArgument(
        "appendable chains cannot sample: a reservoir is not append-stable");
  }
  if (options.null_semantics !=
      GordianOptions::NullSemantics::kNullEqualsNull) {
    return Status::InvalidArgument(
        "appendable chains require kNullEqualsNull: null-excluding "
        "validation re-reads the raw table");
  }
  auto chain = std::make_shared<Appendable>();
  chain->name = name;
  chain->options = options;
  Status s = AppendState::Begin(table, &chain->state);
  if (!s.ok()) return s;
  const uint64_t fp = chain->state.fingerprint();

  // Profile the base synchronously through the tree cache, so the first
  // append finds a resident tree to absorb into.
  KeyDiscoveryResult result = ProfileWithTreeCache(
      table, options, fp, tree_cache_.get(), nullptr, nullptr);
  if (!result.incomplete) {
    chain->last_non_keys = result.non_keys;
    if (catalog_->Put(fp, name, table.num_columns(), result)) NotePut();
  }
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    appendables_[fp] = std::move(chain);
  }
  if (fingerprint != nullptr) *fingerprint = fp;
  return Status::OK();
}

Status ProfilingService::AppendAndReprofile(uint64_t fingerprint,
                                            const RowBatch& batch,
                                            AppendOutcome* out) {
  std::shared_ptr<Appendable> chain;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    auto it = appendables_.find(fingerprint);
    if (it == appendables_.end()) {
      return Status::NotFound(
          "no appendable chain is registered under this fingerprint");
    }
    chain = it->second;
  }
  std::lock_guard<std::mutex> chain_lock(chain->chain_mu);
  if (chain->state.fingerprint() != fingerprint) {
    // A concurrent append advanced the chain between our registry lookup
    // and taking the chain lock; callers must pass the handle the previous
    // call returned.
    return Status::InvalidArgument(
        "stale append handle: the chain has advanced past this fingerprint");
  }
  const uint64_t old_fp = fingerprint;
  const int64_t old_rows = chain->state.num_rows();
  Status s = chain->state.Absorb(batch);
  if (!s.ok()) return s;
  const uint64_t new_fp = chain->state.fingerprint();
  const int64_t delta_rows = chain->state.num_rows() - old_rows;
  const int num_columns = chain->state.num_columns();

  GordianOptions run_options = chain->options;
  if (!chain->last_non_keys.empty()) {
    run_options.warm_start_non_keys = &chain->last_non_keys;
  }

  KeyDiscoveryResult result;
  bool tree_absorbed = false;
  double refreeze_seconds = 0;

  TreeArtifactCache* cache = tree_cache_.get();
  TreeArtifactCache::Lease lease;
  if (cache != nullptr) {
    lease =
        cache->Acquire(MakeTreeCacheKey(old_fp, num_columns, chain->options));
  }
  if (lease.valid() && lease.tree() != nullptr &&
      lease.tree()->root() != nullptr) {
    // Fast path: absorb the delta into the leased tree in place and rekey
    // the cache entry to the new fingerprint. The exclusive lease is held
    // across both, so a concurrent Profile of the old fingerprint
    // busy-misses and builds privately — it can never observe the tree
    // mid-absorb.
    PrefixTree* tree = lease.tree();
    std::vector<const uint32_t*> level_codes;
    level_codes.reserve(static_cast<size_t>(tree->num_levels()));
    for (int l = 0; l < tree->num_levels(); ++l) {
      level_codes.push_back(
          chain->state.codes(tree->attribute_at_level(l)).data() + old_rows);
    }
    (void)tree->AbsorbBatch(level_codes, delta_rows);
    std::unique_ptr<FrozenTree> refrozen;
    Status rs = ReprofileTree(tree, run_options, num_columns,
                              chain->state.num_rows(), &result, &refrozen);
    if (!rs.ok()) return rs;
    refreeze_seconds = result.stats.freeze_seconds;
    cache->Rekey(lease, MakeTreeCacheKey(new_fp, num_columns, chain->options),
                 std::move(refrozen));
    lease.Release();
    tree_absorbed = true;
  } else {
    lease.Release();
    // Slow path: the base tree is gone (evicted, cache disabled) or pinned
    // by a concurrent run. Re-profile a snapshot — still warm-started —
    // and admit the fresh tree under the new fingerprint.
    Table snapshot = chain->state.Snapshot();
    result = ProfileWithTreeCache(snapshot, run_options, new_fp, cache,
                                  nullptr, nullptr);
  }

  if (!result.incomplete) {
    chain->last_non_keys = result.non_keys;
    if (catalog_->Put(new_fp, chain->name, num_columns, result)) NotePut();
  }
  metrics_.OnAppend(delta_rows, tree_absorbed, result.stats.warm_start_prunes,
                    refreeze_seconds);

  {
    std::lock_guard<std::mutex> lock(append_mu_);
    appendables_.erase(old_fp);
    appendables_[new_fp] = chain;
  }

  if (out != nullptr) {
    out->fingerprint = new_fp;
    out->tree_absorbed = tree_absorbed;
    out->refreeze_seconds = refreeze_seconds;
    out->result = std::move(result);
  }
  return Status::OK();
}

ServiceMetrics::Snapshot ProfilingService::Metrics() const {
  ServiceMetrics::Snapshot s = metrics_.Read();
  s.queue_depth = scheduler_.queue_depth();
  s.running_jobs = scheduler_.running_jobs();
  return s;
}

}  // namespace gordian
