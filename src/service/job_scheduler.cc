#include "service/job_scheduler.h"

#include <exception>
#include <utility>

namespace gordian {

JobScheduler::JobScheduler(int num_threads)
    : pool_(num_threads <= 0 ? DefaultThreadCount() : num_threads) {}

JobScheduler::~JobScheduler() { WaitAll(); }

JobId JobScheduler::Submit(std::function<void(const JobContext&)> body,
                           int priority) {
  JobId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->priority = priority;
    job->seq = next_seq_++;
    job->body = std::move(body);
    job->watch.Restart();
    ready_.insert({-priority, job->seq, id});
    jobs_.emplace(id, std::move(job));
    ++active_;
  }
  pool_.Submit([this] { RunNext(); });
  return id;
}

void JobScheduler::RunNext() {
  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Empty only when a queued job was cancelled after its pool slot was
    // submitted; that slot then has nothing to do.
    if (ready_.empty()) return;
    auto it = ready_.begin();
    job = jobs_.at(std::get<2>(*it)).get();
    ready_.erase(it);
    job->state = JobState::kRunning;
    ++running_;
  }

  JobContext ctx;
  ctx.id = job->id;
  ctx.cancel_flag = &job->cancel;
  JobState final_state = JobState::kSucceeded;
  std::string error;
  try {
    job->body(ctx);
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  } catch (...) {
    final_state = JobState::kFailed;
    error = "unknown exception";
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    if (final_state == JobState::kSucceeded &&
        job->cancel.load(std::memory_order_relaxed)) {
      // The body returned after a cancel request: the job counts as
      // cancelled; whatever partial result it produced is marked incomplete
      // by the body itself.
      final_state = JobState::kCancelled;
    }
    job->error = std::move(error);
    FinishLocked(*job, final_state);
  }
  done_cv_.notify_all();
}

void JobScheduler::FinishLocked(Job& job, JobState state) {
  job.state = state;
  job.latency_seconds = job.watch.ElapsedSeconds();
  job.body = nullptr;  // release captured resources promptly
  --active_;
}

bool JobScheduler::Cancel(JobId id, bool* cancelled_before_running) {
  if (cancelled_before_running != nullptr) *cancelled_before_running = false;
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    if (IsTerminal(job.state)) return false;
    job.cancel.store(true, std::memory_order_relaxed);
    if (job.state == JobState::kQueued) {
      if (cancelled_before_running != nullptr) *cancelled_before_running = true;
      // Dequeue so it never runs; its pool slot becomes a no-op.
      ready_.erase({-job.priority, job.seq, job.id});
      FinishLocked(job, JobState::kCancelled);
      notify = true;
    }
  }
  if (notify) done_cv_.notify_all();
  return true;
}

JobInfo JobScheduler::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  JobInfo info;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return info;
  const Job& job = *it->second;
  info.valid = true;
  info.state = job.state;
  info.priority = job.priority;
  info.cancel_requested = job.cancel.load(std::memory_order_relaxed);
  info.latency_seconds = job.latency_seconds;
  info.error = job.error;
  return info;
}

JobInfo JobScheduler::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return JobInfo{};
  Job* job = it->second.get();
  done_cv_.wait(lock, [job] { return IsTerminal(job->state); });
  JobInfo info;
  info.valid = true;
  info.state = job->state;
  info.priority = job->priority;
  info.cancel_requested = job->cancel.load(std::memory_order_relaxed);
  info.latency_seconds = job->latency_seconds;
  info.error = job->error;
  return info;
}

void JobScheduler::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
}

bool JobScheduler::Forget(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !IsTerminal(it->second->state)) return false;
  jobs_.erase(it);
  return true;
}

int64_t JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(ready_.size());
}

int64_t JobScheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace gordian
