#ifndef GORDIAN_SERVICE_TABLE_ARTIFACTS_H_
#define GORDIAN_SERVICE_TABLE_ARTIFACTS_H_

#include <cstdint>
#include <string>

#include "common/fault_fs.h"
#include "common/status.h"
#include "service/metrics.h"
#include "table/code_column.h"
#include "table/table.h"

namespace gordian {

// Durable, fingerprint-addressed table storage next to the key catalog:
// once a table has been ingested (and possibly spilled) it can be persisted
// here and reattached later without re-parsing its source or rebuilding its
// dictionaries — the reloaded table's columns stay on disk as mmap-backed
// CodeColumns, so serving a 100M-row artifact costs dictionary memory only.
//
// On-disk layout (one subdirectory per table, named by its 16-hex-digit
// TableFingerprint — content-addressed, so a Put of an already-stored
// fingerprint is a no-op):
//
//   <dir>/<fingerprint>/meta.grdd    schema + dictionaries + row count
//                                    (serialize.h GRDD stream) followed by
//                                    a u64 checksum of the payload
//   <dir>/<fingerprint>/c<N>.grdl    column N's codes, one self-validating
//                                    GRDL file per column (code_column.h)
//
// Publication order makes a readable meta file the commit point: column
// files are each written via SpillColumnWriter's durable-replace sequence
// first, meta.grdd last (write temp + fsync + rename + directory fsync).
// A crash mid-Put leaves a directory without meta.grdd, which Contains/Get
// treat as absent and a retried Put simply overwrites.
//
// All I/O goes through the FileSystem seam; corrupt artifacts (checksum
// mismatch, truncated columns, row-count disagreement) fail Get with a
// clean InvalidArgument, never out-of-bounds decoding.
class TableArtifactStore {
 public:
  struct Options {
    FileSystem* fs = nullptr;           // null = DefaultFileSystem()
    int64_t chunk_rows = kSpillChunkRows;
    ServiceMetrics* metrics = nullptr;  // optional put/get counters
  };

  TableArtifactStore(std::string dir, Options options);
  explicit TableArtifactStore(std::string dir)
      : TableArtifactStore(std::move(dir), Options()) {}

  TableArtifactStore(const TableArtifactStore&) = delete;
  TableArtifactStore& operator=(const TableArtifactStore&) = delete;

  // Creates the root directory. Called lazily by Put as well; exposed so
  // callers can fail fast on an unusable path.
  Status Init();

  // True iff a complete artifact for `fingerprint` is published (its
  // meta.grdd exists — the commit point of Put).
  bool Contains(uint64_t fingerprint);

  // Persists `table` under its fingerprint. A no-op returning OK when the
  // fingerprint is already stored (same fingerprint = same contents). On
  // failure the partially written directory is left without its meta file,
  // i.e. absent to readers.
  Status Put(uint64_t fingerprint, const Table& table);

  // Reattaches a stored table: dictionaries reload into memory, columns
  // open as mmap-backed CodeColumns. NotFound when absent, InvalidArgument
  // when present but corrupt.
  Status Get(uint64_t fingerprint, Table* out);

  const std::string& dir() const { return dir_; }

  // Paths, exposed for tests and tooling.
  std::string ArtifactDir(uint64_t fingerprint) const;
  std::string MetaPath(uint64_t fingerprint) const;
  std::string ColumnPath(uint64_t fingerprint, int col) const;

 private:
  FileSystem* fs() const { return options_.fs; }

  const std::string dir_;
  Options options_;
};

}  // namespace gordian

#endif  // GORDIAN_SERVICE_TABLE_ARTIFACTS_H_
