#ifndef GORDIAN_SERVICE_METRICS_H_
#define GORDIAN_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace gordian {

// Monotonic counters for the profiling service, updated with relaxed
// atomics from worker and client threads alike. `Snapshot()` reads a
// consistent-enough picture for reporting; individual counters are exact,
// cross-counter invariants (submitted == completed + ...) only settle once
// the service is idle.
class ServiceMetrics {
 public:
  void OnSubmitted() { jobs_submitted_.fetch_add(1, kRelaxed); }
  void OnCompleted() { jobs_completed_.fetch_add(1, kRelaxed); }
  void OnCancelled() { jobs_cancelled_.fetch_add(1, kRelaxed); }
  void OnFailed() { jobs_failed_.fetch_add(1, kRelaxed); }
  void OnCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }
  void OnCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }
  void OnCoalesced() { coalesced_jobs_.fetch_add(1, kRelaxed); }
  void OnTreeCacheHit() { tree_cache_hits_.fetch_add(1, kRelaxed); }
  void OnTreeCacheMiss() { tree_cache_misses_.fetch_add(1, kRelaxed); }

  // A job's traversal ran over a prefrozen cached artifact (tree-cache hit
  // whose entry carried a FrozenTree — the run paid neither build nor
  // freeze).
  void OnFrozenServe() { frozen_serves_.fetch_add(1, kRelaxed); }

  // One freeze pass: its wall clock, the flat layout's byte footprint, and
  // the node count it covers (for the bytes-per-node derived figure).
  void OnTreeFrozen(double seconds, int64_t bytes, int64_t nodes) {
    trees_frozen_.fetch_add(1, kRelaxed);
    freeze_micros_.fetch_add(static_cast<int64_t>(seconds * 1e6), kRelaxed);
    frozen_tree_bytes_.fetch_add(bytes, kRelaxed);
    frozen_tree_nodes_.fetch_add(nodes, kRelaxed);
  }

  // One CatalogStore::Flush: shards rewritten, clean shards skipped via
  // their dirty bit, and payload bytes that went to disk (a fully warm
  // flush reports 16 skips and zero bytes).
  void OnCatalogFlush(int64_t shards_flushed, int64_t shards_skipped,
                      int64_t bytes_written) {
    catalog_flushes_.fetch_add(1, kRelaxed);
    shards_flushed_.fetch_add(shards_flushed, kRelaxed);
    dirty_shard_skips_.fetch_add(shards_skipped, kRelaxed);
    catalog_flush_bytes_.fetch_add(bytes_written, kRelaxed);
  }

  // One CatalogStore::Open or Refresh recovery outcome.
  void OnCatalogRecovery(int64_t shards_loaded, int64_t shards_quarantined) {
    shards_recovered_.fetch_add(shards_loaded, kRelaxed);
    shards_quarantined_.fetch_add(shards_quarantined, kRelaxed);
  }

  // One AppendAndReprofile call: the delta's row count, whether the batch
  // was absorbed into a leased cached tree (vs. a full rebuild fallback),
  // how many futility prunes the warm-start seeds earned in the
  // re-traversal, and the wall clock of the re-freeze pass.
  void OnAppend(int64_t delta_rows, bool tree_absorbed,
                int64_t warm_start_prunes, double refreeze_seconds) {
    appends_.fetch_add(1, kRelaxed);
    delta_rows_.fetch_add(delta_rows, kRelaxed);
    if (tree_absorbed) append_absorbs_.fetch_add(1, kRelaxed);
    warm_start_prunes_.fetch_add(warm_start_prunes, kRelaxed);
    refreeze_micros_.fetch_add(
        static_cast<int64_t>(refreeze_seconds * 1e6), kRelaxed);
  }

  // One CSV ingest's batch accounting (see IngestStats): RowBatches
  // scanned, rows they carried, and their columnar payload bytes.
  void OnIngest(int64_t batches, int64_t rows, int64_t bytes) {
    ingest_batches_.fetch_add(batches, kRelaxed);
    ingest_rows_.fetch_add(rows, kRelaxed);
    ingest_bytes_.fetch_add(bytes, kRelaxed);
  }

  // --- Table artifact store (service/table_artifacts.h) ----------------
  // One table durably persisted, with its on-disk footprint (columns+meta).
  void OnArtifactPut(int64_t bytes) {
    artifact_puts_.fetch_add(1, kRelaxed);
    artifact_put_bytes_.fetch_add(bytes, kRelaxed);
  }
  void OnArtifactPutError() { artifact_put_errors_.fetch_add(1, kRelaxed); }
  // One stored table reattached (dictionaries loaded, columns mmapped).
  void OnArtifactServe() { artifact_serves_.fetch_add(1, kRelaxed); }
  // A Get that found the artifact unreadable or corrupt.
  void OnArtifactGetError() { artifact_get_errors_.fetch_add(1, kRelaxed); }

  // --- Distributed front-end (src/net) ---------------------------------
  // One frame received / sent, with its framed size (header + payload).
  void OnRpcIn(int64_t bytes) {
    rpcs_in_.fetch_add(1, kRelaxed);
    rpc_bytes_in_.fetch_add(bytes, kRelaxed);
  }
  void OnRpcOut(int64_t bytes) {
    rpcs_out_.fetch_add(1, kRelaxed);
    rpc_bytes_out_.fetch_add(bytes, kRelaxed);
  }
  // A request refused for backpressure: full queue, no healthy worker, or
  // an exhausted client quota. The reply carried a retry-after hint.
  void OnRpcShed() { rpc_sheds_.fetch_add(1, kRelaxed); }
  // A forward re-dispatched after a transport failure (retry with jitter).
  void OnRpcRetry() { rpc_retries_.fetch_add(1, kRelaxed); }
  // A worker observed down by health checks and later back up.
  void OnWorkerRestart() { worker_restarts_.fetch_add(1, kRelaxed); }

  // Accumulates one discovery run's per-stage wall clock (pipeline stage
  // names: encode, tree_build, traverse, convert, validate; anything else
  // lands in the "other" bucket).
  void OnStageMetrics(const std::vector<StageMetric>& stages) {
    for (const StageMetric& m : stages) {
      const int slot = StageSlot(m.name);
      stage_micros_[slot].fetch_add(
          static_cast<int64_t>(m.seconds * 1e6), kRelaxed);
      stage_runs_[slot].fetch_add(1, kRelaxed);
    }
  }

  void OnJobFinished(double latency_seconds) {
    int64_t micros = static_cast<int64_t>(latency_seconds * 1e6);
    total_latency_micros_.fetch_add(micros, kRelaxed);
    int64_t prev = max_latency_micros_.load(kRelaxed);
    while (micros > prev &&
           !max_latency_micros_.compare_exchange_weak(prev, micros, kRelaxed)) {
    }
  }

  // Point-in-time view of all counters plus derived figures.
  struct Snapshot {
    int64_t jobs_submitted = 0;
    int64_t jobs_completed = 0;
    int64_t jobs_cancelled = 0;
    int64_t jobs_failed = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t coalesced_jobs = 0;
    int64_t tree_cache_hits = 0;
    int64_t tree_cache_misses = 0;
    int64_t frozen_serves = 0;
    int64_t trees_frozen = 0;
    double freeze_seconds = 0;
    int64_t frozen_tree_bytes = 0;
    int64_t frozen_tree_nodes = 0;
    int64_t catalog_flushes = 0;
    int64_t shards_flushed = 0;
    int64_t dirty_shard_skips = 0;
    int64_t catalog_flush_bytes = 0;
    int64_t shards_recovered = 0;
    int64_t shards_quarantined = 0;
    int64_t appends = 0;
    int64_t append_absorbs = 0;
    int64_t delta_rows = 0;
    int64_t warm_start_prunes = 0;
    double refreeze_seconds = 0;
    int64_t ingest_batches = 0;
    int64_t ingest_rows = 0;
    int64_t ingest_bytes = 0;
    int64_t artifact_puts = 0;
    int64_t artifact_put_bytes = 0;
    int64_t artifact_put_errors = 0;
    int64_t artifact_serves = 0;
    int64_t artifact_get_errors = 0;
    int64_t rpcs_in = 0;
    int64_t rpcs_out = 0;
    int64_t rpc_bytes_in = 0;
    int64_t rpc_bytes_out = 0;
    int64_t rpc_sheds = 0;
    int64_t rpc_retries = 0;
    int64_t worker_restarts = 0;
    int64_t queue_depth = 0;    // filled in by the service, not a counter
    int64_t running_jobs = 0;   // likewise
    double total_latency_seconds = 0;
    double max_latency_seconds = 0;

    // Per-pipeline-stage totals across all discovery runs, indexed as in
    // kStageNames; *_runs counts how many runs executed the stage.
    static constexpr int kNumStages = 6;
    static constexpr const char* kStageNames[kNumStages] = {
        "encode", "tree_build", "traverse", "convert", "validate", "other"};
    std::array<double, kNumStages> stage_seconds{};
    std::array<int64_t, kNumStages> stage_runs{};

    int64_t finished() const {
      return jobs_completed + jobs_cancelled + jobs_failed;
    }
    double mean_latency_seconds() const {
      int64_t n = finished();
      return n == 0 ? 0 : total_latency_seconds / static_cast<double>(n);
    }
    double cache_hit_rate() const {
      int64_t lookups = cache_hits + cache_misses;
      return lookups == 0
                 ? 0
                 : static_cast<double>(cache_hits) /
                       static_cast<double>(lookups);
    }
    double tree_cache_hit_rate() const {
      int64_t lookups = tree_cache_hits + tree_cache_misses;
      return lookups == 0
                 ? 0
                 : static_cast<double>(tree_cache_hits) /
                       static_cast<double>(lookups);
    }
    // Mean flat-layout footprint per frozen node, across every freeze the
    // service performed.
    double frozen_bytes_per_node() const {
      return frozen_tree_nodes == 0
                 ? 0
                 : static_cast<double>(frozen_tree_bytes) /
                       static_cast<double>(frozen_tree_nodes);
    }
  };

  Snapshot Read() const {
    Snapshot s;
    s.jobs_submitted = jobs_submitted_.load(kRelaxed);
    s.jobs_completed = jobs_completed_.load(kRelaxed);
    s.jobs_cancelled = jobs_cancelled_.load(kRelaxed);
    s.jobs_failed = jobs_failed_.load(kRelaxed);
    s.cache_hits = cache_hits_.load(kRelaxed);
    s.cache_misses = cache_misses_.load(kRelaxed);
    s.coalesced_jobs = coalesced_jobs_.load(kRelaxed);
    s.tree_cache_hits = tree_cache_hits_.load(kRelaxed);
    s.tree_cache_misses = tree_cache_misses_.load(kRelaxed);
    s.frozen_serves = frozen_serves_.load(kRelaxed);
    s.trees_frozen = trees_frozen_.load(kRelaxed);
    s.freeze_seconds =
        static_cast<double>(freeze_micros_.load(kRelaxed)) * 1e-6;
    s.frozen_tree_bytes = frozen_tree_bytes_.load(kRelaxed);
    s.frozen_tree_nodes = frozen_tree_nodes_.load(kRelaxed);
    s.catalog_flushes = catalog_flushes_.load(kRelaxed);
    s.shards_flushed = shards_flushed_.load(kRelaxed);
    s.dirty_shard_skips = dirty_shard_skips_.load(kRelaxed);
    s.catalog_flush_bytes = catalog_flush_bytes_.load(kRelaxed);
    s.shards_recovered = shards_recovered_.load(kRelaxed);
    s.shards_quarantined = shards_quarantined_.load(kRelaxed);
    s.appends = appends_.load(kRelaxed);
    s.append_absorbs = append_absorbs_.load(kRelaxed);
    s.delta_rows = delta_rows_.load(kRelaxed);
    s.warm_start_prunes = warm_start_prunes_.load(kRelaxed);
    s.refreeze_seconds =
        static_cast<double>(refreeze_micros_.load(kRelaxed)) * 1e-6;
    s.ingest_batches = ingest_batches_.load(kRelaxed);
    s.ingest_rows = ingest_rows_.load(kRelaxed);
    s.ingest_bytes = ingest_bytes_.load(kRelaxed);
    s.artifact_puts = artifact_puts_.load(kRelaxed);
    s.artifact_put_bytes = artifact_put_bytes_.load(kRelaxed);
    s.artifact_put_errors = artifact_put_errors_.load(kRelaxed);
    s.artifact_serves = artifact_serves_.load(kRelaxed);
    s.artifact_get_errors = artifact_get_errors_.load(kRelaxed);
    s.rpcs_in = rpcs_in_.load(kRelaxed);
    s.rpcs_out = rpcs_out_.load(kRelaxed);
    s.rpc_bytes_in = rpc_bytes_in_.load(kRelaxed);
    s.rpc_bytes_out = rpc_bytes_out_.load(kRelaxed);
    s.rpc_sheds = rpc_sheds_.load(kRelaxed);
    s.rpc_retries = rpc_retries_.load(kRelaxed);
    s.worker_restarts = worker_restarts_.load(kRelaxed);
    for (int i = 0; i < Snapshot::kNumStages; ++i) {
      s.stage_seconds[i] =
          static_cast<double>(stage_micros_[i].load(kRelaxed)) * 1e-6;
      s.stage_runs[i] = stage_runs_[i].load(kRelaxed);
    }
    s.total_latency_seconds =
        static_cast<double>(total_latency_micros_.load(kRelaxed)) * 1e-6;
    s.max_latency_seconds =
        static_cast<double>(max_latency_micros_.load(kRelaxed)) * 1e-6;
    return s;
  }

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  static int StageSlot(const std::string& name) {
    for (int i = 0; i < Snapshot::kNumStages - 1; ++i) {
      if (name == Snapshot::kStageNames[i]) return i;
    }
    return Snapshot::kNumStages - 1;  // "other"
  }

  std::atomic<int64_t> jobs_submitted_{0};
  std::atomic<int64_t> jobs_completed_{0};
  std::atomic<int64_t> jobs_cancelled_{0};
  std::atomic<int64_t> jobs_failed_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> coalesced_jobs_{0};
  std::atomic<int64_t> tree_cache_hits_{0};
  std::atomic<int64_t> tree_cache_misses_{0};
  std::atomic<int64_t> frozen_serves_{0};
  std::atomic<int64_t> trees_frozen_{0};
  std::atomic<int64_t> freeze_micros_{0};
  std::atomic<int64_t> frozen_tree_bytes_{0};
  std::atomic<int64_t> frozen_tree_nodes_{0};
  std::atomic<int64_t> catalog_flushes_{0};
  std::atomic<int64_t> shards_flushed_{0};
  std::atomic<int64_t> dirty_shard_skips_{0};
  std::atomic<int64_t> catalog_flush_bytes_{0};
  std::atomic<int64_t> shards_recovered_{0};
  std::atomic<int64_t> shards_quarantined_{0};
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> append_absorbs_{0};
  std::atomic<int64_t> delta_rows_{0};
  std::atomic<int64_t> warm_start_prunes_{0};
  std::atomic<int64_t> refreeze_micros_{0};
  std::atomic<int64_t> ingest_batches_{0};
  std::atomic<int64_t> ingest_rows_{0};
  std::atomic<int64_t> ingest_bytes_{0};
  std::atomic<int64_t> artifact_puts_{0};
  std::atomic<int64_t> artifact_put_bytes_{0};
  std::atomic<int64_t> artifact_put_errors_{0};
  std::atomic<int64_t> artifact_serves_{0};
  std::atomic<int64_t> artifact_get_errors_{0};
  std::atomic<int64_t> rpcs_in_{0};
  std::atomic<int64_t> rpcs_out_{0};
  std::atomic<int64_t> rpc_bytes_in_{0};
  std::atomic<int64_t> rpc_bytes_out_{0};
  std::atomic<int64_t> rpc_sheds_{0};
  std::atomic<int64_t> rpc_retries_{0};
  std::atomic<int64_t> worker_restarts_{0};
  std::array<std::atomic<int64_t>, Snapshot::kNumStages> stage_micros_{};
  std::array<std::atomic<int64_t>, Snapshot::kNumStages> stage_runs_{};
  std::atomic<int64_t> total_latency_micros_{0};
  std::atomic<int64_t> max_latency_micros_{0};
};

// Multi-line human-readable rendering in the style of the report module's
// text outputs; ends with a newline.
std::string FormatServiceMetrics(const ServiceMetrics::Snapshot& s);

}  // namespace gordian

#endif  // GORDIAN_SERVICE_METRICS_H_
