#ifndef GORDIAN_SERVICE_THREAD_POOL_H_
#define GORDIAN_SERVICE_THREAD_POOL_H_

// ThreadPool moved to common/ so the core's parallel traversal can use it
// without a service dependency cycle; this forwarder keeps old includes
// working.
#include "common/thread_pool.h"

#endif  // GORDIAN_SERVICE_THREAD_POOL_H_
