#include "service/metrics.h"

#include <cstdio>

namespace gordian {

std::string FormatServiceMetrics(const ServiceMetrics::Snapshot& s) {
  char buf[256];
  std::string out = "profiling service metrics:\n";
  auto line = [&](const char* name, int64_t v) {
    std::snprintf(buf, sizeof(buf), "  %-18s %lld\n", name,
                  static_cast<long long>(v));
    out += buf;
  };
  line("jobs submitted", s.jobs_submitted);
  line("jobs completed", s.jobs_completed);
  line("jobs cancelled", s.jobs_cancelled);
  line("jobs failed", s.jobs_failed);
  line("cache hits", s.cache_hits);
  line("cache misses", s.cache_misses);
  line("coalesced jobs", s.coalesced_jobs);
  line("tree cache hits", s.tree_cache_hits);
  line("tree cache misses", s.tree_cache_misses);
  if (s.trees_frozen > 0 || s.frozen_serves > 0) {
    line("frozen serves", s.frozen_serves);
    line("trees frozen", s.trees_frozen);
    std::snprintf(buf, sizeof(buf), "  %-18s %.3f ms\n", "freeze wall",
                  s.freeze_seconds * 1e3);
    out += buf;
    line("frozen bytes", s.frozen_tree_bytes);
    std::snprintf(buf, sizeof(buf), "  %-18s %.1f\n", "frozen bytes/node",
                  s.frozen_bytes_per_node());
    out += buf;
  }
  line("queue depth", s.queue_depth);
  line("running jobs", s.running_jobs);
  if (s.catalog_flushes > 0 || s.shards_recovered > 0 ||
      s.shards_quarantined > 0) {
    line("catalog flushes", s.catalog_flushes);
    line("shards flushed", s.shards_flushed);
    line("dirty-shard skips", s.dirty_shard_skips);
    line("flush bytes", s.catalog_flush_bytes);
    line("shards recovered", s.shards_recovered);
    line("shards quarantined", s.shards_quarantined);
  }
  if (s.appends > 0) {
    line("appends", s.appends);
    line("append absorbs", s.append_absorbs);
    line("delta rows", s.delta_rows);
    line("warm-start prunes", s.warm_start_prunes);
    std::snprintf(buf, sizeof(buf), "  %-18s %.3f ms\n", "refreeze wall",
                  s.refreeze_seconds * 1e3);
    out += buf;
  }
  if (s.ingest_batches > 0) {
    line("ingest batches", s.ingest_batches);
    line("ingest rows", s.ingest_rows);
    line("ingest bytes", s.ingest_bytes);
  }
  if (s.artifact_puts > 0 || s.artifact_serves > 0 ||
      s.artifact_put_errors > 0 || s.artifact_get_errors > 0) {
    line("artifact puts", s.artifact_puts);
    line("artifact put bytes", s.artifact_put_bytes);
    line("artifact put errors", s.artifact_put_errors);
    line("artifact serves", s.artifact_serves);
    line("artifact get errors", s.artifact_get_errors);
  }
  if (s.rpcs_in > 0 || s.rpcs_out > 0) {
    line("rpcs in", s.rpcs_in);
    line("rpcs out", s.rpcs_out);
    line("rpc bytes in", s.rpc_bytes_in);
    line("rpc bytes out", s.rpc_bytes_out);
    line("rpc sheds", s.rpc_sheds);
    line("rpc retries", s.rpc_retries);
    line("worker restarts", s.worker_restarts);
  }
  std::snprintf(buf, sizeof(buf), "  %-18s %.1f%%\n", "cache hit rate",
                s.cache_hit_rate() * 100);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %.1f%%\n", "tree hit rate",
                s.tree_cache_hit_rate() * 100);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %.3f ms\n", "mean latency",
                s.mean_latency_seconds() * 1e3);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %.3f ms\n", "max latency",
                s.max_latency_seconds * 1e3);
  out += buf;
  bool any_stage = false;
  for (int i = 0; i < ServiceMetrics::Snapshot::kNumStages; ++i) {
    if (s.stage_runs[i] != 0) any_stage = true;
  }
  if (any_stage) {
    out += "  per-stage wall clock:\n";
    for (int i = 0; i < ServiceMetrics::Snapshot::kNumStages; ++i) {
      if (s.stage_runs[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "    %-16s %.3f s over %lld run(s)\n",
                    ServiceMetrics::Snapshot::kStageNames[i],
                    s.stage_seconds[i],
                    static_cast<long long>(s.stage_runs[i]));
      out += buf;
    }
  }
  return out;
}

}  // namespace gordian
