#include "service/table_artifacts.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "table/serialize.h"

namespace gordian {

namespace {

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf, 16);
}

void PutU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

TableArtifactStore::TableArtifactStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.fs == nullptr) options_.fs = DefaultFileSystem();
  if (options_.chunk_rows <= 0) options_.chunk_rows = kSpillChunkRows;
}

std::string TableArtifactStore::ArtifactDir(uint64_t fingerprint) const {
  return dir_ + "/" + FingerprintHex(fingerprint);
}

std::string TableArtifactStore::MetaPath(uint64_t fingerprint) const {
  return ArtifactDir(fingerprint) + "/meta.grdd";
}

std::string TableArtifactStore::ColumnPath(uint64_t fingerprint,
                                           int col) const {
  return ArtifactDir(fingerprint) + "/c" + std::to_string(col) + ".grdl";
}

Status TableArtifactStore::Init() { return fs()->CreateDir(dir_); }

bool TableArtifactStore::Contains(uint64_t fingerprint) {
  return fs()->FileExists(MetaPath(fingerprint));
}

Status TableArtifactStore::Put(uint64_t fingerprint, const Table& table) {
  if (Contains(fingerprint)) return Status::OK();
  Status s = Init();
  const std::string adir = ArtifactDir(fingerprint);
  if (s.ok()) s = fs()->CreateDir(adir);

  // Columns first: each GRDL file is published durably on its own (temp +
  // fsync + rename + dir fsync inside SpillColumnWriter::Finish), streamed
  // a chunk at a time so a spilled column never rematerializes in memory.
  int64_t bytes = 0;
  for (int c = 0; s.ok() && c < table.num_columns(); ++c) {
    const CodeColumn& codes = table.column_codes(c);
    const uint32_t null_code = table.dictionary(c).Lookup(Value::Null());
    SpillColumnWriter writer(fs(), ColumnPath(fingerprint, c),
                             options_.chunk_rows);
    for (int64_t row = 0; s.ok() && row < codes.size();
         row += options_.chunk_rows) {
      const int64_t n = std::min(options_.chunk_rows, codes.size() - row);
      s = writer.Append(codes.data() + row, n, null_code);
    }
    if (s.ok()) s = writer.Finish(table.dictionary(c).size(), null_code);
    bytes += codes.size() * static_cast<int64_t>(sizeof(uint32_t));
  }

  // Meta last — its successful rename is the artifact's commit point.
  std::string payload;
  if (s.ok()) {
    std::ostringstream os(std::ios::binary);
    s = WriteSchemaAndDicts(table, os);
    payload = std::move(os).str();
    PutU64(&payload, HashBytes(payload));
  }
  const std::string meta = MetaPath(fingerprint);
  const std::string tmp = meta + ".tmp";
  if (s.ok()) s = fs()->WriteFile(tmp, payload);
  if (s.ok()) s = fs()->SyncFile(tmp);
  if (s.ok()) s = fs()->Rename(tmp, meta);
  if (s.ok()) s = fs()->SyncDir(adir);
  if (s.ok()) s = fs()->SyncDir(dir_);

  if (options_.metrics != nullptr) {
    if (s.ok()) {
      options_.metrics->OnArtifactPut(bytes +
                                      static_cast<int64_t>(payload.size()));
    } else {
      options_.metrics->OnArtifactPutError();
    }
  }
  return s;
}

Status TableArtifactStore::Get(uint64_t fingerprint, Table* out) {
  const std::string meta = MetaPath(fingerprint);
  std::string payload;
  if (!fs()->FileExists(meta)) {
    return Status::NotFound("no table artifact for " +
                            FingerprintHex(fingerprint));
  }
  Status s = fs()->ReadFile(meta, &payload);
  auto corrupt = [&](const std::string& what) {
    if (options_.metrics != nullptr) options_.metrics->OnArtifactGetError();
    return Status::InvalidArgument("table artifact " + meta + ": " + what);
  };
  if (!s.ok()) {
    if (options_.metrics != nullptr) options_.metrics->OnArtifactGetError();
    return s;
  }
  if (payload.size() < 8) return corrupt("meta file too short");
  const uint64_t stored = GetU64(payload.data() + payload.size() - 8);
  payload.resize(payload.size() - 8);
  if (HashBytes(payload) != stored) return corrupt("meta checksum mismatch");

  Schema schema;
  std::vector<std::shared_ptr<Dictionary>> dicts;
  int64_t num_rows = 0;
  {
    std::istringstream is(payload, std::ios::binary);
    s = ReadSchemaAndDicts(is, &schema, &dicts, &num_rows);
  }
  if (!s.ok()) return corrupt(s.message());

  std::vector<CodeColumn> columns;
  columns.reserve(dicts.size());
  for (int c = 0; c < static_cast<int>(dicts.size()); ++c) {
    CodeColumn col;
    s = CodeColumn::OpenSpilled(fs(), ColumnPath(fingerprint, c),
                                dicts[c]->size(), &col);
    if (!s.ok()) return corrupt(s.message());
    if (col.size() != num_rows) {
      return corrupt("column " + std::to_string(c) + " has " +
                     std::to_string(col.size()) + " rows, meta says " +
                     std::to_string(num_rows));
    }
    columns.push_back(std::move(col));
  }
  *out = Table::FromCodeColumns(std::move(schema), std::move(dicts),
                                std::move(columns));
  if (options_.metrics != nullptr) options_.metrics->OnArtifactServe();
  return Status::OK();
}

}  // namespace gordian
