#include "service/key_catalog.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

namespace gordian {

bool KeyCatalog::Put(uint64_t fingerprint, const std::string& table_name,
                     int num_columns, const KeyDiscoveryResult& result) {
  if (result.incomplete) return false;
  CatalogEntry entry;
  entry.fingerprint = fingerprint;
  entry.table_name = table_name;
  entry.num_columns = num_columns;
  entry.result = result;
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries[fingerprint] = std::move(entry);
  ++shard.version;
  return true;
}

bool KeyCatalog::Lookup(uint64_t fingerprint, CatalogEntry* out) const {
  const Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it == shard.entries.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool KeyCatalog::Contains(uint64_t fingerprint) const {
  return Lookup(fingerprint, nullptr);
}

bool KeyCatalog::Erase(uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.erase(fingerprint) == 0) return false;
  ++shard.version;
  return true;
}

void KeyCatalog::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.entries.empty()) {
      shard.entries.clear();
      ++shard.version;
    }
  }
}

int64_t KeyCatalog::size() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.entries.size());
  }
  return total;
}

std::vector<uint64_t> KeyCatalog::Fingerprints() const {
  std::vector<uint64_t> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [fp, entry] : shard.entries) out.push_back(fp);
  }
  return out;
}

std::vector<CatalogEntry> KeyCatalog::ShardSnapshot(int shard,
                                                    uint64_t* version) const {
  const Shard& s = shards_[shard];
  std::vector<CatalogEntry> out;
  std::lock_guard<std::mutex> lock(s.mu);
  out.reserve(s.entries.size());
  for (const auto& [fp, entry] : s.entries) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  if (version != nullptr) *version = s.version;
  return out;
}

void KeyCatalog::ReplaceShard(int shard, std::vector<CatalogEntry> entries) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  s.entries.clear();
  for (CatalogEntry& entry : entries) {
    if (ShardIndexOf(entry.fingerprint) != shard) continue;
    uint64_t fp = entry.fingerprint;
    s.entries[fp] = std::move(entry);
  }
  ++s.version;
}

uint64_t KeyCatalog::ShardVersion(int shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.version;
}

namespace {

constexpr char kMagic[4] = {'G', 'R', 'D', 'C'};
constexpr uint32_t kFormatVersion = 1;

// Hard ceilings against corrupt counts: loading must never be talked into
// gigabyte allocations by a flipped byte.
constexpr uint64_t kMaxEntries = 1u << 20;
constexpr uint32_t kMaxSetsPerEntry = 1u << 20;

void WriteU8(std::ostream& os, uint8_t v) { os.put(static_cast<char>(v)); }

void WriteU32(std::ostream& os, uint32_t v) {
  for (int i = 0; i < 4; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WriteU64(std::ostream& os, uint64_t v) {
  for (int i = 0; i < 8; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WriteStr(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteDouble(std::ostream& os, double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  WriteU64(os, bits);
}

void WriteAttrs(std::ostream& os, const AttributeSet& attrs) {
  WriteU8(os, static_cast<uint8_t>(attrs.Count()));
  attrs.ForEach([&](int a) { WriteU8(os, static_cast<uint8_t>(a)); });
}

bool ReadU8(std::istream& is, uint8_t* v) {
  int c = is.get();
  if (c == EOF) return false;
  *v = static_cast<uint8_t>(c);
  return true;
}

bool ReadU32(std::istream& is, uint32_t* v) {
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    uint8_t b;
    if (!ReadU8(is, &b)) return false;
    *v |= static_cast<uint32_t>(b) << (8 * i);
  }
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t b;
    if (!ReadU8(is, &b)) return false;
    *v |= static_cast<uint64_t>(b) << (8 * i);
  }
  return true;
}

bool ReadStr(std::istream& is, std::string* s) {
  uint32_t len;
  if (!ReadU32(is, &len)) return false;
  if (len > (1u << 20)) return false;  // refuse absurd name lengths
  s->resize(len);
  is.read(s->data(), len);
  return static_cast<uint32_t>(is.gcount()) == len;
}

bool ReadDouble(std::istream& is, double* d) {
  uint64_t bits;
  if (!ReadU64(is, &bits)) return false;
  __builtin_memcpy(d, &bits, sizeof(*d));
  return true;
}

// Attribute lists are stored canonically: strictly ascending positions,
// each below the entry's column count. Anything else is corruption.
bool ReadAttrs(std::istream& is, int num_columns, AttributeSet* attrs) {
  uint8_t count;
  if (!ReadU8(is, &count)) return false;
  *attrs = AttributeSet();
  int prev = -1;
  for (int i = 0; i < count; ++i) {
    uint8_t a;
    if (!ReadU8(is, &a)) return false;
    if (a >= num_columns || static_cast<int>(a) <= prev) return false;
    attrs->Set(a);
    prev = a;
  }
  return true;
}

}  // namespace

void WriteCatalogEntryRecord(std::ostream& os, const CatalogEntry& entry) {
  WriteU64(os, entry.fingerprint);
  WriteStr(os, entry.table_name);
  WriteU32(os, static_cast<uint32_t>(entry.num_columns));
  uint8_t flags = 0;
  if (entry.result.no_keys) flags |= 1;
  if (entry.result.sampled) flags |= 2;
  WriteU8(os, flags);
  WriteU64(os, static_cast<uint64_t>(entry.result.stats.rows_processed));
  WriteU32(os, static_cast<uint32_t>(entry.result.keys.size()));
  for (const DiscoveredKey& k : entry.result.keys) {
    WriteAttrs(os, k.attrs);
    WriteDouble(os, k.estimated_strength);
    WriteDouble(os, k.exact_strength);
  }
  WriteU32(os, static_cast<uint32_t>(entry.result.non_keys.size()));
  for (const AttributeSet& nk : entry.result.non_keys) WriteAttrs(os, nk);
}

Status ReadCatalogEntryRecord(std::istream& is, CatalogEntry* out) {
  CatalogEntry entry;
  uint32_t num_columns;
  uint8_t flags;
  uint64_t rows;
  if (!ReadU64(is, &entry.fingerprint) || !ReadStr(is, &entry.table_name) ||
      !ReadU32(is, &num_columns) || !ReadU8(is, &flags) ||
      !ReadU64(is, &rows)) {
    return Status::InvalidArgument("truncated catalog entry");
  }
  if (flags > 3) return Status::InvalidArgument("corrupt entry flags");
  if (num_columns > static_cast<uint32_t>(AttributeSet::kMaxAttributes)) {
    return Status::InvalidArgument("too many columns in catalog entry");
  }
  if (rows > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("implausible row count");
  }
  entry.num_columns = static_cast<int>(num_columns);
  entry.result.no_keys = (flags & 1) != 0;
  entry.result.sampled = (flags & 2) != 0;
  entry.result.stats.rows_processed = static_cast<int64_t>(rows);
  entry.result.stats.num_attributes = entry.num_columns;

  uint32_t num_keys;
  if (!ReadU32(is, &num_keys) || num_keys > kMaxSetsPerEntry) {
    return Status::InvalidArgument("corrupt key count");
  }
  entry.result.keys.resize(num_keys);
  for (uint32_t k = 0; k < num_keys; ++k) {
    DiscoveredKey& key = entry.result.keys[k];
    if (!ReadAttrs(is, entry.num_columns, &key.attrs) ||
        !ReadDouble(is, &key.estimated_strength) ||
        !ReadDouble(is, &key.exact_strength)) {
      return Status::InvalidArgument("corrupt key record");
    }
  }
  uint32_t num_non_keys;
  if (!ReadU32(is, &num_non_keys) || num_non_keys > kMaxSetsPerEntry) {
    return Status::InvalidArgument("corrupt non-key count");
  }
  entry.result.non_keys.resize(num_non_keys);
  for (uint32_t k = 0; k < num_non_keys; ++k) {
    if (!ReadAttrs(is, entry.num_columns, &entry.result.non_keys[k])) {
      return Status::InvalidArgument("corrupt non-key record");
    }
  }
  *out = std::move(entry);
  return Status::OK();
}

Status WriteCatalogFile(const KeyCatalog& catalog, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IOError("cannot open " + path + " for writing");
  // The entry count precedes the entries, so the snapshot must be globally
  // consistent: take every shard lock, in index order (the same order Clear
  // uses; point operations hold one lock at a time, so no cycle exists).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(KeyCatalog::kNumShards);
  uint64_t total = 0;
  for (const KeyCatalog::Shard& shard : catalog.shards_) {
    locks.emplace_back(shard.mu);
    total += shard.entries.size();
  }
  os.write(kMagic, 4);
  WriteU32(os, kFormatVersion);
  WriteU64(os, total);
  for (const KeyCatalog::Shard& shard : catalog.shards_) {
    for (const auto& [fp, entry] : shard.entries) {
      (void)fp;  // entry.fingerprint is the same key, set by Put
      WriteCatalogEntryRecord(os, entry);
    }
  }
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ReadCatalogFile(const std::string& path, KeyCatalog* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a gordian catalog file: " + path);
  }
  uint32_t version;
  if (!ReadU32(is, &version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported catalog format version");
  }
  uint64_t num_entries;
  if (!ReadU64(is, &num_entries)) {
    return Status::InvalidArgument("truncated catalog header");
  }
  if (num_entries > kMaxEntries) {
    return Status::InvalidArgument("implausible catalog entry count");
  }

  KeyCatalog loaded;
  for (uint64_t e = 0; e < num_entries; ++e) {
    CatalogEntry entry;
    Status s = ReadCatalogEntryRecord(is, &entry);
    if (!s.ok()) return s;
    if (!loaded.Put(entry.fingerprint, entry.table_name, entry.num_columns,
                    entry.result)) {
      return Status::InvalidArgument("corrupt catalog entry");
    }
  }
  // Every valid byte is accounted for above; a file that keeps going after
  // the declared last entry was either mis-written or tampered with, and
  // silently dropping the tail would mask both.
  if (is.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing garbage after last catalog entry");
  }

  // `loaded` is private to this call, so its shards need no locking; the
  // destination's do. Shard assignment is a pure function of the
  // fingerprint, so moving shard-by-shard preserves placement.
  for (int s = 0; s < KeyCatalog::kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(out->shards_[s].mu);
    out->shards_[s].entries = std::move(loaded.shards_[s].entries);
  }
  return Status::OK();
}

}  // namespace gordian
