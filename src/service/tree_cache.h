#ifndef GORDIAN_SERVICE_TREE_CACHE_H_
#define GORDIAN_SERVICE_TREE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/attribute_set.h"
#include "core/pipeline.h"
#include "core/prefix_tree.h"

namespace gordian {

// Identity of a prefix-tree artifact: the tree is a pure function of the
// table content (fingerprint), the column subset profiled, the sample spec,
// the attribute order, and the build mode — change any of these and a
// different tree results. Jobs that agree on all of them (e.g. the same
// table re-profiled under different time budgets, priorities, or pruning
// toggles) can share one tree.
struct TreeCacheKey {
  uint64_t fingerprint = 0;
  AttributeSet columns;  // column subset the tree covers (FirstN(d) for all)
  int64_t sample_rows = 0;
  uint64_t sample_seed = 0;
  GordianOptions::AttributeOrder attribute_order =
      GordianOptions::AttributeOrder::kCardinalityDesc;
  uint64_t order_seed = 0;
  GordianOptions::TreeBuild tree_build = GordianOptions::TreeBuild::kSorted;

  friend bool operator==(const TreeCacheKey& a, const TreeCacheKey& b) {
    return a.fingerprint == b.fingerprint && a.columns == b.columns &&
           a.sample_rows == b.sample_rows && a.sample_seed == b.sample_seed &&
           a.attribute_order == b.attribute_order &&
           a.order_seed == b.order_seed && a.tree_build == b.tree_build;
  }
};

struct TreeCacheKeyHash {
  size_t operator()(const TreeCacheKey& k) const;
};

// Key for a whole-table profiling run under `options`. `num_columns` fills
// the column-subset field with the full set.
TreeCacheKey MakeTreeCacheKey(uint64_t fingerprint, int num_columns,
                              const GordianOptions& options);

// Size-bounded, thread-safe cache of built PrefixTree artifacts, so
// profiling jobs against an unchanged table skip BuildPrefixTree entirely.
// Entries are ref-counted (shared_ptr plus an exclusive lease bit) and
// evicted LRU under a byte budget measured by each tree's own NodePool
// accounting.
//
// Leases are exclusive: traversal temporarily mutates node reference counts
// (merge sharing), so a tree can serve only one run at a time. A second
// concurrent job for the same key gets a miss ("busy miss") and builds
// privately rather than blocking — trading bytes for latency, the same call
// the request-coalescing layer already makes for identical jobs. A leased
// entry is never evicted; over-budget space is reclaimed from unleased
// entries in LRU order, deferred until release when everything is pinned.
class TreeArtifactCache {
 public:
  static constexpr int64_t kDefaultByteBudget = 256LL << 20;  // 256 MiB

  explicit TreeArtifactCache(int64_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  TreeArtifactCache(const TreeArtifactCache&) = delete;
  TreeArtifactCache& operator=(const TreeArtifactCache&) = delete;

  // Exclusive handle to a cached tree. While alive, the entry cannot be
  // evicted or leased to another run. Movable; releases on destruction.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        entry_ = std::move(other.entry_);
        other.cache_ = nullptr;
        other.entry_ = nullptr;
      }
      return *this;
    }

    bool valid() const { return entry_ != nullptr; }
    PrefixTree* tree() const;
    // The prefrozen flat layout stored alongside the tree, or nullptr when
    // freezing was disabled when the entry was admitted. Hits inject it via
    // ProfileSession::set_shared_frozen_tree so the run skips the freeze
    // pass as well as the build.
    FrozenTree* frozen() const;

    // Drops the lease early (before destruction).
    void Release();

   private:
    friend class TreeArtifactCache;
    struct Entry;
    TreeArtifactCache* cache_ = nullptr;
    std::shared_ptr<Entry> entry_;
  };

  // Returns an exclusive lease over the cached tree for `key` (a hit), or
  // an invalid lease when the key is absent (miss) or its entry is leased
  // by another run (busy miss — the caller builds privately).
  Lease Acquire(const TreeCacheKey& key);

  // Admits a freshly built tree under `key` and returns an exclusive lease
  // over it. The entry's size is tree->pool().current_bytes() plus the
  // frozen artifact's ApproxBytes; an artifact larger than the whole budget
  // is not admitted, but the returned lease still owns it, so the inserting
  // job proceeds either way. Replaces any existing (unleased) entry for the
  // key; if the existing entry is leased, the new tree is kept lease-only
  // and not admitted.
  //
  // `frozen` is the flat layout to serve alongside the tree. When null and
  // freezing is enabled process-wide, Insert freezes the tree itself — the
  // freeze is paid once here, and every subsequent hit serves the prefrozen
  // artifact (freeze_seconds = 0 on hits). Callers whose profiling run
  // already froze the tree hand the artifact over instead
  // (ProfileSession::TakeFrozenTree), making insertion free of refreezing.
  Lease Insert(const TreeCacheKey& key, std::unique_ptr<PrefixTree> tree,
               std::unique_ptr<FrozenTree> frozen = nullptr);

  // Lease upgrade for appends: re-registers `lease`'s entry under `new_key`
  // (the fingerprint after a delta was absorbed into the leased tree),
  // replaces its frozen artifact with `refrozen` (may be null — e.g.
  // freezing disabled), and re-measures its bytes. The old key's resident
  // slot is unlinked; the entry is re-admitted under the new key when it
  // fits the budget, following Insert's existing-entry discipline (an
  // unleased twin is replaced; a leased twin keeps this entry lease-only).
  //
  // The lease stays valid and exclusive throughout, which is the
  // no-half-absorbed-tree guarantee: while the absorb ran, concurrent
  // Acquires of the old key busy-missed (entry leased); once rekeyed, the
  // old key is simply absent. No reader can ever lease the tree in between.
  void Rekey(Lease& lease, const TreeCacheKey& new_key,
             std::unique_ptr<FrozenTree> refrozen);

  bool Contains(const TreeCacheKey& key) const;
  void Clear();  // drops all unleased entries

  int64_t byte_budget() const { return byte_budget_; }

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;       // absent key
    int64_t busy_misses = 0;  // present but leased elsewhere
    int64_t insertions = 0;   // admitted entries
    int64_t rejected = 0;     // built trees not admitted (too big / key busy)
    int64_t rekeys = 0;       // lease upgrades (absorbed appends)
    int64_t evictions = 0;
    int64_t entries = 0;      // resident now
    int64_t bytes = 0;        // resident now, per NodePool accounting
    int64_t trees_frozen = 0;     // freezes Insert performed itself
    double freeze_seconds = 0;    // wall clock of those freezes
    int64_t frozen_bytes = 0;     // flat-layout bytes admitted (lifetime)

    double hit_rate() const {
      int64_t lookups = hits + misses + busy_misses;
      return lookups == 0 ? 0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };
  Stats GetStats() const;

 private:
  using EntryPtr = std::shared_ptr<Lease::Entry>;

  void ReleaseEntry(const EntryPtr& entry);
  // Evicts unleased entries, least recently used first, until resident
  // bytes fit the budget. Caller holds mu_.
  void EvictToBudget();

  const int64_t byte_budget_;

  mutable std::mutex mu_;
  std::unordered_map<TreeCacheKey, EntryPtr, TreeCacheKeyHash> entries_;
  // Most recently used at the front; holds the map keys of resident
  // entries. Entries keep an iterator into this list.
  std::list<TreeCacheKey> lru_;
  int64_t resident_bytes_ = 0;
  Stats stats_;
};

// The acquire → run → insert composition every tree-cache-aware caller
// (profiling service, index advisor, benches) shares: leases a cached tree
// when available, runs the default profiling plan over `table` (injecting
// the tree on a hit), and admits the freshly built tree on a miss. With
// `cache` null this is exactly FindKeys. `tree_cache_hit` (optional)
// reports whether the run skipped tree building; `stage_metrics` (optional)
// receives the session's per-stage wall/bytes.
KeyDiscoveryResult ProfileWithTreeCache(
    const Table& table, const GordianOptions& options, uint64_t fingerprint,
    TreeArtifactCache* cache, bool* tree_cache_hit = nullptr,
    std::vector<StageMetric>* stage_metrics = nullptr);

}  // namespace gordian

#endif  // GORDIAN_SERVICE_TREE_CACHE_H_
