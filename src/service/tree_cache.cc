#include "service/tree_cache.h"

#include <utility>

#include "common/hashing.h"
#include "common/stopwatch.h"

namespace gordian {

size_t TreeCacheKeyHash::operator()(const TreeCacheKey& k) const {
  uint64_t h = Mix64(k.fingerprint);
  h = Mix64(h ^ k.columns.Hash());
  h = Mix64(h ^ static_cast<uint64_t>(k.sample_rows));
  h = Mix64(h ^ k.sample_seed);
  h = Mix64(h ^ (static_cast<uint64_t>(k.attribute_order) |
                 static_cast<uint64_t>(k.tree_build) << 8));
  h = Mix64(h ^ k.order_seed);
  return static_cast<size_t>(h);
}

TreeCacheKey MakeTreeCacheKey(uint64_t fingerprint, int num_columns,
                              const GordianOptions& options) {
  TreeCacheKey key;
  key.fingerprint = fingerprint;
  key.columns = AttributeSet::FirstN(num_columns);
  // A sample spec that selects the whole table builds the same tree as no
  // sampling at all; normalizing it widens sharing across budget variants.
  key.sample_rows = options.sample_rows;
  key.sample_seed = options.sample_rows > 0 ? options.sample_seed : 0;
  key.attribute_order = options.attribute_order;
  key.order_seed =
      options.attribute_order == GordianOptions::AttributeOrder::kRandom
          ? options.order_seed
          : 0;
  key.tree_build = options.tree_build;
  return key;
}

struct TreeArtifactCache::Lease::Entry {
  TreeCacheKey key;
  std::unique_ptr<PrefixTree> tree;
  // Prefrozen flat layout, kept beside the pointer tree (never instead of
  // it: a GORDIAN_FROZEN=0 run hitting this entry still needs the pointer
  // tree). Null when freezing was disabled at insert time.
  std::unique_ptr<FrozenTree> frozen;
  int64_t bytes = 0;
  bool leased = false;
  bool resident = false;  // linked into the map/LRU list
  std::list<TreeCacheKey>::iterator lru_it;
};

PrefixTree* TreeArtifactCache::Lease::tree() const {
  return entry_ == nullptr ? nullptr : entry_->tree.get();
}

FrozenTree* TreeArtifactCache::Lease::frozen() const {
  return entry_ == nullptr ? nullptr : entry_->frozen.get();
}

void TreeArtifactCache::Lease::Release() {
  if (cache_ != nullptr && entry_ != nullptr) {
    cache_->ReleaseEntry(entry_);
  }
  cache_ = nullptr;
  entry_ = nullptr;
}

TreeArtifactCache::Lease TreeArtifactCache::Acquire(const TreeCacheKey& key) {
  Lease lease;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return lease;
  }
  EntryPtr& entry = it->second;
  if (entry->leased) {
    // Exclusive by design: traversal mutates node ref-counts, so a tree in
    // use cannot serve a second run. The caller builds privately.
    ++stats_.busy_misses;
    return lease;
  }
  ++stats_.hits;
  entry->leased = true;
  lru_.splice(lru_.begin(), lru_, entry->lru_it);  // most recently used
  lease.cache_ = this;
  lease.entry_ = entry;
  return lease;
}

TreeArtifactCache::Lease TreeArtifactCache::Insert(
    const TreeCacheKey& key, std::unique_ptr<PrefixTree> tree,
    std::unique_ptr<FrozenTree> frozen) {
  Lease lease;
  auto entry = std::make_shared<Lease::Entry>();
  entry->key = key;

  // Freeze-on-insert: pay the flattening once, outside the lock, so every
  // hit serves the prefrozen artifact. Skipped when the inserting run
  // already froze (it hands its artifact over) or freezing is disabled.
  double freeze_seconds = 0;
  bool froze_here = false;
  if (frozen == nullptr && FrozenTreesEnabled() &&
      tree->root() != nullptr) {
    Stopwatch freeze_watch;
    frozen = FrozenTree::Freeze(*tree);
    freeze_seconds = freeze_watch.ElapsedSeconds();
    froze_here = true;
  }

  entry->bytes = tree->pool().current_bytes();
  if (frozen != nullptr) entry->bytes += frozen->ApproxBytes();
  entry->tree = std::move(tree);
  entry->frozen = std::move(frozen);
  entry->leased = true;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (froze_here) {
      ++stats_.trees_frozen;
      stats_.freeze_seconds += freeze_seconds;
    }
    if (entry->frozen != nullptr) {
      stats_.frozen_bytes += entry->frozen->ApproxBytes();
    }
    auto it = entries_.find(key);
    bool admit = entry->bytes <= byte_budget_;
    if (it != entries_.end()) {
      if (it->second->leased) {
        // Another run holds the resident twin; keep this tree lease-only.
        admit = false;
      } else if (admit) {
        // Replace the stale resident entry with the fresh build.
        resident_bytes_ -= it->second->bytes;
        lru_.erase(it->second->lru_it);
        it->second->resident = false;
        entries_.erase(it);
        ++stats_.evictions;
      }
    }
    if (admit) {
      lru_.push_front(key);
      entry->lru_it = lru_.begin();
      entry->resident = true;
      entries_.emplace(key, entry);
      resident_bytes_ += entry->bytes;
      ++stats_.insertions;
      EvictToBudget();
    } else {
      ++stats_.rejected;
    }
  }

  lease.cache_ = this;
  lease.entry_ = std::move(entry);
  return lease;
}

void TreeArtifactCache::Rekey(Lease& lease, const TreeCacheKey& new_key,
                              std::unique_ptr<FrozenTree> refrozen) {
  if (!lease.valid() || lease.cache_ != this) return;
  EntryPtr entry = lease.entry_;
  std::lock_guard<std::mutex> lock(mu_);
  // Unlink the old key's slot. The entry itself lives on through the lease.
  if (entry->resident) {
    auto it = entries_.find(entry->key);
    resident_bytes_ -= entry->bytes;
    lru_.erase(entry->lru_it);
    entries_.erase(it);
    entry->resident = false;
  }
  if (refrozen != nullptr) stats_.frozen_bytes += refrozen->ApproxBytes();
  entry->key = new_key;
  entry->frozen = std::move(refrozen);
  entry->bytes = entry->tree->pool().current_bytes();
  if (entry->frozen != nullptr) entry->bytes += entry->frozen->ApproxBytes();
  ++stats_.rekeys;

  // Re-admit under the new key, mirroring Insert's existing-entry handling.
  auto it = entries_.find(new_key);
  bool admit = entry->bytes <= byte_budget_;
  if (it != entries_.end()) {
    if (it->second->leased) {
      admit = false;
    } else if (admit) {
      resident_bytes_ -= it->second->bytes;
      lru_.erase(it->second->lru_it);
      it->second->resident = false;
      entries_.erase(it);
      ++stats_.evictions;
    }
  }
  if (admit) {
    lru_.push_front(new_key);
    entry->lru_it = lru_.begin();
    entry->resident = true;
    entries_.emplace(new_key, entry);
    resident_bytes_ += entry->bytes;
    ++stats_.insertions;
    EvictToBudget();
  } else {
    ++stats_.rejected;
  }
}

void TreeArtifactCache::ReleaseEntry(const EntryPtr& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry->leased = false;
  // Space reclamation deferred while everything was pinned happens now.
  if (entry->resident) EvictToBudget();
}

void TreeArtifactCache::EvictToBudget() {
  auto it = lru_.end();
  while (resident_bytes_ > byte_budget_ && it != lru_.begin()) {
    --it;
    auto found = entries_.find(*it);
    EntryPtr& victim = found->second;
    if (victim->leased) continue;  // pinned; try the next-oldest
    resident_bytes_ -= victim->bytes;
    victim->resident = false;
    entries_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

bool TreeArtifactCache::Contains(const TreeCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

void TreeArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto found = entries_.find(*it);
    EntryPtr& victim = found->second;
    if (victim->leased) {
      ++it;
      continue;
    }
    resident_bytes_ -= victim->bytes;
    victim->resident = false;
    entries_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

TreeArtifactCache::Stats TreeArtifactCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = static_cast<int64_t>(entries_.size());
  s.bytes = resident_bytes_;
  return s;
}

KeyDiscoveryResult ProfileWithTreeCache(
    const Table& table, const GordianOptions& options, uint64_t fingerprint,
    TreeArtifactCache* cache, bool* tree_cache_hit,
    std::vector<StageMetric>* stage_metrics) {
  if (tree_cache_hit != nullptr) *tree_cache_hit = false;

  ProfileSession session(options);
  KeyDiscoveryResult result;

  TreeArtifactCache::Lease lease;
  if (cache != nullptr) {
    lease = cache->Acquire(MakeTreeCacheKey(
        fingerprint, table.num_columns(), options));
  }
  if (lease.valid()) {
    if (tree_cache_hit != nullptr) *tree_cache_hit = true;
    session.set_shared_tree(lease.tree());
    // Serve the prefrozen artifact too, when the entry carries one: the run
    // then skips both the build and the freeze pass.
    if (lease.frozen() != nullptr) {
      session.set_shared_frozen_tree(lease.frozen());
    }
    (void)session.Run(table, &result);
  } else {
    (void)session.Run(table, &result);
    std::unique_ptr<PrefixTree> built = session.TakeTree();
    if (cache != nullptr && built != nullptr) {
      // Any built tree is cacheable: it is a pure function of the key, and
      // traversal (even an aborted one) fully unwinds its temporary node
      // references, leaving the tree byte-identical to freshly built.
      // Runs that never built a tree (null-projection hand-off, cancelled
      // before the build stage) return null from TakeTree. Duplicate-entity
      // trees are cacheable too — a rerun hits and re-derives no_keys.
      // The run's frozen artifact (if the frozen path was on) is admitted
      // alongside, so Insert does not refreeze.
      lease = cache->Insert(
          MakeTreeCacheKey(fingerprint, table.num_columns(), options),
          std::move(built), session.TakeFrozenTree());
    }
  }

  if (stage_metrics != nullptr) *stage_metrics = session.stage_metrics();
  return result;
}

}  // namespace gordian
