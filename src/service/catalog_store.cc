#include "service/catalog_store.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/hashing.h"

namespace gordian {

namespace {

constexpr char kShardMagic[4] = {'G', 'R', 'D', 'S'};
constexpr char kManifestMagic[4] = {'G', 'R', 'D', 'M'};
constexpr uint32_t kShardFormatVersion = 1;
constexpr uint32_t kManifestFormatVersion = 1;

// Same ceiling the single-file GRDC loader enforces: corrupt counts must
// never talk the loader into huge allocations.
constexpr uint64_t kMaxEntriesPerShard = 1u << 20;

void WriteU32(std::ostream& os, uint32_t v) {
  for (int i = 0; i < 4; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WriteU64(std::ostream& os, uint64_t v) {
  for (int i = 0; i < 8; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    int c = is.get();
    if (c == EOF) return false;
    *v |= static_cast<uint32_t>(c & 0xFF) << (8 * i);
  }
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    int c = is.get();
    if (c == EOF) return false;
    *v |= static_cast<uint64_t>(c & 0xFF) << (8 * i);
  }
  return true;
}

// Appends the content checksum that makes a file self-validating: a torn
// final file (partial content that happens to parse) is caught even when
// every rename was atomic, because the checksum covers every byte before
// itself.
void AppendChecksum(std::string* payload) {
  uint64_t sum = HashBytes(*payload);
  for (int i = 0; i < 8; ++i) {
    payload->push_back(static_cast<char>((sum >> (8 * i)) & 0xFF));
  }
}

// Splits off and verifies the trailing checksum; false on mismatch.
bool CheckAndStripChecksum(const std::string& bytes, std::string_view* body) {
  if (bytes.size() < 8) return false;
  size_t body_size = bytes.size() - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(
                  static_cast<unsigned char>(bytes[body_size + i]))
              << (8 * i);
  }
  *body = std::string_view(bytes.data(), body_size);
  return HashBytes(*body) == stored;
}

std::string ShardFileName(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02d.grdc", shard);
  return buf;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

CatalogStore::CatalogStore(std::string dir, KeyCatalog* catalog,
                           Options options)
    : dir_(std::move(dir)), catalog_(catalog), options_(options) {
  if (options_.fs == nullptr) options_.fs = DefaultFileSystem();
  last_flushed_.fill(kNeverFlushed);
  shard_counts_.fill(0);
}

CatalogStore::~CatalogStore() {
  if (lease_handle_ >= 0) fs()->UnlockFile(lease_handle_);
}

std::string CatalogStore::ShardPath(int shard) const {
  return dir_ + "/" + ShardFileName(shard);
}

std::string CatalogStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

std::string CatalogStore::LockPath() const { return dir_ + "/LOCK"; }

uint64_t CatalogStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::string CatalogStore::EncodeShard(
    int shard, const std::vector<CatalogEntry>& entries) {
  std::ostringstream os(std::ios::binary);
  os.write(kShardMagic, 4);
  WriteU32(os, kShardFormatVersion);
  WriteU32(os, static_cast<uint32_t>(shard));
  WriteU64(os, entries.size());
  for (const CatalogEntry& entry : entries) {
    WriteCatalogEntryRecord(os, entry);
  }
  std::string payload = os.str();
  AppendChecksum(&payload);
  return payload;
}

Status CatalogStore::DecodeShard(const std::string& bytes, int shard,
                                 std::vector<CatalogEntry>* entries) {
  entries->clear();
  std::string_view body;
  if (bytes.size() < 28 || !CheckAndStripChecksum(bytes, &body)) {
    return Status::InvalidArgument("shard checksum mismatch or short file");
  }
  std::istringstream is(std::string(body), std::ios::binary);
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kShardMagic, 4) != 0) {
    return Status::InvalidArgument("not a catalog shard file");
  }
  uint32_t version, index;
  uint64_t count;
  if (!ReadU32(is, &version) || version != kShardFormatVersion) {
    return Status::InvalidArgument("unsupported shard format version");
  }
  if (!ReadU32(is, &index) || index != static_cast<uint32_t>(shard)) {
    return Status::InvalidArgument("shard index mismatch");
  }
  if (!ReadU64(is, &count) || count > kMaxEntriesPerShard) {
    return Status::InvalidArgument("implausible shard entry count");
  }
  entries->reserve(count);
  for (uint64_t e = 0; e < count; ++e) {
    CatalogEntry entry;
    Status s = ReadCatalogEntryRecord(is, &entry);
    if (!s.ok()) return s;
    if (KeyCatalog::ShardIndexOf(entry.fingerprint) != shard) {
      return Status::InvalidArgument("entry routed to the wrong shard");
    }
    entries->push_back(std::move(entry));
  }
  if (is.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing garbage in shard file");
  }
  return Status::OK();
}

std::string CatalogStore::EncodeManifest(uint64_t epoch) const {
  std::ostringstream os(std::ios::binary);
  os.write(kManifestMagic, 4);
  WriteU32(os, kManifestFormatVersion);
  WriteU64(os, epoch);
  WriteU32(os, static_cast<uint32_t>(kNumShards));
  for (int s = 0; s < kNumShards; ++s) WriteU64(os, shard_counts_[s]);
  std::string payload = os.str();
  AppendChecksum(&payload);
  return payload;
}

Status CatalogStore::DecodeManifest(
    const std::string& bytes, uint64_t* epoch,
    std::array<uint64_t, kNumShards>* counts) const {
  std::string_view body;
  if (bytes.size() < 28 || !CheckAndStripChecksum(bytes, &body)) {
    return Status::InvalidArgument("manifest checksum mismatch or short file");
  }
  std::istringstream is(std::string(body), std::ios::binary);
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kManifestMagic, 4) != 0) {
    return Status::InvalidArgument("not a catalog manifest");
  }
  uint32_t version, shard_count;
  if (!ReadU32(is, &version) || version != kManifestFormatVersion) {
    return Status::InvalidArgument("unsupported manifest format version");
  }
  if (!ReadU64(is, epoch)) {
    return Status::InvalidArgument("truncated manifest");
  }
  if (!ReadU32(is, &shard_count) || shard_count != kNumShards) {
    return Status::InvalidArgument("manifest shard count mismatch");
  }
  for (int s = 0; s < kNumShards; ++s) {
    if (!ReadU64(is, &(*counts)[s]) || (*counts)[s] > kMaxEntriesPerShard) {
      return Status::InvalidArgument("corrupt manifest shard counts");
    }
  }
  if (is.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing garbage in manifest");
  }
  return Status::OK();
}

Status CatalogStore::WriteDurably(const std::string& path,
                                  const std::string& payload) {
  const std::string tmp = path + ".tmp";
  Status s = fs()->WriteFile(tmp, payload);
  if (!s.ok()) return s;
  s = fs()->SyncFile(tmp);
  if (!s.ok()) return s;
  return fs()->Rename(tmp, path);
}

void CatalogStore::Quarantine(int shard, const std::string& why,
                              RecoveryReport* report) {
  const std::string path = ShardPath(shard);
  if (options_.mode == Mode::kReadWrite && fs()->FileExists(path)) {
    // Move the corrupt file aside rather than deleting it: the bytes stay
    // available for forensics, and the next flush writes a healthy
    // replacement under the canonical name.
    (void)fs()->Rename(path, path + ".quarantined");
  }
  report->shards_quarantined++;
  report->quarantined_shards.push_back(shard);
  report->messages.push_back(ShardFileName(shard) + ": " + why);
}

Status CatalogStore::LoadShards(bool keep_on_error, RecoveryReport* report) {
  // shard_counts_ holds the manifest's expectation on entry (what the last
  // flush recorded); it is overwritten with what actually loaded.
  for (int s = 0; s < kNumShards; ++s) {
    const std::string path = ShardPath(s);
    const uint64_t expected = shard_counts_[s];
    if (!fs()->FileExists(path)) {
      if (expected > 0) {
        Quarantine(s, "shard file missing (" + std::to_string(expected) +
                          " entries recorded at last flush)",
                   report);
      }
      if (!keep_on_error || expected == 0) {
        catalog_->ReplaceShard(s, {});
      }
      shard_counts_[s] = 0;
      last_flushed_[s] = kNeverFlushed;
      continue;
    }
    std::string bytes;
    Status s_read = fs()->ReadFile(path, &bytes);
    std::vector<CatalogEntry> entries;
    if (s_read.ok()) s_read = DecodeShard(bytes, s, &entries);
    if (!s_read.ok()) {
      Quarantine(s, s_read.message(), report);
      if (!keep_on_error) {
        catalog_->ReplaceShard(s, {});
        shard_counts_[s] = 0;
      }
      last_flushed_[s] = kNeverFlushed;
      continue;
    }
    report->shards_loaded++;
    report->entries_loaded += static_cast<int64_t>(entries.size());
    shard_counts_[s] = entries.size();
    catalog_->ReplaceShard(s, std::move(entries));
    last_flushed_[s] = catalog_->ShardVersion(s);
  }
  return Status::OK();
}

Status CatalogStore::Open(RecoveryReport* report) {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) return Status::InvalidArgument("catalog store already opened");
  RecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RecoveryReport{};

  if (options_.mode == Mode::kReadWrite) {
    Status s = fs()->CreateDir(dir_);
    if (!s.ok()) return s;
    s = fs()->LockFile(LockPath(), &lease_handle_);
    if (!s.ok()) {
      lease_handle_ = -1;
      return Status::IOError("cannot take writer lease on catalog directory " +
                             dir_ + ": " + s.message());
    }
    // Reap temp files from an interrupted save: they were never renamed
    // into place, so they are dead weight, not state.
    std::vector<std::string> names;
    if (fs()->ListDir(dir_, &names).ok()) {
      for (const std::string& name : names) {
        if (EndsWith(name, ".tmp")) (void)fs()->Remove(dir_ + "/" + name);
      }
    }
  } else if (!fs()->FileExists(dir_)) {
    return Status::NotFound("no catalog directory at " + dir_);
  }

  bool have_manifest = fs()->FileExists(ManifestPath());
  bool any_shard = false;
  for (int s = 0; s < kNumShards; ++s) {
    if (fs()->FileExists(ShardPath(s))) any_shard = true;
  }

  if (!have_manifest && !any_shard) {
    // Fresh directory. A writer keeps whatever the caller preloaded into
    // the catalog — every shard is dirty, so the first flush materializes
    // all of it. A reader reflects the disk: empty.
    if (options_.mode == Mode::kReadOnly) {
      for (int s = 0; s < kNumShards; ++s) catalog_->ReplaceShard(s, {});
    }
    last_flushed_.fill(kNeverFlushed);
    shard_counts_.fill(0);
    opened_ = true;
    return Status::OK();
  }

  shard_counts_.fill(0);
  if (have_manifest) {
    std::string bytes;
    Status s = fs()->ReadFile(ManifestPath(), &bytes);
    if (s.ok()) s = DecodeManifest(bytes, &epoch_, &shard_counts_);
    if (!s.ok()) {
      // A bad manifest costs bookkeeping, not data: shards self-validate.
      report->messages.push_back("MANIFEST: " + s.message() +
                                 " (rebuilt on next flush)");
      if (options_.mode == Mode::kReadWrite) {
        (void)fs()->Rename(ManifestPath(), ManifestPath() + ".quarantined");
      }
      epoch_ = 0;
      shard_counts_.fill(0);
    }
  }

  (void)LoadShards(/*keep_on_error=*/false, report);
  if (options_.metrics != nullptr) {
    options_.metrics->OnCatalogRecovery(report->shards_loaded,
                                        report->shards_quarantined);
  }
  opened_ = true;
  if (report->shards_quarantined > 0) {
    return Status::Partial(
        "recovered " + std::to_string(report->shards_loaded) + " of " +
        std::to_string(kNumShards) + " catalog shards from " + dir_ + " (" +
        std::to_string(report->shards_quarantined) + " quarantined)");
  }
  return Status::OK();
}

Status CatalogStore::Flush(FlushStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::InvalidArgument("catalog store not opened");
  if (options_.mode == Mode::kReadOnly) {
    return Status::Unsupported("read-only catalog store cannot flush");
  }
  FlushStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = FlushStats{};

  Status err;
  std::vector<int> touched;
  for (int s = 0; s < kNumShards; ++s) {
    uint64_t version = 0;
    std::vector<CatalogEntry> entries = catalog_->ShardSnapshot(s, &version);
    if (last_flushed_[s] == version) {
      stats->shards_skipped++;
      continue;
    }
    std::string payload = EncodeShard(s, entries);
    err = WriteDurably(ShardPath(s), payload);
    if (!err.ok()) break;
    touched.push_back(s);
    last_flushed_[s] = version;
    shard_counts_[s] = entries.size();
    stats->shards_flushed++;
    stats->bytes_written += static_cast<int64_t>(payload.size());
  }

  if (err.ok() && stats->shards_flushed > 0) {
    std::string manifest = EncodeManifest(epoch_ + 1);
    err = WriteDurably(ManifestPath(), manifest);
    if (err.ok()) {
      stats->bytes_written += static_cast<int64_t>(manifest.size());
      err = fs()->SyncDir(dir_);
    }
    if (err.ok()) ++epoch_;
  }

  if (!err.ok()) {
    // The directory fsync never happened, so renames done this round are
    // not yet guaranteed durable; re-mark those shards dirty so the next
    // flush re-asserts them.
    for (int s : touched) last_flushed_[s] = kNeverFlushed;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->OnCatalogFlush(stats->shards_flushed,
                                     stats->shards_skipped,
                                     stats->bytes_written);
  }
  return err;
}

Status CatalogStore::Refresh(RecoveryReport* report) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::InvalidArgument("catalog store not opened");
  if (options_.mode == Mode::kReadWrite) {
    return Status::Unsupported(
        "refresh is for read-only stores; the writer owns the in-memory "
        "state");
  }
  RecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RecoveryReport{};

  if (fs()->FileExists(ManifestPath())) {
    std::string bytes;
    std::array<uint64_t, kNumShards> counts{};
    uint64_t epoch = 0;
    Status s = fs()->ReadFile(ManifestPath(), &bytes);
    if (s.ok()) s = DecodeManifest(bytes, &epoch, &counts);
    if (s.ok()) {
      epoch_ = epoch;
      shard_counts_ = counts;
    } else {
      report->messages.push_back("MANIFEST: " + s.message());
    }
  }
  // A shard that fails to parse (e.g. read raced the writer's replace) keeps
  // its previous in-memory contents; the next Refresh will catch up.
  (void)LoadShards(/*keep_on_error=*/true, report);
  if (report->shards_quarantined > 0) {
    return Status::Partial("refreshed " + std::to_string(report->shards_loaded) +
                           " of " + std::to_string(kNumShards) +
                           " catalog shards from " + dir_);
  }
  return Status::OK();
}

}  // namespace gordian
