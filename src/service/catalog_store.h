#ifndef GORDIAN_SERVICE_CATALOG_STORE_H_
#define GORDIAN_SERVICE_CATALOG_STORE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/fault_fs.h"
#include "service/key_catalog.h"
#include "service/metrics.h"

namespace gordian {

// What a recovery pass (Open / Refresh) found on disk.
struct RecoveryReport {
  int shards_loaded = 0;       // shard files parsed and admitted
  int shards_quarantined = 0;  // corrupt or missing-but-expected shards
  int64_t entries_loaded = 0;
  std::vector<int> quarantined_shards;    // shard indices, ascending
  std::vector<std::string> messages;      // one per quarantine / anomaly
};

// What one Flush did.
struct FlushStats {
  int shards_flushed = 0;
  int shards_skipped = 0;  // clean shards the dirty bit let us skip
  int64_t bytes_written = 0;
};

// Crash-safe per-shard persistence for a KeyCatalog.
//
// On-disk layout (one directory per catalog):
//
//   LOCK                  flock'd writer lease, contents unused
//   MANIFEST              "GRDM": format version, epoch, per-shard counts
//   shard-00.grdc ...     one "GRDS" file per catalog shard (16), each
//   shard-15.grdc         self-validating via a trailing content checksum
//   *.tmp                 in-flight writes; ignored and reaped on open
//   *.quarantined         corrupt shard files moved aside by recovery
//
// Every file is replaced by write-to-temp + fsync + atomic rename, so a
// shard file on disk is always a complete snapshot — old or new, never a
// mix. Shards carry their own checksums and are recoverable independently:
// a crash between shard renames leaves some shards on the new snapshot and
// some on the old, each internally consistent, and a torn or bit-flipped
// shard is quarantined at load without touching its 15 neighbours. The
// MANIFEST is bookkeeping (format version, flush epoch, expected shard
// set), not a commit point.
//
// Durability: Flush serializes each dirty shard (per-shard version counters
// in KeyCatalog are the dirty bits), writes temp + fsync + rename for each,
// rewrites the MANIFEST the same way, then fsyncs the directory. A clean
// Flush writes zero bytes. Any failure aborts the flush; shards renamed
// before the failure are re-marked dirty so the next flush re-asserts their
// durability (the directory fsync never ran).
//
// Sharing: a kReadWrite store takes an exclusive flock lease on LOCK for
// its lifetime — a second writer fails fast in Open. kReadOnly stores take
// no lease; they load the last flushed snapshot and can poll the writer's
// progress with Refresh. This is the stepping stone to cross-process job
// distribution: one process profiles and flushes, others consume.
//
// All file access goes through the FileSystem seam, so the fault-injection
// tests can fail any single step deterministically. Open/Flush/Refresh are
// thread-safe against each other; the KeyCatalog handles its own locking.
class CatalogStore {
 public:
  enum class Mode { kReadWrite, kReadOnly };

  struct Options {
    Mode mode = Mode::kReadWrite;
    FileSystem* fs = nullptr;           // null = DefaultFileSystem()
    ServiceMetrics* metrics = nullptr;  // optional flush/recovery counters
  };

  // The store reads and writes `*catalog`, which must outlive it.
  CatalogStore(std::string dir, KeyCatalog* catalog, Options options);
  CatalogStore(std::string dir, KeyCatalog* catalog)
      : CatalogStore(std::move(dir), catalog, Options()) {}
  ~CatalogStore();  // releases the lease; does NOT flush (callers decide)

  CatalogStore(const CatalogStore&) = delete;
  CatalogStore& operator=(const CatalogStore&) = delete;

  // Opens the directory. Read-write mode creates it if needed, takes the
  // writer lease (failing fast if another writer holds it), reaps stale
  // temp files, and marks every shard dirty when the directory is fresh.
  // Both modes then load what is on disk into the catalog, replacing its
  // contents. Returns OK (everything loaded, possibly nothing), Partial
  // (some shards quarantined — the surviving ones are loaded and *report
  // says which), or an error (lease unavailable / directory unusable, in
  // which case the catalog is left untouched).
  Status Open(RecoveryReport* report = nullptr);

  // Rewrites dirty shards + manifest, then fsyncs the directory. Read-write
  // mode only. With no dirty shards this writes nothing at all.
  Status Flush(FlushStats* stats = nullptr);

  // Re-reads the directory into the catalog — a read-only store's way to
  // observe the writer's latest flush. Shards that fail to parse (e.g. read
  // mid-replace) keep their previous in-memory contents and are reported.
  Status Refresh(RecoveryReport* report = nullptr);

  const std::string& dir() const { return dir_; }
  Mode mode() const { return options_.mode; }

  // Flush epoch of the on-disk manifest: 0 before the first flush,
  // incremented by every manifest rewrite.
  uint64_t epoch() const;

  // Paths, exposed for tests and tooling.
  std::string ShardPath(int shard) const;
  std::string ManifestPath() const;
  std::string LockPath() const;

 private:
  static constexpr int kNumShards = KeyCatalog::kNumShards;
  // Version sentinel forcing a shard to be rewritten on the next flush.
  static constexpr uint64_t kNeverFlushed = ~uint64_t{0};

  FileSystem* fs() const { return options_.fs; }

  // Serializes one shard snapshot into its self-validating file image.
  static std::string EncodeShard(int shard,
                                 const std::vector<CatalogEntry>& entries);
  // Inverse of EncodeShard; InvalidArgument with a reason on any corruption.
  static Status DecodeShard(const std::string& bytes, int shard,
                            std::vector<CatalogEntry>* entries);

  std::string EncodeManifest(uint64_t epoch) const;
  Status DecodeManifest(const std::string& bytes, uint64_t* epoch,
                        std::array<uint64_t, kNumShards>* counts) const;

  // Temp-write + fsync + rename of `payload` onto `path`.
  Status WriteDurably(const std::string& path, const std::string& payload);

  // Moves a corrupt file aside (read-write mode) and records the outcome.
  void Quarantine(int shard, const std::string& why, RecoveryReport* report);

  // Shared by Open and Refresh: loads every shard file present.
  // `keep_on_error` preserves a shard's in-memory entries when its file is
  // unreadable (Refresh semantics) instead of clearing them (Open).
  Status LoadShards(bool keep_on_error, RecoveryReport* report);

  const std::string dir_;
  KeyCatalog* const catalog_;
  Options options_;

  mutable std::mutex mu_;  // serializes Open/Flush/Refresh and the state below
  bool opened_ = false;
  int lease_handle_ = -1;
  uint64_t epoch_ = 0;
  // Catalog shard version as of the last durable write of that shard.
  std::array<uint64_t, kNumShards> last_flushed_;
  // Entry counts at the last flush/load, recorded in the manifest.
  std::array<uint64_t, kNumShards> shard_counts_;
};

}  // namespace gordian

#endif  // GORDIAN_SERVICE_CATALOG_STORE_H_
