#ifndef GORDIAN_SERVICE_PROFILING_SERVICE_H_
#define GORDIAN_SERVICE_PROFILING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/gordian.h"
#include "core/incremental.h"
#include "core/streaming.h"
#include "service/catalog_store.h"
#include "service/job_scheduler.h"
#include "service/key_catalog.h"
#include "service/metrics.h"
#include "service/table_artifacts.h"
#include "service/tree_cache.h"
#include "table/csv.h"
#include "table/fingerprint.h"
#include "table/table.h"

namespace gordian {

struct ServiceOptions {
  // Worker threads; 0 means one per hardware thread.
  int num_threads = 0;

  // When non-null, the service reads and writes this shared catalog
  // (which must outlive the service) instead of its own private one —
  // e.g. a catalog preloaded with ReadCatalogFile.
  KeyCatalog* catalog = nullptr;

  // Byte budget for the prefix-tree artifact cache (LRU over built trees,
  // measured by NodePool accounting): jobs re-profiling an unchanged table
  // under different budgets/options skip BuildPrefixTree. 0 disables the
  // cache.
  int64_t tree_cache_bytes = TreeArtifactCache::kDefaultByteBudget;

  // When non-empty, the catalog is durably backed by this directory through
  // a CatalogStore: surviving shards load at construction (corrupt ones are
  // quarantined — see persistence_status()), a background flusher rewrites
  // dirty shards after every `flush_every_puts` catalog stores, and the
  // destructor performs a final flush. The service holds the directory's
  // writer lease for its lifetime, so a second service over the same
  // directory must open it read-only via its own CatalogStore.
  std::string catalog_dir;

  // Catalog puts between background flushes; <= 0 flushes only at shutdown
  // (and whenever FlushCatalog() is called).
  int flush_every_puts = 32;

  // File-system seam for the catalog and artifact stores; null = the real
  // one. Tests substitute a FaultInjectionFs.
  FileSystem* fs = nullptr;

  // When non-empty, completed table jobs persist their (fingerprint-keyed)
  // ingested tables into a TableArtifactStore rooted here — the table
  // companion of catalog_dir: the catalog remembers results, this
  // remembers the tables themselves, reloadable as mmap-backed columns.
  std::string table_artifact_dir;

  // Ingest spill policy for CSV jobs: when both are set, a CSV job's
  // retained table streams cold columns to GRDL files under spill_dir once
  // resident code bytes exceed the budget (TableBuilder SpillPolicy
  // semantics; 0 or an empty dir disables spilling).
  std::string spill_dir;
  int64_t spill_memory_budget = 0;
};

// Per-job knobs for a profiling submission.
struct ProfileJobOptions {
  GordianOptions gordian;

  // Larger runs earlier; FIFO among equals (JobScheduler semantics).
  int priority = 0;

  // Wall-clock cap on the job's discovery search. Folded into
  // GordianOptions::time_budget_seconds (taking the smaller of the two);
  // a job that trips it returns an incomplete result with reason
  // kTimeBudget. 0 = no cap beyond what `gordian` already sets.
  double timeout_seconds = 0;

  // Consult the key catalog before running and store the (complete) result
  // after. Off for callers that want a forced re-profile.
  bool use_catalog = true;

  // Consult/populate the service's TreeArtifactCache: a job whose table,
  // sample spec, and tree-shape options match a cached artifact skips the
  // tree-build stage and goes straight to traversal. Independent of
  // use_catalog — a forced re-profile still reuses the tree.
  bool use_tree_cache = true;
};

// Result of one AppendAndReprofile call.
struct AppendOutcome {
  // Content fingerprint of the table after the delta — the handle for the
  // next append in the chain, and the key the updated result was catalogued
  // under.
  uint64_t fingerprint = 0;
  // True when the delta was absorbed into the cached prefix tree in place;
  // false when the tree was unavailable (cache disabled, evicted, or leased
  // by a concurrent run) and discovery rebuilt from a snapshot instead.
  bool tree_absorbed = false;
  // Wall clock spent re-freezing the absorbed tree (0 when the frozen
  // layout is disabled or the rebuild path ran).
  double refreeze_seconds = 0;
  KeyDiscoveryResult result;
};

// Everything known about a finished job. For coalesced submissions the
// result/fingerprint are the primary job's.
struct ProfileOutcome {
  JobInfo info;             // info.valid == false iff the id is unknown
  bool cache_hit = false;   // served from the catalog without discovery
  bool tree_cache_hit = false;  // discovery ran but reused a cached tree
  bool coalesced = false;   // piggybacked on an identical in-flight job
  uint64_t fingerprint = 0; // 0 for CSV jobs (streams are not fingerprinted)
  std::string table_name;
  KeyDiscoveryResult result;
};

// The concurrent profiling front-end: submit tables (or CSV files) for key
// discovery, poll or wait for results, cancel what you no longer need. Jobs
// run on a priority scheduler across a thread pool; results of complete
// runs land in a fingerprint-keyed KeyCatalog so re-profiling an unchanged
// table is a cache hit that skips discovery entirely. Discovery itself is
// the staged pipeline of core/pipeline.h, composed through the
// TreeArtifactCache: jobs that miss the catalog (different budgets, forced
// re-profiles) but match a cached prefix-tree artifact skip the tree-build
// stage and pay only traversal + conversion.
//
// Concurrency notes:
//  - Every public method is thread-safe.
//  - A Table submitted by pointer must stay alive and unmodified until its
//    job is terminal.
//  - Submitting the same Table object while a job for it is in flight
//    coalesces: the new JobId tracks the first job instead of scheduling a
//    second discovery (and instead of racing on the table's lazy caches).
//    Coalesced jobs cannot be cancelled independently of their primary.
class ProfilingService {
 public:
  explicit ProfilingService(ServiceOptions options = {});
  ~ProfilingService();

  ProfilingService(const ProfilingService&) = delete;
  ProfilingService& operator=(const ProfilingService&) = delete;

  // Schedules key discovery over `*table`.
  JobId SubmitTable(const std::string& name, const Table* table,
                    const ProfileJobOptions& options = {});

  // Schedules single-pass streaming discovery over a CSV file
  // (StreamingProfiler under the hood; reservoir-sampled when
  // options.gordian.sample_rows > 0). CSV jobs bypass the catalog: the
  // stream's content is unknown until read. An unreadable or malformed
  // file finishes as kFailed with the parser's message.
  JobId SubmitCsv(const std::string& name, const std::string& path,
                  const CsvOptions& csv_options,
                  const ProfileJobOptions& options = {});

  // Requests cancellation (JobScheduler semantics). Returns false for
  // unknown, already-terminal, or coalesced jobs.
  bool Cancel(JobId id);

  // Non-blocking job state; for coalesced jobs, the primary's state.
  JobInfo Poll(JobId id) const;

  // Blocks until the job is terminal and returns the full outcome. The
  // result is meaningful for kSucceeded jobs and carries the partial
  // (incomplete) result for cancelled/timed-out discovery runs.
  ProfileOutcome Wait(JobId id);

  // Blocks until every accepted job is terminal.
  void WaitAll();

  // Registers `table` as the base of an appendable chain and profiles it
  // synchronously (through the tree cache, so the base tree is resident for
  // the first append to absorb into). The chain's handle — the table's
  // content fingerprint — is returned through *fingerprint (optional; it
  // also lands in the catalog like any completed job). `options` is pinned
  // for the chain's lifetime and must not require the raw table on every
  // run: sampling and null-excluding semantics are rejected with
  // InvalidArgument. The caller's `table` is deep-copied into append state
  // and may be dropped afterwards.
  Status RegisterAppendable(const std::string& name, const Table& table,
                            const GordianOptions& options = {},
                            uint64_t* fingerprint = nullptr);

  // Appends `batch` to the chain currently headed by `fingerprint` and
  // brings its discovery result current, synchronously. The fast path
  // acquires the chain's cached prefix tree under an exclusive lease,
  // absorbs the delta in place, re-traverses warm-started from the prior
  // non-keys, and rekeys the cache entry to the new fingerprint — the lease
  // is held throughout, so a concurrent read-only Profile of the old
  // fingerprint busy-misses rather than observing a half-absorbed tree.
  // When the tree is unavailable the chain re-profiles a snapshot (still
  // warm-started). Appends to the same chain serialize; `fingerprint` must
  // be the chain's current head (the value the previous call returned) —
  // a stale handle fails with FailedPrecondition, an unknown one with
  // NotFound. Complete results are catalogued under the new fingerprint.
  Status AppendAndReprofile(uint64_t fingerprint, const RowBatch& batch,
                            AppendOutcome* out = nullptr);

  // The catalog in use (the service's own, or ServiceOptions::catalog).
  KeyCatalog& catalog() { return *catalog_; }

  // The durable store backing the catalog; null unless
  // ServiceOptions::catalog_dir was set and its directory opened.
  CatalogStore* catalog_store() { return catalog_store_.get(); }

  // Health of the durable catalog: OK when persistence is off or everything
  // has worked, Partial when recovery quarantined shards (the survivors are
  // loaded), otherwise the error that disabled persistence at open or the
  // most recent flush failure.
  Status persistence_status() const;

  // How recovery went at construction time (all zeros when persistence is
  // off or the directory was fresh).
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  // Synchronously rewrites dirty catalog shards. OK no-op without a store.
  Status FlushCatalog();

  // The prefix-tree artifact cache; null when disabled
  // (ServiceOptions::tree_cache_bytes == 0).
  TreeArtifactCache* tree_cache() { return tree_cache_.get(); }

  // The durable table store; null unless ServiceOptions::table_artifact_dir
  // was set and its directory was usable.
  TableArtifactStore* artifact_store() { return artifact_store_.get(); }

  // Counter snapshot with live queue depth / running count filled in.
  ServiceMetrics::Snapshot Metrics() const;

  int num_threads() const { return scheduler_.num_threads(); }

  // The underlying scheduler, for composite front-ends (SchemaProfiler)
  // that fan their own work units across the same pool.
  JobScheduler& scheduler() { return scheduler_; }

  // ServiceOptions::catalog_dir as configured (empty when persistence is
  // off). SchemaProfiler drops its SchemaReport artifact next to it.
  const std::string& catalog_dir() const { return catalog_dir_; }

 private:
  struct Record {
    std::string name;
    const Table* table = nullptr;  // table jobs only
    JobId alias_of = 0;            // != 0 for coalesced submissions
    // Written by the worker before the job turns terminal; read only
    // through Wait (the scheduler's completion handshake orders the two).
    bool started = false;  // body entered; false for cancelled-while-queued
    uint64_t fingerprint = 0;
    bool cache_hit = false;
    bool tree_cache_hit = false;
    KeyDiscoveryResult result;
  };

  // One registered append chain. `chain_mu` serializes appends; the
  // registry map (appendables_, under append_mu_) is keyed by the chain's
  // current head fingerprint and rekeyed after every successful append.
  struct Appendable {
    std::string name;
    GordianOptions options;
    AppendState state;
    // Non-keys of the last COMPLETE run — the warm-start seed for the next
    // append (sound because appends never retract a non-key).
    std::vector<AttributeSet> last_non_keys;
    std::mutex chain_mu;
  };

  void RunTableJob(Record* rec, const ProfileJobOptions& options,
                   const JobContext& ctx);
  void RunCsvJob(Record* rec, const std::string& path,
                 const CsvOptions& csv_options,
                 const ProfileJobOptions& options, const JobContext& ctx);
  static GordianOptions EffectiveOptions(const ProfileJobOptions& options,
                                         const JobContext& ctx);

  // Worker-side hook after a successful catalog Put: wakes the background
  // flusher once enough puts have accumulated.
  void NotePut();
  void FlusherMain();

  std::unique_ptr<KeyCatalog> owned_catalog_;
  KeyCatalog* catalog_;
  std::unique_ptr<TreeArtifactCache> tree_cache_;
  std::unique_ptr<TableArtifactStore> artifact_store_;
  SpillPolicy ingest_spill_;
  ServiceMetrics metrics_;

  // Durable catalog persistence (null / default-constructed when off).
  std::unique_ptr<CatalogStore> catalog_store_;
  std::string catalog_dir_;
  RecoveryReport recovery_report_;
  int flush_every_puts_ = 0;
  mutable std::mutex flush_mu_;  // guards the three fields below
  std::condition_variable flush_cv_;
  Status persistence_status_;
  int64_t unflushed_puts_ = 0;
  bool stop_flusher_ = false;
  std::thread flusher_;

  mutable std::mutex append_mu_;  // guards appendables_
  std::unordered_map<uint64_t, std::shared_ptr<Appendable>> appendables_;

  mutable std::mutex mu_;  // guards records_, inflight_, next_alias_id_
  std::map<JobId, std::shared_ptr<Record>> records_;
  // Table pointer -> primary job id, for coalescing. Entries are validated
  // lazily at the next submission of the same table (a stale entry whose
  // job is terminal is simply replaced), so no cleanup hook runs on the
  // worker side.
  std::unordered_map<const Table*, JobId> inflight_;
  // Coalesced submissions get ids from a separate negative space so they
  // can never collide with scheduler-issued ids.
  JobId next_alias_id_ = -1;

  // Declared last: its destructor drains all jobs, whose bodies touch the
  // members above.
  JobScheduler scheduler_;
};

}  // namespace gordian

#endif  // GORDIAN_SERVICE_PROFILING_SERVICE_H_
