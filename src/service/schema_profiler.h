#ifndef GORDIAN_SERVICE_SCHEMA_PROFILER_H_
#define GORDIAN_SERVICE_SCHEMA_PROFILER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/fault_fs.h"
#include "common/status.h"
#include "core/fd.h"
#include "core/foreign_key.h"
#include "core/report.h"
#include "service/profiling_service.h"

namespace gordian {

// Schema-wide profiling: one call that takes a whole schema's tables and
// returns per-table keys, ranked top-k FDs, and cross-table foreign-key
// candidates — the "full entity-relationship diagram" the paper names as
// future work, composed from the pieces the service stack already has.
//
// Execution is staged over the owning ProfilingService's scheduler:
//   1. keys — one SubmitTable job per table (catalog + tree cache reuse);
//   2. FDs  — one DiscoverFds job per table (independent tables, so the
//      jobs run concurrently without sharing mutable state);
//   3. FKs  — one VerifyForeignKeysAgainstKey job per (referenced table,
//      key, referencing table) unit, fanned across the pool.
// Stage 3's units land in preallocated slots in enumeration order and the
// concatenation is sorted with SortForeignKeyCandidates, so the report is
// byte-identical to a serial DiscoverForeignKeys run at any thread count.

struct SchemaProfileOptions {
  // Per-table key-discovery knobs (catalog/tree-cache reuse included).
  ProfileJobOptions job;

  ForeignKeyOptions fk;
  FdOptions fd;

  bool discover_foreign_keys = true;
  bool discover_fds = true;

  // Where to persist the schema_report.json artifact. Empty = next to the
  // service's catalog (ServiceOptions::catalog_dir); both empty = the
  // report is not persisted.
  std::string report_dir;

  // File-system seam for the artifact write; null = the real one.
  FileSystem* fs = nullptr;
};

struct SchemaReport {
  struct TableEntry {
    std::string name;
    const Table* table = nullptr;
    uint64_t fingerprint = 0;
    bool catalog_hit = false;     // keys served from the catalog
    bool tree_cache_hit = false;  // discovery ran but reused a cached tree
    KeyDiscoveryResult result;
    std::vector<FdCandidate> fds;  // ranked, FdCandidateLess order
  };
  std::vector<TableEntry> tables;

  // Sorted with SortForeignKeyCandidates; table indices refer to `tables`.
  std::vector<ForeignKeyCandidate> foreign_keys;

  // Wall clock per stage.
  double key_seconds = 0;
  double fd_seconds = 0;
  double fk_seconds = 0;

  // Absolute path of the persisted artifact; empty when not persisted.
  std::string report_path;

  // Views for the report renderers (core/report.h) and the FK API.
  DatabaseProfile AsDatabaseProfile() const;
  std::vector<ProfiledTable> AsProfiledTables() const;
};

class SchemaProfiler {
 public:
  // The service must outlive the profiler; its scheduler, catalog, and tree
  // cache do the heavy lifting.
  explicit SchemaProfiler(ProfilingService* service) : service_(service) {}

  // Profiles every table and fills *report (cleared first). Tables must
  // stay alive and unmodified for the duration of the call. Returns OK when
  // profiling succeeded; a persistence failure still leaves *report fully
  // populated (with an empty report_path) and returns that error.
  Status Profile(
      const std::vector<std::pair<std::string, const Table*>>& tables,
      const SchemaProfileOptions& options, SchemaReport* report);

 private:
  ProfilingService* service_;
};

// JSON rendering of a schema report: stable field order, two-space
// indentation, names JSON-escaped. Byte-stable across thread counts (the
// report itself is deterministically ordered).
std::string SchemaReportToJson(const SchemaReport& report);

}  // namespace gordian

#endif  // GORDIAN_SERVICE_SCHEMA_PROFILER_H_
