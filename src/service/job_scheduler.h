#ifndef GORDIAN_SERVICE_JOB_SCHEDULER_H_
#define GORDIAN_SERVICE_JOB_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace gordian {

// Handle for a submitted job. Ids are process-unique and never reused.
using JobId = int64_t;

enum class JobState {
  kQueued,     // accepted, not yet started
  kRunning,    // a worker is executing the body
  kSucceeded,  // body returned normally with no cancel request pending
  kCancelled,  // cancelled while queued, or cancel requested while running
  kFailed,     // body threw; JobInfo::error carries the message
};

// True for states a job can never leave.
inline bool IsTerminal(JobState s) {
  return s == JobState::kSucceeded || s == JobState::kCancelled ||
         s == JobState::kFailed;
}

// Passed to every job body. The body is expected to poll `cancel_flag`
// (directly or by handing it to GordianOptions::cancel_flag) and unwind
// promptly once it reads true; the scheduler never kills a thread.
struct JobContext {
  JobId id = 0;
  const std::atomic<bool>* cancel_flag = nullptr;

  bool Cancelled() const {
    return cancel_flag != nullptr &&
           cancel_flag->load(std::memory_order_relaxed);
  }
};

// Snapshot of one job, as returned by Poll/Wait.
struct JobInfo {
  bool valid = false;  // false iff the JobId is unknown (or forgotten)
  JobState state = JobState::kQueued;
  int priority = 0;
  bool cancel_requested = false;
  // Submit-to-finish wall clock; 0 until the job reaches a terminal state.
  double latency_seconds = 0;
  std::string error;  // kFailed only
};

// Priority scheduling over a ThreadPool: jobs run highest priority first,
// FIFO among equal priorities, with at most num_threads jobs in flight.
// Submission, polling, waiting, and cancellation are all thread-safe.
//
// Cancellation is cooperative and two-phase: a queued job is dequeued and
// finishes as kCancelled without ever running; a running job has its cancel
// flag raised and finishes as kCancelled when its body returns. Either way
// the worker thread survives and moves on to the next job.
//
// Completed jobs stay queryable until Forget(id) so results can be polled
// at leisure; the destructor waits for every accepted job to finish.
class JobScheduler {
 public:
  // 0 threads means one worker per hardware thread.
  explicit JobScheduler(int num_threads);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  // Enqueues `body`. Larger `priority` runs earlier; ties run in submission
  // order. Returns the job's handle.
  JobId Submit(std::function<void(const JobContext&)> body, int priority = 0);

  // Requests cancellation. Returns true if the job was still queued or
  // running (it will finish as kCancelled), false if it is unknown or
  // already terminal. When `cancelled_before_running` is non-null it is set
  // to whether the job was dequeued without ever starting.
  bool Cancel(JobId id, bool* cancelled_before_running = nullptr);

  // Non-blocking snapshot; info.valid is false for unknown ids.
  JobInfo Poll(JobId id) const;

  // Blocks until the job is terminal and returns its final snapshot.
  // Unknown ids return info.valid == false immediately.
  JobInfo Wait(JobId id);

  // Blocks until no job is queued or running.
  void WaitAll();

  // Drops the record of a terminal job. Returns false if the job is
  // unknown or not yet terminal (non-terminal jobs are never dropped).
  bool Forget(JobId id);

  // Jobs accepted but not yet started.
  int64_t queue_depth() const;
  // Jobs currently executing.
  int64_t running_jobs() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  struct Job {
    JobId id = 0;
    int priority = 0;
    int64_t seq = 0;
    std::function<void(const JobContext&)> body;
    JobState state = JobState::kQueued;
    std::atomic<bool> cancel{false};
    Stopwatch watch;  // started at submission
    double latency_seconds = 0;
    std::string error;
  };

  // Pops and runs the best ready job; the pool executes one call per
  // submitted job, so the ready set is non-empty unless a queued job was
  // cancelled out from under its slot.
  void RunNext();
  void FinishLocked(Job& job, JobState state);

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  // (-priority, seq, id): lexicographic order == scheduling order.
  std::set<std::tuple<int, int64_t, JobId>> ready_;
  JobId next_id_ = 1;
  int64_t next_seq_ = 0;
  int64_t running_ = 0;
  int64_t active_ = 0;  // queued + running

  // Declared last so it is destroyed first: the pool's destructor joins
  // every worker while the mutex, condition variable, and job table above
  // are still alive (a worker's final notify_all must not outlive them).
  ThreadPool pool_;
};

}  // namespace gordian

#endif  // GORDIAN_SERVICE_JOB_SCHEDULER_H_
