#ifndef GORDIAN_DATAGEN_TPCH_LITE_H_
#define GORDIAN_DATAGEN_TPCH_LITE_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace gordian {

// A named table inside a generated multi-table dataset.
struct NamedTable {
  std::string name;
  Table table;
};

// One known-by-construction foreign key of a generated schema, expressed in
// names so it survives any table/column reordering. foreign_key_columns and
// referenced_key_columns are paired position-wise. Used as ground truth for
// the schema-discovery precision/recall measurement (bench/bench_schema).
struct SchemaGroundTruthFk {
  std::string referencing_table;
  std::vector<std::string> foreign_key_columns;
  std::string referenced_table;
  std::vector<std::string> referenced_key_columns;
};

// From-scratch generator for the eight-table TPC-H schema shape (the
// synthetic database of the paper's Table 1). Row counts scale with
// `scale_factor` exactly as dbgen's do (lineitem ~ 6M rows/SF); SF 0.1
// yields roughly the 866k total tuples reported in the paper.
//
// The standard key structure is preserved: single-column primary keys for
// supplier/part/customer/orders/nation/region, the composite keys
// (ps_partkey, ps_suppkey) for partsupp and (l_orderkey, l_linenumber) for
// lineitem, and realistic foreign-key/correlated columns (dates, prices,
// statuses) so the discovered composite keys are non-trivial.
std::vector<NamedTable> GenerateTpchLite(double scale_factor, uint64_t seed);

// The foreign keys GenerateTpchLite builds in by construction (the TPC-H
// referential structure over single-column primary keys).
std::vector<SchemaGroundTruthFk> TpchLiteForeignKeys();

// A single denormalized 17-column, (1,800,000 * scale)-row order-line fact
// table: "a synthetic database with a schema similar to TPC-H; the largest
// table had 1,800,000 rows and 17 columns" (Section 4.4). Used by the
// index-recommendation experiment (Figure 16).
Table GenerateTpchFact(int64_t num_rows, uint64_t seed);

// Schema of the fact table above, for callers that construct their own
// TableBuilder (e.g. with a SpillPolicy).
Schema TpchFactSchema();

// Streams the fact rows into a caller-supplied builder instead of building
// a resident table, so 100M+-row datasets can be generated straight into a
// spilling TableBuilder without ever holding all codes in memory.
// GenerateTpchFact(n, s) == TableBuilder(TpchFactSchema()) filled this way.
void FillTpchFact(int64_t num_rows, uint64_t seed, TableBuilder* builder);

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_TPCH_LITE_H_
