#include "datagen/tpch_lite.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "common/random.h"
#include "datagen/words.h"

namespace gordian {

namespace {

const char* const kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* const kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                "MIDDLE EAST"};
const char* const kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                 "HOUSEHOLD", "MACHINERY"};
const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                   "4-NOT SPECIFIED", "5-LOW"};
const char* const kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                                  "REG AIR", "SHIP", "TRUCK"};
const char* const kInstructs[] = {"COLLECT COD", "DELIVER IN PERSON",
                                  "NONE", "TAKE BACK RETURN"};
const char* const kContainers[] = {"SM BOX",  "SM CASE", "MED BAG",
                                   "MED BOX", "LG CASE", "LG DRUM",
                                   "WRAP JAR", "JUMBO PKG"};
const char* const kTypes[] = {"ECONOMY ANODIZED", "ECONOMY BRUSHED",
                              "LARGE BURNISHED", "LARGE PLATED",
                              "MEDIUM POLISHED", "PROMO ANODIZED",
                              "SMALL PLATED",   "STANDARD BURNISHED"};

int64_t PriceCents(Random& rng, int64_t lo, int64_t hi) {
  return rng.UniformRange(lo, hi);
}

Table BuildRegion() {
  TableBuilder b(Schema(std::vector<std::string>{
      "r_regionkey", "r_name", "r_comment"}));
  BatchWriter w(&b);
  for (int64_t r = 0; r < 5; ++r) {
    w.Append(r, kRegions[r], CommentFor(900 + r, 6));
  }
  w.Flush();
  return b.Build();
}

Table BuildNation() {
  TableBuilder b(Schema(std::vector<std::string>{
      "n_nationkey", "n_name", "n_regionkey", "n_comment"}));
  BatchWriter w(&b);
  for (int64_t n = 0; n < 25; ++n) {
    w.Append(n, kNations[n], n % 5, CommentFor(700 + n, 8));
  }
  w.Flush();
  return b.Build();
}

Table BuildSupplier(int64_t count, Random& rng) {
  TableBuilder b(Schema(std::vector<std::string>{
      "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
      "s_acctbal", "s_comment"}));
  BatchWriter w(&b);
  for (int64_t s = 0; s < count; ++s) {
    int64_t nation = rng.UniformRange(0, 24);
    w.Append(s + 1, "Supplier#" + std::to_string(s + 1),
             CityFor(Mix64(s) % 4096), nation,
             std::to_string(10 + nation) + "-" +
                 std::to_string(100 + rng.UniformRange(0, 899)) + "-" +
                 std::to_string(1000 + rng.UniformRange(0, 8999)),
             PriceCents(rng, -99999, 999999), CommentFor(rng.Next(), 10));
  }
  w.Flush();
  return b.Build();
}

Table BuildPart(int64_t count, Random& rng) {
  TableBuilder b(Schema(std::vector<std::string>{
      "p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
      "p_container", "p_retailprice", "p_comment"}));
  BatchWriter w(&b);
  for (int64_t p = 0; p < count; ++p) {
    int64_t mfgr = 1 + rng.UniformRange(0, 4);
    w.Append(p + 1, CommentFor(Mix64(p ^ 0xabULL), 4),
             "Manufacturer#" + std::to_string(mfgr),
             BrandFor(mfgr * 10 + rng.UniformRange(0, 9)),
             kTypes[rng.UniformRange(0, 7)], rng.UniformRange(1, 50),
             kContainers[rng.UniformRange(0, 7)], 90000 + (p % 200001),
             CommentFor(rng.Next(), 6));
  }
  w.Flush();
  return b.Build();
}

Table BuildPartsupp(int64_t parts, int64_t supps, Random& rng) {
  TableBuilder b(Schema(std::vector<std::string>{
      "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
      "ps_comment"}));
  BatchWriter w(&b);
  for (int64_t p = 0; p < parts; ++p) {
    for (int i = 0; i < 4; ++i) {
      // The standard supplier spreading: four distinct suppliers per part.
      int64_t s = (p + i * (supps / 4 + 1)) % supps;
      w.Append(p + 1, s + 1, rng.UniformRange(1, 9999),
               PriceCents(rng, 100, 100000), CommentFor(rng.Next(), 12));
    }
  }
  w.Flush();
  return b.Build();
}

Table BuildCustomer(int64_t count, Random& rng) {
  TableBuilder b(Schema(std::vector<std::string>{
      "c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
      "c_acctbal", "c_mktsegment", "c_comment"}));
  BatchWriter w(&b);
  for (int64_t c = 0; c < count; ++c) {
    int64_t nation = rng.UniformRange(0, 24);
    w.Append(c + 1, "Customer#" + std::to_string(c + 1),
             CityFor(Mix64(c ^ 0xcc) % 8192), nation,
             std::to_string(10 + nation) + "-" +
                 std::to_string(1000 + rng.UniformRange(0, 8999)),
             PriceCents(rng, -99999, 999999), kSegments[rng.UniformRange(0, 4)],
             CommentFor(rng.Next(), 9));
  }
  w.Flush();
  return b.Build();
}

}  // namespace

std::vector<NamedTable> GenerateTpchLite(double scale_factor, uint64_t seed) {
  Random rng(seed);
  const int64_t supps = std::max<int64_t>(10, std::llround(10000 * scale_factor));
  const int64_t parts = std::max<int64_t>(20, std::llround(200000 * scale_factor));
  const int64_t custs = std::max<int64_t>(15, std::llround(150000 * scale_factor));
  const int64_t orders = std::max<int64_t>(15, std::llround(1500000 * scale_factor));

  std::vector<NamedTable> db;
  db.push_back({"region", BuildRegion()});
  db.push_back({"nation", BuildNation()});
  db.push_back({"supplier", BuildSupplier(supps, rng)});
  db.push_back({"part", BuildPart(parts, rng)});
  db.push_back({"partsupp", BuildPartsupp(parts, supps, rng)});
  db.push_back({"customer", BuildCustomer(custs, rng)});

  // orders: sparse order keys (like dbgen), dates over seven years.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
        "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
        "o_comment"}));
    BatchWriter w(&b);
    for (int64_t o = 0; o < orders; ++o) {
      int64_t okey = (o / 8) * 32 + (o % 8) + 1;  // sparse key space
      int64_t date_off = rng.UniformRange(0, 2400);
      const char* status = date_off < 800 ? "F" : (date_off < 1600 ? "P" : "O");
      w.Append(okey, rng.UniformRange(1, custs), status,
               PriceCents(rng, 90000, 50000000), DateFor(date_off),
               kPriorities[rng.UniformRange(0, 4)],
               "Clerk#" + std::to_string(rng.UniformRange(
                              1, std::max<int64_t>(2, orders / 1000))),
               int64_t{0}, CommentFor(rng.Next(), 8));
    }
    w.Flush();
    db.push_back({"orders", b.Build()});
  }

  // lineitem: 1-7 lines per order; composite key (l_orderkey, l_linenumber).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax", "l_returnflag",
        "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate",
        "l_shipinstruct", "l_shipmode", "l_comment"}));
    BatchWriter w(&b);
    for (int64_t o = 0; o < orders; ++o) {
      int64_t okey = (o / 8) * 32 + (o % 8) + 1;
      int64_t lines = 1 + rng.UniformRange(0, 6);
      for (int64_t l = 0; l < lines; ++l) {
        int64_t part = rng.UniformRange(1, parts);
        int64_t ship = rng.UniformRange(1, 2500);
        const char* rflag = ship < 900 ? "R" : (ship < 1200 ? "A" : "N");
        w.Append(okey, part, 1 + (part + l * (supps / 4 + 1)) % supps, l + 1,
                 rng.UniformRange(1, 50), PriceCents(rng, 90000, 10000000),
                 rng.UniformRange(0, 10), rng.UniformRange(0, 8), rflag,
                 ship < 1200 ? "F" : "O", DateFor(ship),
                 DateFor(ship + rng.UniformRange(-30, 30)),
                 DateFor(ship + rng.UniformRange(1, 30)),
                 kInstructs[rng.UniformRange(0, 3)],
                 kShipModes[rng.UniformRange(0, 6)], CommentFor(rng.Next(), 5));
      }
    }
    w.Flush();
    db.push_back({"lineitem", b.Build()});
  }
  return db;
}

Schema TpchFactSchema() {
  return Schema(std::vector<std::string>{
      "f_rowid", "f_orderkey", "f_linenumber", "f_custkey", "f_partkey",
      "f_suppkey", "f_quantity", "f_extendedprice", "f_discount", "f_tax",
      "f_returnflag", "f_linestatus", "f_shipdate", "f_shipmode",
      "f_nationkey", "f_mktsegment", "f_orderpriority"});
}

void FillTpchFact(int64_t num_rows, uint64_t seed, TableBuilder* builder) {
  Random rng(seed);
  TableBuilder& b = *builder;
  // Denormalized order-line rows; (f_orderkey, f_linenumber) is the planted
  // composite key, f_rowid a surrogate single-column key.
  const int64_t custs = std::max<int64_t>(1, num_rows / 12);
  const int64_t parts = std::max<int64_t>(1, num_rows / 9);
  const int64_t supps = std::max<int64_t>(1, num_rows / 180);
  int64_t order = 1;
  int64_t line = 1;
  int64_t lines_in_order = 1 + rng.UniformRange(0, 6);
  BatchWriter w(&b);
  for (int64_t r = 0; r < num_rows; ++r) {
    if (line > lines_in_order) {
      ++order;
      line = 1;
      lines_in_order = 1 + rng.UniformRange(0, 6);
    }
    int64_t cust = 1 + Mix64(order * 2654435761ULL) % custs;
    int64_t ship = rng.UniformRange(0, 2500);
    const char* rflag = ship < 900 ? "R" : (ship < 1200 ? "A" : "N");
    w.Append(r + 1, order, line, cust, rng.UniformRange(1, parts),
             rng.UniformRange(1, supps), rng.UniformRange(1, 50),
             PriceCents(rng, 90000, 10000000), rng.UniformRange(0, 10),
             rng.UniformRange(0, 8), rflag, ship < 1200 ? "F" : "O",
             DateFor(ship), kShipModes[rng.UniformRange(0, 6)],
             static_cast<int64_t>(Mix64(cust) % 25),
             kSegments[Mix64(cust ^ 0x5e9) % 5],
             kPriorities[rng.UniformRange(0, 4)]);
    ++line;
  }
  w.Flush();
}

Table GenerateTpchFact(int64_t num_rows, uint64_t seed) {
  TableBuilder b(TpchFactSchema());
  FillTpchFact(num_rows, seed, &b);
  return b.Build();
}

std::vector<SchemaGroundTruthFk> TpchLiteForeignKeys() {
  return {
      {"nation", {"n_regionkey"}, "region", {"r_regionkey"}},
      {"supplier", {"s_nationkey"}, "nation", {"n_nationkey"}},
      {"customer", {"c_nationkey"}, "nation", {"n_nationkey"}},
      {"partsupp", {"ps_partkey"}, "part", {"p_partkey"}},
      {"partsupp", {"ps_suppkey"}, "supplier", {"s_suppkey"}},
      {"orders", {"o_custkey"}, "customer", {"c_custkey"}},
      {"lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}},
      {"lineitem", {"l_partkey"}, "part", {"p_partkey"}},
      {"lineitem", {"l_suppkey"}, "supplier", {"s_suppkey"}},
  };
}

}  // namespace gordian
