#include "datagen/opic_like.h"

#include <algorithm>
#include <cassert>

#include "common/hashing.h"
#include "datagen/synthetic.h"

namespace gordian {

// Design notes. Real catalog data keeps the family of minimal keys small
// because descriptive attributes are (approximately) functionally determined
// by a few LOW-cardinality hierarchy nodes (brand, line, series), not by the
// high-cardinality identifiers themselves. That matters: a wide set of
// quasi-independent functions of a high-cardinality column yields
// combinatorially many minimal identifying subsets (the #P-hard regime),
// whereas functions of a 50-value brand can never jointly distinguish more
// than ~50 groups and therefore never participate in keys. The paper credits
// exactly these "complex correlation patterns" for GORDIAN's pruning.
//
// Resulting key structure: (model_no, config_no) is the planted composite
// key; serial_no (position 7, when present) is a planted single-column
// surrogate key; every other column hangs off the brand hierarchy with a
// sprinkle of noise, so the non-key antichain stays small and maximal.
Table GenerateOpicLike(int64_t num_rows, int num_attrs, uint64_t seed) {
  assert(num_attrs >= 5 && num_attrs <= 66);

  SyntheticSpec spec;
  spec.num_rows = num_rows;
  spec.seed = seed;

  auto add = [&](const std::string& name, uint64_t card, double theta,
                 int corr = -1, double noise = 0.0) {
    SyntheticColumn col;
    col.name = name;
    col.cardinality = card;
    col.zipf_theta = theta;
    col.correlated_with = corr;
    col.correlation_noise = noise;
    spec.columns.push_back(col);
  };

  // Positions 0-4: the identifying head plus the brand hierarchy.
  const uint64_t model_card = std::max<uint64_t>(64, num_rows / 4);
  add("model_no", model_card, 0.0);                           // 0
  add("brand", 50, 0.0, /*corr=*/0, /*noise=*/0.01);          // 1
  add("product_line", 16, 0.0, /*corr=*/1, /*noise=*/0.01);   // 2
  add("series", 40, 0.0, /*corr=*/1, /*noise=*/0.02);         // 3
  add("config_no", 64, 0.0);                                  // 4
  spec.planted_keys.push_back({0, 4});

  // Position 5 onward: spec/flag/measurement attributes derived from the
  // hierarchy (never from model_no directly — see design notes above).
  // Position 7 is a surrogate serial number, a planted single-column key.
  for (int c = 5; c < num_attrs; ++c) {
    if (c == 7) {
      add("serial_no", std::max<uint64_t>(64, num_rows), 0.0);
      spec.planted_keys.push_back({7});
      continue;
    }
    uint64_t h = Mix64(seed ^ (0x0b1cULL + c));
    // Derivation source: the brand hierarchy or an earlier derived column
    // (transitive dependencies) — all of which are functions of brand.
    int corr;
    switch (h % 4) {
      case 0: corr = 1; break;
      case 1: corr = 2; break;
      case 2: corr = 3; break;
      default: {
        // Earliest derived column is 5; avoid the planted serial at 7.
        if (c > 5) {
          corr = 5 + static_cast<int>(h % (c - 5));
          if (corr == 7) corr = 1;
        } else {
          corr = 1;
        }
        break;
      }
    }
    double noise = (h % 7 == 0) ? 0.02 : 0.0;
    std::string name;
    uint64_t card;
    switch (c % 6) {
      case 0:
        name = "spec_" + std::to_string(c);
        card = 200 + h % 800;
        break;
      case 1:
        name = "flag_" + std::to_string(c);
        card = 2 + h % 4;
        break;
      case 2:
        name = "enum_" + std::to_string(c);
        card = 8 + h % 24;
        break;
      case 3:
        name = "measure_" + std::to_string(c);
        card = 500 + h % 4500;
        break;
      case 4:
        name = "code_" + std::to_string(c);
        card = 30 + h % 90;
        break;
      default:
        name = "attr_" + std::to_string(c);
        card = 50 + h % 150;
        break;
    }
    add(name, card, 0.0, corr, noise);
    // Strings for a handful of columns so dictionaries carry mixed types.
    if (c % 7 == 3) {
      spec.columns.back().kind = SyntheticColumn::Kind::kString;
    }
  }

  Table out;
  Status s = GenerateSynthetic(spec, &out);
  assert(s.ok());
  (void)s;
  return out;
}

}  // namespace gordian
