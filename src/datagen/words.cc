#include "datagen/words.h"

#include "common/hashing.h"

namespace gordian {

namespace {

const char* const kOnsets[] = {"b",  "br", "c",  "ch", "d",  "f",  "g",
                               "gr", "h",  "j",  "k",  "l",  "m",  "n",
                               "p",  "qu", "r",  "s",  "st", "t",  "th",
                               "v",  "w",  "z"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ia", "ou", "ei"};
const char* const kCodas[] = {"n",  "r",  "s",  "t",  "l",  "m",
                              "ck", "nd", "rt", "ss", "x",  ""};

constexpr int kNumOnsets = sizeof(kOnsets) / sizeof(kOnsets[0]);
constexpr int kNumVowels = sizeof(kVowels) / sizeof(kVowels[0]);
constexpr int kNumCodas = sizeof(kCodas) / sizeof(kCodas[0]);

std::string Syllable(uint64_t h, int i) {
  uint64_t x = Mix64(h + 0x9e37ULL * i);
  std::string s = kOnsets[x % kNumOnsets];
  s += kVowels[(x >> 8) % kNumVowels];
  s += kCodas[(x >> 16) % kNumCodas];
  return s;
}

std::string Pronounceable(uint64_t seed, int syllables, bool capitalize) {
  std::string s;
  for (int i = 0; i < syllables; ++i) s += Syllable(seed, i);
  if (capitalize && !s.empty()) s[0] = static_cast<char>(s[0] - 'a' + 'A');
  return s;
}

}  // namespace

std::string SurnameFor(uint64_t rank) {
  return Pronounceable(Mix64(rank ^ 0x5a17ULL), 2 + rank % 2, true);
}

std::string GivenNameFor(uint64_t rank) {
  return Pronounceable(Mix64(rank ^ 0x11c3ULL), 2, true);
}

std::string CityFor(uint64_t rank) {
  return Pronounceable(Mix64(rank ^ 0xc17fULL), 2, true) + " City";
}

std::string CommentFor(uint64_t seed, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    if (i > 0) s += " ";
    s += Pronounceable(Mix64(seed + i), 1 + (Mix64(seed ^ i) % 2), false);
  }
  return s;
}

std::string BrandFor(uint64_t rank) {
  return "Brand#" + std::to_string(10 + rank % 90);
}

int64_t DateFor(int64_t day_offset) {
  // Calendar-ish rendering: 360-day years of twelve 30-day months starting
  // at 1992-01-01. Profiling only needs distinctness and realistic shape.
  int64_t year = 1992 + day_offset / 360;
  int64_t rem = day_offset % 360;
  int64_t month = 1 + rem / 30;
  int64_t day = 1 + rem % 30;
  return year * 10000 + month * 100 + day;
}

}  // namespace gordian
