#ifndef GORDIAN_DATAGEN_DATASETS_H_
#define GORDIAN_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/tpch_lite.h"

namespace gordian {

// A generated stand-in for one of the paper's three evaluation datasets
// (Table 1), scaled by `scale` relative to the shape this repository uses
// by default.
struct Dataset {
  std::string name;
  std::vector<NamedTable> tables;

  int num_tables() const { return static_cast<int>(tables.size()); }
  double AverageAttributes() const;
  int MaxAttributes() const;
  int64_t TotalTuples() const;
};

// The three datasets of the paper's evaluation, regenerated synthetically:
//  - TPCH: the 8-table TPC-H shape;
//  - OPICM: product-catalog tables in the OPIC mold (wide, correlated) —
//    the figures label this dataset "OPICM";
//  - BASEBALL: the sports-league database.
// `scale` = 1.0 targets this repository's default sizes (laptop-friendly,
// same shape as the paper's Table 1 rather than its absolute counts).
Dataset MakeTpchDataset(double scale, uint64_t seed);
Dataset MakeOpicDataset(double scale, uint64_t seed);
Dataset MakeBaseballDataset(double scale, uint64_t seed);

// All three, in the order the paper's figures list them.
std::vector<Dataset> MakeAllDatasets(double scale, uint64_t seed);

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_DATASETS_H_
