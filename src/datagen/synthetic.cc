#include "datagen/synthetic.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/hashing.h"
#include "common/random.h"

namespace gordian {

IndexPermutation::IndexPermutation(uint64_t n, uint64_t seed) : n_(n) {
  // Smallest even-bit-width power-of-two domain covering n (Feistel needs an
  // even split).
  int bits = 2;
  while ((uint64_t{1} << bits) < n_ || (bits % 2) != 0) ++bits;
  half_bits_ = bits / 2;
  for (int i = 0; i < 4; ++i) {
    keys_[i] = Mix64(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
}

uint64_t IndexPermutation::Feistel(uint64_t x) const {
  const uint64_t mask = (uint64_t{1} << half_bits_) - 1;
  uint64_t left = x >> half_bits_;
  uint64_t right = x & mask;
  for (int round = 0; round < 4; ++round) {
    uint64_t f = Mix64(right ^ keys_[round]) & mask;
    uint64_t new_left = right;
    right = left ^ f;
    left = new_left;
  }
  return (left << half_bits_) | right;
}

uint64_t IndexPermutation::Map(uint64_t i) const {
  assert(i < n_);
  // Cycle-walk: repeatedly encrypt until the value lands inside [0, n).
  uint64_t x = Feistel(i);
  while (x >= n_) x = Feistel(x);
  return x;
}

namespace {

void AppendRendered(const SyntheticColumn& col, uint64_t rank,
                    ColumnChunk* chunk, std::string* scratch) {
  if (col.kind == SyntheticColumn::Kind::kString) {
    // Deterministic synthetic token; the salt decorrelates equal ranks in
    // different columns.
    scratch->clear();
    *scratch += 'w';
    *scratch += std::to_string(rank);
    *scratch += '-';
    *scratch += std::to_string(Mix64(rank ^ HashBytes(col.name)) % 997);
    chunk->AppendString(*scratch);
    return;
  }
  chunk->AppendInt64(static_cast<int64_t>(rank));
}

}  // namespace

Status GenerateSynthetic(const SyntheticSpec& spec, Table* out) {
  const int d = static_cast<int>(spec.columns.size());
  if (d == 0) return Status::InvalidArgument("no columns in spec");
  if (d > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("too many columns");
  }

  // Validate planted keys and precompute their mixed-radix layout.
  struct PlantedKey {
    std::vector<int> cols;
    IndexPermutation perm;
  };
  std::vector<PlantedKey> planted;
  std::vector<int> planted_col_of(d, -1);  // planted key index owning a column
  for (size_t k = 0; k < spec.planted_keys.size(); ++k) {
    const std::vector<int>& cols = spec.planted_keys[k];
    if (cols.empty()) return Status::InvalidArgument("empty planted key");
    // The value space of the key must cover the row count.
    long double space = 1.0L;
    for (int c : cols) {
      if (c < 0 || c >= d) return Status::InvalidArgument("bad key column");
      if (planted_col_of[c] >= 0) {
        return Status::InvalidArgument(
            "column " + std::to_string(c) + " used by two planted keys");
      }
      if (spec.columns[c].correlated_with >= 0) {
        return Status::InvalidArgument(
            "column " + std::to_string(c) +
            " cannot be both correlated and part of a planted key");
      }
      planted_col_of[c] = static_cast<int>(k);
      space *= static_cast<long double>(spec.columns[c].cardinality);
    }
    if (space < static_cast<long double>(spec.num_rows)) {
      return Status::InvalidArgument(
          "planted key value space smaller than num_rows");
    }
    // Domain for the permutation: min(product, something comfortably above
    // num_rows) — capping avoids overflow for huge products.
    uint64_t domain = spec.num_rows > 0
                          ? static_cast<uint64_t>(
                                std::min<long double>(space, 1e18L))
                          : 1;
    planted.push_back(
        {cols, IndexPermutation(std::max<uint64_t>(domain, 1),
                                Mix64(spec.seed + 31 * (k + 1)))});
  }

  // Per-column Zipf samplers for free (non-planted, non-correlated) columns.
  std::vector<std::unique_ptr<ZipfGenerator>> zipf(d);
  for (int c = 0; c < d; ++c) {
    if (planted_col_of[c] < 0 && spec.columns[c].correlated_with < 0) {
      zipf[c] = std::make_unique<ZipfGenerator>(spec.columns[c].cardinality,
                                                spec.columns[c].zipf_theta);
    } else if (spec.columns[c].correlated_with >= 0) {
      // Noise draws for correlated columns also follow the column's skew.
      zipf[c] = std::make_unique<ZipfGenerator>(spec.columns[c].cardinality,
                                                spec.columns[c].zipf_theta);
      if (spec.columns[c].correlated_with >= c) {
        return Status::InvalidArgument(
            "correlated_with must reference an earlier column");
      }
    }
  }

  TableBuilder builder([&] {
    std::vector<std::string> names;
    for (const auto& c : spec.columns) names.push_back(c.name);
    return Schema(names);
  }());

  Random rng(spec.seed);
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen_rows;
  const bool dedupe = spec.ensure_unique_rows && planted.empty();
  if (dedupe) seen_rows.reserve(static_cast<size_t>(spec.num_rows));

  std::vector<uint64_t> ranks(d);
  RowBatch batch(d);
  std::string scratch;
  for (int64_t r = 0; r < spec.num_rows; ++r) {
    constexpr int kMaxAttempts = 256;
    int attempt = 0;
    while (true) {
      // Planted-key columns: decompose a permuted row index in mixed radix.
      for (const PlantedKey& pk : planted) {
        uint64_t code = pk.perm.Map(static_cast<uint64_t>(r));
        for (int c : pk.cols) {
          ranks[c] = code % spec.columns[c].cardinality;
          code /= spec.columns[c].cardinality;
        }
      }
      // Free and correlated columns.
      for (int c = 0; c < d; ++c) {
        if (planted_col_of[c] >= 0) continue;
        const SyntheticColumn& col = spec.columns[c];
        if (col.correlated_with >= 0 && !rng.Bernoulli(col.correlation_noise)) {
          ranks[c] = Mix64(ranks[col.correlated_with] ^
                           HashBytes(col.name)) %
                     col.cardinality;
        } else {
          ranks[c] = zipf[c]->Sample(rng);
        }
      }
      if (!dedupe) break;
      Fingerprint128 fp;
      for (int c = 0; c < d; ++c) fp.Update(ranks[c]);
      if (seen_rows.insert(fp).second) break;
      if (++attempt >= kMaxAttempts) {
        return Status::InvalidArgument(
            "cannot generate enough distinct rows; value space too small");
      }
    }
    for (int c = 0; c < d; ++c) {
      AppendRendered(spec.columns[c], ranks[c], &batch.column(c), &scratch);
    }
    if (batch.full()) {
      builder.AddBatch(batch);
      batch.Clear();
    }
  }
  if (batch.num_rows() > 0) builder.AddBatch(batch);
  *out = builder.Build();
  return Status::OK();
}

SyntheticSpec UniformSpec(int num_columns, int64_t num_rows,
                          uint64_t cardinality, double zipf_theta,
                          uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = num_rows;
  spec.seed = seed;
  for (int c = 0; c < num_columns; ++c) {
    SyntheticColumn col;
    col.name = "c" + std::to_string(c);
    col.cardinality = cardinality;
    col.zipf_theta = zipf_theta;
    spec.columns.push_back(col);
  }
  return spec;
}

}  // namespace gordian
