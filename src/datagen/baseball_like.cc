#include "datagen/baseball_like.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "common/random.h"
#include "datagen/words.h"

namespace gordian {

namespace {

constexpr int kYears = 20;       // seasons 1986..2005
constexpr int kFirstYear = 1986;

const char* const kPositions[] = {"P",  "C",  "1B", "2B", "3B",
                                  "SS", "LF", "CF", "RF", "DH"};
const char* const kHands[] = {"L", "R", "S"};
const char* const kAwards[] = {"MVP",           "Best Pitcher",
                               "Rookie of Year", "Gold Glove",
                               "Batting Champion", "Most Steals",
                               "Best Reliever",  "Sportsmanship"};
const char* const kDivisions[] = {"North", "South", "East", "West"};

struct Dims {
  int64_t players;
  int64_t teams;
  int64_t games_per_season;
};

}  // namespace

std::vector<NamedTable> GenerateBaseballLike(double scale, uint64_t seed) {
  Random rng(seed);
  Dims dims;
  dims.players = std::max<int64_t>(50, std::llround(4000 * scale));
  dims.teams = std::max<int64_t>(4, std::llround(24 * scale));
  dims.games_per_season = std::max<int64_t>(10, std::llround(600 * scale));

  std::vector<NamedTable> db;

  // players: surrogate key + denormalized name columns (first+last+dob is
  // only *almost* unique — real rosters have collisions, so the natural
  // composite key needs the debut year too).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "player_id", "first_name", "last_name", "birth_year", "birth_city",
        "country", "bats", "throws", "height_cm", "weight_kg", "debut_year",
        "final_year", "position", "college", "draft_round", "nickname"}));
    BatchWriter w(&b);
    for (int64_t p = 0; p < dims.players; ++p) {
      int64_t debut = kFirstYear + rng.UniformRange(0, kYears - 2);
      w.Append(p + 1, GivenNameFor(Mix64(p) % 400),
               SurnameFor(Mix64(p ^ 0xbbULL) % 2000),
               debut - rng.UniformRange(18, 32),
               CityFor(Mix64(p ^ 0x77ULL) % 300),
               rng.Bernoulli(0.8) ? "Australia" : "New Zealand",
               kHands[rng.UniformRange(0, 2)], kHands[rng.UniformRange(0, 1)],
               rng.UniformRange(165, 205), rng.UniformRange(65, 115), debut,
               debut + rng.UniformRange(0, 15),
               kPositions[rng.UniformRange(0, 9)],
               CityFor(Mix64(p ^ 0x31ULL) % 60) + " College",
               rng.UniformRange(1, 30), GivenNameFor(Mix64(p ^ 0x99ULL) % 150));
    }
    w.Flush();
    db.push_back({"players", b.Build()});
  }

  // teams: (team_id) key; (season, name) also unique.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "team_id", "season", "name", "city", "division", "wins", "losses",
        "attendance", "manager_id", "stadium"}));
    BatchWriter w(&b);
    int64_t id = 1;
    for (int y = 0; y < kYears; ++y) {
      for (int64_t t = 0; t < dims.teams; ++t) {
        int64_t wins = rng.UniformRange(30, 110);
        w.Append(id++, int64_t{kFirstYear + y},
                 CityFor(t * 7 % 200) + " " + SurnameFor(Mix64(t) % 500) + "s",
                 CityFor(t * 7 % 200), kDivisions[t % 4], wins,
                 140 - wins > 0 ? 140 - wins : 30,
                 rng.UniformRange(100000, 2500000),
                 rng.UniformRange(1, dims.players),
                 CityFor(Mix64(t ^ 0x5fULL) % 200) + " Park");
      }
    }
    w.Flush();
    db.push_back({"teams", b.Build()});
  }

  const int64_t team_seasons = kYears * dims.teams;

  // rosters: composite key (season, team_id, player_id).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "season", "team_id", "player_id", "jersey_no", "salary",
        "starter_flag"}));
    BatchWriter w(&b);
    for (int y = 0; y < kYears; ++y) {
      for (int64_t t = 0; t < dims.teams; ++t) {
        int64_t roster = std::min<int64_t>(dims.players, 25);
        for (int64_t s = 0; s < roster; ++s) {
          int64_t player =
              1 + Mix64(seed + y * 131 + t * 17 + s) % dims.players;
          w.Append(int64_t{kFirstYear + y}, y * dims.teams + t + 1, player,
                   rng.UniformRange(0, 99),
                   rng.UniformRange(40000, 900000) / 100 * 100,
                   rng.Bernoulli(0.4) ? int64_t{1} : int64_t{0});
        }
      }
    }
    w.Flush();
    db.push_back({"rosters", b.Build()});
  }

  // batting: the classic (player_id, season, stint) composite key.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "player_id", "season", "stint", "team_id", "games", "at_bats",
        "runs", "hits", "doubles", "triples", "home_runs", "rbi", "steals",
        "walks", "strikeouts", "avg_x1000"}));
    BatchWriter w(&b);
    for (int64_t p = 0; p < dims.players; ++p) {
      int seasons = 1 + static_cast<int>(rng.Uniform(10));
      for (int s = 0; s < seasons; ++s) {
        int year = static_cast<int>(rng.Uniform(kYears));
        int stints = rng.Bernoulli(0.12) ? 2 : 1;
        for (int st = 1; st <= stints; ++st) {
          int64_t ab = rng.UniformRange(20, 550);
          int64_t hits = rng.UniformRange(0, ab / 3);
          w.Append(p + 1, int64_t{kFirstYear + year}, int64_t{st},
                   rng.UniformRange(1, team_seasons), rng.UniformRange(5, 140),
                   ab, rng.UniformRange(0, 100), hits,
                   rng.UniformRange(0, hits / 3 + 1), rng.UniformRange(0, 10),
                   rng.UniformRange(0, 45), rng.UniformRange(0, 120),
                   rng.UniformRange(0, 60), rng.UniformRange(0, 90),
                   rng.UniformRange(5, 160), ab > 0 ? hits * 1000 / ab : 0);
        }
      }
    }
    w.Flush();
    db.push_back({"batting", b.Build()});
  }

  // pitching: (player_id, season, stint) again, different measures.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "player_id", "season", "stint", "team_id", "wins", "losses",
        "games", "saves", "innings_outs", "earned_runs", "era_x100",
        "strikeouts", "walks"}));
    BatchWriter w(&b);
    for (int64_t p = 0; p < dims.players; p += 4) {  // ~quarter are pitchers
      int seasons = 1 + static_cast<int>(rng.Uniform(8));
      for (int s = 0; s < seasons; ++s) {
        int year = static_cast<int>(rng.Uniform(kYears));
        int64_t outs = rng.UniformRange(30, 700);
        int64_t er = rng.UniformRange(0, outs / 8);
        w.Append(p + 1, int64_t{kFirstYear + year}, int64_t{1},
                 rng.UniformRange(1, team_seasons), rng.UniformRange(0, 22),
                 rng.UniformRange(0, 18), rng.UniformRange(3, 60),
                 rng.UniformRange(0, 40), outs, er, er * 2700 / outs,
                 rng.UniformRange(5, 280), rng.UniformRange(2, 110));
      }
    }
    w.Flush();
    db.push_back({"pitching", b.Build()});
  }

  // games: per-season schedule; (season, game_no) composite key.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "season", "game_no", "date", "home_team", "away_team", "home_score",
        "away_score", "attendance", "duration_min", "extra_innings"}));
    BatchWriter w(&b);
    for (int y = 0; y < kYears; ++y) {
      for (int64_t g = 0; g < dims.games_per_season; ++g) {
        int64_t home = rng.UniformRange(0, dims.teams - 1);
        int64_t away = (home + 1 + rng.UniformRange(0, dims.teams - 2)) %
                       dims.teams;
        w.Append(int64_t{kFirstYear + y}, g + 1,
                 DateFor(y * 360 + (g * 180 / dims.games_per_season)),
                 y * dims.teams + home + 1, y * dims.teams + away + 1,
                 rng.UniformRange(0, 15), rng.UniformRange(0, 15),
                 rng.UniformRange(500, 45000), rng.UniformRange(120, 260),
                 rng.Bernoulli(0.08) ? int64_t{1} : int64_t{0});
      }
    }
    w.Flush();
    db.push_back({"games", b.Build()});
  }

  // awards: (award, season) key — one winner per award per season.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "award", "season", "player_id", "votes", "unanimous"}));
    BatchWriter w(&b);
    for (int y = 0; y < kYears; ++y) {
      for (int a = 0; a < 8; ++a) {
        w.Append(kAwards[a], int64_t{kFirstYear + y},
                 rng.UniformRange(1, dims.players), rng.UniformRange(50, 400),
                 rng.Bernoulli(0.05) ? int64_t{1} : int64_t{0});
      }
    }
    w.Flush();
    db.push_back({"awards", b.Build()});
  }

  // hall_of_fame: (player_id, ballot_year) — players can appear on several
  // ballots before induction.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "player_id", "ballot_year", "votes", "needed", "inducted"}));
    BatchWriter w(&b);
    for (int64_t p = 0; p < dims.players / 10; ++p) {
      int64_t player = 1 + Mix64(seed ^ (p * 7919)) % dims.players;
      int ballots = 1 + static_cast<int>(rng.Uniform(5));
      int year0 = static_cast<int>(rng.Uniform(kYears - 5));
      for (int i = 0; i < ballots; ++i) {
        w.Append(player, int64_t{kFirstYear + year0 + i},
                 rng.UniformRange(10, 300), int64_t{225},
                 i == ballots - 1 && rng.Bernoulli(0.4) ? int64_t{1}
                                                        : int64_t{0});
      }
    }
    w.Flush();
    db.push_back({"hall_of_fame", b.Build()});
  }

  // fielding: (player_id, season, position).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "player_id", "season", "position", "games", "putouts", "assists",
        "errors", "double_plays"}));
    BatchWriter w(&b);
    for (int64_t p = 0; p < dims.players; ++p) {
      int entries = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < entries; ++i) {
        int64_t season =
            kFirstYear + static_cast<int64_t>(rng.Uniform(kYears));
        w.Append(p + 1, season, kPositions[(Mix64(p + i * 31) % 10)],
                 rng.UniformRange(1, 140), rng.UniformRange(0, 400),
                 rng.UniformRange(0, 300), rng.UniformRange(0, 25),
                 rng.UniformRange(0, 40));
      }
    }
    w.Flush();
    db.push_back({"fielding", b.Build()});
  }

  // managers: (team_id) within a season — team_id is already season-scoped.
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "team_id", "manager_name", "tenure_years", "career_wins",
        "former_player"}));
    BatchWriter w(&b);
    for (int64_t t = 0; t < team_seasons; ++t) {
      w.Append(t + 1,
               GivenNameFor(Mix64(t) % 300) + " " +
                   SurnameFor(Mix64(t ^ 0x13ULL) % 900),
               rng.UniformRange(1, 20), rng.UniformRange(0, 1500),
               rng.Bernoulli(0.6) ? int64_t{1} : int64_t{0});
    }
    w.Flush();
    db.push_back({"managers", b.Build()});
  }

  // all_star: (season, league_slot).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "season", "league_slot", "player_id", "position", "starter"}));
    BatchWriter w(&b);
    for (int y = 0; y < kYears; ++y) {
      for (int s = 0; s < 30; ++s) {
        w.Append(int64_t{kFirstYear + y}, int64_t{s + 1},
                 rng.UniformRange(1, dims.players), kPositions[s % 10],
                 s < 10 ? int64_t{1} : int64_t{0});
      }
    }
    w.Flush();
    db.push_back({"all_star", b.Build()});
  }

  // playoffs: (season, round, game_in_round).
  {
    TableBuilder b(Schema(std::vector<std::string>{
        "season", "round", "game_in_round", "home_team", "away_team",
        "home_score", "away_score"}));
    BatchWriter w(&b);
    for (int y = 0; y < kYears; ++y) {
      for (int round = 1; round <= 3; ++round) {
        int games = 3 + static_cast<int>(rng.Uniform(4));
        for (int g = 1; g <= games; ++g) {
          w.Append(int64_t{kFirstYear + y}, int64_t{round}, int64_t{g},
                   y * dims.teams + rng.UniformRange(1, dims.teams),
                   y * dims.teams + rng.UniformRange(1, dims.teams),
                   rng.UniformRange(0, 12), rng.UniformRange(0, 12));
        }
      }
    }
    w.Flush();
    db.push_back({"playoffs", b.Build()});
  }


  return db;
}

std::vector<SchemaGroundTruthFk> BaseballLikeForeignKeys() {
  return {
      {"teams", {"manager_id"}, "players", {"player_id"}},
      {"rosters", {"team_id"}, "teams", {"team_id"}},
      {"rosters", {"player_id"}, "players", {"player_id"}},
      {"batting", {"player_id"}, "players", {"player_id"}},
      {"batting", {"team_id"}, "teams", {"team_id"}},
      {"pitching", {"player_id"}, "players", {"player_id"}},
      {"pitching", {"team_id"}, "teams", {"team_id"}},
      {"games", {"home_team"}, "teams", {"team_id"}},
      {"games", {"away_team"}, "teams", {"team_id"}},
      {"awards", {"player_id"}, "players", {"player_id"}},
      {"hall_of_fame", {"player_id"}, "players", {"player_id"}},
      {"fielding", {"player_id"}, "players", {"player_id"}},
      {"managers", {"team_id"}, "teams", {"team_id"}},
      {"all_star", {"player_id"}, "players", {"player_id"}},
      {"playoffs", {"home_team"}, "teams", {"team_id"}},
      {"playoffs", {"away_team"}, "teams", {"team_id"}},
  };
}

}  // namespace gordian
