#ifndef GORDIAN_DATAGEN_OPIC_LIKE_H_
#define GORDIAN_DATAGEN_OPIC_LIKE_H_

#include <cstdint>

#include "table/table.h"

namespace gordian {

// OPIC, "a real-world database containing product information for a large
// computer company", is proprietary, so this generator substitutes a
// product-catalog table with the published shape (Table 1: up to 66
// attributes, wide and sparse) and the statistical texture the paper relies
// on: a hierarchy of correlated categorical columns (functional dependencies
// with a little noise), many low-cardinality enum/flag columns with skewed
// (Zipfian) frequencies, a few high-cardinality identifier columns, and a
// planted composite key — (model_no, config_no) — inside the first five
// columns so every prefix projection used by the attribute sweeps
// (Figures 12 and 13) still has keys to find.
//
// `num_attrs` in [5, 66]; the first columns are fixed, further columns are
// generated spec/flag/measurement attributes.
Table GenerateOpicLike(int64_t num_rows, int num_attrs, uint64_t seed);

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_OPIC_LIKE_H_
