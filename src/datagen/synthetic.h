#ifndef GORDIAN_DATAGEN_SYNTHETIC_H_
#define GORDIAN_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace gordian {

// Declarative description of one synthetic column.
struct SyntheticColumn {
  std::string name;

  // Size of the value pool the column draws from.
  uint64_t cardinality = 100;

  // Generalized Zipf skew of value frequencies (0 = uniform); matches the
  // frequency model of the paper's Theorem 1.
  double zipf_theta = 0.0;

  // Value rendering: plain integers or synthetic strings ("w<rank>-<salt>").
  enum class Kind { kInt, kString };
  Kind kind = Kind::kInt;

  // When >= 0, this column is (noisily) functionally dependent on the column
  // at that position: value = h(other value) except with probability
  // `correlation_noise` an independent draw is used. Real datasets are full
  // of such correlations, and the paper credits them for much of GORDIAN's
  // pruning. The referenced column must have a smaller position.
  int correlated_with = -1;
  double correlation_noise = 0.0;
};

// Description of a synthetic entity collection.
struct SyntheticSpec {
  std::vector<SyntheticColumn> columns;
  int64_t num_rows = 1000;
  uint64_t seed = 1;

  // Column-position sets that must be exact keys of the generated table.
  // Enforced constructively: the tuple of each planted key is a mixed-radix
  // decomposition of a pseudorandom permutation of the row index, so the
  // product of the key columns' cardinalities must be >= num_rows.
  std::vector<std::vector<int>> planted_keys;

  // Re-roll rows that duplicate a previous row so the full attribute set is
  // a key (GORDIAN aborts otherwise). Ignored when a planted key already
  // guarantees it.
  bool ensure_unique_rows = true;
};

// Generates the table described by `spec`. Fails if a planted key's value
// space is smaller than num_rows or if unique rows are requested from a
// value space that is too small.
Status GenerateSynthetic(const SyntheticSpec& spec, Table* out);

// A pseudorandom permutation of {0, ..., n-1} evaluated point-wise:
// PermutedIndex(i) visits every value exactly once as i covers [0, n).
// Implemented as a Feistel cipher over a power-of-two domain with
// cycle-walking. Used to plant exact keys.
class IndexPermutation {
 public:
  IndexPermutation(uint64_t n, uint64_t seed);
  uint64_t Map(uint64_t i) const;

 private:
  uint64_t Feistel(uint64_t x) const;

  uint64_t n_;
  int half_bits_;
  uint64_t keys_[4];
};

// Convenience: a simple uncorrelated table where every column has the same
// cardinality and skew — the dataset family of Theorem 1.
SyntheticSpec UniformSpec(int num_columns, int64_t num_rows,
                          uint64_t cardinality, double zipf_theta,
                          uint64_t seed);

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_SYNTHETIC_H_
