#ifndef GORDIAN_DATAGEN_WORDS_H_
#define GORDIAN_DATAGEN_WORDS_H_

#include <cstdint>
#include <string>

namespace gordian {

// Deterministic name/token factories shared by the dataset generators.
// These produce human-looking values so examples and CSV exports read like
// real profiling targets, while keeping generation fully seeded.

// A pronounceable surname-like token for `rank` (stable per rank).
std::string SurnameFor(uint64_t rank);

// A first-name-like token for `rank`.
std::string GivenNameFor(uint64_t rank);

// A city-like token.
std::string CityFor(uint64_t rank);

// A short lorem-style comment string of `words` tokens derived from `seed`.
std::string CommentFor(uint64_t seed, int words);

// "BRAND-xxxx" style product brand.
std::string BrandFor(uint64_t rank);

// ISO-like date string for a day offset from 1992-01-01 (rendered as an
// integer yyyymmdd value for compact dictionaries).
int64_t DateFor(int64_t day_offset);

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_WORDS_H_
