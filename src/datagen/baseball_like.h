#ifndef GORDIAN_DATAGEN_BASEBALL_LIKE_H_
#define GORDIAN_DATAGEN_BASEBALL_LIKE_H_

#include <cstdint>
#include <vector>

#include "datagen/tpch_lite.h"  // NamedTable

namespace gordian {

// The paper's BASEBALL dataset (real data about an Australian baseball
// championship: players, teams, awards, hall-of-fame membership, and
// game/player statistics; 12 tables, ~16 attributes on average, 262k tuples
// total) is not publicly available. This generator substitutes a
// sports-league database with the same shape: a dozen interlinked tables
// whose natural keys are mostly composite (player-season-stint statistics,
// per-game box scores, award years), plus denormalized name/date columns
// that create incidental correlations — the texture that drives GORDIAN's
// pruning on the real dataset.
//
// `scale` = 1.0 produces ~262k total tuples.
std::vector<NamedTable> GenerateBaseballLike(double scale, uint64_t seed);

// The foreign keys GenerateBaseballLike builds in by construction
// (player/team references across the statistics and award tables).
std::vector<SchemaGroundTruthFk> BaseballLikeForeignKeys();

}  // namespace gordian

#endif  // GORDIAN_DATAGEN_BASEBALL_LIKE_H_
