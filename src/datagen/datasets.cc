#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "datagen/baseball_like.h"
#include "datagen/opic_like.h"

namespace gordian {

double Dataset::AverageAttributes() const {
  if (tables.empty()) return 0;
  double total = 0;
  for (const NamedTable& t : tables) total += t.table.num_columns();
  return total / static_cast<double>(tables.size());
}

int Dataset::MaxAttributes() const {
  int m = 0;
  for (const NamedTable& t : tables) m = std::max(m, t.table.num_columns());
  return m;
}

int64_t Dataset::TotalTuples() const {
  int64_t total = 0;
  for (const NamedTable& t : tables) total += t.table.num_rows();
  return total;
}

Dataset MakeTpchDataset(double scale, uint64_t seed) {
  Dataset d;
  d.name = "TPC-H";
  // SF 0.02 at scale 1.0: ~170k tuples over the eight tables; the shape
  // (8 tables, avg ~9 attrs, max 17) matches the paper's Table 1.
  d.tables = GenerateTpchLite(0.02 * scale, seed);
  return d;
}

Dataset MakeOpicDataset(double scale, uint64_t seed) {
  Dataset d;
  d.name = "OPICM";
  // A handful of catalog tables with varying widths up to 66 attributes.
  // The paper's OPIC has 106 tables / 27.8M tuples; we keep the width and
  // texture but a laptop-scale tuple count.
  struct Shape {
    int64_t rows;
    int attrs;
  };
  const Shape shapes[] = {{60000, 50}, {30000, 66}, {40000, 34},
                          {20000, 24}, {15000, 17}, {25000, 12},
                          {10000, 40}, {12000, 8}};
  int i = 0;
  for (const Shape& s : shapes) {
    NamedTable t;
    t.name = "catalog_" + std::to_string(i);
    t.table = GenerateOpicLike(
        std::max<int64_t>(100, std::llround(s.rows * scale)),
        std::max(5, s.attrs), Mix64(seed + 1000 + i));
    d.tables.push_back(std::move(t));
    ++i;
  }
  return d;
}

Dataset MakeBaseballDataset(double scale, uint64_t seed) {
  Dataset d;
  d.name = "BASEBALL";
  d.tables = GenerateBaseballLike(scale, seed);
  return d;
}

std::vector<Dataset> MakeAllDatasets(double scale, uint64_t seed) {
  std::vector<Dataset> all;
  all.push_back(MakeTpchDataset(scale, seed));
  all.push_back(MakeOpicDataset(scale, seed + 1));
  all.push_back(MakeBaseballDataset(scale, seed + 2));
  return all;
}

}  // namespace gordian
