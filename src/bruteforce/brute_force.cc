#include "bruteforce/brute_force.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/hashing.h"
#include "common/memory_tracker.h"
#include "common/stopwatch.h"

namespace gordian {

namespace {

// Enumerates all size-k subsets of {0..d-1} in lexicographic order.
std::vector<std::vector<int>> SubsetsOfSize(int d, int k) {
  std::vector<std::vector<int>> out;
  std::vector<int> cols(k);
  for (int i = 0; i < k; ++i) cols[i] = i;
  while (true) {
    out.push_back(cols);
    int i = k - 1;
    while (i >= 0 && cols[i] == d - k + i) --i;
    if (i < 0) return out;
    ++cols[i];
    for (int j = i + 1; j < k; ++j) cols[j] = cols[j - 1] + 1;
  }
}

AttributeSet ToSet(const std::vector<int>& cols) {
  AttributeSet s;
  for (int c : cols) s.Set(c);
  return s;
}

// The uniqueness-check state of one candidate during a level scan: a hash
// set of projected-row fingerprints plus the byte budget it occupies (the
// materialized distinct projection — fingerprints, buckets, and the
// projected code tuples a real DISTINCT would hold).
struct CandidateState {
  std::vector<int> cols;
  std::unordered_set<Fingerprint128, Fingerprint128Hash> seen;
  bool alive = true;
  int64_t accounted_bytes = 0;

  int64_t CurrentBytes() const {
    return static_cast<int64_t>(
        seen.bucket_count() * sizeof(void*) +
        seen.size() * (sizeof(Fingerprint128) + 2 * sizeof(void*)) +
        seen.size() * cols.size() * sizeof(uint32_t));
  }
};

}  // namespace

BruteForceResult BruteForceFindKeys(const Table& table,
                                    const BruteForceOptions& options) {
  BruteForceResult result;
  Stopwatch watch;
  const int d = table.num_columns();
  if (d == 0 || table.num_rows() == 0) return result;

  const int max_arity =
      options.max_arity > 0 ? std::min(options.max_arity, d) : d;

  // Duplicate-entity check (the analogue of GORDIAN's abort): if the full
  // attribute set is not unique, nothing is.
  if (!table.IsUnique(AttributeSet::FirstN(d))) {
    result.no_keys = true;
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  MemoryTracker memory;
  const int64_t rows = table.num_rows();

  // Level-synchronous search: one scan of the table per candidate size,
  // checking every candidate of that size concurrently (one hash table
  // each). This amortizes data access the way a real implementation would;
  // a candidate's table is freed the moment a duplicate kills it.
  for (int k = 1; k <= max_arity && !result.truncated; ++k) {
    std::vector<CandidateState> level;
    for (std::vector<int>& cols : SubsetsOfSize(d, k)) {
      AttributeSet candidate = ToSet(cols);
      if (options.prune_superkeys) {
        bool redundant = false;
        for (const AttributeSet& key : result.keys) {
          if (candidate.Covers(key)) {
            redundant = true;
            break;
          }
        }
        if (redundant) {
          ++result.candidates_skipped;
          continue;
        }
      }
      CandidateState state;
      state.cols = std::move(cols);
      level.push_back(std::move(state));
    }
    result.candidates_checked += static_cast<int64_t>(level.size());
    if (level.empty()) continue;

    int64_t alive = static_cast<int64_t>(level.size());
    for (int64_t r = 0; r < rows && alive > 0; ++r) {
      if ((r & 0xFFF) == 0 && options.time_budget_seconds > 0 &&
          watch.ElapsedSeconds() > options.time_budget_seconds) {
        result.truncated = true;
        break;
      }
      for (CandidateState& cand : level) {
        if (!cand.alive) continue;
        Fingerprint128 fp;
        for (int c : cand.cols) fp.Update(table.code(r, c));
        if (!cand.seen.insert(fp).second) {
          // Duplicate: not a key. Free its state immediately.
          cand.alive = false;
          --alive;
          memory.Release(cand.accounted_bytes);
          cand.accounted_bytes = 0;
          cand.seen = {};
          continue;
        }
        int64_t now = cand.CurrentBytes();
        memory.Add(now - cand.accounted_bytes);
        cand.accounted_bytes = now;
      }
    }
    for (CandidateState& cand : level) {
      if (cand.alive && !result.truncated) {
        result.keys.push_back(ToSet(cand.cols));
      }
      memory.Release(cand.accounted_bytes);
      cand.accounted_bytes = 0;
    }
  }

  if (!options.prune_superkeys) {
    // Keep only minimal keys, matching GORDIAN's output contract.
    std::vector<AttributeSet> minimal;
    for (const AttributeSet& key : result.keys) {
      bool redundant = false;
      for (const AttributeSet& other : result.keys) {
        if (other != key && key.Covers(other)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) minimal.push_back(key);
    }
    result.keys = std::move(minimal);
  }
  result.peak_memory_bytes = memory.peak_bytes();
  result.seconds = watch.ElapsedSeconds();
  return result;
}

BruteForceResult BruteForceAll(const Table& table) {
  return BruteForceFindKeys(table, BruteForceOptions{});
}

BruteForceResult BruteForceUpTo4(const Table& table) {
  BruteForceOptions opts;
  opts.max_arity = 4;
  return BruteForceFindKeys(table, opts);
}

BruteForceResult BruteForceSingle(const Table& table) {
  BruteForceOptions opts;
  opts.max_arity = 1;
  return BruteForceFindKeys(table, opts);
}

}  // namespace gordian
