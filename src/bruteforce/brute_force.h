#ifndef GORDIAN_BRUTEFORCE_BRUTE_FORCE_H_
#define GORDIAN_BRUTEFORCE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "common/attribute_set.h"
#include "table/table.h"

namespace gordian {

// Configuration for the brute-force comparator of Section 4.2. The paper
// evaluates three variants: all composite keys, composite keys of at most
// four attributes, and single-attribute keys only.
struct BruteForceOptions {
  // Largest candidate size examined; 0 means "all attributes".
  int max_arity = 0;

  // Skip candidates that are supersets of an already-found key (such
  // candidates are keys but redundant). This charitable pruning only helps
  // the baseline; GORDIAN still dominates it.
  bool prune_superkeys = true;

  // Abort knob so exponential configurations stay runnable in benchmarks:
  // when > 0, stop after this many seconds and mark the result truncated.
  double time_budget_seconds = 0;
};

struct BruteForceResult {
  bool no_keys = false;  // duplicate entities
  std::vector<AttributeSet> keys;  // minimal keys up to max_arity
  int64_t candidates_checked = 0;
  int64_t candidates_skipped = 0;
  int64_t peak_memory_bytes = 0;  // footprint of the uniqueness hash table
  double seconds = 0;
  bool truncated = false;  // ran out of time budget
};

// Level-synchronous exhaustive search: for each candidate size the table is
// scanned once while every candidate of that size keeps its own
// distinct-projection hash table; a candidate dies (and frees its state) at
// its first duplicate, and candidates that survive the scan are keys. This
// is the classical approach whose exponential CPU/memory cost motivates
// GORDIAN — memory peaks when many mid-size candidates are alive at once.
BruteForceResult BruteForceFindKeys(const Table& table,
                                    const BruteForceOptions& options = {});

// Convenience wrappers matching the paper's three baseline variants.
BruteForceResult BruteForceAll(const Table& table);
BruteForceResult BruteForceUpTo4(const Table& table);
BruteForceResult BruteForceSingle(const Table& table);

}  // namespace gordian

#endif  // GORDIAN_BRUTEFORCE_BRUTE_FORCE_H_
