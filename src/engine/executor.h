#ifndef GORDIAN_ENGINE_EXECUTOR_H_
#define GORDIAN_ENGINE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "engine/index.h"
#include "engine/query.h"
#include "engine/row_store.h"

namespace gordian {

// How a query was (or would be) executed.
struct PlanChoice {
  const CompositeIndex* index = nullptr;  // nullptr = full scan
  bool covering = false;     // all touched columns are in the index key
  double estimated_cost = 0; // planner cost units (rows-ish)
};

// Executes `query` with a full table scan.
QueryResult ExecuteScan(const Table& table, const RowStore& store,
                        const Query& query);

// Executes `query` through `index`. The query's equality predicates must
// cover a leading prefix of the index columns, or (with no equality
// predicates) its range predicate must be on the leading index column;
// Planner guarantees this. Every matching entry is re-verified against all
// predicates, so a mismatched plan degrades to correct-but-slow, never to
// wrong answers. Non-covered plans fetch qualifying rows from the row store.
QueryResult ExecuteWithIndex(const Table& table, const RowStore& store,
                             const CompositeIndex& index, const Query& query);

// Cost-based plan selection over candidate indexes. Equality lookups and
// leading-column range scans are costed by probing the index for the match
// count; covering plans read index entries only, non-covering plans pay a
// per-match row fetch.
class Planner {
 public:
  explicit Planner(std::vector<std::unique_ptr<CompositeIndex>> indexes)
      : indexes_(std::move(indexes)) {}

  PlanChoice Choose(const Table& table, const Query& query) const;

  const std::vector<std::unique_ptr<CompositeIndex>>& indexes() const {
    return indexes_;
  }

  // Cost model constants (cost units per row/entry). Exposed for tests.
  static constexpr double kScanCostPerRow = 1.0;
  static constexpr double kFetchCostPerMatch = 8.0;
  static constexpr double kCoveredCostPerMatch = 0.5;

 private:
  std::vector<std::unique_ptr<CompositeIndex>> indexes_;
};

// Convenience: execute with the chosen plan.
QueryResult Execute(const Table& table, const RowStore& store,
                    const PlanChoice& plan, const Query& query);

}  // namespace gordian

#endif  // GORDIAN_ENGINE_EXECUTOR_H_
