#ifndef GORDIAN_ENGINE_WORKLOAD_H_
#define GORDIAN_ENGINE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "engine/query.h"
#include "table/table.h"

namespace gordian {

// The 20-query "typical warehouse" workload of Section 4.4, generated
// against the denormalized TPC-H-like fact table (GenerateTpchFact). The mix
// mirrors the experiment's outcome profile:
//  - per-order lookups and small aggregations (predicates on the discovered
//    composite key's leading column) — these benefit from key indexes;
//  - one query whose touched columns are entirely inside a discovered key
//    (answered index-only, the paper's ~6x query 4);
//  - broad segment/flag aggregations no key index helps — speedup ~1.
// Predicate constants are drawn from the table's actual dictionaries so
// every query matches rows.
std::vector<Query> MakeWarehouseWorkload(const Table& fact, uint64_t seed);

}  // namespace gordian

#endif  // GORDIAN_ENGINE_WORKLOAD_H_
