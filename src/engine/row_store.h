#ifndef GORDIAN_ENGINE_ROW_STORE_H_
#define GORDIAN_ENGINE_ROW_STORE_H_

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace gordian {

// Row-major materialization of a Table's dictionary codes. The paper's
// Section 4.4 experiment ran on a row-store DBMS (DB2), where a full-table
// scan pays for entire rows even when the query touches two columns; this
// layout reproduces that cost model, which is what makes a covering
// (index-only) plan several times faster than a scan.
class RowStore {
 public:
  explicit RowStore(const Table& table)
      : num_columns_(table.num_columns()), num_rows_(table.num_rows()) {
    data_.resize(static_cast<size_t>(num_rows_) * num_columns_);
    for (int c = 0; c < num_columns_; ++c) {
      const uint32_t* codes = table.column_codes(c).data();
      for (int64_t r = 0; r < num_rows_; ++r) {
        data_[static_cast<size_t>(r) * num_columns_ + c] = codes[r];
      }
    }
  }

  int num_columns() const { return num_columns_; }
  int64_t num_rows() const { return num_rows_; }

  uint32_t at(int64_t row, int col) const {
    return data_[static_cast<size_t>(row) * num_columns_ + col];
  }

  // Pointer to the first code of `row` (codes of one row are contiguous).
  const uint32_t* row(int64_t r) const {
    return data_.data() + static_cast<size_t>(r) * num_columns_;
  }

 private:
  int num_columns_;
  int64_t num_rows_;
  std::vector<uint32_t> data_;
};

}  // namespace gordian

#endif  // GORDIAN_ENGINE_ROW_STORE_H_
