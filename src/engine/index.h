#ifndef GORDIAN_ENGINE_INDEX_H_
#define GORDIAN_ENGINE_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/row_store.h"
#include "table/table.h"

namespace gordian {

// A composite index: (key tuple, row id) entries ordered lexicographically
// by the *values* of the key columns — the in-memory stand-in for a
// clustered B-tree. (Dictionary codes are first-seen-ordered, so ordering by
// value is what makes range scans meaningful.) Supports:
//   - equality lookup on any prefix of the key columns,
//   - value-range scans on the leading column (after an equality prefix of
//     length 0; warehouse-style "BETWEEN" aggregations),
//   - index-only ("covering") reads when a query touches key columns only.
class CompositeIndex {
 public:
  CompositeIndex(const Table& table, const RowStore& store,
                 std::vector<int> columns);

  const std::vector<int>& columns() const { return columns_; }
  std::string Describe() const;

  // Entry range whose first prefix_codes.size() key components equal the
  // given codes. O(log n) value comparisons.
  std::pair<int64_t, int64_t> EqualRange(
      const std::vector<uint32_t>& prefix_codes) const;

  // Entry range whose leading column's (integer) value lies in [lo, hi].
  std::pair<int64_t, int64_t> ValueRange(int64_t lo, int64_t hi) const;

  int64_t num_entries() const { return num_entries_; }

  // Key component `k` (a dictionary code) of entry `e`.
  uint32_t key(int64_t e, int k) const {
    return keys_[static_cast<size_t>(e) * columns_.size() + k];
  }
  int64_t row_id(int64_t e) const { return row_ids_[e]; }

  int64_t ApproxBytes() const {
    return static_cast<int64_t>(keys_.capacity() * sizeof(uint32_t) +
                                row_ids_.capacity() * sizeof(int64_t));
  }

 private:
  // <0 / 0 / >0 comparison of entry `e`'s key prefix with decoded values.
  int ComparePrefix(int64_t entry, const std::vector<Value>& prefix) const;

  const Table* table_;
  std::vector<int> columns_;
  int64_t num_entries_ = 0;
  std::vector<uint32_t> keys_;    // packed key tuples (codes), row-major
  std::vector<int64_t> row_ids_;  // parallel to entries
};

}  // namespace gordian

#endif  // GORDIAN_ENGINE_INDEX_H_
