#include "engine/workload.h"

#include <algorithm>

#include "common/random.h"

namespace gordian {

namespace {

// Picks the code of a value that actually occurs in column `col` by sampling
// a random row.
uint32_t SampleCode(const Table& t, int col, Random& rng) {
  int64_t row = static_cast<int64_t>(
      rng.Uniform(static_cast<uint64_t>(t.num_rows())));
  return t.code(row, col);
}

// Largest int64 value present in column `col` (columns here are dense
// ascending identifiers, so min is 1).
int64_t MaxValue(const Table& t, int col) {
  int64_t max_v = 0;
  const Dictionary& d = t.dictionary(col);
  for (uint32_t c = 0; c < d.size(); ++c) {
    const Value& v = d.Decode(c);
    if (v.type() == ValueType::kInt64) max_v = std::max(max_v, v.int64());
  }
  return max_v;
}

}  // namespace

std::vector<Query> MakeWarehouseWorkload(const Table& fact, uint64_t seed) {
  Random rng(seed);
  const Schema& s = fact.schema();
  const int rowid = s.Find("f_rowid");
  const int orderkey = s.Find("f_orderkey");
  const int linenumber = s.Find("f_linenumber");
  const int custkey = s.Find("f_custkey");
  const int partkey = s.Find("f_partkey");
  const int suppkey = s.Find("f_suppkey");
  const int quantity = s.Find("f_quantity");
  const int price = s.Find("f_extendedprice");
  const int discount = s.Find("f_discount");
  const int tax = s.Find("f_tax");
  const int returnflag = s.Find("f_returnflag");
  const int linestatus = s.Find("f_linestatus");
  const int shipdate = s.Find("f_shipdate");
  const int shipmode = s.Find("f_shipmode");
  const int nation = s.Find("f_nationkey");
  const int segment = s.Find("f_mktsegment");
  const int priority = s.Find("f_orderpriority");

  const int64_t max_order = MaxValue(fact, orderkey);
  const int64_t max_rowid = MaxValue(fact, rowid);

  std::vector<Query> workload;
  auto add = [&](std::string label, std::vector<EqPredicate> preds,
                 RangePredicate range, std::vector<int> proj) {
    Query q;
    q.label = std::move(label);
    q.predicates = std::move(preds);
    q.range = range;
    q.projection = std::move(proj);
    workload.push_back(std::move(q));
  };
  auto order_range = [&](double fraction) {
    RangePredicate r;
    r.col = orderkey;
    int64_t width = static_cast<int64_t>(
        static_cast<double>(max_order) * fraction);
    r.lo = 1 + static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
                  std::max<int64_t>(1, max_order - width))));
    r.hi = r.lo + width;
    return r;
  };

  // Q1-Q3: revenue/quantity rollups over order-key ranges of shrinking
  // width; the key index helps, but qualifying rows must still be fetched.
  add("Q1 revenue 10% orders", {}, order_range(0.10),
      {price, discount, quantity});
  add("Q2 revenue 5% orders", {}, order_range(0.05), {price, discount});
  add("Q3 quantity 2% orders", {}, order_range(0.02), {quantity, tax});

  // Q4: the paper's star — counts order lines over a broad range but
  // touches only the key columns, so the composite key index answers it
  // without visiting the base table at all (index-only access).
  add("Q4 line count 25% (covered)", {}, order_range(0.25),
      {orderkey, linenumber});

  // Q5-Q8: narrower order-range details with wide projections.
  add("Q5 order detail 1%", {}, order_range(0.01),
      {custkey, partkey, quantity, price, discount, shipdate});
  add("Q6 order detail 0.5%", {}, order_range(0.005),
      {custkey, partkey, quantity, price, tax, shipmode});
  add("Q7 order detail 0.2%", {}, order_range(0.002),
      {partkey, suppkey, price, shipdate});
  add("Q8 order detail 0.1%", {}, order_range(0.001),
      {custkey, quantity, price});

  // Q9-Q10: surrogate-rowid range fetches (batch exports).
  {
    RangePredicate r;
    r.col = rowid;
    r.lo = 1 + static_cast<int64_t>(rng.Uniform(
                  static_cast<uint64_t>(max_rowid / 2)));
    r.hi = r.lo + max_rowid / 20;
    add("Q9 export 5% rows", {}, r, {custkey, partkey, suppkey, price});
    r.lo = 1 + static_cast<int64_t>(rng.Uniform(
                  static_cast<uint64_t>(max_rowid / 2)));
    r.hi = r.lo + max_rowid / 100;
    add("Q10 export 1% rows", {}, r, {orderkey, linenumber, price});
  }

  // Q11-Q14: per-order lookups (classic drill-downs).
  for (int i = 11; i <= 14; ++i) {
    add("Q" + std::to_string(i) + " order lines",
        {{orderkey, SampleCode(fact, orderkey, rng)}}, RangePredicate{},
        {linenumber, quantity, price, discount});
  }

  // Q15-Q20: warehouse aggregations over flags/segments/dates; no key index
  // applies, so their speedup stays ~1 (the planner must pick the scan).
  add("Q15 returns by flag",
      {{returnflag, SampleCode(fact, returnflag, rng)}}, RangePredicate{},
      {quantity, price});
  add("Q16 status rollup",
      {{linestatus, SampleCode(fact, linestatus, rng)}}, RangePredicate{},
      {quantity, price, discount});
  add("Q17 segment revenue", {{segment, SampleCode(fact, segment, rng)}},
      RangePredicate{}, {price, discount});
  add("Q18 nation volume", {{nation, SampleCode(fact, nation, rng)}},
      RangePredicate{}, {quantity, price});
  add("Q19 priority mix", {{priority, SampleCode(fact, priority, rng)}},
      RangePredicate{}, {quantity});
  {
    int64_t row = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(fact.num_rows())));
    add("Q20 shipmode day", {{shipmode, fact.code(row, shipmode)},
                             {shipdate, fact.code(row, shipdate)}},
        RangePredicate{}, {quantity, price});
  }

  return workload;
}

}  // namespace gordian
