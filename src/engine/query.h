#ifndef GORDIAN_ENGINE_QUERY_H_
#define GORDIAN_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gordian {

// Equality predicate on one column (codes, i.e., post-dictionary).
struct EqPredicate {
  int col;
  uint32_t code;
};

// Inclusive range predicate on one integer-valued column, expressed in value
// space (dictionary codes are assigned in first-seen order and carry no
// order semantics).
struct RangePredicate {
  int col = -1;
  int64_t lo = 0;
  int64_t hi = 0;

  bool active() const { return col >= 0; }
};

// A simple aggregation query: WHERE conjunctive equality predicates plus at
// most one integer range predicate, aggregating (count + checksum) over the
// projected columns. This is the fragment the Figure 16 warehouse workload
// needs; richer SQL is out of scope for a profiling library.
struct Query {
  std::string label;
  std::vector<EqPredicate> predicates;
  RangePredicate range;
  std::vector<int> projection;
};

// Result of executing a query, independent of the plan that produced it.
struct QueryResult {
  int64_t rows_matched = 0;
  uint64_t checksum = 0;  // order-independent hash over projected values

  friend bool operator==(const QueryResult& a, const QueryResult& b) {
    return a.rows_matched == b.rows_matched && a.checksum == b.checksum;
  }
};

}  // namespace gordian

#endif  // GORDIAN_ENGINE_QUERY_H_
