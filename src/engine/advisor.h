#ifndef GORDIAN_ENGINE_ADVISOR_H_
#define GORDIAN_ENGINE_ADVISOR_H_

#include <memory>
#include <vector>

#include "core/gordian.h"
#include "engine/executor.h"
#include "engine/row_store.h"
#include "service/key_catalog.h"
#include "service/schema_profiler.h"
#include "service/tree_cache.h"

namespace gordian {

// The "index wizard" front-end of Section 4.4: GORDIAN's discovered keys
// become the candidate index set. Each minimal key yields one composite
// index on the key columns (ordered by descending selectivity, i.e.,
// descending column cardinality, so prefix lookups stay useful). Like the
// paper's experiment, we are "naive" and build every candidate.
std::vector<std::vector<int>> RecommendIndexColumns(
    const Table& table, const KeyDiscoveryResult& result);

// Builds the recommended indexes over a row store and wraps them in a
// Planner ready to execute a workload.
Planner BuildRecommendedIndexes(const Table& table, const RowStore& store,
                                const KeyDiscoveryResult& result);

// Catalog-backed variant: fingerprints the table and serves the key set
// from `catalog` when present, running (and caching) discovery otherwise.
// A re-advised unchanged table therefore skips discovery entirely. The
// discovery run is the same staged pipeline the profiling service composes
// (core/pipeline.h); pass a TreeArtifactCache to additionally reuse the
// built prefix tree when the catalog misses but the tree artifact matches
// (e.g. advising under changed discovery budgets).
Planner BuildRecommendedIndexes(const Table& table, const RowStore& store,
                                KeyCatalog* catalog,
                                const GordianOptions& options = {},
                                TreeArtifactCache* tree_cache = nullptr);

// Schema-wide variant: one SchemaProfiler pass advises every table. Returns
// one Planner per report entry, in report order; stores[i] must be the row
// store over report.tables[i].table (the discovered keys were computed from
// exactly that data). A null store yields an index-less Planner for that
// table.
std::vector<Planner> BuildRecommendedIndexes(
    const SchemaReport& report, const std::vector<const RowStore*>& stores);

}  // namespace gordian

#endif  // GORDIAN_ENGINE_ADVISOR_H_
