#include "engine/index.h"

#include <algorithm>
#include <numeric>

namespace gordian {

CompositeIndex::CompositeIndex(const Table& table, const RowStore& store,
                               std::vector<int> columns)
    : table_(&table),
      columns_(std::move(columns)),
      num_entries_(store.num_rows()) {
  const int k = static_cast<int>(columns_.size());
  std::vector<int64_t> order(num_entries_);
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (int c : columns_) {
      uint32_t ca = store.at(a, c), cb = store.at(b, c);
      if (ca == cb) continue;
      const Dictionary& dict = table.dictionary(c);
      const Value& va = dict.Decode(ca);
      const Value& vb = dict.Decode(cb);
      if (va < vb) return true;
      if (vb < va) return false;
    }
    return a < b;
  });
  keys_.resize(static_cast<size_t>(num_entries_) * k);
  row_ids_.resize(num_entries_);
  for (int64_t e = 0; e < num_entries_; ++e) {
    int64_t r = order[e];
    row_ids_[e] = r;
    for (int i = 0; i < k; ++i) {
      keys_[static_cast<size_t>(e) * k + i] = store.at(r, columns_[i]);
    }
  }
}

std::string CompositeIndex::Describe() const {
  std::string s = "idx(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) s += ",";
    s += table_->schema().name(columns_[i]);
  }
  return s + ")";
}

int CompositeIndex::ComparePrefix(int64_t entry,
                                  const std::vector<Value>& prefix) const {
  for (size_t i = 0; i < prefix.size(); ++i) {
    const Value& ve =
        table_->dictionary(columns_[i]).Decode(key(entry, static_cast<int>(i)));
    if (ve < prefix[i]) return -1;
    if (prefix[i] < ve) return 1;
  }
  return 0;
}

namespace {

// Generic binary-search bounds over [0, n) with a tri-state comparator.
template <typename Cmp>
std::pair<int64_t, int64_t> Bounds(int64_t n, Cmp cmp) {
  int64_t lo = 0, hi = n;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (cmp(mid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  int64_t begin = lo;
  hi = n;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (cmp(mid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

}  // namespace

std::pair<int64_t, int64_t> CompositeIndex::EqualRange(
    const std::vector<uint32_t>& prefix_codes) const {
  std::vector<Value> prefix;
  prefix.reserve(prefix_codes.size());
  for (size_t i = 0; i < prefix_codes.size(); ++i) {
    prefix.push_back(
        table_->dictionary(columns_[i]).Decode(prefix_codes[i]));
  }
  return Bounds(num_entries_,
                [&](int64_t e) { return ComparePrefix(e, prefix); });
}

std::pair<int64_t, int64_t> CompositeIndex::ValueRange(int64_t lo,
                                                       int64_t hi) const {
  const Dictionary& dict = table_->dictionary(columns_[0]);
  auto leading = [&](int64_t e) -> const Value& {
    return dict.Decode(key(e, 0));
  };
  const Value vlo(lo), vhi(hi);
  return Bounds(num_entries_, [&](int64_t e) {
    const Value& v = leading(e);
    if (v < vlo) return -1;
    if (vhi < v) return 1;
    return 0;
  });
}

}  // namespace gordian
