#include "engine/executor.h"

#include <algorithm>

#include "common/hashing.h"

namespace gordian {

namespace {

// Order-independent accumulation so scan and index plans (which visit rows
// in different orders) produce comparable checksums.
void Accumulate(QueryResult* result, uint64_t row_hash) {
  ++result->rows_matched;
  result->checksum += Mix64(row_hash);
}

// Range-predicate check against a decoded value.
bool RangeMatches(const Table& table, const RangePredicate& range,
                  uint32_t code) {
  const Value& v = table.dictionary(range.col).Decode(code);
  if (v.type() != ValueType::kInt64) return false;
  return v.int64() >= range.lo && v.int64() <= range.hi;
}

bool RowMatches(const Table& table, const uint32_t* row, const Query& query) {
  for (const EqPredicate& p : query.predicates) {
    if (row[p.col] != p.code) return false;
  }
  if (query.range.active() &&
      !RangeMatches(table, query.range, row[query.range.col])) {
    return false;
  }
  return true;
}

// Slot of `col` within the index key, or -1.
int KeySlot(const CompositeIndex& index, int col) {
  for (size_t i = 0; i < index.columns().size(); ++i) {
    if (index.columns()[i] == col) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

QueryResult ExecuteScan(const Table& table, const RowStore& store,
                        const Query& query) {
  QueryResult result;
  const int64_t n = store.num_rows();
  for (int64_t r = 0; r < n; ++r) {
    const uint32_t* row = store.row(r);
    if (!RowMatches(table, row, query)) continue;
    uint64_t h = 0;
    for (int c : query.projection) h = HashCombine(h, row[c]);
    Accumulate(&result, h);
  }
  return result;
}

QueryResult ExecuteWithIndex(const Table& table, const RowStore& store,
                             const CompositeIndex& index, const Query& query) {
  QueryResult result;

  // Entry range to examine: equality prefix if present, else leading-column
  // value range, else (defensively) everything.
  std::pair<int64_t, int64_t> range{0, index.num_entries()};
  if (!query.predicates.empty()) {
    std::vector<uint32_t> prefix;
    for (size_t i = 0; i < query.predicates.size(); ++i) {
      const int col = index.columns()[i];
      bool found = false;
      for (const EqPredicate& p : query.predicates) {
        if (p.col == col) {
          prefix.push_back(p.code);
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    if (prefix.size() != query.predicates.size()) {
      // Not a leading-prefix match; stay correct via a scan.
      return ExecuteScan(table, store, query);
    }
    range = index.EqualRange(prefix);
  } else if (query.range.active()) {
    if (index.columns()[0] != query.range.col) {
      return ExecuteScan(table, store, query);
    }
    range = index.ValueRange(query.range.lo, query.range.hi);
  }

  // Covered iff every column the query touches lives in the index key.
  bool covering = true;
  std::vector<int> proj_slots;
  for (int c : query.projection) {
    int slot = KeySlot(index, c);
    if (slot < 0) {
      covering = false;
      break;
    }
    proj_slots.push_back(slot);
  }
  int range_slot =
      query.range.active() ? KeySlot(index, query.range.col) : 0;
  if (query.range.active() && range_slot < 0) covering = false;

  if (covering) {
    // Index-only: verify residual predicates and project from key slots.
    for (int64_t e = range.first; e < range.second; ++e) {
      if (query.range.active() &&
          !RangeMatches(table, query.range, index.key(e, range_slot))) {
        continue;
      }
      uint64_t h = 0;
      for (int slot : proj_slots) h = HashCombine(h, index.key(e, slot));
      Accumulate(&result, h);
    }
  } else {
    for (int64_t e = range.first; e < range.second; ++e) {
      const uint32_t* row = store.row(index.row_id(e));
      if (!RowMatches(table, row, query)) continue;
      uint64_t h = 0;
      for (int c : query.projection) h = HashCombine(h, row[c]);
      Accumulate(&result, h);
    }
  }
  return result;
}

PlanChoice Planner::Choose(const Table& table, const Query& query) const {
  PlanChoice best;
  best.estimated_cost =
      static_cast<double>(table.num_rows()) * kScanCostPerRow;

  const bool has_eq = !query.predicates.empty();
  const bool has_range = query.range.active();
  if ((!has_eq && !has_range) || (has_eq && has_range)) {
    // No predicate to exploit, or a mixed shape the executor would only
    // half-use: scan.
    return best;
  }

  for (const auto& index : indexes_) {
    const std::vector<int>& cols = index->columns();
    std::pair<int64_t, int64_t> range;
    if (has_eq) {
      if (query.predicates.size() > cols.size()) continue;
      // The equality columns must be exactly the leading index columns.
      std::vector<uint32_t> prefix;
      bool ok = true;
      for (size_t i = 0; i < query.predicates.size() && ok; ++i) {
        ok = false;
        for (const EqPredicate& p : query.predicates) {
          if (p.col == cols[i]) {
            prefix.push_back(p.code);
            ok = true;
            break;
          }
        }
      }
      if (!ok) continue;
      range = index->EqualRange(prefix);
    } else {
      if (cols[0] != query.range.col) continue;
      range = index->ValueRange(query.range.lo, query.range.hi);
    }
    const double matches = static_cast<double>(range.second - range.first);

    bool covering = true;
    for (int c : query.projection) {
      if (KeySlot(*index, c) < 0) {
        covering = false;
        break;
      }
    }
    double cost =
        matches * (covering ? kCoveredCostPerMatch : kFetchCostPerMatch);
    if (cost < best.estimated_cost) {
      best.estimated_cost = cost;
      best.index = index.get();
      best.covering = covering;
    }
  }
  return best;
}

QueryResult Execute(const Table& table, const RowStore& store,
                    const PlanChoice& plan, const Query& query) {
  if (plan.index == nullptr) return ExecuteScan(table, store, query);
  return ExecuteWithIndex(table, store, *plan.index, query);
}

}  // namespace gordian
