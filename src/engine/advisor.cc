#include "engine/advisor.h"

#include <algorithm>

#include "table/fingerprint.h"

namespace gordian {

std::vector<std::vector<int>> RecommendIndexColumns(
    const Table& table, const KeyDiscoveryResult& result) {
  std::vector<std::vector<int>> recommendations;
  for (const DiscoveredKey& key : result.keys) {
    std::vector<int> cols;
    key.attrs.ForEach([&](int a) { cols.push_back(a); });
    // Most selective column first: equality lookups on a prefix of the
    // index then prune the largest fraction of entries.
    std::stable_sort(cols.begin(), cols.end(), [&](int a, int b) {
      return table.ColumnCardinality(a) > table.ColumnCardinality(b);
    });
    recommendations.push_back(std::move(cols));
  }
  return recommendations;
}

Planner BuildRecommendedIndexes(const Table& table, const RowStore& store,
                                const KeyDiscoveryResult& result) {
  std::vector<std::unique_ptr<CompositeIndex>> indexes;
  for (const std::vector<int>& cols : RecommendIndexColumns(table, result)) {
    indexes.push_back(std::make_unique<CompositeIndex>(table, store, cols));
  }
  return Planner(std::move(indexes));
}

Planner BuildRecommendedIndexes(const Table& table, const RowStore& store,
                                KeyCatalog* catalog,
                                const GordianOptions& options,
                                TreeArtifactCache* tree_cache) {
  const uint64_t fp = TableFingerprint(table);
  if (catalog != nullptr) {
    CatalogEntry entry;
    if (catalog->Lookup(fp, &entry)) {
      return BuildRecommendedIndexes(table, store, entry.result);
    }
  }
  // Same staged pipeline + tree-artifact composition the profiling service
  // runs; with tree_cache null this is plain FindKeys.
  KeyDiscoveryResult result =
      ProfileWithTreeCache(table, options, fp, tree_cache);
  if (catalog != nullptr && !result.incomplete) {
    // Tables carry no name; the advisor records entries anonymously.
    catalog->Put(fp, "", table.num_columns(), result);
  }
  return BuildRecommendedIndexes(table, store, result);
}

std::vector<Planner> BuildRecommendedIndexes(
    const SchemaReport& report, const std::vector<const RowStore*>& stores) {
  std::vector<Planner> planners;
  planners.reserve(report.tables.size());
  for (size_t i = 0; i < report.tables.size(); ++i) {
    const SchemaReport::TableEntry& entry = report.tables[i];
    const RowStore* store = i < stores.size() ? stores[i] : nullptr;
    if (store == nullptr || entry.table == nullptr) {
      planners.emplace_back(std::vector<std::unique_ptr<CompositeIndex>>());
      continue;
    }
    planners.push_back(
        BuildRecommendedIndexes(*entry.table, *store, entry.result));
  }
  return planners;
}

}  // namespace gordian
