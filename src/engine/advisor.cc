#include "engine/advisor.h"

#include <algorithm>

namespace gordian {

std::vector<std::vector<int>> RecommendIndexColumns(
    const Table& table, const KeyDiscoveryResult& result) {
  std::vector<std::vector<int>> recommendations;
  for (const DiscoveredKey& key : result.keys) {
    std::vector<int> cols;
    key.attrs.ForEach([&](int a) { cols.push_back(a); });
    // Most selective column first: equality lookups on a prefix of the
    // index then prune the largest fraction of entries.
    std::stable_sort(cols.begin(), cols.end(), [&](int a, int b) {
      return table.ColumnCardinality(a) > table.ColumnCardinality(b);
    });
    recommendations.push_back(std::move(cols));
  }
  return recommendations;
}

Planner BuildRecommendedIndexes(const Table& table, const RowStore& store,
                                const KeyDiscoveryResult& result) {
  std::vector<std::unique_ptr<CompositeIndex>> indexes;
  for (const std::vector<int>& cols : RecommendIndexColumns(table, result)) {
    indexes.push_back(std::make_unique<CompositeIndex>(table, store, cols));
  }
  return Planner(std::move(indexes));
}

}  // namespace gordian
