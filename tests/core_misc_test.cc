// Odds and ends of the core facade: result formatting, stats arithmetic,
// option interactions, and value edge cases that cut across modules.

#include <gtest/gtest.h>

#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "table/csv.h"

namespace gordian {
namespace {

Table PaperDataset() {
  TableBuilder b(Schema(std::vector<std::string>{
      "First Name", "Last Name", "Phone", "Emp No"}));
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{3478}),
            Value(int64_t{10})});
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{6791}),
            Value(int64_t{50})});
  b.AddRow({Value("Michael"), Value("Spencer"), Value(int64_t{5237}),
            Value(int64_t{20})});
  b.AddRow({Value("Sally"), Value("Kwan"), Value(int64_t{3478}),
            Value(int64_t{90})});
  return b.Build();
}

TEST(FormatResult, ListsKeysAndNonKeysWithNames) {
  Table t = PaperDataset();
  KeyDiscoveryResult r = FindKeys(t);
  std::string s = FormatResult(t, r);
  EXPECT_NE(s.find("keys (3):"), std::string::npos);
  EXPECT_NE(s.find("<Emp No>"), std::string::npos);
  EXPECT_NE(s.find("<First Name, Phone>"), std::string::npos);
  EXPECT_NE(s.find("non-keys (2):"), std::string::npos);
  EXPECT_NE(s.find("<Phone>"), std::string::npos);
}

TEST(FormatResult, NoKeysMessage) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  b.AddRow({Value(int64_t{1})});
  b.AddRow({Value(int64_t{1})});
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_NE(FormatResult(t, r).find("no keys exist"), std::string::npos);
}

TEST(FormatResult, SampledRunShowsEstimates) {
  SyntheticSpec spec = UniformSpec(4, 500, 64, 0.0, 71);
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  GordianOptions o;
  o.sample_rows = 50;
  KeyDiscoveryResult r = FindKeys(t, o);
  ASSERT_TRUE(r.sampled);
  std::string s = FormatResult(t, r);
  EXPECT_NE(s.find("est-strength"), std::string::npos);
}

TEST(Stats, TotalSecondsSumsPhases) {
  GordianStats s;
  s.build_seconds = 1.5;
  s.find_seconds = 2.25;
  s.convert_seconds = 0.25;
  EXPECT_DOUBLE_EQ(s.TotalSeconds(), 4.0);
}

TEST(Options, SamplingComposesWithNullSemantics) {
  // A nullable column plus sampling: both transformations apply.
  TableBuilder b(Schema(std::vector<std::string>{"maybe", "id"}));
  for (int64_t i = 0; i < 300; ++i) {
    b.AddRow({i == 7 ? Value::Null() : Value(i % 50), Value(i)});
  }
  Table t = b.Build();
  GordianOptions o;
  o.null_semantics = GordianOptions::NullSemantics::kExcludeNullableColumns;
  o.sample_rows = 100;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_TRUE(r.sampled);
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_FALSE(k.attrs.Test(0));
  }
}

TEST(Values, ScientificNotationInfersAsDouble) {
  EXPECT_EQ(ParseCsvField("1e5", true).type(), ValueType::kDouble);
  EXPECT_EQ(ParseCsvField("-2.5E-3", true).type(), ValueType::kDouble);
  EXPECT_EQ(ParseCsvField("123", true).type(), ValueType::kInt64);
  EXPECT_EQ(ParseCsvField("12x", true).type(), ValueType::kString);
  EXPECT_TRUE(ParseCsvField("", true).is_null());
  EXPECT_EQ(ParseCsvField("", false).type(), ValueType::kString);
}

TEST(Values, NegativeZeroAndZeroCompareEqualAsDoubles) {
  // IEEE -0.0 == 0.0; the dictionary therefore assigns them one code, so
  // they cannot fabricate distinctness.
  Dictionary d;
  EXPECT_EQ(d.Encode(Value(0.0)), d.Encode(Value(-0.0)));
}

TEST(Values, IntAndDoubleWithSameMagnitudeStayDistinct) {
  Dictionary d;
  EXPECT_NE(d.Encode(Value(int64_t{1})), d.Encode(Value(1.0)));
}

TEST(KeySets, ReturnedInResultOrder) {
  Table t = PaperDataset();
  KeyDiscoveryResult r = FindKeys(t);
  auto sets = r.KeySets();
  ASSERT_EQ(sets.size(), r.keys.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i], r.keys[i].attrs);
  }
  // Keys come sorted by ascending cardinality (smallest candidates first).
  for (size_t i = 1; i < sets.size(); ++i) {
    EXPECT_LE(sets[i - 1].Count(), sets[i].Count());
  }
}

}  // namespace
}  // namespace gordian
