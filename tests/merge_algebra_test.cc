// Algebraic property tests for prefix-tree merging (Algorithm 3): the merge
// of a node set must equal the tree built from the concatenated underlying
// data, independent of grouping and input order. These invariants are what
// make the doubly recursive traversal enumerate projections correctly.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/prefix_tree.h"
#include "table/table.h"

namespace gordian {
namespace {

// Structural equality of two subtrees.
void ExpectSameTree(const PrefixTree::Node* a, const PrefixTree::Node* b) {
  ASSERT_EQ(a->is_leaf, b->is_leaf);
  ASSERT_EQ(a->cells.size(), b->cells.size());
  for (size_t i = 0; i < a->cells.size(); ++i) {
    EXPECT_EQ(a->cells[i].code, b->cells[i].code);
    EXPECT_EQ(a->cells[i].count, b->cells[i].count);
    if (!a->is_leaf) ExpectSameTree(a->cells[i].child, b->cells[i].child);
  }
}

// Builds a random (rows x 3) table whose column 0 has `groups` distinct
// values; the subtrees under the root's cells are merge inputs.
Table GroupedTable(int rows, int groups, uint64_t seed) {
  Random rng(seed);
  TableBuilder b(Schema(std::vector<std::string>{"g", "x", "y"}));
  for (int r = 0; r < rows; ++r) {
    b.AddRow({Value(static_cast<int64_t>(rng.Uniform(groups))),
              Value(static_cast<int64_t>(rng.Uniform(5))),
              Value(static_cast<int64_t>(rng.Uniform(7)))});
  }
  return b.Build();
}

struct MergeCase {
  int rows;
  int groups;
  uint64_t seed;
};

class MergeAlgebra : public ::testing::TestWithParam<MergeCase> {};

// merge(children of root) must equal the tree of the same data with the
// grouping column dropped.
TEST_P(MergeAlgebra, MergeEqualsProjection) {
  const MergeCase& c = GetParam();
  Table t = GroupedTable(c.rows, c.groups, c.seed);
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  for (const PrefixTree::Cell& cell : tree.root()->cells) {
    children.push_back(cell.child);
  }
  PrefixTree::Node* merged = MergeNodes(tree.pool(), children, nullptr);

  Table projected = t.SelectColumns({1, 2});
  PrefixTree expect =
      PrefixTree::Build(projected, {0, 1}, GordianOptions::TreeBuild::kSorted);
  ExpectSameTree(merged, expect.root());
  tree.pool().Unref(merged);
}

// Associativity: merging everything at once equals merging a merge result
// with the remaining nodes.
TEST_P(MergeAlgebra, MergeIsGroupingInsensitive) {
  const MergeCase& c = GetParam();
  Table t = GroupedTable(c.rows, c.groups, c.seed ^ 0xa5a5);
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  for (const PrefixTree::Cell& cell : tree.root()->cells) {
    children.push_back(cell.child);
  }
  if (children.size() < 3) return;

  PrefixTree::Node* all = MergeNodes(tree.pool(), children, nullptr);

  std::vector<PrefixTree::Node*> first_two(children.begin(),
                                           children.begin() + 2);
  PrefixTree::Node* partial = MergeNodes(tree.pool(), first_two, nullptr);
  std::vector<PrefixTree::Node*> rest = {partial};
  rest.insert(rest.end(), children.begin() + 2, children.end());
  PrefixTree::Node* grouped = MergeNodes(tree.pool(), rest, nullptr);

  ExpectSameTree(all, grouped);
  tree.pool().Unref(grouped);
  tree.pool().Unref(partial);
  tree.pool().Unref(all);
}

// Input order must not matter.
TEST_P(MergeAlgebra, MergeIsOrderInsensitive) {
  const MergeCase& c = GetParam();
  Table t = GroupedTable(c.rows, c.groups, c.seed ^ 0x1111);
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  for (const PrefixTree::Cell& cell : tree.root()->cells) {
    children.push_back(cell.child);
  }
  if (children.size() < 2) return;
  PrefixTree::Node* forward = MergeNodes(tree.pool(), children, nullptr);
  std::vector<PrefixTree::Node*> reversed(children.rbegin(), children.rend());
  PrefixTree::Node* backward = MergeNodes(tree.pool(), reversed, nullptr);
  ExpectSameTree(forward, backward);
  tree.pool().Unref(forward);
  tree.pool().Unref(backward);
}

// Entity counts are conserved by merging.
TEST_P(MergeAlgebra, MergePreservesEntityCount) {
  const MergeCase& c = GetParam();
  Table t = GroupedTable(c.rows, c.groups, c.seed ^ 0x2222);
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children;
  int64_t total = 0;
  for (const PrefixTree::Cell& cell : tree.root()->cells) {
    children.push_back(cell.child);
    total += cell.count;
  }
  PrefixTree::Node* merged = MergeNodes(tree.pool(), children, nullptr);
  EXPECT_EQ(merged->EntityCount(), total);
  EXPECT_EQ(total, t.num_rows());
  tree.pool().Unref(merged);
}

// Reference counting balances across arbitrary merge/unref sequences.
TEST_P(MergeAlgebra, RefCountsBalance) {
  const MergeCase& c = GetParam();
  Table t = GroupedTable(c.rows, c.groups, c.seed ^ 0x3333);
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  int64_t base_nodes = tree.pool().live_nodes();
  int64_t base_bytes = tree.pool().current_bytes();

  Random rng(c.seed);
  for (int round = 0; round < 5; ++round) {
    std::vector<PrefixTree::Node*> children;
    for (const PrefixTree::Cell& cell : tree.root()->cells) {
      children.push_back(cell.child);
    }
    PrefixTree::Node* m1 = MergeNodes(tree.pool(), children, nullptr);
    PrefixTree::Node* m2 = MergeNodes(
        tree.pool(), {m1}, nullptr);  // shared re-merge
    EXPECT_EQ(m1, m2);
    tree.pool().Unref(m2);
    tree.pool().Unref(m1);
    EXPECT_EQ(tree.pool().live_nodes(), base_nodes);
    EXPECT_EQ(tree.pool().current_bytes(), base_bytes);
  }
}

std::vector<MergeCase> MakeMergeCases() {
  std::vector<MergeCase> cases;
  uint64_t seed = 400;
  for (int rows : {10, 60, 300}) {
    for (int groups : {2, 4, 9}) {
      cases.push_back({rows, groups, seed += 3});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGroupings, MergeAlgebra,
                         ::testing::ValuesIn(MakeMergeCases()),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param.rows) + "_g" +
                                  std::to_string(info.param.groups) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace gordian
