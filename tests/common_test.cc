// Unit tests for the common substrate: PRNG, Zipf sampler, hashing,
// memory tracking, status.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/hashing.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/status.h"

namespace gordian {
namespace {

TEST(Random, DeterministicPerSeed) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c;
  }
  Random d(8);
  bool any_diff = false;
  Random e(7);
  for (int i = 0; i < 100; ++i) {
    if (d.Next() != e.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Random, UniformStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, UniformCoversTheRange) {
  Random rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BernoulliMatchesProbabilityRoughly) {
  Random rng(4);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator z(10, 0.0);
  Random rng(5);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Zipf, PositiveThetaSkewsTowardLowRanks) {
  ZipfGenerator z(100, 1.0);
  Random rng(6);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  // Rank 0 should be roughly 1/H_100 ~ 19% of draws and dominate rank 50.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], n / 10);
}

TEST(Zipf, SamplesStayInDomain) {
  ZipfGenerator z(7, 0.5);
  Random rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

TEST(Hashing, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::unordered_set<uint64_t> outs;
  for (uint64_t i = 0; i < 10000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 10000u);  // no collisions among consecutive inputs
}

TEST(Hashing, HashBytesDiscriminates) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
  EXPECT_EQ(HashBytes("gordian"), HashBytes("gordian"));
}

TEST(Hashing, FingerprintOrderSensitive) {
  Fingerprint128 a, b;
  a.Update(1);
  a.Update(2);
  b.Update(2);
  b.Update(1);
  EXPECT_FALSE(a == b);
}

TEST(Hashing, FingerprintEqualForEqualStreams) {
  Fingerprint128 a, b;
  for (uint64_t v : {5u, 6u, 7u}) {
    a.Update(v);
    b.Update(v);
  }
  EXPECT_TRUE(a == b);
}

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current_bytes(), 150);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Add(10);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 0);
}

TEST(MemoryTracker, MappedBytesAreTalliedSeparatelyFromHeap) {
  // Pinned: mmap-backed bytes must never leak into the heap-resident
  // counters — a spilled column would otherwise count against the very
  // budget that spilling exists to relieve.
  MemoryTracker t;
  t.Add(100);
  t.AddMapped(4096);
  EXPECT_EQ(t.current_bytes(), 100);
  EXPECT_EQ(t.peak_bytes(), 100);
  EXPECT_EQ(t.current_mapped_bytes(), 4096);
  EXPECT_EQ(t.peak_mapped_bytes(), 4096);
  t.ReleaseMapped(4096);
  t.AddMapped(1024);
  EXPECT_EQ(t.current_mapped_bytes(), 1024);
  EXPECT_EQ(t.peak_mapped_bytes(), 4096);
  EXPECT_EQ(t.current_bytes(), 100);
  t.Reset();
  EXPECT_EQ(t.current_mapped_bytes(), 0);
  EXPECT_EQ(t.peak_mapped_bytes(), 0);
}

TEST(MemoryTracker, ConcurrentAddReleaseBalancesAndBoundsPeak) {
  // Several threads each add then release the same total; the final current
  // count must be exactly zero and the peak must be at least one thread's
  // worth (it held that much on its own) and at most the combined worth.
  MemoryTracker t;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int64_t kBytes = 64;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) t.Add(kBytes);
      for (int j = 0; j < kIters; ++j) t.Release(kBytes);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_GE(t.peak_bytes(), kIters * kBytes);
  EXPECT_LE(t.peak_bytes(), int64_t{kThreads} * kIters * kBytes);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
}

TEST(Status, PartialIsNotOkButDetectable) {
  Status s = Status::Partial("3 of 16 shards quarantined");
  EXPECT_FALSE(s.ok());  // strict callers reject partial results for free
  EXPECT_TRUE(s.IsPartial());
  EXPECT_FALSE(Status::OK().IsPartial());
  EXPECT_FALSE(Status::IOError("x").IsPartial());
  EXPECT_EQ(s.code(), Status::Code::kPartial);
  EXPECT_EQ(s.ToString(), "Partial: 3 of 16 shards quarantined");
}

}  // namespace
}  // namespace gordian
