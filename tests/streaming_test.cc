// Tests for single-pass streaming profiling with and without reservoir
// sampling, plus the null-semantics option and the VerifyResult API.

#include "core/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>

#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "table/csv.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Table MakeTable(int64_t rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(5, rows, 32, 0.5, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[2].cardinality = 64;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

std::vector<Value> RowOf(const Table& t, int64_t r) {
  std::vector<Value> row;
  for (int c = 0; c < t.num_columns(); ++c) row.push_back(t.value(r, c));
  return row;
}

TEST(StreamingProfiler, FullIngestMatchesBatchDiscovery) {
  Table t = MakeTable(800, 21);
  StreamingProfiler profiler(t.schema());
  for (int64_t r = 0; r < t.num_rows(); ++r) profiler.AddRow(RowOf(t, r));
  EXPECT_EQ(profiler.rows_seen(), 800);
  KeyDiscoveryResult streamed = profiler.Finish();
  KeyDiscoveryResult batch = FindKeys(t);
  EXPECT_EQ(Sorted(streamed.KeySets()), Sorted(batch.KeySets()));
  EXPECT_FALSE(streamed.sampled);
}

TEST(StreamingProfiler, FinishResetsForReuse) {
  Table t = MakeTable(200, 22);
  StreamingProfiler profiler(t.schema());
  for (int64_t r = 0; r < t.num_rows(); ++r) profiler.AddRow(RowOf(t, r));
  KeyDiscoveryResult first = profiler.Finish();
  EXPECT_EQ(profiler.rows_seen(), 0);
  // Second run over the same stream gives the same keys.
  for (int64_t r = 0; r < t.num_rows(); ++r) profiler.AddRow(RowOf(t, r));
  EXPECT_EQ(Sorted(profiler.Finish().KeySets()), Sorted(first.KeySets()));
}

TEST(StreamingProfiler, ReusedReservoirProfilerMatchesFreshOne) {
  // Finish() promises the profiler is "left empty and reusable": a second
  // ingest/Finish cycle must behave exactly like a fresh profiler, which
  // requires the reservoir PRNG to be re-seeded, not left mid-sequence.
  Table t = MakeTable(3000, 31);
  GordianOptions o;
  o.sample_rows = 250;
  o.sample_seed = 77;

  StreamingProfiler reused(t.schema(), o);
  for (int64_t r = 0; r < t.num_rows(); ++r) reused.AddRow(RowOf(t, r));
  (void)reused.Finish();  // first cycle consumes PRNG draws
  for (int64_t r = 0; r < t.num_rows(); ++r) reused.AddRow(RowOf(t, r));
  KeyDiscoveryResult second = reused.Finish();

  StreamingProfiler fresh(t.schema(), o);
  for (int64_t r = 0; r < t.num_rows(); ++r) fresh.AddRow(RowOf(t, r));
  KeyDiscoveryResult baseline = fresh.Finish();

  // Identical seed + identical stream must select the identical reservoir,
  // hence byte-identical key sets and strengths.
  EXPECT_EQ(Sorted(second.KeySets()), Sorted(baseline.KeySets()));
  ASSERT_EQ(second.keys.size(), baseline.keys.size());
  for (size_t i = 0; i < second.keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.keys[i].estimated_strength,
                     baseline.keys[i].estimated_strength);
  }
}

TEST(ProfileCsvFile, CancelFlagAbortsIngest) {
  Table t = MakeTable(10000, 32);
  std::string path = ::testing::TempDir() + "gordian_stream_cancel.csv";
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, path).ok());

  std::atomic<bool> cancel{true};  // raised before the run even starts
  GordianOptions o;
  o.cancel_flag = &cancel;
  KeyDiscoveryResult r;
  ASSERT_TRUE(ProfileCsvFile(path, CsvOptions{}, o, &r).ok());
  EXPECT_TRUE(r.incomplete);
  EXPECT_EQ(r.incomplete_reason, AbortReason::kCancelled);
  EXPECT_TRUE(r.keys.empty());
}

TEST(StreamingProfiler, ReservoirBoundsMemoryAndKeepsTrueKeys) {
  Table t = MakeTable(5000, 23);
  GordianOptions o;
  o.sample_rows = 400;
  o.sample_seed = 5;
  StreamingProfiler profiler(t.schema(), o);
  for (int64_t r = 0; r < t.num_rows(); ++r) profiler.AddRow(RowOf(t, r));
  KeyDiscoveryResult streamed = profiler.Finish();
  EXPECT_TRUE(streamed.sampled);
  EXPECT_EQ(streamed.stats.rows_processed, 400);

  // Sample keys form a (possibly finer) cover of the true keys.
  KeyDiscoveryResult full = FindKeys(t);
  for (const DiscoveredKey& fk : full.keys) {
    bool covered = false;
    for (const DiscoveredKey& sk : streamed.keys) {
      if (fk.attrs.Covers(sk.attrs)) covered = true;
    }
    EXPECT_TRUE(covered) << fk.attrs.ToString();
  }
  // Estimated strengths attached, exact unknown for a stream.
  for (const DiscoveredKey& sk : streamed.keys) {
    EXPECT_GT(sk.estimated_strength, 0.0);
    EXPECT_LT(sk.exact_strength, 0.0);
  }
}

TEST(StreamingProfiler, ReservoirShorterThanStreamIsFullIngest) {
  Table t = MakeTable(100, 24);
  GordianOptions o;
  o.sample_rows = 400;  // larger than the stream
  StreamingProfiler profiler(t.schema(), o);
  for (int64_t r = 0; r < t.num_rows(); ++r) profiler.AddRow(RowOf(t, r));
  KeyDiscoveryResult r1 = profiler.Finish();
  EXPECT_FALSE(r1.sampled);
  EXPECT_EQ(Sorted(r1.KeySets()), Sorted(FindKeys(t).KeySets()));
}

TEST(StreamingProfiler, ReservoirIsRoughlyUniform) {
  // Stream 0..9999 through a 1000-slot reservoir; the kept values' mean
  // should be near the stream mean (a biased reservoir would skew early or
  // late).
  Schema schema(std::vector<std::string>{"v"});
  GordianOptions o;
  o.sample_rows = 1000;
  o.sample_seed = 9;
  StreamingProfiler profiler(schema, o);
  for (int64_t i = 0; i < 10000; ++i) {
    profiler.AddRow({Value(i)});
  }
  KeyDiscoveryResult r = profiler.Finish();
  EXPECT_EQ(r.stats.rows_processed, 1000);
  // The single column is unique in any subset of the stream.
  ASSERT_EQ(r.keys.size(), 1u);
}

TEST(ProfileCsvFile, MatchesReadCsvPlusFindKeys) {
  Table t = MakeTable(500, 27);
  std::string path = ::testing::TempDir() + "gordian_stream.csv";
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, path).ok());

  KeyDiscoveryResult streamed;
  ASSERT_TRUE(
      ProfileCsvFile(path, CsvOptions{}, GordianOptions{}, &streamed).ok());
  Table loaded;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &loaded).ok());
  EXPECT_EQ(Sorted(streamed.KeySets()), Sorted(FindKeys(loaded).KeySets()));
}

TEST(ProfileCsvFile, QuotedEmbeddedNewlinesAreSingleRecords) {
  // Regression: the old per-line ingest split a quoted multi-line field
  // into two ragged records and failed; the batch scanner must profile it.
  std::string path = ::testing::TempDir() + "gordian_stream_nl.csv";
  {
    std::ofstream os(path);
    os << "id,note\n";
    for (int i = 0; i < 50; ++i) {
      os << i << ",\"note line a\nnote line b for " << i << "\"\n";
    }
  }
  KeyDiscoveryResult r;
  IngestStats stats;
  ASSERT_TRUE(
      ProfileCsvFile(path, CsvOptions{}, GordianOptions{}, &r, &stats).ok());
  EXPECT_EQ(stats.rows, 50);
  // Both columns are unique, so each singleton is a key.
  EXPECT_EQ(Sorted(r.KeySets()),
            Sorted({AttributeSet{0}, AttributeSet{1}}));
}

TEST(ProfileCsvFile, ReservoirModeAndErrors) {
  Table t = MakeTable(2000, 28);
  std::string path = ::testing::TempDir() + "gordian_stream2.csv";
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, path).ok());

  GordianOptions o;
  o.sample_rows = 300;
  KeyDiscoveryResult r;
  ASSERT_TRUE(ProfileCsvFile(path, CsvOptions{}, o, &r).ok());
  EXPECT_TRUE(r.sampled);
  EXPECT_EQ(r.stats.rows_processed, 300);

  KeyDiscoveryResult unused;
  EXPECT_FALSE(
      ProfileCsvFile("/no/such.csv", CsvOptions{}, o, &unused).ok());
}

TEST(NullSemantics, DefaultTreatsNullAsValue) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value::Null(), Value(int64_t{1})});
  b.AddRow({Value::Null(), Value(int64_t{2})});
  b.AddRow({Value(int64_t{5}), Value(int64_t{3})});
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  // Column a has two NULLs -> non-key; b is the only key.
  EXPECT_EQ(Sorted(r.KeySets()), Sorted({AttributeSet{1}}));
}

TEST(NullSemantics, ExcludeNullableColumnsBarsThemFromKeys) {
  TableBuilder b(Schema(std::vector<std::string>{"maybe", "id", "extra"}));
  for (int64_t i = 0; i < 10; ++i) {
    b.AddRow({i == 3 ? Value::Null() : Value(i), Value(i),
              Value(i % 2)});
  }
  Table t = b.Build();
  // Default: "maybe" is unique (NULL is a value) -> both singletons keys.
  KeyDiscoveryResult lax = FindKeys(t);
  EXPECT_EQ(Sorted(lax.KeySets()),
            Sorted({AttributeSet{0}, AttributeSet{1}}));

  // SQL semantics: "maybe" is barred; no reported set mentions column 0,
  // and positions are correctly remapped (id = column 1).
  GordianOptions o;
  o.null_semantics = GordianOptions::NullSemantics::kExcludeNullableColumns;
  KeyDiscoveryResult strict = FindKeys(t, o);
  EXPECT_EQ(Sorted(strict.KeySets()), Sorted({AttributeSet{1}}));
  for (const AttributeSet& nk : strict.non_keys) {
    EXPECT_FALSE(nk.Test(0));
  }
  bool extra_in_non_key = false;
  for (const AttributeSet& nk : strict.non_keys) {
    if (nk.Test(2)) extra_in_non_key = true;
  }
  EXPECT_TRUE(extra_in_non_key);
}

TEST(NullSemantics, AllColumnsNullableMeansNoKeys) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  b.AddRow({Value::Null()});
  b.AddRow({Value(int64_t{1})});
  Table t = b.Build();
  GordianOptions o;
  o.null_semantics = GordianOptions::NullSemantics::kExcludeNullableColumns;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_FALSE(r.no_keys);
}

TEST(VerifyResult, AcceptsGenuineResults) {
  Table t = MakeTable(500, 25);
  VerificationReport rep = VerifyResult(t, FindKeys(t));
  EXPECT_TRUE(rep.ok) << (rep.problems.empty() ? "" : rep.problems[0]);
}

TEST(VerifyResult, FlagsFabricatedProblems) {
  Table t = MakeTable(500, 26);
  KeyDiscoveryResult r = FindKeys(t);
  // Fabricate a false key (a known non-key) and a false non-key (a key).
  ASSERT_FALSE(r.non_keys.empty());
  DiscoveredKey bogus;
  bogus.attrs = r.non_keys[0];
  r.keys.push_back(bogus);
  r.non_keys.push_back(r.keys[0].attrs);
  VerificationReport rep = VerifyResult(t, r);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.problems.empty());
}

TEST(VerifyResult, NoKeysClaimIsChecked) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  b.AddRow({Value(int64_t{1})});
  b.AddRow({Value(int64_t{2})});
  Table t = b.Build();
  KeyDiscoveryResult fake;
  fake.no_keys = true;
  VerificationReport rep = VerifyResult(t, fake);
  EXPECT_FALSE(rep.ok);
}

}  // namespace
}  // namespace gordian
